"""Setup shim: enables legacy editable installs on environments without
the `wheel` package (PEP 660 builds need bdist_wheel). Configuration
lives in pyproject.toml."""
from setuptools import setup

setup()
