"""Additional serial/MR parity tests: inspection and MVB jobs."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.attribute_inspection import inspect_attributes
from repro.core.em import GaussianMixture
from repro.core.outliers import mvb_estimate
from repro.mapreduce import JobChain, MapReduceRuntime
from repro.mapreduce.types import split_records
from repro.mr.attribute_jobs import ArrayMembership
from repro.mr.inspection import mr_attribute_inspection
from repro.mr.outlier_jobs import run_mvb_jobs


def _cluster_scenario(rng, n=900, d=6):
    """One dense cluster on attributes 0/1, rest uniform."""
    data = rng.uniform(size=(n, d))
    members = np.zeros(n, dtype=bool)
    members[:400] = True
    data[members, 0] = rng.normal(0.3, 0.02, 400).clip(0, 1)
    data[members, 1] = rng.normal(0.7, 0.02, 400).clip(0, 1)
    return data, members


class TestInspectionParity:
    def test_mr_inspection_matches_serial(self, rng):
        data, members = _cluster_scenario(rng)
        membership = np.where(members, 0, -1).astype(np.int64)

        serial = inspect_attributes(
            data,
            members,
            known_attributes=frozenset({0}),
            prove=True,
        )

        chain = JobChain(MapReduceRuntime())
        splits = split_records(data, 4)
        mr_attrs = mr_attribute_inspection(
            chain,
            splits,
            ArrayMembership(membership),
            known_attributes={0: frozenset({0})},
            sizes={0: int(members.sum())},
            prove=True,
        )
        assert mr_attrs[0] == serial.attributes

    def test_mr_inspection_without_proving(self, rng):
        data, members = _cluster_scenario(rng)
        membership = np.where(members, 0, -1).astype(np.int64)
        serial = inspect_attributes(
            data, members, known_attributes=frozenset(), prove=False
        )
        chain = JobChain(MapReduceRuntime())
        splits = split_records(data, 3)
        mr_attrs = mr_attribute_inspection(
            chain,
            splits,
            ArrayMembership(membership),
            known_attributes={0: frozenset()},
            sizes={0: int(members.sum())},
            prove=False,
        )
        assert mr_attrs[0] == serial.attributes

    def test_empty_cluster_keeps_known_attributes(self, rng):
        data, _ = _cluster_scenario(rng)
        membership = np.full(len(data), -1, dtype=np.int64)
        chain = JobChain(MapReduceRuntime())
        splits = split_records(data, 2)
        mr_attrs = mr_attribute_inspection(
            chain,
            splits,
            ArrayMembership(membership),
            known_attributes={0: frozenset({2})},
            sizes={0: 0},
        )
        assert mr_attrs[0] == frozenset({2})


class TestMVBJobParity:
    def test_single_split_matches_serial_mvb(self, rng):
        """With one split, the median-of-split-medians equals the exact
        median, so the MR MVB moments must match the serial estimate."""
        data, members = _cluster_scenario(rng)
        attrs = (0, 1)
        sub = data[:, list(attrs)]

        # A mixture that assigns the dense cluster to component 0.
        mixture = GaussianMixture(
            means=np.array([[0.3, 0.7], [0.5, 0.5]]),
            covariances=np.stack([np.eye(2) * 0.01, np.eye(2) * 0.2]),
            weights=np.array([0.5, 0.5]),
            attributes=attrs,
        )
        assignment = mixture.assign(sub)

        chain = JobChain(MapReduceRuntime())
        splits = split_records(data, 1)
        means, covs, counts = run_mvb_jobs(chain, splits, mixture)

        serial = mvb_estimate(sub[assignment == 0])
        assert means[0] == pytest.approx(serial.mean, abs=1e-9)
        # The 1e-9 ridge is applied before vs after the consistency
        # factor in the two paths; allow that epsilon.
        assert covs[0] == pytest.approx(serial.covariance, rel=1e-5, abs=1e-8)
        assert counts[0] == serial.n_inside

    def test_multi_split_close_to_serial(self, rng):
        data, members = _cluster_scenario(rng, n=1_200)
        attrs = (0, 1)
        sub = data[:, list(attrs)]
        mixture = GaussianMixture(
            means=np.array([[0.3, 0.7], [0.5, 0.5]]),
            covariances=np.stack([np.eye(2) * 0.01, np.eye(2) * 0.2]),
            weights=np.array([0.5, 0.5]),
            attributes=attrs,
        )
        assignment = mixture.assign(sub)
        chain = JobChain(MapReduceRuntime())
        splits = split_records(data, 6)
        means, _, _ = run_mvb_jobs(chain, splits, mixture)
        serial = mvb_estimate(sub[assignment == 0])
        # Median-of-split-medians approximates the exact centre.
        assert means[0] == pytest.approx(serial.mean, abs=0.02)
