"""Unit tests for naive and MVB outlier detection (Section 4.2.2)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.outliers import (
    detect_outliers_mvb,
    detect_outliers_naive,
    dimensionwise_median,
    mvb_estimate,
    small_sample_inflation,
)


def _cluster_with_outliers(rng, n=500, dim=3, n_outliers=10):
    points = rng.normal(0.5, 0.02, size=(n, dim))
    outliers = rng.uniform(size=(n_outliers, dim))
    # Keep injected outliers far from the core.
    outliers = 0.5 + np.sign(outliers - 0.5) * (0.2 + 0.3 * np.abs(outliers - 0.5))
    return np.vstack([points, outliers]).clip(0, 1)


class TestDimensionwiseMedian:
    def test_matches_numpy(self, rng):
        points = rng.uniform(size=(101, 4))
        assert dimensionwise_median(points) == pytest.approx(
            np.median(points, axis=0)
        )

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            dimensionwise_median(np.empty((0, 3)))


class TestMVBEstimate:
    def test_ball_contains_half(self, rng):
        points = rng.normal(0.5, 0.05, size=(400, 3))
        estimate = mvb_estimate(points)
        inside = (
            np.linalg.norm(points - estimate.center, axis=1) <= estimate.radius
        )
        assert inside.sum() >= len(points) // 2

    def test_resists_masking(self, rng):
        """Far outliers must not drag the MVB mean (the masking effect
        that breaks the naive estimator)."""
        core = rng.normal(0.3, 0.01, size=(300, 2))
        heavy = np.full((60, 2), 0.95)
        points = np.vstack([core, heavy])
        estimate = mvb_estimate(points)
        naive_mean = points.mean(axis=0)
        assert abs(estimate.mean[0] - 0.3) < abs(naive_mean[0] - 0.3)

    def test_small_sample_falls_back_to_diagonal(self, rng):
        points = rng.normal(0.5, 0.05, size=(8, 6))  # inside < 2 * dim
        estimate = mvb_estimate(points)
        off_diagonal = estimate.covariance - np.diag(np.diag(estimate.covariance))
        assert np.allclose(off_diagonal, 0.0)

    def test_single_point(self):
        estimate = mvb_estimate(np.array([[0.5, 0.5]]))
        assert estimate.radius == 0.0
        assert np.isfinite(estimate.covariance).all()


class TestSmallSampleInflation:
    def test_large_sample_no_inflation(self):
        assert small_sample_inflation(10_000, 5) == pytest.approx(1.0, abs=0.01)

    def test_small_sample_inflates(self):
        assert small_sample_inflation(20, 10) > 2.0

    def test_degenerate_sample_infinite(self):
        assert small_sample_inflation(5, 10) == float("inf")


class TestNaiveDetector:
    def test_flags_injected_outliers(self, rng):
        points = _cluster_with_outliers(rng)
        mean = np.median(points, axis=0)
        core = points[:500]
        cov = np.cov(core.T)
        flags = detect_outliers_naive(points, mean, cov, alpha=0.001)
        assert flags[-10:].all()
        assert flags[:500].mean() < 0.05

    def test_empty_input(self):
        flags = detect_outliers_naive(np.empty((0, 2)), np.zeros(2), np.eye(2))
        assert flags.shape == (0,)

    def test_masking_effect_exists(self, rng):
        """With moments from ALL points (incl. heavy contamination), the
        naive detector misses outliers that MVB catches."""
        core = rng.normal(0.3, 0.01, size=(300, 2))
        heavy = rng.normal(0.9, 0.01, size=(90, 2))
        points = np.vstack([core, heavy]).clip(0, 1)
        naive_flags = detect_outliers_naive(
            points, points.mean(axis=0), np.cov(points.T), alpha=0.001
        )
        mvb_flags, _ = detect_outliers_mvb(points, alpha=0.001)
        assert mvb_flags[300:].mean() > naive_flags[300:].mean()


class TestMVBDetector:
    def test_flags_injected_outliers(self, rng):
        points = _cluster_with_outliers(rng)
        flags, estimate = detect_outliers_mvb(points, alpha=0.001)
        assert flags[-10:].all()
        assert flags[:500].mean() < 0.05
        assert estimate.n_inside >= 250

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            detect_outliers_mvb(np.empty((0, 2)))

    def test_tiny_cluster_flags_nothing(self, rng):
        """Fewer points than dimensions: no covariance, no flags."""
        points = rng.uniform(size=(4, 6))
        flags, _ = detect_outliers_mvb(points)
        assert not flags.any()
