"""Tests for the command-line interface."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cli import ALGORITHMS, main
from repro.data.io import load_dataset_csv, load_result_json


class TestGenerate:
    def test_writes_csv_and_labels(self, tmp_path, capsys):
        out = tmp_path / "data.csv"
        code = main(
            [
                "generate",
                "--n", "300",
                "--dims", "8",
                "--clusters", "2",
                "--noise", "0.1",
                "--out", str(out),
            ]
        )
        assert code == 0
        data, labels = load_dataset_csv(out)
        assert data.shape == (300, 8)
        assert labels is not None
        assert set(np.unique(labels)) <= {-1, 0, 1}
        assert "wrote" in capsys.readouterr().out


class TestCluster:
    @pytest.fixture()
    def data_file(self, tmp_path):
        out = tmp_path / "data.csv"
        main(
            [
                "generate",
                "--n", "600",
                "--dims", "8",
                "--clusters", "2",
                "--noise", "0.05",
                "--seed", "5",
                "--out", str(out),
            ]
        )
        return out

    def test_cluster_and_evaluate_roundtrip(self, tmp_path, data_file, capsys):
        result_file = tmp_path / "result.json"
        code = main(
            [
                "cluster",
                "--algorithm", "p3c-plus-light",
                "--data", str(data_file),
                "--out", str(result_file),
            ]
        )
        assert code == 0
        result = load_result_json(result_file)
        assert result.n_points == 600

        code = main(
            ["evaluate", "--data", str(data_file), "--result", str(result_file)]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "label accuracy" in out

    def test_mismatched_result_rejected(self, tmp_path, data_file, capsys):
        result_file = tmp_path / "result.json"
        main(
            [
                "cluster",
                "--algorithm", "p3c-plus-light",
                "--data", str(data_file),
                "--out", str(result_file),
            ]
        )
        other = tmp_path / "other.csv"
        main(
            ["generate", "--n", "100", "--dims", "8", "--clusters", "2",
             "--out", str(other)]
        )
        code = main(
            ["evaluate", "--data", str(other), "--result", str(result_file)]
        )
        assert code == 2

    def test_trace_and_executor_flags(self, tmp_path, data_file, capsys):
        result_file = tmp_path / "result.json"
        code = main(
            [
                "cluster",
                "--algorithm", "mr-light",
                "--data", str(data_file),
                "--out", str(result_file),
                "--executor", "thread",
                "--workers", "2",
                "--trace",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "job_start" in out and "task_finish" in out
        assert "thread" in out  # ledger names the executor
        assert "TOTAL" in out

    def test_trace_on_serial_algorithm_prints_note(
        self, tmp_path, data_file, capsys
    ):
        result_file = tmp_path / "result.json"
        code = main(
            [
                "cluster",
                "--algorithm", "p3c-plus-light",
                "--data", str(data_file),
                "--out", str(result_file),
                "--trace",
            ]
        )
        assert code == 0
        assert "no MapReduce chain" in capsys.readouterr().out

    def test_all_algorithms_registered(self):
        assert set(ALGORITHMS) == {
            "p3c",
            "p3c-plus",
            "p3c-plus-light",
            "mr",
            "mr-light",
            "bow-light",
            "bow-mvb",
        }


class TestExperimentCommand:
    def test_figure1_prints_table(self, capsys):
        code = main(["experiment", "figure1"])
        assert code == 0
        assert "Figure 1" in capsys.readouterr().out

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            main(["experiment", "nonsense"])
