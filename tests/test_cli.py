"""Tests for the command-line interface."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.cli import ALGORITHMS, main
from repro.data.io import load_dataset_csv, load_result_json
from repro.obs import validate_run_report


class TestGenerate:
    def test_writes_csv_and_labels(self, tmp_path, capsys):
        out = tmp_path / "data.csv"
        code = main(
            [
                "generate",
                "--n", "300",
                "--dims", "8",
                "--clusters", "2",
                "--noise", "0.1",
                "--out", str(out),
            ]
        )
        assert code == 0
        data, labels = load_dataset_csv(out)
        assert data.shape == (300, 8)
        assert labels is not None
        assert set(np.unique(labels)) <= {-1, 0, 1}
        assert "wrote" in capsys.readouterr().out


class TestCluster:
    @pytest.fixture()
    def data_file(self, tmp_path):
        out = tmp_path / "data.csv"
        main(
            [
                "generate",
                "--n", "600",
                "--dims", "8",
                "--clusters", "2",
                "--noise", "0.05",
                "--seed", "5",
                "--out", str(out),
            ]
        )
        return out

    def test_cluster_and_evaluate_roundtrip(self, tmp_path, data_file, capsys):
        result_file = tmp_path / "result.json"
        code = main(
            [
                "cluster",
                "--algorithm", "p3c-plus-light",
                "--data", str(data_file),
                "--out", str(result_file),
            ]
        )
        assert code == 0
        result = load_result_json(result_file)
        assert result.n_points == 600

        code = main(
            ["evaluate", "--data", str(data_file), "--result", str(result_file)]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "label accuracy" in out

    def test_mismatched_result_rejected(self, tmp_path, data_file, capsys):
        result_file = tmp_path / "result.json"
        main(
            [
                "cluster",
                "--algorithm", "p3c-plus-light",
                "--data", str(data_file),
                "--out", str(result_file),
            ]
        )
        other = tmp_path / "other.csv"
        main(
            ["generate", "--n", "100", "--dims", "8", "--clusters", "2",
             "--out", str(other)]
        )
        code = main(
            ["evaluate", "--data", str(other), "--result", str(result_file)]
        )
        assert code == 2

    def test_trace_and_executor_flags(self, tmp_path, data_file, capsys):
        result_file = tmp_path / "result.json"
        code = main(
            [
                "cluster",
                "--algorithm", "mr-light",
                "--data", str(data_file),
                "--out", str(result_file),
                "--executor", "thread",
                "--workers", "2",
                "--trace",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "job_start" in out and "task_finish" in out
        assert "thread" in out  # ledger names the executor
        assert "TOTAL" in out

    def test_trace_on_serial_algorithm_prints_note(
        self, tmp_path, data_file, capsys
    ):
        result_file = tmp_path / "result.json"
        code = main(
            [
                "cluster",
                "--algorithm", "p3c-plus-light",
                "--data", str(data_file),
                "--out", str(result_file),
                "--trace",
            ]
        )
        assert code == 0
        assert "no MapReduce chain" in capsys.readouterr().out

    def test_metrics_and_jsonl_trace(self, tmp_path, data_file, capsys):
        result_file = tmp_path / "result.json"
        run_file = tmp_path / "run.json"
        trace_file = tmp_path / "trace.jsonl"
        code = main(
            [
                "cluster",
                "--algorithm", "mr-light",
                "--data", str(data_file),
                "--out", str(result_file),
                "--metrics", str(run_file),
                "--trace-format", "jsonl",
                "--trace-out", str(trace_file),
            ]
        )
        assert code == 0
        report = json.loads(run_file.read_text())
        assert validate_run_report(report) == []
        assert report["algorithm"] == "mr-light"
        assert report["dataset"]["n"] == 600
        assert report["totals"]["mr_jobs"] == len(report["jobs"]) > 0
        kinds = {s["kind"] for s in report["spans"]}
        assert kinds == {"run", "stage", "job", "phase", "task"}
        # The jsonl trace mixes span records and runtime events.
        records = [
            json.loads(line)
            for line in trace_file.read_text().splitlines()
            if line
        ]
        assert any("span_id" in r for r in records)
        assert any(r.get("kind") == "job_start" for r in records)

    def test_chrome_trace_default_path(self, tmp_path, data_file, capsys):
        result_file = tmp_path / "result.json"
        code = main(
            [
                "cluster",
                "--algorithm", "mr-light",
                "--data", str(data_file),
                "--out", str(result_file),
                "--trace-format", "chrome",
            ]
        )
        assert code == 0
        trace_file = tmp_path / "result.trace.json"
        assert trace_file.exists()
        trace = json.loads(trace_file.read_text())
        events = trace["traceEvents"]
        assert events and all(e["ph"] == "X" for e in events)
        assert {"run", "stage", "job", "phase", "task"} <= {
            e["cat"] for e in events
        }

    def test_report_subcommand_renders_run_json(
        self, tmp_path, data_file, capsys
    ):
        result_file = tmp_path / "result.json"
        run_file = tmp_path / "run.json"
        main(
            [
                "cluster",
                "--algorithm", "mr-light",
                "--data", str(data_file),
                "--out", str(result_file),
                "--metrics", str(run_file),
            ]
        )
        capsys.readouterr()
        code = main(["report", str(run_file)])
        assert code == 0
        out = capsys.readouterr().out
        assert "run report — mr-light" in out
        assert "MR jobs" in out and "p50(ms)" in out

    def test_report_subcommand_rejects_invalid(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"schema": "nope"}))
        code = main(["report", str(bad)])
        assert code == 1
        assert "schema problems" in capsys.readouterr().err

    def test_all_algorithms_registered(self):
        assert set(ALGORITHMS) == {
            "p3c",
            "p3c-plus",
            "p3c-plus-light",
            "mr",
            "mr-light",
            "bow-light",
            "bow-mvb",
        }


class TestExperimentCommand:
    def test_figure1_prints_table(self, capsys):
        code = main(["experiment", "figure1"])
        assert code == 0
        assert "Figure 1" in capsys.readouterr().out

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            main(["experiment", "nonsense"])
