"""Tests for the command-line interface."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.cli import ALGORITHMS, main
from repro.data.io import load_dataset_csv, load_result_json
from repro.obs import validate_run_report


class TestGenerate:
    def test_writes_csv_and_labels(self, tmp_path, capsys):
        out = tmp_path / "data.csv"
        code = main(
            [
                "generate",
                "--n", "300",
                "--dims", "8",
                "--clusters", "2",
                "--noise", "0.1",
                "--out", str(out),
            ]
        )
        assert code == 0
        data, labels = load_dataset_csv(out)
        assert data.shape == (300, 8)
        assert labels is not None
        assert set(np.unique(labels)) <= {-1, 0, 1}
        assert "wrote" in capsys.readouterr().out


class TestCluster:
    @pytest.fixture()
    def data_file(self, tmp_path):
        out = tmp_path / "data.csv"
        main(
            [
                "generate",
                "--n", "600",
                "--dims", "8",
                "--clusters", "2",
                "--noise", "0.05",
                "--seed", "5",
                "--out", str(out),
            ]
        )
        return out

    def test_cluster_and_evaluate_roundtrip(self, tmp_path, data_file, capsys):
        result_file = tmp_path / "result.json"
        code = main(
            [
                "cluster",
                "--algorithm", "p3c-plus-light",
                "--data", str(data_file),
                "--out", str(result_file),
            ]
        )
        assert code == 0
        result = load_result_json(result_file)
        assert result.n_points == 600

        code = main(
            ["evaluate", "--data", str(data_file), "--result", str(result_file)]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "label accuracy" in out

    def test_mismatched_result_rejected(self, tmp_path, data_file, capsys):
        result_file = tmp_path / "result.json"
        main(
            [
                "cluster",
                "--algorithm", "p3c-plus-light",
                "--data", str(data_file),
                "--out", str(result_file),
            ]
        )
        other = tmp_path / "other.csv"
        main(
            ["generate", "--n", "100", "--dims", "8", "--clusters", "2",
             "--out", str(other)]
        )
        code = main(
            ["evaluate", "--data", str(other), "--result", str(result_file)]
        )
        assert code == 2

    def test_trace_and_executor_flags(self, tmp_path, data_file, capsys):
        result_file = tmp_path / "result.json"
        code = main(
            [
                "cluster",
                "--algorithm", "mr-light",
                "--data", str(data_file),
                "--out", str(result_file),
                "--executor", "thread",
                "--workers", "2",
                "--trace",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "job_start" in out and "task_finish" in out
        assert "thread" in out  # ledger names the executor
        assert "TOTAL" in out

    def test_coreset_flags_run_and_label_all_points(
        self, tmp_path, data_file, capsys
    ):
        result_file = tmp_path / "result.json"
        code = main(
            [
                "cluster",
                "--algorithm", "mr",
                "--data", str(data_file),
                "--out", str(result_file),
                "--coreset-size", "200",
                "--coreset-mode", "lightweight",
                "--coreset-seed", "7",
            ]
        )
        assert code == 0
        result = json.loads(result_file.read_text())
        assert result["n_points"] == 600
        info = result["metadata"]["coreset"]
        assert info["mode"] == "lightweight"
        assert info["requested_size"] == 200
        # Result metadata carries no timings (byte-identity contract).
        assert "build_s" not in info
        covered = set(result["outliers"])
        for cluster in result["clusters"]:
            covered.update(cluster["members"])
        assert covered == set(range(600))

    def test_coreset_mode_without_size_rejected(
        self, tmp_path, data_file, capsys
    ):
        code = main(
            [
                "cluster",
                "--algorithm", "mr",
                "--data", str(data_file),
                "--out", str(tmp_path / "result.json"),
                "--coreset-mode", "lightweight",
            ]
        )
        assert code == 2
        assert "--coreset-size" in capsys.readouterr().err

    def test_coreset_size_requires_mr_algorithm(
        self, tmp_path, data_file, capsys
    ):
        code = main(
            [
                "cluster",
                "--algorithm", "mr-light",
                "--data", str(data_file),
                "--out", str(tmp_path / "result.json"),
                "--coreset-size", "200",
            ]
        )
        assert code == 2
        assert "mr algorithm" in capsys.readouterr().err

    def test_trace_on_serial_algorithm_prints_note(
        self, tmp_path, data_file, capsys
    ):
        result_file = tmp_path / "result.json"
        code = main(
            [
                "cluster",
                "--algorithm", "p3c-plus-light",
                "--data", str(data_file),
                "--out", str(result_file),
                "--trace",
            ]
        )
        assert code == 0
        assert "no MapReduce chain" in capsys.readouterr().out

    def test_metrics_and_jsonl_trace(self, tmp_path, data_file, capsys):
        result_file = tmp_path / "result.json"
        run_file = tmp_path / "run.json"
        trace_file = tmp_path / "trace.jsonl"
        code = main(
            [
                "cluster",
                "--algorithm", "mr-light",
                "--data", str(data_file),
                "--out", str(result_file),
                "--metrics", str(run_file),
                "--trace-format", "jsonl",
                "--trace-out", str(trace_file),
            ]
        )
        assert code == 0
        report = json.loads(run_file.read_text())
        assert validate_run_report(report) == []
        assert report["algorithm"] == "mr-light"
        assert report["dataset"]["n"] == 600
        assert report["totals"]["mr_jobs"] == len(report["jobs"]) > 0
        kinds = {s["kind"] for s in report["spans"]}
        assert kinds == {"run", "stage", "job", "phase", "task"}
        # The jsonl trace mixes span records and runtime events.
        records = [
            json.loads(line)
            for line in trace_file.read_text().splitlines()
            if line
        ]
        assert any("span_id" in r for r in records)
        assert any(r.get("kind") == "job_start" for r in records)

    def test_chrome_trace_default_path(self, tmp_path, data_file, capsys):
        result_file = tmp_path / "result.json"
        code = main(
            [
                "cluster",
                "--algorithm", "mr-light",
                "--data", str(data_file),
                "--out", str(result_file),
                "--trace-format", "chrome",
            ]
        )
        assert code == 0
        trace_file = tmp_path / "result.trace.json"
        assert trace_file.exists()
        trace = json.loads(trace_file.read_text())
        events = trace["traceEvents"]
        assert events and all(e["ph"] == "X" for e in events)
        assert {"run", "stage", "job", "phase", "task"} <= {
            e["cat"] for e in events
        }

    def test_report_subcommand_renders_run_json(
        self, tmp_path, data_file, capsys
    ):
        result_file = tmp_path / "result.json"
        run_file = tmp_path / "run.json"
        main(
            [
                "cluster",
                "--algorithm", "mr-light",
                "--data", str(data_file),
                "--out", str(result_file),
                "--metrics", str(run_file),
            ]
        )
        capsys.readouterr()
        code = main(["report", str(run_file)])
        assert code == 0
        out = capsys.readouterr().out
        assert "run report — mr-light" in out
        assert "MR jobs" in out and "p50(ms)" in out

    def test_report_subcommand_rejects_invalid(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"schema": "nope"}))
        code = main(["report", str(bad)])
        assert code == 1
        assert "schema problems" in capsys.readouterr().err

    def test_all_algorithms_registered(self):
        assert set(ALGORITHMS) == {
            "p3c",
            "p3c-plus",
            "p3c-plus-light",
            "mr",
            "mr-light",
            "bow-light",
            "bow-mvb",
        }


class TestExperimentCommand:
    def test_figure1_prints_table(self, capsys):
        code = main(["experiment", "figure1"])
        assert code == 0
        assert "Figure 1" in capsys.readouterr().out

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            main(["experiment", "nonsense"])


class TestServicePlane:
    def test_submit_then_serve_drains_spool(self, tmp_path, capsys):
        data_file = tmp_path / "data.csv"
        main(
            [
                "generate",
                "--n", "400",
                "--dims", "6",
                "--clusters", "2",
                "--noise", "0.05",
                "--seed", "3",
                "--out", str(data_file),
            ]
        )
        spool = tmp_path / "spool"
        metrics_file = tmp_path / "run1.json"
        for tenant, out, extra in (
            ("alice", "r1.json", ["--metrics", str(metrics_file)]),
            ("bob", "r2.json", []),
        ):
            code = main(
                [
                    "submit",
                    "--spool", str(spool),
                    "--algorithm", "mr-light",
                    "--data", str(data_file),
                    "--out", str(tmp_path / out),
                    "--tenant", tenant,
                    *extra,
                ]
            )
            assert code == 0
        assert len(list((spool / "pending").glob("*.json"))) == 2

        code = main(
            [
                "serve",
                "--spool", str(spool),
                "--slots", "2",
                "--executor", "thread",
                "--drain", "2",
                "--poll-s", "0.05",
            ]
        )
        assert code == 0
        out_text = capsys.readouterr().out
        assert "served 2 job(s)" in out_text
        assert "slots_granted" in out_text

        # The spool drained: submissions consumed, completions recorded.
        assert list((spool / "pending").glob("*.json")) == []
        records = [
            json.loads(path.read_text())
            for path in (spool / "done").glob("*.json")
        ]
        assert {record["state"] for record in records} == {"done"}
        assert {record["tenant"] for record in records} == {"alice", "bob"}
        for name in ("r1.json", "r2.json"):
            result = load_result_json(tmp_path / name)
            assert result.n_points == 400

        # The run report rides the service scope: per-run fair-share
        # counters plus the service attribution block.
        report = json.loads(metrics_file.read_text())
        assert validate_run_report(report) == []
        assert report["metrics"]["counters"]["service.slots_granted"] > 0
        assert report["service"]["tenant"] == "alice"
        assert report["service"]["run_id"].startswith("alice/")

    def test_submit_wait_returns_after_completion(self, tmp_path, capsys):
        import threading

        data_file = tmp_path / "data.csv"
        main(
            [
                "generate",
                "--n", "200",
                "--dims", "5",
                "--clusters", "2",
                "--noise", "0.05",
                "--seed", "4",
                "--out", str(data_file),
            ]
        )
        spool = tmp_path / "spool"
        server = threading.Thread(
            target=main,
            args=(
                [
                    "serve",
                    "--spool", str(spool),
                    "--slots", "2",
                    "--drain", "1",
                    "--poll-s", "0.05",
                ],
            ),
            daemon=True,
        )
        server.start()
        code = main(
            [
                "submit",
                "--spool", str(spool),
                "--data", str(data_file),
                "--out", str(tmp_path / "result.json"),
                "--wait",
                "--timeout", "120",
            ]
        )
        server.join(timeout=120)
        assert code == 0
        assert not server.is_alive()
        out_text = capsys.readouterr().out
        assert '"state": "done"' in out_text
