"""Unit tests for the chaos layer: spec parsing, deterministic
schedules, recovery via retries, shuffle-integrity validation, task
timeouts and speculative execution."""

from __future__ import annotations

import time
from collections import Counter

import numpy as np
import pytest

from repro.mapreduce import (
    ChaosError,
    ChaosExecutor,
    FaultPlan,
    JobConf,
    MapReduceRuntime,
    SerialExecutor,
    ShuffleIntegrityError,
    TaskFailedError,
    TaskTimeoutError,
    parse_fault_spec,
    split_records,
)
from repro.mapreduce.events import EventKind
from repro.mapreduce.job import Job, Mapper, Reducer


class ModMapper(Mapper):
    def map(self, key, value, context):
        context.emit(key % 3, value)


class SumReducer(Reducer):
    def reduce(self, key, values, context):
        context.emit(key, sum(values))


class SlowMapper(Mapper):
    def map(self, key, value, context):
        time.sleep(0.002)
        context.emit(key % 3, value)


def _job(mapper=ModMapper):
    return Job(mapper_factory=mapper, reducer_factory=SumReducer)


def _splits(n=30, num_splits=6):
    return split_records([(i, i) for i in range(n)], num_splits)


def _expected(n=30):
    totals = Counter()
    for i in range(n):
        totals[i % 3] += i
    return sorted(totals.items())


def _event_kinds(runtime):
    return Counter(e.kind for e in runtime.events.events)


# -- spec parsing -------------------------------------------------------


class TestParseFaultSpec:
    def test_minimal_clause(self):
        (clause,) = parse_fault_spec("map:error")
        assert clause.phase == "map"
        assert clause.kind == "error"
        assert clause.probability == 1.0
        assert not clause.always

    def test_full_clause(self):
        (clause,) = parse_fault_spec("reduce:delay:p=0.25:ms=40:job=em:task=3")
        assert clause.phase == "reduce"
        assert clause.kind == "delay"
        assert clause.probability == 0.25
        assert clause.delay_ms == 40
        assert clause.job == "em"
        assert clause.task_id == 3

    def test_multiple_clauses_get_distinct_indices(self):
        clauses = parse_fault_spec("map:error;map:error;reduce:delay")
        assert [c.index for c in clauses] == [0, 1, 2]

    def test_always_flag(self):
        (clause,) = parse_fault_spec("map:error:always=1")
        assert clause.always

    @pytest.mark.parametrize(
        "spec",
        [
            "",
            "map",
            "map:explode",
            "orbit:error",
            "map:error:p=1.5",
            "map:error:banana",
            "map:error:what=1",
            "reduce:corrupt",  # corrupt is map-only
        ],
    )
    def test_rejects_malformed_specs(self, spec):
        with pytest.raises(ValueError):
            parse_fault_spec(spec)

    def test_clause_describe_round_trips_fields(self):
        (clause,) = parse_fault_spec("map:delay:p=0.5:ms=10:task=2")
        description = clause.describe()
        for token in ("map:delay", "p=0.5", "ms=10", "task=2"):
            assert token in description


# -- deterministic schedules --------------------------------------------


class TestFaultPlanDeterminism:
    def test_same_seed_same_schedule(self):
        plan_a = FaultPlan.parse("map:error:p=0.5", seed=3)
        plan_b = FaultPlan.parse("map:error:p=0.5", seed=3)
        coords = [("job", "map", t, 1) for t in range(50)]
        assert [plan_a.faults_for(*c) for c in coords] == [
            plan_b.faults_for(*c) for c in coords
        ]

    def test_different_seeds_differ(self):
        plan_a = FaultPlan.parse("map:error:p=0.5", seed=0)
        plan_b = FaultPlan.parse("map:error:p=0.5", seed=1)
        hits_a = [bool(plan_a.faults_for("j", "map", t, 1)) for t in range(64)]
        hits_b = [bool(plan_b.faults_for("j", "map", t, 1)) for t in range(64)]
        assert hits_a != hits_b

    def test_probability_is_roughly_respected(self):
        plan = FaultPlan.parse("map:error:p=0.3", seed=11)
        hits = sum(
            bool(plan.faults_for("j", "map", t, 1)) for t in range(2000)
        )
        assert 0.25 < hits / 2000 < 0.35

    def test_transient_faults_spare_retries(self):
        plan = FaultPlan.parse("map:error")
        assert plan.faults_for("j", "map", 0, 1)
        assert not plan.faults_for("j", "map", 0, 2)

    def test_always_faults_hit_every_attempt(self):
        plan = FaultPlan.parse("map:error:always=1")
        for attempt in (1, 2, 3):
            assert plan.faults_for("j", "map", 0, attempt)

    def test_job_filter_is_substring_match(self):
        plan = FaultPlan.parse("map:error:job=em_")
        assert plan.faults_for("em_estep_2", "map", 0, 1)
        assert not plan.faults_for("histogram", "map", 0, 1)

    def test_phase_and_task_filters(self):
        plan = FaultPlan.parse("reduce:error:task=1")
        assert plan.faults_for("j", "reduce", 1, 1)
        assert not plan.faults_for("j", "reduce", 2, 1)
        assert not plan.faults_for("j", "map", 1, 1)
        wildcard = FaultPlan.parse("*:error")
        assert wildcard.faults_for("j", "map", 0, 1)
        assert wildcard.faults_for("j", "reduce", 0, 1)


# -- recovery through the runtime ---------------------------------------


class TestChaosRecovery:
    def test_transient_map_errors_recover_and_output_matches(self):
        plan = FaultPlan.parse("map:error:p=0.6", seed=2)
        runtime = MapReduceRuntime(fault_plan=plan)
        result = runtime.run(_job(), _splits(), JobConf(name="j", num_splits=6))
        assert result.output == _expected()
        kinds = _event_kinds(runtime)
        assert kinds[EventKind.FAULT_INJECTED] >= 1
        assert kinds[EventKind.TASK_RETRY] >= 1
        assert kinds[EventKind.TASK_FAILED] == 0

    def test_transient_reduce_errors_recover(self):
        plan = FaultPlan.parse("reduce:error:p=0.9", seed=4)
        runtime = MapReduceRuntime(fault_plan=plan)
        result = runtime.run(
            _job(), _splits(), JobConf(name="j", num_splits=6, num_reducers=3)
        )
        assert result.output == _expected()
        assert _event_kinds(runtime)[EventKind.TASK_RETRY] >= 1

    def test_permanent_fault_exhausts_attempts(self):
        plan = FaultPlan.parse("map:error:task=0:always=1")
        runtime = MapReduceRuntime(fault_plan=plan)
        with pytest.raises(TaskFailedError) as info:
            runtime.run(_job(), _splits(), JobConf(name="j", num_splits=6))
        assert isinstance(info.value.cause, ChaosError)

    def test_corrupt_payload_is_caught_and_retried(self):
        plan = FaultPlan.parse("map:corrupt:task=2", seed=0)
        runtime = MapReduceRuntime(fault_plan=plan)
        result = runtime.run(_job(), _splits(), JobConf(name="j", num_splits=6))
        assert result.output == _expected()
        retries = [
            e
            for e in runtime.events.events
            if e.kind == EventKind.TASK_RETRY and e.task_id == 2
        ]
        assert retries and "ShuffleIntegrityError" in retries[0].error

    def test_corrupt_map_only_payload_is_caught(self):
        plan = FaultPlan.parse("map:corrupt:task=1")
        runtime = MapReduceRuntime(fault_plan=plan)
        result = runtime.run(
            Job(mapper_factory=ModMapper),
            _splits(),
            JobConf(name="j", num_splits=6, num_reducers=0),
        )
        assert sorted(result.output) == sorted(
            (i % 3, i) for i in range(30)
        )
        assert _event_kinds(runtime)[EventKind.TASK_RETRY] >= 1

    def test_delay_fault_slows_but_preserves_output(self):
        plan = FaultPlan.parse("map:delay:task=0:ms=30")
        runtime = MapReduceRuntime(fault_plan=plan)
        started = time.perf_counter()
        result = runtime.run(_job(), _splits(), JobConf(name="j", num_splits=6))
        assert time.perf_counter() - started > 0.03
        assert result.output == _expected()

    def test_no_plan_means_no_chaos_wrapping(self):
        runtime = MapReduceRuntime()
        assert not isinstance(runtime.default_executor, ChaosExecutor)
        result = runtime.run(_job(), _splits(), JobConf(name="j", num_splits=6))
        assert result.output == _expected()
        assert _event_kinds(runtime)[EventKind.FAULT_INJECTED] == 0

    def test_fault_injected_events_carry_clause_description(self):
        plan = FaultPlan.parse("map:error:p=0.8", seed=1)
        runtime = MapReduceRuntime(fault_plan=plan)
        runtime.run(_job(), _splits(), JobConf(name="j", num_splits=6))
        injected = [
            e for e in runtime.events.events if e.kind == EventKind.FAULT_INJECTED
        ]
        assert injected
        assert all("map:error" in e.error for e in injected)

    def test_chaos_executor_name_tags_inner_backend(self):
        plan = FaultPlan.parse("map:error")
        chaos = ChaosExecutor(SerialExecutor(), plan)
        assert chaos.name == "chaos+serial"


# -- shuffle-integrity validation ---------------------------------------


class TestShuffleIntegrity:
    def test_error_message_names_the_mismatch(self):
        plan = FaultPlan.parse("map:corrupt:task=0:always=1")
        runtime = MapReduceRuntime(fault_plan=plan)
        with pytest.raises(TaskFailedError) as info:
            runtime.run(_job(), _splits(), JobConf(name="j", num_splits=6))
        assert isinstance(info.value.cause, ShuffleIntegrityError)


# -- task timeouts ------------------------------------------------------


class TestTaskTimeouts:
    def test_serial_post_hoc_timeout_retries(self):
        plan = FaultPlan.parse("map:delay:task=1:ms=80")
        runtime = MapReduceRuntime(fault_plan=plan, task_timeout_s=0.04)
        result = runtime.run(_job(), _splits(), JobConf(name="j", num_splits=6))
        assert result.output == _expected()
        kinds = _event_kinds(runtime)
        assert kinds[EventKind.TASK_TIMEOUT] >= 1
        assert kinds[EventKind.TASK_RETRY] >= 1

    def test_thread_pool_timeout_abandons_straggler(self):
        plan = FaultPlan.parse("map:delay:task=1:ms=600")
        runtime = MapReduceRuntime(
            executor="thread",
            max_workers=4,
            fault_plan=plan,
            task_timeout_s=0.08,
        )
        started = time.perf_counter()
        result = runtime.run(_job(), _splits(), JobConf(name="j", num_splits=6))
        elapsed = time.perf_counter() - started
        assert result.output == _expected()
        assert elapsed < 0.6  # did not wait out the 600 ms straggler
        kinds = _event_kinds(runtime)
        assert kinds[EventKind.TASK_TIMEOUT] >= 1
        assert kinds[EventKind.TASK_RETRY] >= 1

    def test_permanent_straggler_exhausts_attempts(self):
        plan = FaultPlan.parse("map:delay:task=0:ms=200:always=1")
        runtime = MapReduceRuntime(
            executor="thread",
            max_workers=2,
            fault_plan=plan,
            task_timeout_s=0.05,
        )
        with pytest.raises(TaskFailedError) as info:
            runtime.run(_job(), _splits(), JobConf(name="j", num_splits=6))
        assert isinstance(info.value.cause, TaskTimeoutError)

    def test_conf_override_beats_runtime_default(self):
        plan = FaultPlan.parse("map:delay:task=1:ms=80")
        runtime = MapReduceRuntime(fault_plan=plan, task_timeout_s=0.04)
        # Per-job override lifts the budget: no timeout fires.
        result = runtime.run(
            _job(),
            _splits(),
            JobConf(name="j", num_splits=6, task_timeout_s=5.0),
        )
        assert result.output == _expected()
        assert _event_kinds(runtime)[EventKind.TASK_TIMEOUT] == 0

    def test_invalid_timeout_rejected(self):
        with pytest.raises(ValueError):
            MapReduceRuntime(task_timeout_s=0.0).run(
                _job(), _splits(), JobConf(name="j", num_splits=6)
            )


# -- speculative execution ----------------------------------------------


class TestSpeculation:
    def test_speculative_copy_beats_straggler(self):
        plan = FaultPlan.parse("map:delay:task=2:ms=500:always=1")
        runtime = MapReduceRuntime(
            executor="thread",
            max_workers=4,
            fault_plan=plan,
            speculative=True,
        )
        started = time.perf_counter()
        result = runtime.run(
            _job(SlowMapper), _splits(), JobConf(name="j", num_splits=6)
        )
        elapsed = time.perf_counter() - started
        assert result.output == _expected()
        assert elapsed < 0.5  # speculative copy finished first
        assert _event_kinds(runtime)[EventKind.TASK_SPECULATED] >= 1

    def test_speculation_disabled_waits_for_straggler(self):
        plan = FaultPlan.parse("map:delay:task=2:ms=150")
        runtime = MapReduceRuntime(
            executor="thread", max_workers=4, fault_plan=plan
        )
        result = runtime.run(
            _job(SlowMapper), _splits(), JobConf(name="j", num_splits=6)
        )
        assert result.output == _expected()
        assert _event_kinds(runtime)[EventKind.TASK_SPECULATED] == 0

    def test_speculation_is_noop_on_serial(self):
        runtime = MapReduceRuntime(speculative=True)
        result = runtime.run(_job(), _splits(), JobConf(name="j", num_splits=6))
        assert result.output == _expected()
        assert _event_kinds(runtime)[EventKind.TASK_SPECULATED] == 0


# -- chaos payload corruption helpers -----------------------------------


class TestTruncatePayload:
    def test_bucketed_payload_truncates_last_nonempty_partition(self):
        from repro.mapreduce.faults import _truncate_payload

        payload = [[(0, 1)], [(1, 2), (1, 3)], []]
        corrupted = _truncate_payload(payload)
        assert corrupted == [[(0, 1)], [(1, 2)], []]
        assert payload == [[(0, 1)], [(1, 2), (1, 3)], []]  # input untouched

    def test_flat_payload_drops_last_pair(self):
        from repro.mapreduce.faults import _truncate_payload

        assert _truncate_payload([(0, 1), (1, 2)]) == [(0, 1)]

    def test_numpy_values_are_supported(self):
        from repro.mapreduce.faults import _truncate_payload

        payload = [[("k", np.arange(3))], []]
        corrupted = _truncate_payload(payload)
        assert corrupted == [[], []]
