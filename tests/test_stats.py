"""Unit tests for the statistical machinery (Sections 3-4)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st
from scipy import stats as sps

from repro.core.stats import (
    chi2_critical_value,
    chi_squared_uniformity_pvalue,
    cohens_d_cc,
    is_uniform,
    mahalanobis_squared,
    poisson_deviation_significant,
    poisson_log_sf,
    poisson_power_relative_effect,
    poisson_sf,
    probability_exceeds_relative,
)


class TestPoissonSF:
    def test_matches_scipy_for_small_lambda(self):
        assert poisson_sf(5, 2.0) == pytest.approx(
            float(sps.poisson.sf(4, 2.0))
        )

    def test_gaussian_approximation_close_for_large_lambda(self):
        # Far tails agree on the log scale (what the tests consume).
        exact = float(sps.poisson.sf(10499, 10000))
        approx = poisson_sf(10500, 10000)
        assert np.log(approx) == pytest.approx(np.log(exact), rel=0.05)

    def test_zero_expected(self):
        assert poisson_sf(1, 0.0) == 0.0
        assert poisson_sf(0, 0.0) == 1.0

    def test_negative_expected_rejected(self):
        with pytest.raises(ValueError):
            poisson_sf(1, -1.0)

    def test_log_sf_handles_extreme_tails(self):
        log_p = poisson_log_sf(2_000, 1_000.0)
        assert log_p < np.log(1e-100)
        assert np.isfinite(log_p)

    @given(st.floats(1, 1e6), st.floats(0.0, 2.0))
    def test_sf_is_probability(self, expected, rel):
        p = poisson_sf(rel * expected, expected)
        assert 0.0 <= p <= 1.0


class TestSignificance:
    def test_obvious_deviation_significant(self):
        assert poisson_deviation_significant(100, 10.0, alpha=0.01)

    def test_no_deviation_not_significant(self):
        assert not poisson_deviation_significant(10, 10.0, alpha=0.01)

    def test_extreme_threshold_decidable(self):
        # Thresholds far below float precision must still work (Fig. 5).
        assert poisson_deviation_significant(2_000_000, 1_000_000.0, alpha=1e-140)
        assert not poisson_deviation_significant(
            1_000_100, 1_000_000.0, alpha=1e-140
        )

    def test_alpha_monotonicity(self):
        # Significant at a strict level => significant at a looser one.
        observed, expected = 1_150, 1_000.0
        strict = poisson_deviation_significant(observed, expected, alpha=1e-6)
        loose = poisson_deviation_significant(observed, expected, alpha=0.01)
        assert loose or not strict

    def test_zero_expected_any_observation_significant(self):
        assert poisson_deviation_significant(1, 0.0)
        assert not poisson_deviation_significant(0, 0.0)

    def test_invalid_alpha_rejected(self):
        with pytest.raises(ValueError):
            poisson_deviation_significant(10, 5.0, alpha=0.0)

    def test_power_pathology_figure1(self):
        """The paper's Figure 1: at a fixed 1% relative effect, the power
        grows towards 1 with mu."""
        powers = [
            poisson_power_relative_effect(mu, 1.01, alpha=0.05)
            for mu in (100, 10_000, 100_000, 1_000_000)
        ]
        assert powers == sorted(powers)
        assert powers[-1] > 0.99
        assert powers[0] < 0.2

    def test_null_tail_vanishes(self):
        assert probability_exceeds_relative(1_000_000, 1.01) < 1e-10


class TestEffectSize:
    def test_cohens_d_is_relative_deviation(self):
        assert cohens_d_cc(130, 100.0) == pytest.approx(0.3)

    def test_zero_expected(self):
        assert cohens_d_cc(5, 0.0) == float("inf")
        assert cohens_d_cc(0, 0.0) == 0.0

    def test_negative_deviation_negative_d(self):
        assert cohens_d_cc(50, 100.0) < 0

    def test_paper_threshold_semantics(self):
        # A 1% deviation on huge data: significant but tiny effect.
        observed, expected = 1_010_000, 1_000_000.0
        assert poisson_deviation_significant(observed, expected, alpha=0.01)
        assert cohens_d_cc(observed, expected) < 0.35


class TestChiSquared:
    def test_uniform_counts_high_pvalue(self):
        assert chi_squared_uniformity_pvalue(np.array([100, 101, 99, 100])) > 0.9

    def test_spiked_counts_low_pvalue(self):
        assert chi_squared_uniformity_pvalue(np.array([400, 10, 10, 10])) < 1e-10

    def test_single_bin_trivially_uniform(self):
        assert chi_squared_uniformity_pvalue(np.array([42])) == 1.0

    def test_empty_histogram_trivially_uniform(self):
        assert chi_squared_uniformity_pvalue(np.array([0, 0, 0])) == 1.0

    def test_negative_counts_rejected(self):
        with pytest.raises(ValueError):
            chi_squared_uniformity_pvalue(np.array([1, -1]))

    def test_2d_rejected(self):
        with pytest.raises(ValueError):
            chi_squared_uniformity_pvalue(np.ones((2, 2)))

    def test_is_uniform_wrapper(self):
        assert is_uniform(np.array([10, 10, 10]))
        assert not is_uniform(np.array([1000, 1, 1]))


class TestMahalanobis:
    def test_identity_covariance_is_euclidean(self, rng):
        points = rng.normal(size=(20, 3))
        mean = np.zeros(3)
        d2 = mahalanobis_squared(points, mean, np.eye(3))
        assert d2 == pytest.approx((points**2).sum(axis=1))

    def test_scales_with_variance(self):
        point = np.array([[2.0, 0.0]])
        d2_wide = mahalanobis_squared(point, np.zeros(2), np.diag([4.0, 1.0]))
        d2_narrow = mahalanobis_squared(point, np.zeros(2), np.diag([1.0, 1.0]))
        assert d2_wide[0] == pytest.approx(1.0)
        assert d2_narrow[0] == pytest.approx(4.0)

    def test_singular_covariance_regularised(self):
        cov = np.zeros((2, 2))
        d2 = mahalanobis_squared(np.array([[1.0, 1.0]]), np.zeros(2), cov)
        assert np.isfinite(d2).all()

    def test_critical_value_matches_scipy(self):
        assert chi2_critical_value(5, 0.001) == pytest.approx(
            float(sps.chi2.isf(0.001, 5))
        )

    def test_critical_value_validates_dof(self):
        with pytest.raises(ValueError):
            chi2_critical_value(0)

    def test_outlier_fraction_roughly_alpha(self, rng):
        """Sanity: with true moments, ~alpha of Gaussian points exceed
        the chi-squared critical value."""
        points = rng.normal(size=(20_000, 4))
        d2 = mahalanobis_squared(points, np.zeros(4), np.eye(4))
        fraction = (d2 > chi2_critical_value(4, 0.01)).mean()
        assert 0.005 < fraction < 0.02
