"""Shared fixtures: small synthetic data sets reused across test modules."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import GeneratorConfig, SyntheticDataset, generate_synthetic


@pytest.fixture(scope="session")
def tiny_dataset() -> SyntheticDataset:
    """600 points, 8 dims, 2 clusters, 10% noise — fast unit-level data."""
    return generate_synthetic(
        GeneratorConfig(
            n=600,
            d=8,
            num_clusters=2,
            noise_fraction=0.10,
            max_cluster_dims=4,
            seed=5,
        )
    )


@pytest.fixture(scope="session")
def small_dataset() -> SyntheticDataset:
    """1500 points, 12 dims, 3 clusters — pipeline-level data."""
    return generate_synthetic(
        GeneratorConfig(
            n=1_500,
            d=12,
            num_clusters=3,
            noise_fraction=0.10,
            max_cluster_dims=6,
            seed=9,
        )
    )


@pytest.fixture(scope="session")
def rng() -> np.random.Generator:
    return np.random.default_rng(1234)
