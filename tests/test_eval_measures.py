"""Tests for the subspace quality measures (E4SC, F1, RNIA, CE)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.types import ProjectedCluster
from repro.eval import ce_score, e4sc_score, f1_score, rnia_score
from repro.eval.matching import (
    micro_object_count,
    micro_object_intersection,
    pairwise_intersections,
    total_coverage,
    union_coverage,
)


def _cluster(members, attrs) -> ProjectedCluster:
    return ProjectedCluster(
        members=np.asarray(members, dtype=np.int64),
        relevant_attributes=frozenset(attrs),
    )


TRUTH = [
    _cluster(range(0, 50), {0, 1}),
    _cluster(range(50, 100), {2, 3}),
]

ALL_SCORES = [e4sc_score, f1_score, rnia_score, ce_score]


class TestMicroObjects:
    def test_count(self):
        assert micro_object_count(_cluster([1, 2, 3], {0, 1})) == 6

    def test_intersection_factorises(self):
        a = _cluster([1, 2, 3], {0, 1})
        b = _cluster([2, 3, 4], {1, 2})
        assert micro_object_intersection(a, b) == 2 * 1

    def test_no_shared_attributes(self):
        a = _cluster([1, 2], {0})
        b = _cluster([1, 2], {1})
        assert micro_object_intersection(a, b) == 0

    def test_pairwise_matrix(self):
        matrix = pairwise_intersections(TRUTH, TRUTH)
        assert matrix[0, 0] == 100
        assert matrix[0, 1] == 0

    def test_total_coverage_disjoint(self):
        assert total_coverage(TRUTH) == 200

    def test_total_coverage_overlapping(self):
        overlapping = [
            _cluster([0, 1], {0}),
            _cluster([1, 2], {0}),
        ]
        assert total_coverage(overlapping) == 3

    def test_union_coverage_identical(self):
        assert union_coverage(TRUTH, TRUTH) == 200


class TestPerfectScores:
    @pytest.mark.parametrize("score", ALL_SCORES)
    def test_identical_clustering_scores_one(self, score):
        assert score(TRUTH, TRUTH) == pytest.approx(1.0)

    @pytest.mark.parametrize("score", ALL_SCORES)
    def test_empty_found_scores_zero(self, score):
        assert score([], TRUTH) == 0.0

    @pytest.mark.parametrize("score", ALL_SCORES)
    def test_empty_truth_rejected(self, score):
        with pytest.raises(ValueError):
            score(TRUTH, [])

    @pytest.mark.parametrize("score", ALL_SCORES)
    def test_scores_in_unit_interval(self, score):
        found = [
            _cluster(range(0, 30), {0, 1, 5}),
            _cluster(range(60, 100), {2}),
            _cluster(range(30, 40), {7}),
        ]
        assert 0.0 <= score(found, TRUTH) <= 1.0


class TestE4SCSensitivity:
    def test_wrong_subspace_punished(self):
        right = [_cluster(range(0, 50), {0, 1}), _cluster(range(50, 100), {2, 3})]
        wrong = [_cluster(range(0, 50), {6, 7}), _cluster(range(50, 100), {8, 9})]
        assert e4sc_score(wrong, TRUTH) == 0.0
        assert e4sc_score(right, TRUTH) == 1.0

    def test_f1_blind_to_subspace(self):
        """The paper's criticism of F1: full-space measure, cannot punish
        wrong subspaces."""
        wrong_subspace = [
            _cluster(range(0, 50), {6, 7}),
            _cluster(range(50, 100), {8, 9}),
        ]
        assert f1_score(wrong_subspace, TRUTH) == pytest.approx(1.0)
        assert e4sc_score(wrong_subspace, TRUTH) < 0.5

    def test_merge_punished(self):
        merged = [_cluster(range(0, 100), {0, 1, 2, 3})]
        assert e4sc_score(merged, TRUTH) < 0.8

    def test_split_punished(self):
        split = [
            _cluster(range(0, 25), {0, 1}),
            _cluster(range(25, 50), {0, 1}),
            _cluster(range(50, 100), {2, 3}),
        ]
        assert e4sc_score(split, TRUTH) < 1.0

    def test_phantom_cluster_punished(self):
        with_phantom = TRUTH + [_cluster(range(100, 120), {5})]
        assert e4sc_score(with_phantom, TRUTH) < 1.0

    def test_partial_overlap_in_between(self):
        partial = [
            _cluster(range(0, 40), {0, 1}),
            _cluster(range(50, 90), {2, 3}),
        ]
        assert 0.5 < e4sc_score(partial, TRUTH) < 1.0


class TestCEvsRNIA:
    def test_ce_punishes_splits_harder(self):
        split = [
            _cluster(range(0, 25), {0, 1}),
            _cluster(range(25, 50), {0, 1}),
            _cluster(range(50, 100), {2, 3}),
        ]
        assert ce_score(split, TRUTH) < rnia_score(split, TRUTH)

    def test_rnia_equals_ce_for_one_to_one(self):
        found = [
            _cluster(range(0, 45), {0, 1}),
            _cluster(range(50, 95), {2, 3}),
        ]
        assert rnia_score(found, TRUTH) == pytest.approx(
            ce_score(found, TRUTH)
        )


class TestScoreProperties:
    @settings(max_examples=20, deadline=None)
    @given(st.integers(0, 10_000))
    def test_random_clusterings_bounded(self, seed):
        rng = np.random.default_rng(seed)
        found = []
        for _ in range(int(rng.integers(1, 4))):
            size = int(rng.integers(1, 40))
            members = rng.choice(100, size=size, replace=False)
            attrs = set(
                int(a) for a in rng.choice(10, size=rng.integers(1, 4), replace=False)
            )
            found.append(_cluster(members, attrs))
        for score in ALL_SCORES:
            value = score(found, TRUTH)
            assert 0.0 <= value <= 1.0

    def test_better_overlap_scores_higher(self):
        close = [_cluster(range(0, 48), {0, 1}), _cluster(range(50, 98), {2, 3})]
        far = [_cluster(range(0, 10), {0, 1}), _cluster(range(50, 60), {2, 3})]
        for score in ALL_SCORES:
            assert score(close, TRUTH) > score(far, TRUTH)


class TestVectorizedIntersections:
    """The disjoint fast path must be bit-identical to the per-pair oracle."""

    @staticmethod
    def _oracle(found, hidden):
        matrix = np.zeros((len(found), len(hidden)), dtype=np.int64)
        for i, c in enumerate(found):
            for j, h in enumerate(hidden):
                matrix[i, j] = micro_object_intersection(c, h)
        return matrix

    @staticmethod
    def _disjoint_clustering(rng, universe, max_clusters=5, num_attrs=8):
        permuted = rng.permutation(universe)
        cuts = np.sort(
            rng.choice(
                len(permuted), size=int(rng.integers(1, max_clusters)), replace=False
            )
        )
        clusters = []
        for part in np.split(permuted, cuts):
            if len(part) == 0:
                continue
            attrs = rng.choice(
                num_attrs, size=int(rng.integers(1, 4)), replace=False
            )
            clusters.append(_cluster(part, {int(a) for a in attrs}))
        return clusters

    @settings(max_examples=25, deadline=None)
    @given(st.integers(0, 10_000))
    def test_fast_path_matches_oracle(self, seed):
        rng = np.random.default_rng(seed)
        universe = rng.choice(200, size=int(rng.integers(10, 120)), replace=False)
        found = self._disjoint_clustering(rng, universe)
        hidden = self._disjoint_clustering(rng, universe)
        assert np.array_equal(
            pairwise_intersections(found, hidden), self._oracle(found, hidden)
        )

    def test_overlapping_clusterings_use_exact_fallback(self):
        found = [_cluster([0, 1, 2], {0}), _cluster([2, 3], {0})]  # overlap on 2
        hidden = [_cluster([1, 2, 3], {0})]
        assert np.array_equal(
            pairwise_intersections(found, hidden), self._oracle(found, hidden)
        )


class TestE4SCSampling:
    """The seeded max_points cap must track the exact score."""

    def test_no_op_when_universe_fits(self):
        found = [_cluster(range(0, 45), {0, 1}), _cluster(range(50, 95), {2, 3})]
        exact = e4sc_score(found, TRUTH)
        assert e4sc_score(found, TRUTH, max_points=1_000) == exact

    def test_sampled_score_near_exact(self):
        rng = np.random.default_rng(3)
        hidden = [
            _cluster(range(0, 2_000), {0, 1, 2}),
            _cluster(range(2_000, 4_000), {3, 4}),
        ]
        # Found: the truth with 5% of members scrambled across clusters.
        labels = np.repeat([0, 1], 2_000)
        flip = rng.choice(4_000, size=200, replace=False)
        labels[flip] = 1 - labels[flip]
        found = [
            _cluster(np.where(labels == 0)[0], {0, 1, 2}),
            _cluster(np.where(labels == 1)[0], {3, 4}),
        ]
        exact = e4sc_score(found, hidden)
        sampled = e4sc_score(found, hidden, max_points=800, seed=0)
        assert sampled == pytest.approx(exact, abs=0.03)

    def test_sampling_is_seed_deterministic(self):
        hidden = [_cluster(range(0, 3_000), {0, 1})]
        found = [_cluster(range(100, 2_900), {0, 1})]
        a = e4sc_score(found, hidden, max_points=500, seed=4)
        b = e4sc_score(found, hidden, max_points=500, seed=4)
        assert a == b

    def test_invalid_max_points_rejected(self):
        with pytest.raises(ValueError, match="max_points"):
            e4sc_score(TRUTH, TRUTH, max_points=0)
