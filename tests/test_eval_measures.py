"""Tests for the subspace quality measures (E4SC, F1, RNIA, CE)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.types import ProjectedCluster
from repro.eval import ce_score, e4sc_score, f1_score, rnia_score
from repro.eval.matching import (
    micro_object_count,
    micro_object_intersection,
    pairwise_intersections,
    total_coverage,
    union_coverage,
)


def _cluster(members, attrs) -> ProjectedCluster:
    return ProjectedCluster(
        members=np.asarray(members, dtype=np.int64),
        relevant_attributes=frozenset(attrs),
    )


TRUTH = [
    _cluster(range(0, 50), {0, 1}),
    _cluster(range(50, 100), {2, 3}),
]

ALL_SCORES = [e4sc_score, f1_score, rnia_score, ce_score]


class TestMicroObjects:
    def test_count(self):
        assert micro_object_count(_cluster([1, 2, 3], {0, 1})) == 6

    def test_intersection_factorises(self):
        a = _cluster([1, 2, 3], {0, 1})
        b = _cluster([2, 3, 4], {1, 2})
        assert micro_object_intersection(a, b) == 2 * 1

    def test_no_shared_attributes(self):
        a = _cluster([1, 2], {0})
        b = _cluster([1, 2], {1})
        assert micro_object_intersection(a, b) == 0

    def test_pairwise_matrix(self):
        matrix = pairwise_intersections(TRUTH, TRUTH)
        assert matrix[0, 0] == 100
        assert matrix[0, 1] == 0

    def test_total_coverage_disjoint(self):
        assert total_coverage(TRUTH) == 200

    def test_total_coverage_overlapping(self):
        overlapping = [
            _cluster([0, 1], {0}),
            _cluster([1, 2], {0}),
        ]
        assert total_coverage(overlapping) == 3

    def test_union_coverage_identical(self):
        assert union_coverage(TRUTH, TRUTH) == 200


class TestPerfectScores:
    @pytest.mark.parametrize("score", ALL_SCORES)
    def test_identical_clustering_scores_one(self, score):
        assert score(TRUTH, TRUTH) == pytest.approx(1.0)

    @pytest.mark.parametrize("score", ALL_SCORES)
    def test_empty_found_scores_zero(self, score):
        assert score([], TRUTH) == 0.0

    @pytest.mark.parametrize("score", ALL_SCORES)
    def test_empty_truth_rejected(self, score):
        with pytest.raises(ValueError):
            score(TRUTH, [])

    @pytest.mark.parametrize("score", ALL_SCORES)
    def test_scores_in_unit_interval(self, score):
        found = [
            _cluster(range(0, 30), {0, 1, 5}),
            _cluster(range(60, 100), {2}),
            _cluster(range(30, 40), {7}),
        ]
        assert 0.0 <= score(found, TRUTH) <= 1.0


class TestE4SCSensitivity:
    def test_wrong_subspace_punished(self):
        right = [_cluster(range(0, 50), {0, 1}), _cluster(range(50, 100), {2, 3})]
        wrong = [_cluster(range(0, 50), {6, 7}), _cluster(range(50, 100), {8, 9})]
        assert e4sc_score(wrong, TRUTH) == 0.0
        assert e4sc_score(right, TRUTH) == 1.0

    def test_f1_blind_to_subspace(self):
        """The paper's criticism of F1: full-space measure, cannot punish
        wrong subspaces."""
        wrong_subspace = [
            _cluster(range(0, 50), {6, 7}),
            _cluster(range(50, 100), {8, 9}),
        ]
        assert f1_score(wrong_subspace, TRUTH) == pytest.approx(1.0)
        assert e4sc_score(wrong_subspace, TRUTH) < 0.5

    def test_merge_punished(self):
        merged = [_cluster(range(0, 100), {0, 1, 2, 3})]
        assert e4sc_score(merged, TRUTH) < 0.8

    def test_split_punished(self):
        split = [
            _cluster(range(0, 25), {0, 1}),
            _cluster(range(25, 50), {0, 1}),
            _cluster(range(50, 100), {2, 3}),
        ]
        assert e4sc_score(split, TRUTH) < 1.0

    def test_phantom_cluster_punished(self):
        with_phantom = TRUTH + [_cluster(range(100, 120), {5})]
        assert e4sc_score(with_phantom, TRUTH) < 1.0

    def test_partial_overlap_in_between(self):
        partial = [
            _cluster(range(0, 40), {0, 1}),
            _cluster(range(50, 90), {2, 3}),
        ]
        assert 0.5 < e4sc_score(partial, TRUTH) < 1.0


class TestCEvsRNIA:
    def test_ce_punishes_splits_harder(self):
        split = [
            _cluster(range(0, 25), {0, 1}),
            _cluster(range(25, 50), {0, 1}),
            _cluster(range(50, 100), {2, 3}),
        ]
        assert ce_score(split, TRUTH) < rnia_score(split, TRUTH)

    def test_rnia_equals_ce_for_one_to_one(self):
        found = [
            _cluster(range(0, 45), {0, 1}),
            _cluster(range(50, 95), {2, 3}),
        ]
        assert rnia_score(found, TRUTH) == pytest.approx(
            ce_score(found, TRUTH)
        )


class TestScoreProperties:
    @settings(max_examples=20, deadline=None)
    @given(st.integers(0, 10_000))
    def test_random_clusterings_bounded(self, seed):
        rng = np.random.default_rng(seed)
        found = []
        for _ in range(int(rng.integers(1, 4))):
            size = int(rng.integers(1, 40))
            members = rng.choice(100, size=size, replace=False)
            attrs = set(
                int(a) for a in rng.choice(10, size=rng.integers(1, 4), replace=False)
            )
            found.append(_cluster(members, attrs))
        for score in ALL_SCORES:
            value = score(found, TRUTH)
            assert 0.0 <= value <= 1.0

    def test_better_overlap_scores_higher(self):
        close = [_cluster(range(0, 48), {0, 1}), _cluster(range(50, 98), {2, 3})]
        far = [_cluster(range(0, 10), {0, 1}), _cluster(range(50, 60), {2, 3})]
        for score in ALL_SCORES:
            assert score(close, TRUTH) > score(far, TRUTH)
