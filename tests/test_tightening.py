"""Unit tests for interval tightening (Section 5.7)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.tightening import tighten_intervals


class TestTightening:
    def test_minmax_bounds(self, rng):
        data = rng.uniform(size=(100, 3))
        mask = np.ones(100, dtype=bool)
        signature = tighten_intervals(data, mask, frozenset({0, 2}))
        for interval in signature:
            column = data[:, interval.attribute]
            assert interval.lower == pytest.approx(column.min())
            assert interval.upper == pytest.approx(column.max())

    def test_only_members_considered(self, rng):
        data = rng.uniform(size=(100, 2))
        data[0] = [0.0, 0.0]  # extreme point excluded from the cluster
        mask = np.ones(100, dtype=bool)
        mask[0] = False
        signature = tighten_intervals(data, mask, frozenset({0}))
        assert signature.interval_on(0).lower > 0.0

    def test_attributes_sorted(self, rng):
        data = rng.uniform(size=(10, 5))
        mask = np.ones(10, dtype=bool)
        signature = tighten_intervals(data, mask, frozenset({4, 1, 3}))
        assert [iv.attribute for iv in signature] == [1, 3, 4]

    def test_empty_attributes_rejected(self, rng):
        data = rng.uniform(size=(10, 2))
        with pytest.raises(ValueError):
            tighten_intervals(data, np.ones(10, dtype=bool), frozenset())

    def test_empty_cluster_rejected(self, rng):
        data = rng.uniform(size=(10, 2))
        with pytest.raises(ValueError):
            tighten_intervals(data, np.zeros(10, dtype=bool), frozenset({0}))

    def test_single_member_degenerate_interval(self):
        data = np.array([[0.25, 0.5], [0.9, 0.9]])
        mask = np.array([True, False])
        signature = tighten_intervals(data, mask, frozenset({0, 1}))
        assert signature.interval_on(0).width == 0.0
        assert signature.interval_on(0).lower == 0.25
