"""Failure-injection tests for the runtime's task re-execution, in both
the map and reduce phases, across executor backends."""

from __future__ import annotations

import os
from typing import Any

import pytest

from repro.mapreduce import (
    Context,
    Job,
    JobConf,
    Mapper,
    MapReduceRuntime,
    Reducer,
    TaskFailedError,
)
from repro.mapreduce.runtime import TASK_RETRIES
from repro.mapreduce.types import split_records

# Module-level attempt ledger: mapper instances are re-created per
# attempt, so flaky behaviour must live outside the task object —
# exactly the kind of external transient failure retries exist for.
_ATTEMPTS: dict[tuple[str, int], int] = {}


def _reset() -> None:
    _ATTEMPTS.clear()


class FlakyMapper(Mapper):
    """Fails the first N attempts of each map task."""

    fail_first = 1

    def setup(self, context: Context) -> None:
        key = ("map", context.task_id)
        _ATTEMPTS[key] = _ATTEMPTS.get(key, 0) + 1
        if _ATTEMPTS[key] <= self.fail_first:
            raise IOError(f"transient failure on split {context.task_id}")

    def map(self, key: Any, value: Any, context: Context) -> None:
        context.emit("count", 1)


class AlwaysFailingMapper(Mapper):
    def map(self, key: Any, value: Any, context: Context) -> None:
        raise RuntimeError("permanent failure")


class FlakyReducer(Reducer):
    def setup(self, context: Context) -> None:
        key = ("reduce", context.task_id)
        _ATTEMPTS[key] = _ATTEMPTS.get(key, 0) + 1
        if _ATTEMPTS[key] <= 1:
            raise IOError("transient reducer failure")

    def reduce(self, key: Any, values: list[Any], context: Context) -> None:
        context.emit(key, sum(values))


class SumReducer(Reducer):
    def reduce(self, key: Any, values: list[Any], context: Context) -> None:
        context.emit(key, sum(values))


def _splits(n: int = 12, k: int = 3):
    return split_records([(i, i) for i in range(n)], k)


class TestMapRetries:
    def test_transient_failure_recovered(self):
        _reset()
        runtime = MapReduceRuntime()
        job = Job(mapper_factory=FlakyMapper, reducer_factory=SumReducer)
        result = runtime.run(job, _splits(), JobConf(max_task_attempts=3))
        assert result.as_dict() == {"count": 12}

    def test_retries_counted(self):
        _reset()
        runtime = MapReduceRuntime()
        job = Job(mapper_factory=FlakyMapper, reducer_factory=SumReducer)
        result = runtime.run(job, _splits(k=3), JobConf(max_task_attempts=3))
        assert result.counters.framework_value(TASK_RETRIES) == 3  # one/split

    def test_permanent_failure_raises(self):
        runtime = MapReduceRuntime()
        job = Job(mapper_factory=AlwaysFailingMapper)
        with pytest.raises(TaskFailedError) as info:
            runtime.run(job, _splits(), JobConf(max_task_attempts=2, num_reducers=0))
        assert info.value.phase == "map"
        assert info.value.attempts == 2
        assert isinstance(info.value.cause, RuntimeError)

    def test_fail_fast_with_single_attempt(self):
        _reset()
        runtime = MapReduceRuntime()
        job = Job(mapper_factory=FlakyMapper, reducer_factory=SumReducer)
        with pytest.raises(TaskFailedError):
            runtime.run(job, _splits(), JobConf(max_task_attempts=1))

    def test_no_duplicate_output_after_retry(self):
        """Re-executed tasks must not double-count records."""
        _reset()
        runtime = MapReduceRuntime()
        job = Job(mapper_factory=FlakyMapper, reducer_factory=SumReducer)
        result = runtime.run(job, _splits(n=20, k=4), JobConf(max_task_attempts=4))
        assert result.as_dict() == {"count": 20}


class TestReduceRetries:
    def test_transient_reducer_recovered(self):
        _reset()
        runtime = MapReduceRuntime()

        class CountMapper(Mapper):
            def map(self, key: Any, value: Any, context: Context) -> None:
                context.emit("total", value)

        job = Job(mapper_factory=CountMapper, reducer_factory=FlakyReducer)
        result = runtime.run(job, _splits(n=5, k=1), JobConf(max_task_attempts=2))
        assert result.as_dict() == {"total": sum(range(5))}

    def test_conf_validates_attempts(self):
        with pytest.raises(ValueError):
            JobConf(max_task_attempts=0)


class CountMapper(Mapper):
    def map(self, key: Any, value: Any, context: Context) -> None:
        context.emit(key % 4, 1)


class AlwaysFailingReducer(Reducer):
    def reduce(self, key: Any, values: list[Any], context: Context) -> None:
        raise RuntimeError("permanent reducer failure")


class ChildProcessFailingMapper(Mapper):
    """Fails in pool worker processes, succeeds in the parent.

    Exercises the pool-first-attempt / in-process-retry path: the first
    attempt runs on the process pool (different pid) and fails; the
    retry re-runs in the parent and succeeds.
    """

    parent_pid = os.getpid()

    def setup(self, context: Context) -> None:
        if os.getpid() != self.parent_pid:
            raise IOError("worker lost")

    def map(self, key: Any, value: Any, context: Context) -> None:
        context.emit("count", 1)


class TestRetriesAcrossExecutors:
    @pytest.mark.parametrize("executor", ["serial", "thread"])
    def test_map_faults_recovered(self, executor):
        _reset()
        runtime = MapReduceRuntime(executor=executor, max_workers=2)
        job = Job(mapper_factory=FlakyMapper, reducer_factory=SumReducer)
        result = runtime.run(job, _splits(), JobConf(max_task_attempts=3))
        assert result.as_dict() == {"count": 12}
        assert result.counters.framework_value(TASK_RETRIES) == 3

    @pytest.mark.parametrize("executor", ["serial", "thread"])
    def test_reduce_faults_recovered_in_parallel_phase(self, executor):
        _reset()
        runtime = MapReduceRuntime(executor=executor, max_workers=2)
        job = Job(mapper_factory=CountMapper, reducer_factory=FlakyReducer)
        result = runtime.run(
            job,
            _splits(n=16, k=4),
            JobConf(num_reducers=4, max_task_attempts=2),
        )
        assert sum(result.as_dict().values()) == 16
        # Every non-empty reduce partition failed once and was retried.
        retried = {
            tid for phase, tid in _ATTEMPTS if phase == "reduce"
        }
        assert result.counters.framework_value(TASK_RETRIES) >= len(retried)

    def test_process_pool_first_attempt_retried_in_process(self):
        runtime = MapReduceRuntime(executor="process", max_workers=2)
        job = Job(
            mapper_factory=ChildProcessFailingMapper,
            reducer_factory=SumReducer,
        )
        result = runtime.run(job, _splits(), JobConf(max_task_attempts=2))
        assert result.as_dict() == {"count": 12}
        assert result.counters.framework_value(TASK_RETRIES) == 3

    def test_backoff_path_still_recovers(self):
        _reset()
        runtime = MapReduceRuntime()
        job = Job(mapper_factory=FlakyMapper, reducer_factory=SumReducer)
        result = runtime.run(
            job,
            _splits(),
            JobConf(max_task_attempts=3, retry_backoff_s=0.001),
        )
        assert result.as_dict() == {"count": 12}

    def test_negative_backoff_rejected(self):
        with pytest.raises(ValueError):
            JobConf(retry_backoff_s=-0.1)


class TestExhaustedTaskAccounting:
    def test_retries_recorded_for_exhausted_map_task(self):
        runtime = MapReduceRuntime()
        job = Job(mapper_factory=AlwaysFailingMapper)
        with pytest.raises(TaskFailedError) as info:
            runtime.run(
                job, _splits(), JobConf(max_task_attempts=3, num_reducers=0)
            )
        # The failed-then-exhausted task's re-executions are counted
        # even though the job produced no result.
        assert info.value.counters is not None
        assert info.value.counters.framework_value(TASK_RETRIES) == 2

    def test_retries_recorded_for_exhausted_reduce_task(self):
        runtime = MapReduceRuntime()
        job = Job(
            mapper_factory=CountMapper, reducer_factory=AlwaysFailingReducer
        )
        with pytest.raises(TaskFailedError) as info:
            runtime.run(job, _splits(), JobConf(max_task_attempts=2))
        assert info.value.phase == "reduce"
        assert info.value.counters.framework_value(TASK_RETRIES) == 1

    def test_failed_job_leaves_event_trail(self):
        from repro.mapreduce import EventKind

        runtime = MapReduceRuntime()
        job = Job(mapper_factory=AlwaysFailingMapper)
        with pytest.raises(TaskFailedError):
            runtime.run(
                job,
                _splits(n=4, k=1),
                JobConf(name="doomed", max_task_attempts=3, num_reducers=0),
            )
        kinds = [e.kind for e in runtime.events.select(job="doomed")]
        assert kinds.count(EventKind.TASK_START) == 3  # every attempt
        assert kinds.count(EventKind.TASK_RETRY) == 2
        assert kinds.count(EventKind.TASK_FAILED) == 1


class TestRetryEvents:
    def test_every_attempt_emits_events(self):
        from repro.mapreduce import EventKind

        _reset()
        runtime = MapReduceRuntime()
        job = Job(mapper_factory=FlakyMapper, reducer_factory=SumReducer)
        runtime.run(
            job, _splits(), JobConf(name="flaky", max_task_attempts=3)
        )
        events = runtime.events.select(job="flaky", phase="map")
        starts = [e for e in events if e.kind == EventKind.TASK_START]
        retries = [e for e in events if e.kind == EventKind.TASK_RETRY]
        # 3 splits, each failing once: 6 attempts, 3 retry events.
        assert len(starts) == 6
        assert len(retries) == 3
        assert all(e.error is not None for e in retries)
        assert {e.attempt for e in starts} == {1, 2}


class TestDeterminismUnderRetry:
    def test_output_independent_of_which_attempt_succeeded(self):
        _reset()
        runtime = MapReduceRuntime()
        flaky_job = Job(mapper_factory=FlakyMapper, reducer_factory=SumReducer)
        flaky = runtime.run(flaky_job, _splits(), JobConf(max_task_attempts=3))

        class CleanMapper(Mapper):
            def map(self, key: Any, value: Any, context: Context) -> None:
                context.emit("count", 1)

        clean_job = Job(mapper_factory=CleanMapper, reducer_factory=SumReducer)
        clean = runtime.run(clean_job, _splits(), JobConf())
        assert flaky.as_dict() == clean.as_dict()
