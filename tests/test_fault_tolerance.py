"""Failure-injection tests for the runtime's task re-execution."""

from __future__ import annotations

import itertools
from typing import Any

import pytest

from repro.mapreduce import (
    Context,
    Job,
    JobConf,
    Mapper,
    MapReduceRuntime,
    Reducer,
    TaskFailedError,
)
from repro.mapreduce.runtime import TASK_RETRIES
from repro.mapreduce.types import split_records

# Module-level attempt ledger: mapper instances are re-created per
# attempt, so flaky behaviour must live outside the task object —
# exactly the kind of external transient failure retries exist for.
_ATTEMPTS: dict[tuple[str, int], int] = {}


def _reset() -> None:
    _ATTEMPTS.clear()


class FlakyMapper(Mapper):
    """Fails the first N attempts of each map task."""

    fail_first = 1

    def setup(self, context: Context) -> None:
        key = ("map", context.task_id)
        _ATTEMPTS[key] = _ATTEMPTS.get(key, 0) + 1
        if _ATTEMPTS[key] <= self.fail_first:
            raise IOError(f"transient failure on split {context.task_id}")

    def map(self, key: Any, value: Any, context: Context) -> None:
        context.emit("count", 1)


class AlwaysFailingMapper(Mapper):
    def map(self, key: Any, value: Any, context: Context) -> None:
        raise RuntimeError("permanent failure")


class FlakyReducer(Reducer):
    def setup(self, context: Context) -> None:
        key = ("reduce", context.task_id)
        _ATTEMPTS[key] = _ATTEMPTS.get(key, 0) + 1
        if _ATTEMPTS[key] <= 1:
            raise IOError("transient reducer failure")

    def reduce(self, key: Any, values: list[Any], context: Context) -> None:
        context.emit(key, sum(values))


class SumReducer(Reducer):
    def reduce(self, key: Any, values: list[Any], context: Context) -> None:
        context.emit(key, sum(values))


def _splits(n: int = 12, k: int = 3):
    return split_records([(i, i) for i in range(n)], k)


class TestMapRetries:
    def test_transient_failure_recovered(self):
        _reset()
        runtime = MapReduceRuntime()
        job = Job(mapper_factory=FlakyMapper, reducer_factory=SumReducer)
        result = runtime.run(job, _splits(), JobConf(max_task_attempts=3))
        assert result.as_dict() == {"count": 12}

    def test_retries_counted(self):
        _reset()
        runtime = MapReduceRuntime()
        job = Job(mapper_factory=FlakyMapper, reducer_factory=SumReducer)
        result = runtime.run(job, _splits(k=3), JobConf(max_task_attempts=3))
        assert result.counters.framework_value(TASK_RETRIES) == 3  # one/split

    def test_permanent_failure_raises(self):
        runtime = MapReduceRuntime()
        job = Job(mapper_factory=AlwaysFailingMapper)
        with pytest.raises(TaskFailedError) as info:
            runtime.run(job, _splits(), JobConf(max_task_attempts=2, num_reducers=0))
        assert info.value.phase == "map"
        assert info.value.attempts == 2
        assert isinstance(info.value.cause, RuntimeError)

    def test_fail_fast_with_single_attempt(self):
        _reset()
        runtime = MapReduceRuntime()
        job = Job(mapper_factory=FlakyMapper, reducer_factory=SumReducer)
        with pytest.raises(TaskFailedError):
            runtime.run(job, _splits(), JobConf(max_task_attempts=1))

    def test_no_duplicate_output_after_retry(self):
        """Re-executed tasks must not double-count records."""
        _reset()
        runtime = MapReduceRuntime()
        job = Job(mapper_factory=FlakyMapper, reducer_factory=SumReducer)
        result = runtime.run(job, _splits(n=20, k=4), JobConf(max_task_attempts=4))
        assert result.as_dict() == {"count": 20}


class TestReduceRetries:
    def test_transient_reducer_recovered(self):
        _reset()
        runtime = MapReduceRuntime()

        class CountMapper(Mapper):
            def map(self, key: Any, value: Any, context: Context) -> None:
                context.emit("total", value)

        job = Job(mapper_factory=CountMapper, reducer_factory=FlakyReducer)
        result = runtime.run(job, _splits(n=5, k=1), JobConf(max_task_attempts=2))
        assert result.as_dict() == {"total": sum(range(5))}

    def test_conf_validates_attempts(self):
        with pytest.raises(ValueError):
            JobConf(max_task_attempts=0)


class TestDeterminismUnderRetry:
    def test_output_independent_of_which_attempt_succeeded(self):
        _reset()
        runtime = MapReduceRuntime()
        flaky_job = Job(mapper_factory=FlakyMapper, reducer_factory=SumReducer)
        flaky = runtime.run(flaky_job, _splits(), JobConf(max_task_attempts=3))

        class CleanMapper(Mapper):
            def map(self, key: Any, value: Any, context: Context) -> None:
                context.emit("count", 1)

        clean_job = Job(mapper_factory=CleanMapper, reducer_factory=SumReducer)
        clean = runtime.run(clean_job, _splits(), JobConf())
        assert flaky.as_dict() == clean.as_dict()
