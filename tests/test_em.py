"""Unit tests for the Gaussian-mixture EM (Section 5.4 semantics)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.em import (
    GaussianMixture,
    fit_em,
    initialize_from_cores,
    relevant_attributes,
)
from repro.core.types import ClusterCore, Interval, Signature


def _core(attrs: list[int], lo: float, hi: float, support: int = 100) -> ClusterCore:
    sig = Signature([Interval(a, lo, hi) for a in attrs])
    return ClusterCore(signature=sig, support=support, expected_support=1.0)


def _two_blob_data(rng, n=400):
    data = rng.uniform(size=(n, 4))
    data[: n // 2, 0] = rng.normal(0.2, 0.03, n // 2).clip(0, 1)
    data[: n // 2, 1] = rng.normal(0.2, 0.03, n // 2).clip(0, 1)
    data[n // 2 :, 0] = rng.normal(0.8, 0.03, n // 2).clip(0, 1)
    data[n // 2 :, 1] = rng.normal(0.8, 0.03, n // 2).clip(0, 1)
    return data


class TestRelevantAttributes:
    def test_union_of_core_attributes(self):
        cores = [_core([0, 2], 0.1, 0.3), _core([1, 2], 0.5, 0.7)]
        assert relevant_attributes(cores) == (0, 1, 2)


class TestMixture:
    def test_shape_validation(self):
        with pytest.raises(ValueError):
            GaussianMixture(
                means=np.zeros((2, 3)),
                covariances=np.zeros((2, 2, 2)),
                weights=np.ones(2) / 2,
                attributes=(0, 1, 2),
            )

    def test_responsibilities_normalised(self, rng):
        mixture = GaussianMixture(
            means=np.array([[0.2, 0.2], [0.8, 0.8]]),
            covariances=np.stack([np.eye(2) * 0.01] * 2),
            weights=np.array([0.5, 0.5]),
            attributes=(0, 1),
        )
        sub = rng.uniform(size=(50, 2))
        resp = np.exp(mixture.log_responsibilities(sub))
        assert resp.sum(axis=1) == pytest.approx(np.ones(50))

    def test_assign_picks_nearest_blob(self):
        mixture = GaussianMixture(
            means=np.array([[0.2, 0.2], [0.8, 0.8]]),
            covariances=np.stack([np.eye(2) * 0.01] * 2),
            weights=np.array([0.5, 0.5]),
            attributes=(0, 1),
        )
        labels = mixture.assign(np.array([[0.19, 0.22], [0.81, 0.77]]))
        assert labels.tolist() == [0, 1]

    def test_project_selects_attributes(self, rng):
        mixture = GaussianMixture(
            means=np.zeros((1, 2)),
            covariances=np.eye(2)[None],
            weights=np.ones(1),
            attributes=(1, 3),
        )
        data = rng.uniform(size=(5, 4))
        assert np.array_equal(mixture.project(data), data[:, [1, 3]])


class TestBatchShapes:
    """Regressions for assign/log_responsibilities batch normalisation.

    The serving scorer feeds the mixture empty batches and
    single-attribute subspaces; both used to trip ``atleast_2d``'s
    orientation guesses.
    """

    def _single_attr_mixture(self):
        # (k,) means and bare variances for a one-attribute A_rel must
        # orient to (k, 1) / (k, 1, 1), not (1, k).
        return GaussianMixture(
            means=np.array([0.2, 0.8]),
            covariances=np.array([0.01, 0.01]),
            weights=np.array([0.5, 0.5]),
            attributes=(3,),
        )

    def test_empty_batch_assign(self):
        mixture = GaussianMixture(
            means=np.array([[0.2, 0.2], [0.8, 0.8]]),
            covariances=np.stack([np.eye(2) * 0.01] * 2),
            weights=np.array([0.5, 0.5]),
            attributes=(0, 1),
        )
        labels = mixture.assign(np.empty((0, 2)))
        assert labels.shape == (0,)
        labels = mixture.assign(np.array([]))
        assert labels.shape == (0,)

    def test_single_attribute_orientation(self):
        mixture = self._single_attr_mixture()
        assert mixture.means.shape == (2, 1)
        assert mixture.covariances.shape == (2, 1, 1)
        labels = mixture.assign(np.array([[0.18], [0.83], [0.79]]))
        assert labels.tolist() == [0, 1, 1]

    def test_single_attribute_1d_batch(self):
        # A 1-D batch against a one-attribute mixture is n points, not
        # one n-dimensional point.
        mixture = self._single_attr_mixture()
        labels = mixture.assign(np.array([0.18, 0.83]))
        assert labels.tolist() == [0, 1]
        assert mixture.assign(np.array([])).shape == (0,)

    def test_single_component_row_orientation(self):
        # A bare (m,) mean for one component must orient to (1, m).
        mixture = GaussianMixture(
            means=np.array([0.4, 0.6]),
            covariances=np.eye(2) * 0.01,
            weights=np.ones(1),
            attributes=(0, 1),
        )
        assert mixture.means.shape == (1, 2)
        assert mixture.covariances.shape == (1, 2, 2)
        assert mixture.assign(np.array([0.41, 0.58])).tolist() == [0]

    def test_mismatched_batch_raises(self):
        mixture = self._single_attr_mixture()
        with pytest.raises(ValueError):
            mixture.assign(np.zeros((4, 3)))


class TestInitialization:
    def test_requires_cores(self):
        with pytest.raises(ValueError):
            initialize_from_cores(np.zeros((5, 2)), [])

    def test_means_near_support_sets(self, rng):
        data = _two_blob_data(rng)
        cores = [_core([0, 1], 0.1, 0.3), _core([0, 1], 0.7, 0.9)]
        mixture = initialize_from_cores(data, cores)
        assert mixture.means[0] == pytest.approx([0.2, 0.2], abs=0.05)
        assert mixture.means[1] == pytest.approx([0.8, 0.8], abs=0.05)

    def test_weights_normalised(self, rng):
        data = _two_blob_data(rng)
        cores = [_core([0, 1], 0.1, 0.3), _core([0, 1], 0.7, 0.9)]
        mixture = initialize_from_cores(data, cores)
        assert mixture.weights.sum() == pytest.approx(1.0)
        assert (mixture.weights > 0).all()

    def test_strays_are_assigned(self, rng):
        """Points in no support set still contribute to pass 2."""
        data = _two_blob_data(rng)
        tight_cores = [_core([0, 1], 0.15, 0.25), _core([0, 1], 0.75, 0.85)]
        mixture = initialize_from_cores(data, tight_cores)
        # Weights reflect the full data (including strays), roughly 50/50.
        assert mixture.weights[0] == pytest.approx(0.5, abs=0.15)


class TestFitEM:
    def test_log_likelihood_non_decreasing(self, rng):
        data = _two_blob_data(rng)
        cores = [_core([0, 1], 0.1, 0.3), _core([0, 1], 0.7, 0.9)]
        init = initialize_from_cores(data, cores)
        fitted = fit_em(data, init, max_iter=10)
        history = fitted.log_likelihood_history
        assert len(history) >= 2
        for earlier, later in zip(history, history[1:]):
            assert later >= earlier - 1e-6

    def test_recovers_blob_means(self, rng):
        data = _two_blob_data(rng)
        cores = [_core([0, 1], 0.1, 0.3), _core([0, 1], 0.7, 0.9)]
        fitted = fit_em(data, initialize_from_cores(data, cores), max_iter=15)
        means = sorted(fitted.means[:, 0].tolist())
        assert means[0] == pytest.approx(0.2, abs=0.05)
        assert means[1] == pytest.approx(0.8, abs=0.05)

    def test_convergence_stops_early(self, rng):
        data = _two_blob_data(rng)
        cores = [_core([0, 1], 0.1, 0.3), _core([0, 1], 0.7, 0.9)]
        fitted = fit_em(data, initialize_from_cores(data, cores), max_iter=50)
        assert len(fitted.log_likelihood_history) < 50

    def test_single_component(self, rng):
        data = rng.uniform(size=(200, 3))
        cores = [_core([0], 0.0, 1.0)]
        fitted = fit_em(data, initialize_from_cores(data, cores), max_iter=5)
        assert fitted.num_components == 1
        assert fitted.weights[0] == pytest.approx(1.0)
