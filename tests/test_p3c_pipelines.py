"""End-to-end tests of the serial P3C / P3C+ / P3C+-Light pipelines."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.p3c import P3C, P3C_CONFIG
from repro.core.p3c_plus import P3CPlus, P3CPlusConfig, P3CPlusLight
from repro.eval import e4sc_score


class TestP3CPlus:
    def test_recovers_hidden_clusters(self, small_dataset):
        result = P3CPlus().fit(small_dataset.data)
        truth = small_dataset.ground_truth_clusters()
        assert result.num_clusters >= 1
        assert e4sc_score(result.clusters, truth) > 0.6

    def test_cluster_count_close_to_truth(self, small_dataset):
        result = P3CPlus().fit(small_dataset.data)
        k_true = len(small_dataset.hidden_clusters)
        assert abs(result.num_clusters - k_true) <= 2

    def test_members_and_outliers_partition(self, small_dataset):
        result = P3CPlus().fit(small_dataset.data)
        counted = len(result.outliers) + sum(c.size for c in result.clusters)
        assert counted == len(small_dataset.data)

    def test_signatures_cover_members(self, small_dataset):
        result = P3CPlus().fit(small_dataset.data)
        for cluster in result.clusters:
            assert cluster.signature is not None
            mask = cluster.signature.support_mask(small_dataset.data)
            assert mask[cluster.members].all()

    def test_metadata_diagnostics(self, small_dataset):
        result = P3CPlus().fit(small_dataset.data)
        assert result.metadata["num_bins"] >= 1
        assert result.metadata["num_relevant_intervals"] >= 1
        assert "em_iterations" in result.metadata

    def test_uniform_data_no_clusters(self, rng):
        data = rng.uniform(size=(1_000, 6))
        result = P3CPlus().fit(data)
        assert result.num_clusters == 0
        assert len(result.outliers) == 1_000

    def test_rejects_out_of_range_data(self):
        with pytest.raises(ValueError, match="normalis"):
            P3CPlus().fit(np.full((10, 2), 2.0))

    def test_rejects_nan(self):
        data = np.full((10, 2), 0.5)
        data[0, 0] = np.nan
        with pytest.raises(ValueError):
            P3CPlus().fit(data)

    def test_rejects_1d(self):
        with pytest.raises(ValueError):
            P3CPlus().fit(np.zeros(10))

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            P3CPlus().fit(np.zeros((0, 3)))


class TestP3CPlusLight:
    def test_recovers_hidden_clusters(self, small_dataset):
        result = P3CPlusLight().fit(small_dataset.data)
        truth = small_dataset.ground_truth_clusters()
        assert e4sc_score(result.clusters, truth) > 0.6

    def test_no_em_metadata(self, small_dataset):
        result = P3CPlusLight().fit(small_dataset.data)
        assert "em_iterations" not in result.metadata

    def test_members_come_from_support_sets(self, small_dataset):
        result = P3CPlusLight().fit(small_dataset.data)
        for cluster in result.clusters:
            mask = cluster.core.signature.support_mask(small_dataset.data)
            assert mask[cluster.members].all()

    def test_unique_assignment_despite_overlaps(self, small_dataset):
        result = P3CPlusLight().fit(small_dataset.data)
        all_members = np.concatenate([c.members for c in result.clusters])
        assert len(all_members) == len(np.unique(all_members))


class TestOriginalP3C:
    def test_config_disables_every_extension(self):
        assert P3C_CONFIG.binning == "sturges"
        assert P3C_CONFIG.theta_cc is None
        assert not P3C_CONFIG.redundancy_filter
        assert P3C_CONFIG.outlier_method == "naive"
        assert not P3C_CONFIG.ai_proving

    def test_runs_end_to_end(self, small_dataset):
        result = P3C().fit(small_dataset.data)
        assert result.n_points == len(small_dataset.data)

    def test_redundancy_filter_difference(self, small_dataset):
        """P3C+ (with the filter) finds at most as many cores as the
        Poisson-only configuration without it."""
        with_filter = P3CPlus().fit(small_dataset.data)
        without = P3CPlus(
            P3CPlusConfig(redundancy_filter=False, theta_cc=None)
        ).fit(small_dataset.data)
        assert (
            with_filter.metadata["cores_after_redundancy"]
            <= without.metadata["cores_after_redundancy"]
        )


class TestConfig:
    def test_with_overrides(self):
        config = P3CPlusConfig().with_overrides(theta_cc=0.2)
        assert config.theta_cc == 0.2
        assert config.binning == "freedman-diaconis"

    def test_num_bins_rules(self):
        fd = P3CPlusConfig(binning="freedman-diaconis")
        sturges = P3CPlusConfig(binning="sturges")
        assert fd.num_bins(1_000_000) == 100
        assert sturges.num_bins(1_000_000) == 21

    def test_max_bins_clamp(self):
        config = P3CPlusConfig(max_bins=50)
        assert config.num_bins(10**9) == 50
