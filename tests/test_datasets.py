"""Tests for the named data sets (colon-like) and normalisation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import make_colon_like, normalize_unit_range


class TestColonLike:
    @pytest.fixture(scope="class")
    def dataset(self):
        return make_colon_like(seed=7)

    def test_shape_matches_real_set(self, dataset):
        assert dataset.data.shape == (62, 2000)

    def test_two_classes(self, dataset):
        assert set(np.unique(dataset.labels)) == {0, 1}

    def test_values_in_unit_range(self, dataset):
        assert dataset.data.min() >= 0.0
        assert dataset.data.max() <= 1.0

    def test_informative_genes_separate_classes(self, dataset):
        for gene in dataset.informative_genes:
            tumour = dataset.data[dataset.labels == 1, gene]
            normal = dataset.data[dataset.labels == 0, gene]
            assert abs(tumour.mean() - normal.mean()) > 0.2

    def test_noise_genes_dont_separate(self, dataset):
        noise_genes = [
            g for g in range(50) if g not in set(dataset.informative_genes)
        ]
        diffs = [
            abs(
                dataset.data[dataset.labels == 1, g].mean()
                - dataset.data[dataset.labels == 0, g].mean()
            )
            for g in noise_genes[:20]
        ]
        assert np.mean(diffs) < 0.15

    def test_validation(self):
        with pytest.raises(ValueError):
            make_colon_like(n_tumour=0)
        with pytest.raises(ValueError):
            make_colon_like(n_informative=0)

    def test_deterministic(self):
        a = make_colon_like(seed=3)
        b = make_colon_like(seed=3)
        assert np.array_equal(a.data, b.data)
        assert np.array_equal(a.labels, b.labels)


class TestNormalize:
    def test_output_in_unit_range(self, rng):
        data = rng.normal(50, 10, size=(100, 4))
        out = normalize_unit_range(data)
        assert out.min() == pytest.approx(0.0)
        assert out.max() == pytest.approx(1.0)

    def test_constant_column_maps_to_half(self):
        data = np.array([[1.0, 5.0], [2.0, 5.0]])
        out = normalize_unit_range(data)
        assert (out[:, 1] == 0.5).all()

    def test_preserves_order(self, rng):
        data = rng.uniform(size=(50, 1)) * 100 - 30
        out = normalize_unit_range(data)
        assert np.array_equal(np.argsort(out[:, 0]), np.argsort(data[:, 0]))

    def test_rejects_1d(self):
        with pytest.raises(ValueError):
            normalize_unit_range(np.zeros(5))
