"""Tests for the synthetic workload generator (Section 7.1)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data import GeneratorConfig, generate_synthetic


class TestConfigValidation:
    def test_rejects_bad_noise(self):
        with pytest.raises(ValueError):
            GeneratorConfig(noise_fraction=1.0)

    def test_rejects_bad_dims(self):
        with pytest.raises(ValueError):
            GeneratorConfig(d=5, max_cluster_dims=10)

    def test_rejects_bad_widths(self):
        with pytest.raises(ValueError):
            GeneratorConfig(min_width=0.5, max_width=0.2)

    def test_rejects_zero_clusters(self):
        with pytest.raises(ValueError):
            GeneratorConfig(num_clusters=0)


class TestGeneratedData:
    @pytest.fixture(scope="class")
    def dataset(self):
        return generate_synthetic(
            GeneratorConfig(
                n=2_000, d=20, num_clusters=4, noise_fraction=0.15, seed=3
            )
        )

    def test_shape(self, dataset):
        assert dataset.data.shape == (2_000, 20)

    def test_values_in_unit_cube(self, dataset):
        assert dataset.data.min() >= 0.0
        assert dataset.data.max() <= 1.0

    def test_noise_fraction(self, dataset):
        assert len(dataset.noise_indices) == 300

    def test_cluster_count(self, dataset):
        assert len(dataset.hidden_clusters) == 4

    def test_cluster_sizes_balanced(self, dataset):
        sizes = [c.size for c in dataset.hidden_clusters]
        assert max(sizes) - min(sizes) <= 1
        assert sum(sizes) == 1_700

    def test_members_inside_true_signature(self, dataset):
        for cluster in dataset.hidden_clusters:
            mask = cluster.signature.support_mask(dataset.data)
            assert mask[cluster.members].all()

    def test_cluster_dimensionality_in_range(self, dataset):
        for cluster in dataset.hidden_clusters:
            assert 2 <= len(cluster.relevant_attributes) <= 10

    def test_interval_widths_in_range(self, dataset):
        for cluster in dataset.hidden_clusters:
            for interval in cluster.signature:
                assert 0.1 <= interval.width <= 0.3 + 1e-9

    def test_overlap_guarantee(self, dataset):
        """At least two clusters overlap on a relevant attribute."""
        first = dataset.hidden_clusters[0].signature
        second = dataset.hidden_clusters[1].signature
        overlapping = any(
            a.overlaps(b) for a in first for b in second
        )
        assert overlapping

    def test_labels_consistent(self, dataset):
        labels = dataset.labels
        for cid, cluster in enumerate(dataset.hidden_clusters):
            assert (labels[cluster.members] == cid).all()
        assert (labels[dataset.noise_indices] == -1).all()

    def test_partition_is_complete(self, dataset):
        total = sum(c.size for c in dataset.hidden_clusters)
        total += len(dataset.noise_indices)
        assert total == 2_000

    def test_ground_truth_clusters_adapter(self, dataset):
        truth = dataset.ground_truth_clusters()
        assert len(truth) == 4
        assert truth[0].relevant_attributes == (
            dataset.hidden_clusters[0].relevant_attributes
        )


class TestDeterminism:
    def test_same_seed_same_data(self):
        config = GeneratorConfig(n=500, d=10, num_clusters=2, seed=11)
        a = generate_synthetic(config)
        b = generate_synthetic(config)
        assert np.array_equal(a.data, b.data)
        assert np.array_equal(a.labels, b.labels)

    def test_different_seed_different_data(self):
        a = generate_synthetic(GeneratorConfig(n=500, d=10, seed=1))
        b = generate_synthetic(GeneratorConfig(n=500, d=10, seed=2))
        assert not np.array_equal(a.data, b.data)


class TestProperties:
    @settings(max_examples=15, deadline=None)
    @given(
        st.integers(50, 500),
        st.integers(1, 4),
        st.sampled_from([0.0, 0.1, 0.3]),
    )
    def test_generator_invariants(self, n, k, noise):
        dataset = generate_synthetic(
            GeneratorConfig(
                n=n,
                d=8,
                num_clusters=k,
                noise_fraction=noise,
                max_cluster_dims=4,
                seed=0,
            )
        )
        assert len(dataset.data) == n
        assert dataset.data.min() >= 0 and dataset.data.max() <= 1
        assert len(dataset.hidden_clusters) <= k
        labels = dataset.labels
        assert ((labels >= -1) & (labels < k)).all()
