"""Tests for the related-work baselines PROCLUS and DOC (Section 2)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import DOC, DOCConfig, Proclus, ProclusConfig
from repro.eval import e4sc_score, f1_score


class TestProclusConfig:
    def test_validates_parameters(self):
        with pytest.raises(ValueError):
            ProclusConfig(num_clusters=0)
        with pytest.raises(ValueError):
            ProclusConfig(avg_dimensions=1)

    def test_dimensionality_check(self, tiny_dataset):
        config = ProclusConfig(num_clusters=2, avg_dimensions=100)
        with pytest.raises(ValueError, match="dimensionality"):
            Proclus(config).fit(tiny_dataset.data)


class TestProclus:
    @pytest.fixture(scope="class")
    def result(self, small_dataset):
        config = ProclusConfig(num_clusters=3, avg_dimensions=4, seed=2)
        return Proclus(config).fit(small_dataset.data)

    def test_finds_k_clusters(self, result):
        assert 1 <= result.num_clusters <= 3

    def test_reasonable_object_quality(self, result, small_dataset):
        truth = small_dataset.ground_truth_clusters()
        assert f1_score(result.clusters, truth) > 0.4

    def test_every_cluster_has_at_least_two_dimensions(self, result):
        for cluster in result.clusters:
            assert len(cluster.relevant_attributes) >= 2

    def test_partition_plus_outliers_complete(self, result, small_dataset):
        counted = len(result.outliers) + sum(c.size for c in result.clusters)
        assert counted == len(small_dataset.data)

    def test_deterministic_given_seed(self, small_dataset):
        config = ProclusConfig(num_clusters=3, avg_dimensions=4, seed=9)
        a = Proclus(config).fit(small_dataset.data)
        b = Proclus(config).fit(small_dataset.data)
        assert np.array_equal(a.labels(), b.labels())

    def test_medoids_recorded(self, result):
        assert len(result.metadata["medoids"]) >= 1

    def test_rejects_empty_data(self):
        with pytest.raises(ValueError):
            Proclus().fit(np.empty((0, 3)))


class TestDOCConfig:
    def test_validates_parameters(self):
        with pytest.raises(ValueError):
            DOCConfig(alpha=0.0)
        with pytest.raises(ValueError):
            DOCConfig(beta=1.5)
        with pytest.raises(ValueError):
            DOCConfig(width=-1.0)


class TestDOC:
    @pytest.fixture(scope="class")
    def result(self, small_dataset):
        return DOC(DOCConfig(seed=3)).fit(small_dataset.data)

    def test_finds_clusters(self, result):
        assert result.num_clusters >= 1

    def test_clusters_are_dense_boxes(self, result, small_dataset):
        data = small_dataset.data
        for cluster in result.clusters:
            signature = cluster.signature
            assert signature is not None
            for interval in signature:
                # Box width bounded by 2w.
                assert interval.width <= 2 * 0.3 + 1e-9
            assert signature.support_mask(data)[cluster.members].all()

    def test_clusters_disjoint(self, result):
        members = np.concatenate([c.members for c in result.clusters])
        assert len(members) == len(np.unique(members))

    def test_min_size_respected(self, result, small_dataset):
        min_size = int(0.08 * len(small_dataset.data))
        for cluster in result.clusters:
            assert cluster.size >= min_size

    def test_deterministic_given_seed(self, small_dataset):
        a = DOC(DOCConfig(seed=5)).fit(small_dataset.data)
        b = DOC(DOCConfig(seed=5)).fit(small_dataset.data)
        assert a.num_clusters == b.num_clusters
        assert np.array_equal(a.labels(), b.labels())

    def test_rejects_empty_data(self):
        with pytest.raises(ValueError):
            DOC().fit(np.empty((0, 3)))


class TestAgainstP3CPlus:
    def test_p3c_plus_beats_parametric_baselines(self, small_dataset):
        """The motivation for choosing P3C (paper Sections 1-2): better
        subspace quality without k/l/width parameters."""
        from repro.core.p3c_plus import P3CPlus

        truth = small_dataset.ground_truth_clusters()
        p3c_plus = e4sc_score(
            P3CPlus().fit(small_dataset.data).clusters, truth
        )
        proclus = e4sc_score(
            Proclus(ProclusConfig(num_clusters=3, avg_dimensions=4, seed=2))
            .fit(small_dataset.data)
            .clusters,
            truth,
        )
        doc = e4sc_score(
            DOC(DOCConfig(seed=3)).fit(small_dataset.data).clusters, truth
        )
        assert p3c_plus > proclus
        assert p3c_plus > doc
