"""Unit + property tests for redundancy filtering (Section 4.2.1)."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.redundancy import filter_redundant, interestingness, is_redundant
from repro.core.types import Interval, Signature
from repro.experiments.figure2 import build_scenario


class TestInterestingness:
    def test_ratio(self):
        sig = Signature([Interval(0, 0.0, 0.1)])
        assert interestingness(sig, 50, 100) == 50 / 10.0

    def test_zero_volume(self):
        sig = Signature([Interval(0, 0.5, 0.5)])
        assert interestingness(sig, 5, 100) == float("inf")
        assert interestingness(sig, 0, 100) == 0.0


class TestFigure2Example:
    """The paper's worked example must come out exactly."""

    def test_s3_is_redundant(self):
        scenario = build_scenario()
        items = list(scenario.supports.items())
        s3 = scenario.signatures["S3"]
        assert is_redundant(s3, scenario.supports[s3], items, scenario.n)

    def test_s1_s2_not_redundant(self):
        scenario = build_scenario()
        items = list(scenario.supports.items())
        for name in ("S1", "S2"):
            sig = scenario.signatures[name]
            assert not is_redundant(sig, scenario.supports[sig], items, scenario.n)

    def test_filter_keeps_exactly_s1_s2(self):
        scenario = build_scenario()
        kept = filter_redundant(scenario.supports, scenario.n)
        assert set(kept) == {
            scenario.signatures["S1"],
            scenario.signatures["S2"],
        }


class TestFilterProperties:
    def test_single_signature_never_redundant(self):
        sig = Signature([Interval(0, 0.0, 0.1)])
        assert filter_redundant({sig: 10}, 100) == [sig]

    def test_idempotence_on_figure2(self):
        scenario = build_scenario()
        once = filter_redundant(scenario.supports, scenario.n)
        supports_once = {sig: scenario.supports[sig] for sig in once}
        twice = filter_redundant(supports_once, scenario.n)
        assert set(once) == set(twice)

    def test_equally_interesting_signatures_all_kept(self):
        # Ties are not 'strictly more interesting': nothing is removed.
        a = Signature([Interval(0, 0.0, 0.1), Interval(1, 0.0, 0.1)])
        b = Signature([Interval(0, 0.0, 0.1), Interval(2, 0.0, 0.1)])
        kept = filter_redundant({a: 50, b: 50}, 1_000)
        assert set(kept) == {a, b}

    def test_covering_interval_counts(self):
        # A wider interval on the same attribute covers a narrower one.
        wide = Signature([Interval(0, 0.0, 0.4), Interval(1, 0.0, 0.1)])
        narrow = Signature([Interval(0, 0.1, 0.2)])
        # narrow's only interval is covered by wide's attr-0 interval and
        # wide is more interesting => narrow is redundant.
        kept = filter_redundant({wide: 500, narrow: 12}, 1_000)
        assert kept == [wide]

    @settings(max_examples=25)
    @given(
        st.dictionaries(
            st.integers(0, 5),
            st.integers(1, 100),
            min_size=1,
            max_size=5,
        )
    )
    def test_filter_is_idempotent_property(self, spec):
        """filter(filter(X)) == filter(X) for arbitrary singleton sets."""
        supports = {
            Signature([Interval(attr, 0.0, 0.1 + attr * 0.05)]): supp
            for attr, supp in spec.items()
        }
        once = filter_redundant(supports, 1_000)
        twice = filter_redundant({s: supports[s] for s in once}, 1_000)
        assert set(once) == set(twice)

    def test_filter_output_sorted_deterministically(self):
        scenario = build_scenario()
        assert filter_redundant(scenario.supports, scenario.n) == filter_redundant(
            scenario.supports, scenario.n
        )
