"""Tests for input splitting, grouping and job configuration."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.mapreduce.job import group_sorted_pairs, make_sort_key
from repro.mapreduce.types import InputSplit, JobConf, iter_grouped, split_records


class TestSplitRecords:
    def test_array_splits_cover_all_rows(self, rng):
        data = rng.uniform(size=(103, 4))
        splits = split_records(data, 7)
        assert sum(len(s) for s in splits) == 103
        seen = sorted(idx for split in splits for idx, _ in split)
        assert seen == list(range(103))

    def test_split_sizes_balanced(self, rng):
        data = rng.uniform(size=(100, 2))
        splits = split_records(data, 8)
        sizes = [len(s) for s in splits]
        assert max(sizes) - min(sizes) <= 1

    def test_rows_match_source(self, rng):
        data = rng.uniform(size=(20, 3))
        splits = split_records(data, 3)
        for split in splits:
            for idx, row in split:
                assert np.array_equal(row, data[idx])

    def test_more_splits_than_records(self):
        data = np.zeros((2, 1))
        splits = split_records(data, 10)
        assert len(splits) == 2

    def test_sequence_input(self):
        records = [(f"k{i}", i) for i in range(10)]
        splits = split_records(records, 3)
        assert sum(len(s) for s in splits) == 10
        assert splits[0].records[0] == ("k0", 0)

    def test_invalid_split_count(self):
        with pytest.raises(ValueError):
            split_records(np.zeros((5, 1)), 0)

    def test_lazy_records_indexing(self, rng):
        data = rng.uniform(size=(10, 2))
        (split,) = split_records(data, 1)
        assert split.records[0][0] == 0
        assert split.records[-1][0] == 9
        with pytest.raises(IndexError):
            split.records[10]

    @given(st.integers(1, 500), st.integers(1, 32))
    def test_cover_property(self, n, k):
        data = np.zeros((n, 1))
        splits = split_records(data, k)
        assert sum(len(s) for s in splits) == n
        assert len(splits) == min(k, n)


class TestGrouping:
    def test_iter_grouped_runs(self):
        pairs = [("a", 1), ("a", 2), ("b", 3), ("a", 4)]
        groups = list(iter_grouped(pairs))
        assert groups == [("a", [1, 2]), ("b", [3]), ("a", [4])]

    def test_group_sorted_pairs_sorts(self):
        pairs = [("b", 1), ("a", 2), ("b", 3)]
        groups = dict(group_sorted_pairs(pairs))
        assert groups == {"a": [2], "b": [1, 3]}

    def test_group_mixed_key_types(self):
        pairs = [(1, "x"), ("a", "y"), (1, "z")]
        groups = dict(group_sorted_pairs(pairs))
        assert groups == {1: ["x", "z"], "a": ["y"]}

    def test_group_without_sort_keeps_first_seen_order(self):
        pairs = [("b", 1), ("a", 2), ("b", 3)]
        groups = list(group_sorted_pairs(pairs, sort_keys=False))
        assert groups[0][0] == "b"

    def test_make_sort_key_total_order(self):
        keys = [3, "a", (1, 2), 1.5, None]
        assert sorted(keys, key=make_sort_key)  # must not raise


class TestJobConf:
    def test_defaults(self):
        conf = JobConf()
        assert conf.num_reducers == 1

    def test_invalid_values_rejected(self):
        with pytest.raises(ValueError):
            JobConf(num_splits=0)
        with pytest.raises(ValueError):
            JobConf(num_reducers=-1)


class TestInputSplit:
    def test_len_and_iter(self):
        split = InputSplit(split_id=0, records=[("a", 1), ("b", 2)])
        assert len(split) == 2
        assert list(split) == [("a", 1), ("b", 2)]
