"""Tests for the Rapid Signature Support Counter (Section 5.3).

The crucial property: RSSC counting equals brute-force closed-interval
support counting bit-for-bit, including points sitting exactly on
interval boundaries.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.proving import count_supports
from repro.core.types import Interval, Signature
from repro.mr.rssc import RSSC


def _random_signatures(rng, num_sigs: int, d: int) -> list[Signature]:
    signatures = []
    for _ in range(num_sigs):
        num_attrs = rng.integers(1, min(4, d) + 1)
        attrs = rng.choice(d, size=num_attrs, replace=False)
        intervals = []
        for attribute in attrs:
            lo = rng.uniform(0, 0.8)
            hi = lo + rng.uniform(0.05, 0.2)
            intervals.append(Interval(int(attribute), lo, min(hi, 1.0)))
        signatures.append(Signature(intervals))
    return signatures


class TestRSSCEquality:
    def test_matches_bruteforce_random(self, rng):
        data = rng.uniform(size=(500, 6))
        signatures = _random_signatures(rng, 25, 6)
        rssc = RSSC(signatures)
        assert rssc.count_supports(data) == count_supports(data, signatures)

    def test_matches_bruteforce_on_synthetic(self, tiny_dataset):
        data = tiny_dataset.data
        signatures = [
            cluster.signature for cluster in tiny_dataset.hidden_clusters
        ]
        rssc = RSSC(signatures)
        assert rssc.count_supports(data) == count_supports(data, signatures)

    def test_boundary_points_counted_as_closed(self):
        sig = Signature([Interval(0, 0.25, 0.5)])
        rssc = RSSC([sig])
        data = np.array([[0.25], [0.5], [0.2499999], [0.5000001]])
        counts = rssc.count_supports(data)
        assert counts[sig] == 2

    def test_shared_boundary_between_signatures(self):
        left = Signature([Interval(0, 0.0, 0.5)])
        right = Signature([Interval(0, 0.5, 1.0)])
        rssc = RSSC([left, right])
        counts = rssc.count_supports(np.array([[0.5]]))
        assert counts[left] == 1
        assert counts[right] == 1

    def test_degenerate_interval(self):
        sig = Signature([Interval(0, 0.3, 0.3)])
        rssc = RSSC([sig])
        counts = rssc.count_supports(np.array([[0.3], [0.30001], [0.29999]]))
        assert counts[sig] == 1

    def test_irrelevant_attribute_bits_stay_set(self):
        # Figure 3's point: a signature without an interval on attribute
        # a keeps bit 1 in every cell of a's binning.
        sig_a = Signature([Interval(0, 0.2, 0.4)])
        sig_b = Signature([Interval(1, 0.6, 0.8)])
        rssc = RSSC([sig_a, sig_b])
        point = np.array([0.3, 0.7])
        assert rssc.membership_bits(point) == 0b11

    def test_empty_candidate_set(self):
        rssc = RSSC([])
        assert rssc.count_supports(np.zeros((3, 2))) == {}

    def test_membership_bits_early_exit(self):
        sig = Signature([Interval(0, 0.0, 0.1), Interval(1, 0.0, 0.1)])
        rssc = RSSC([sig])
        assert rssc.membership_bits(np.array([0.9, 0.05])) == 0

    def test_relevant_attributes_listed(self):
        signatures = [
            Signature([Interval(2, 0.1, 0.2)]),
            Signature([Interval(0, 0.1, 0.2)]),
        ]
        assert RSSC(signatures).relevant_attributes == (0, 2)

    @settings(max_examples=30, deadline=None)
    @given(st.integers(0, 10_000))
    def test_equality_property(self, seed):
        rng = np.random.default_rng(seed)
        d = int(rng.integers(1, 5))
        data = rng.uniform(size=(60, d))
        # Include exact boundary values in the data.
        signatures = _random_signatures(rng, int(rng.integers(1, 10)), d)
        for sig in signatures[: min(3, len(signatures))]:
            interval = sig.intervals[0]
            data[0, interval.attribute] = interval.lower
            data[1, interval.attribute] = interval.upper
        rssc = RSSC(signatures)
        assert rssc.count_supports(data) == count_supports(data, signatures)


class TestAddPoint:
    def test_counts_accumulate(self, rng):
        data = rng.uniform(size=(100, 3))
        signatures = _random_signatures(rng, 5, 3)
        rssc = RSSC(signatures)
        counts = np.zeros(len(signatures), dtype=np.int64)
        for point in data:
            rssc.add_point(point, counts)
        expected = count_supports(data, signatures)
        for j, sig in enumerate(signatures):
            assert counts[j] == expected[sig]

    def test_num_signatures(self, rng):
        signatures = _random_signatures(rng, 7, 4)
        assert RSSC(signatures).num_signatures == 7
