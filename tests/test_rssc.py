"""Tests for the Rapid Signature Support Counter (Section 5.3).

The crucial property: RSSC counting equals brute-force closed-interval
support counting bit-for-bit, including points sitting exactly on
interval boundaries.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.proving import count_supports
from repro.core.types import Interval, Signature
from repro.mr.rssc import RSSC


def _random_signatures(rng, num_sigs: int, d: int) -> list[Signature]:
    signatures = []
    for _ in range(num_sigs):
        num_attrs = rng.integers(1, min(4, d) + 1)
        attrs = rng.choice(d, size=num_attrs, replace=False)
        intervals = []
        for attribute in attrs:
            lo = rng.uniform(0, 0.8)
            hi = lo + rng.uniform(0.05, 0.2)
            intervals.append(Interval(int(attribute), lo, min(hi, 1.0)))
        signatures.append(Signature(intervals))
    return signatures


class TestRSSCEquality:
    def test_matches_bruteforce_random(self, rng):
        data = rng.uniform(size=(500, 6))
        signatures = _random_signatures(rng, 25, 6)
        rssc = RSSC(signatures)
        assert rssc.count_supports(data) == count_supports(data, signatures)

    def test_matches_bruteforce_on_synthetic(self, tiny_dataset):
        data = tiny_dataset.data
        signatures = [
            cluster.signature for cluster in tiny_dataset.hidden_clusters
        ]
        rssc = RSSC(signatures)
        assert rssc.count_supports(data) == count_supports(data, signatures)

    def test_boundary_points_counted_as_closed(self):
        sig = Signature([Interval(0, 0.25, 0.5)])
        rssc = RSSC([sig])
        data = np.array([[0.25], [0.5], [0.2499999], [0.5000001]])
        counts = rssc.count_supports(data)
        assert counts[sig] == 2

    def test_shared_boundary_between_signatures(self):
        left = Signature([Interval(0, 0.0, 0.5)])
        right = Signature([Interval(0, 0.5, 1.0)])
        rssc = RSSC([left, right])
        counts = rssc.count_supports(np.array([[0.5]]))
        assert counts[left] == 1
        assert counts[right] == 1

    def test_degenerate_interval(self):
        sig = Signature([Interval(0, 0.3, 0.3)])
        rssc = RSSC([sig])
        counts = rssc.count_supports(np.array([[0.3], [0.30001], [0.29999]]))
        assert counts[sig] == 1

    def test_irrelevant_attribute_bits_stay_set(self):
        # Figure 3's point: a signature without an interval on attribute
        # a keeps bit 1 in every cell of a's binning.
        sig_a = Signature([Interval(0, 0.2, 0.4)])
        sig_b = Signature([Interval(1, 0.6, 0.8)])
        rssc = RSSC([sig_a, sig_b])
        point = np.array([0.3, 0.7])
        assert rssc.membership_bits(point) == 0b11

    def test_empty_candidate_set(self):
        rssc = RSSC([])
        assert rssc.count_supports(np.zeros((3, 2))) == {}

    def test_membership_bits_early_exit(self):
        sig = Signature([Interval(0, 0.0, 0.1), Interval(1, 0.0, 0.1)])
        rssc = RSSC([sig])
        assert rssc.membership_bits(np.array([0.9, 0.05])) == 0

    def test_relevant_attributes_listed(self):
        signatures = [
            Signature([Interval(2, 0.1, 0.2)]),
            Signature([Interval(0, 0.1, 0.2)]),
        ]
        assert RSSC(signatures).relevant_attributes == (0, 2)

    @settings(max_examples=30, deadline=None)
    @given(st.integers(0, 10_000))
    def test_equality_property(self, seed):
        rng = np.random.default_rng(seed)
        d = int(rng.integers(1, 5))
        data = rng.uniform(size=(60, d))
        # Include exact boundary values in the data.
        signatures = _random_signatures(rng, int(rng.integers(1, 10)), d)
        for sig in signatures[: min(3, len(signatures))]:
            interval = sig.intervals[0]
            data[0, interval.attribute] = interval.lower
            data[1, interval.attribute] = interval.upper
        rssc = RSSC(signatures)
        assert rssc.count_supports(data) == count_supports(data, signatures)


class TestAddPoint:
    def test_counts_accumulate(self, rng):
        data = rng.uniform(size=(100, 3))
        signatures = _random_signatures(rng, 5, 3)
        rssc = RSSC(signatures)
        counts = np.zeros(len(signatures), dtype=np.int64)
        for point in data:
            rssc.add_point(point, counts)
        expected = count_supports(data, signatures)
        for j, sig in enumerate(signatures):
            assert counts[j] == expected[sig]

    def test_num_signatures(self, rng):
        signatures = _random_signatures(rng, 7, 4)
        assert RSSC(signatures).num_signatures == 7


class TestAddPoints:
    """The batch path must be bit-for-bit identical to the scalar
    oracle and to brute-force closed-interval counting."""

    @settings(max_examples=40, deadline=None)
    @given(st.integers(0, 10_000))
    def test_batch_equals_scalar_and_bruteforce(self, seed):
        rng = np.random.default_rng(seed)
        d = int(rng.integers(1, 5))
        n = int(rng.integers(1, 120))
        data = rng.uniform(size=(n, d))
        signatures = _random_signatures(rng, int(rng.integers(1, 12)), d)
        # Plant exact boundary values (the singleton cells at even
        # indices of every attribute binning).
        for sig in signatures[: min(3, len(signatures))]:
            interval = sig.intervals[0]
            data[0, interval.attribute] = interval.lower
            data[-1, interval.attribute] = interval.upper
        rssc = RSSC(signatures)

        scalar = np.zeros(rssc.num_signatures, dtype=np.int64)
        for point in data:
            rssc.add_point(point, scalar)
        batch = np.zeros(rssc.num_signatures, dtype=np.int64)
        rssc.add_points(data, batch)

        np.testing.assert_array_equal(batch, scalar)
        brute = count_supports(data, signatures)
        for j, sig in enumerate(signatures):
            assert batch[j] == brute[sig]

    def test_counts_accumulate_across_calls(self, rng):
        data = rng.uniform(size=(90, 3))
        signatures = _random_signatures(rng, 6, 3)
        rssc = RSSC(signatures)
        counts = np.zeros(len(signatures), dtype=np.int64)
        rssc.add_points(data[:40], counts)
        rssc.add_points(data[40:], counts)
        expected = np.zeros(len(signatures), dtype=np.int64)
        rssc.add_points(data, expected)
        np.testing.assert_array_equal(counts, expected)

    def test_chunked_equals_unchunked(self, rng):
        data = rng.uniform(size=(200, 4))
        signatures = _random_signatures(rng, 70, 4)  # spills into 2nd word
        rssc = RSSC(signatures)
        whole = np.zeros(len(signatures), dtype=np.int64)
        rssc.add_points(data, whole)
        chunked = np.zeros(len(signatures), dtype=np.int64)
        rssc.add_points(data, chunked, chunk_rows=7)
        np.testing.assert_array_equal(chunked, whole)

    def test_more_than_64_signatures(self, rng):
        # Multi-word masks: signature j must land in word j//64, bit j%64.
        data = rng.uniform(size=(150, 5))
        signatures = _random_signatures(rng, 130, 5)
        rssc = RSSC(signatures)
        batch = np.zeros(len(signatures), dtype=np.int64)
        rssc.add_points(data, batch)
        brute = count_supports(data, signatures)
        for j, sig in enumerate(signatures):
            assert batch[j] == brute[sig]

    def test_empty_block(self, rng):
        rssc = RSSC(_random_signatures(rng, 4, 2))
        counts = np.zeros(4, dtype=np.int64)
        rssc.add_points(np.empty((0, 2)), counts)
        assert not counts.any()

    def test_empty_candidate_set(self):
        rssc = RSSC([])
        counts = np.zeros(0, dtype=np.int64)
        rssc.add_points(np.zeros((3, 2)), counts)  # must not raise

    def test_count_supports_routes_through_batch(self, rng):
        data = rng.uniform(size=(80, 4))
        signatures = _random_signatures(rng, 9, 4)
        assert RSSC(signatures).count_supports(data) == count_supports(
            data, signatures
        )


class TestClampRegression:
    """Values a hair outside [0, 1] (normalization float drift) must be
    treated as the nearest boundary, not crash or wrap around.

    Pre-fix, ``1.0 + 1e-12`` binned past the last cell (IndexError) and
    ``-1e-12`` hit cell -1 (Python wrap-around: silently wrong counts).
    """

    def _rssc(self):
        return RSSC(
            [
                Signature([Interval(0, 0.0, 0.4)]),
                Signature([Interval(0, 0.6, 1.0)]),
            ]
        )

    def test_scalar_above_one(self):
        rssc = self._rssc()
        counts = np.zeros(2, dtype=np.int64)
        rssc.add_point(np.array([1.0 + 1e-12]), counts)
        np.testing.assert_array_equal(counts, [0, 1])

    def test_scalar_below_zero(self):
        rssc = self._rssc()
        counts = np.zeros(2, dtype=np.int64)
        rssc.add_point(np.array([-1e-12]), counts)
        np.testing.assert_array_equal(counts, [1, 0])

    def test_batch_matches_scalar_on_drifted_values(self):
        rssc = self._rssc()
        data = np.array(
            [[1.0 + 1e-12], [-1e-12], [1.0], [0.0], [0.5], [1.5], [-0.5]]
        )
        scalar = np.zeros(2, dtype=np.int64)
        for point in data:
            rssc.add_point(point, scalar)
        batch = np.zeros(2, dtype=np.int64)
        rssc.add_points(data, batch)
        np.testing.assert_array_equal(batch, scalar)
        # After clamping: {-1e-12, 0.0, -0.5} -> [0, 0.4] and
        # {1 + 1e-12, 1.0, 1.5} -> [0.6, 1.0]; 0.5 supports neither.
        np.testing.assert_array_equal(batch, [3, 3])

    def test_membership_bits_on_drifted_values(self):
        rssc = self._rssc()
        assert rssc.membership_bits(np.array([1.0 + 1e-12])) == 0b10
        assert rssc.membership_bits(np.array([-1e-12])) == 0b01
