"""Property-based tests on end-to-end pipeline invariants."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.p3c_plus import P3CPlusConfig, P3CPlusLight, generate_cluster_cores
from repro.data import GeneratorConfig, generate_synthetic


def _fit_light(seed: int, num_clusters: int, noise: float):
    dataset = generate_synthetic(
        GeneratorConfig(
            n=600,
            d=8,
            num_clusters=num_clusters,
            noise_fraction=noise,
            max_cluster_dims=4,
            seed=seed,
        )
    )
    return dataset, P3CPlusLight().fit(dataset.data)


class TestResultInvariants:
    @settings(max_examples=8, deadline=None)
    @given(
        st.integers(0, 50),
        st.integers(1, 3),
        st.sampled_from([0.0, 0.1, 0.2]),
    )
    def test_partition_and_coverage(self, seed, num_clusters, noise):
        dataset, result = _fit_light(seed, num_clusters, noise)
        n = len(dataset.data)

        # Members of different clusters are disjoint.
        all_members = (
            np.concatenate([c.members for c in result.clusters])
            if result.clusters
            else np.empty(0, dtype=np.int64)
        )
        assert len(all_members) == len(np.unique(all_members))

        # Members + outliers partition the data set.
        assert len(all_members) + len(result.outliers) == n
        assert len(np.intersect1d(all_members, result.outliers)) == 0

        # Every cluster has a non-empty subspace and a covering signature.
        for cluster in result.clusters:
            assert cluster.relevant_attributes
            assert cluster.size > 0
            assert cluster.core is not None
            mask = cluster.core.signature.support_mask(dataset.data)
            assert mask[cluster.members].all()

    @settings(max_examples=6, deadline=None)
    @given(st.integers(0, 30))
    def test_determinism(self, seed):
        _, first = _fit_light(seed, 2, 0.1)
        _, second = _fit_light(seed, 2, 0.1)
        assert np.array_equal(first.labels(), second.labels())


class TestCoreGenerationMonotonicity:
    @pytest.fixture(scope="class")
    def data(self):
        dataset = generate_synthetic(
            GeneratorConfig(
                n=800, d=8, num_clusters=2, noise_fraction=0.1,
                max_cluster_dims=4, seed=3,
            )
        )
        return dataset.data

    def test_stricter_effect_size_never_adds_cores(self, data):
        counts = []
        for theta in (None, 0.1, 0.35, 0.8):
            config = P3CPlusConfig(theta_cc=theta, redundancy_filter=False)
            _, diagnostics = generate_cluster_cores(data, config)
            counts.append(diagnostics["cores_before_redundancy"])
        # None (no test) is the loosest; growing theta only removes.
        for looser, stricter in zip(counts, counts[1:]):
            assert stricter <= looser

    def test_redundancy_filter_output_subset(self, data):
        config = P3CPlusConfig(redundancy_filter=True)
        _, diagnostics = generate_cluster_cores(data, config)
        assert (
            diagnostics["cores_after_redundancy"]
            <= diagnostics["cores_before_redundancy"]
        )

    def test_stricter_poisson_never_adds_cores(self, data):
        counts = []
        for alpha in (0.01, 1e-5, 1e-20):
            config = P3CPlusConfig(
                poisson_alpha=alpha, theta_cc=None, redundancy_filter=False
            )
            _, diagnostics = generate_cluster_cores(data, config)
            counts.append(diagnostics["cores_before_redundancy"])
        for looser, stricter in zip(counts, counts[1:]):
            assert stricter <= looser + 1  # maximality can shift by one
