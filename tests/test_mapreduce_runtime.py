"""Tests for the MapReduce runtime: golden wordcount, combiners,
partitioners, counters, map-only jobs and executor equivalence."""

from __future__ import annotations

from typing import Any

import numpy as np
import pytest

from repro.mapreduce import (
    BatchMapper,
    Combiner,
    Context,
    Counters,
    DistributedCache,
    HashPartitioner,
    Job,
    JobConf,
    Mapper,
    MapReduceRuntime,
    Partitioner,
    Reducer,
)
from repro.mapreduce.types import InputSplit, split_records


class WordCountMapper(Mapper):
    def map(self, key: Any, value: str, context: Context) -> None:
        for word in value.split():
            context.emit(word, 1)


class SumReducer(Reducer):
    def reduce(self, key: Any, values: list[int], context: Context) -> None:
        context.emit(key, sum(values))


class SumCombiner(Combiner):
    def combine(self, key: Any, values: list[int], context: Context) -> None:
        context.emit(key, sum(values))


class BadCombiner(Combiner):
    def combine(self, key: Any, values: list[int], context: Context) -> None:
        context.emit(("rogue", key), sum(values))


def _text_splits() -> list[InputSplit]:
    lines = [
        (0, "the quick brown fox"),
        (1, "the lazy dog"),
        (2, "the quick dog"),
        (3, "fox and dog and fox"),
    ]
    return split_records(lines, 2)


EXPECTED_COUNTS = {
    "the": 3,
    "quick": 2,
    "brown": 1,
    "fox": 3,
    "lazy": 1,
    "dog": 3,
    "and": 2,
}


class TestWordCount:
    def test_golden_output(self):
        runtime = MapReduceRuntime()
        job = Job(mapper_factory=WordCountMapper, reducer_factory=SumReducer)
        result = runtime.run(job, _text_splits(), JobConf(num_reducers=1))
        assert result.as_dict() == EXPECTED_COUNTS

    def test_multiple_reducers_same_result(self):
        runtime = MapReduceRuntime()
        job = Job(mapper_factory=WordCountMapper, reducer_factory=SumReducer)
        result = runtime.run(job, _text_splits(), JobConf(num_reducers=4))
        assert result.as_dict() == EXPECTED_COUNTS

    def test_combiner_preserves_result(self):
        runtime = MapReduceRuntime()
        job = Job(
            mapper_factory=WordCountMapper,
            reducer_factory=SumReducer,
            combiner_factory=SumCombiner,
        )
        result = runtime.run(job, _text_splits(), JobConf(num_reducers=2))
        assert result.as_dict() == EXPECTED_COUNTS

    def test_combiner_reduces_shuffle_volume(self):
        runtime = MapReduceRuntime()
        plain = runtime.run(
            Job(mapper_factory=WordCountMapper, reducer_factory=SumReducer),
            _text_splits(),
            JobConf(),
        )
        combined = runtime.run(
            Job(
                mapper_factory=WordCountMapper,
                reducer_factory=SumReducer,
                combiner_factory=SumCombiner,
            ),
            _text_splits(),
            JobConf(),
        )
        shuffle = Counters.SHUFFLE_RECORDS
        assert combined.counters.framework_value(shuffle) < (
            plain.counters.framework_value(shuffle)
        )

    def test_rogue_combiner_rejected(self):
        # A key-inventing combiner is a programming error: the task fails
        # deterministically, exhausts its retries and kills the job.
        from repro.mapreduce import TaskFailedError

        runtime = MapReduceRuntime()
        job = Job(
            mapper_factory=WordCountMapper,
            reducer_factory=SumReducer,
            combiner_factory=BadCombiner,
        )
        with pytest.raises(TaskFailedError) as info:
            runtime.run(job, _text_splits(), JobConf())
        assert isinstance(info.value.cause, ValueError)
        assert "combiner" in str(info.value.cause)


class TestMapOnly:
    def test_zero_reducers_passes_map_output_through(self):
        runtime = MapReduceRuntime()
        job = Job(mapper_factory=WordCountMapper)
        result = runtime.run(job, _text_splits(), JobConf(num_reducers=0))
        assert sorted(k for k, _ in result.output)[:2] == ["and", "and"]
        assert len(result.output) == sum(EXPECTED_COUNTS.values())


class TestCounters:
    def test_record_accounting(self):
        runtime = MapReduceRuntime()
        job = Job(mapper_factory=WordCountMapper, reducer_factory=SumReducer)
        result = runtime.run(job, _text_splits(), JobConf())
        fw = result.counters
        assert fw.framework_value(Counters.MAP_INPUT_RECORDS) == 4
        assert fw.framework_value(Counters.MAP_OUTPUT_RECORDS) == 15
        assert fw.framework_value(Counters.REDUCE_OUTPUT_RECORDS) == len(
            EXPECTED_COUNTS
        )

    def test_counters_merge(self):
        a, b = Counters(), Counters()
        a.increment("g", "x", 2)
        b.increment("g", "x", 3)
        a.merge(b)
        assert a.value("g", "x") == 5

    def test_negative_increment_rejected(self):
        counters = Counters()
        with pytest.raises(ValueError):
            counters.increment("g", "x", -1)

    def test_runtime_history_totals(self):
        runtime = MapReduceRuntime()
        job = Job(mapper_factory=WordCountMapper, reducer_factory=SumReducer)
        runtime.run(job, _text_splits(), JobConf())
        runtime.run(job, _text_splits(), JobConf())
        total = runtime.total_counters()
        assert total.framework_value(Counters.MAP_INPUT_RECORDS) == 8
        assert runtime.jobs_run == 2


class TestPartitioner:
    def test_hash_partitioner_stable(self):
        partitioner = HashPartitioner()
        assert partitioner.partition("abc", 7) == partitioner.partition("abc", 7)
        assert 0 <= partitioner.partition(("a", 3), 5) < 5
        assert 0 <= partitioner.partition(3.25, 5) < 5
        assert partitioner.partition(None, 3) == 0

    def test_out_of_range_partition_rejected(self):
        # Partitioning is map-side: a broken partitioner fails the map
        # task deterministically, exhausting its retries.
        from repro.mapreduce import TaskFailedError

        class BrokenPartitioner(Partitioner):
            def partition(self, key: Any, num_partitions: int) -> int:
                return num_partitions  # off by one

        runtime = MapReduceRuntime()
        job = Job(
            mapper_factory=WordCountMapper,
            reducer_factory=SumReducer,
            partitioner=BrokenPartitioner(),
        )
        with pytest.raises(TaskFailedError) as info:
            runtime.run(job, _text_splits(), JobConf(num_reducers=2))
        assert isinstance(info.value.cause, ValueError)
        assert "partitioner" in str(info.value.cause)

    def test_numpy_scalar_keys_hash_like_python_scalars(self):
        """Regression: ``np.int64(5)`` must land in the partition of
        ``5`` — the stable hash once fell through to ``repr()``
        ("np.int64(5)"), splitting mixed-type keys across reducers."""
        partitioner = HashPartitioner()
        for num_partitions in (3, 5, 17):
            for np_key, py_key in [
                (np.int64(5), 5),
                (np.int32(-2), -2),
                (np.float64(3.25), 3.25),
                (np.str_("abc"), "abc"),
                ((np.int64(2), "x"), (2, "x")),
            ]:
                assert partitioner.partition(
                    np_key, num_partitions
                ) == partitioner.partition(py_key, num_partitions)


class TestFoldUniformPairs:
    """The vectorized combiner fold vs its scalar oracle."""

    def _scalar_fold(self, pairs):
        from repro.mapreduce.job import ArraySumCombiner, group_sorted_pairs

        combiner = ArraySumCombiner()
        ctx = Context(DistributedCache(), Counters(), task_id=0)
        for key, values in group_sorted_pairs(pairs):
            combiner.combine(key, values, ctx)
        return ctx.drain()

    @pytest.mark.parametrize("value_shape", [(1,), (4,), (3, 2)])
    def test_fold_bitwise_matches_scalar_combiner(self, value_shape):
        """Bitwise, not approximate: the fold must accumulate in the
        scalar loop's left-to-right order (pairwise summation — as in
        ``np.add.reduceat``/``np.sum`` — changes float rounding,
        especially for trailing-size-1 blocks)."""
        from repro.mapreduce.job import fold_uniform_pairs

        rng = np.random.default_rng(42)
        pairs = [
            (int(i % 7), rng.uniform(size=value_shape)) for i in range(500)
        ]
        folded = fold_uniform_pairs(pairs)
        assert folded is not None
        oracle = self._scalar_fold(pairs)
        assert [key for key, _ in folded] == [key for key, _ in oracle]
        for (_, got), (_, want) in zip(folded, oracle):
            assert got.dtype == want.dtype
            assert got.tobytes() == want.tobytes()

    def test_small_int_dtype_wraps_like_scalar_fold(self):
        from repro.mapreduce.job import fold_uniform_pairs

        pairs = [(0, np.array([200], dtype=np.uint8)) for _ in range(3)]
        folded = fold_uniform_pairs(pairs)
        oracle = self._scalar_fold(pairs)
        assert folded[0][1].dtype == np.uint8
        assert folded[0][1].tobytes() == oracle[0][1].tobytes()

    def test_heterogeneous_pairs_fall_back(self):
        from repro.mapreduce.job import fold_uniform_pairs

        assert fold_uniform_pairs([]) is None
        assert fold_uniform_pairs([(0, np.zeros(2))]) is None  # < 2 pairs
        assert (
            fold_uniform_pairs([(0, np.zeros(2)), ("k", np.zeros(2))]) is None
        )
        assert (
            fold_uniform_pairs([(0, np.zeros(2)), (1, np.zeros(3))]) is None
        )
        assert fold_uniform_pairs([(0, 1), (0, 2)]) is None


class TestMultiprocess:
    def test_process_pool_matches_serial(self):
        serial = MapReduceRuntime()
        parallel = MapReduceRuntime(max_workers=2)
        job = Job(mapper_factory=WordCountMapper, reducer_factory=SumReducer)
        a = serial.run(job, _text_splits(), JobConf())
        b = parallel.run(job, _text_splits(), JobConf())
        assert a.as_dict() == b.as_dict()

    def test_invalid_workers_rejected(self):
        with pytest.raises(ValueError):
            MapReduceRuntime(max_workers=0)


class TestCacheAndContext:
    def test_cache_is_read_only(self):
        cache = DistributedCache({"a": 1})
        with pytest.raises(TypeError):
            cache["b"] = 2  # type: ignore[index]

    def test_missing_entry_names_available_keys(self):
        cache = DistributedCache({"a": 1})
        with pytest.raises(KeyError, match="available"):
            cache["missing"]

    def test_with_entries_copy_on_write(self):
        cache = DistributedCache({"a": 1})
        extended = cache.with_entries(b=2)
        assert "b" not in cache
        assert extended["b"] == 2
        assert extended["a"] == 1

    def test_duplicate_output_keys_rejected_in_as_dict(self):
        runtime = MapReduceRuntime()
        job = Job(mapper_factory=WordCountMapper)
        result = runtime.run(job, _text_splits(), JobConf(num_reducers=0))
        with pytest.raises(ValueError, match="duplicate"):
            result.as_dict()


class _ProbeBatchMapper(BatchMapper):
    """Records how the runtime fed it: batch calls vs per-row map()."""

    def setup(self, context: Context) -> None:
        self.batch_sizes: list[int] = []
        self._total = 0.0
        self._n = 0

    def map_batch(self, keys: Any, block: np.ndarray, context: Context) -> None:
        self.batch_sizes.append(len(keys))
        self._total += float(block.sum())
        self._n += len(keys)

    def cleanup(self, context: Context) -> None:
        context.emit("sum", self._total)
        context.emit("rows_per_call", tuple(self.batch_sizes))


class TestBatchMapper:
    def test_array_splits_feed_whole_blocks(self):
        data = np.arange(24.0).reshape(8, 3)
        runtime = MapReduceRuntime()
        job = Job(mapper_factory=_ProbeBatchMapper)
        result = runtime.run(
            job, split_records(data, 2), JobConf(num_reducers=0)
        )
        output = dict(
            (k, [v for kk, v in result.output if kk == k])
            for k, _ in result.output
        )
        assert sum(output["sum"]) == data.sum()
        # One map_batch call per split, each carrying the full slice.
        assert output["rows_per_call"] == [(4,), (4,)]

    def test_uniform_ndarray_records_batch_via_stacking(self):
        records = [(i, np.array([float(i), 1.0])) for i in range(6)]
        runtime = MapReduceRuntime()
        job = Job(mapper_factory=_ProbeBatchMapper)
        result = runtime.run(
            job, split_records(records, 2), JobConf(num_reducers=0)
        )
        sizes = [v for k, v in result.output if k == "rows_per_call"]
        assert sizes == [(3,), (3,)]

    def test_scalar_records_fall_back_to_per_row_map(self):
        # Scalar values cannot form a 2-D block: the runtime falls back
        # to map(), whose BatchMapper default wraps each row as a
        # one-row batch — same math, per-record granularity.
        records = [(i, float(i)) for i in range(6)]
        runtime = MapReduceRuntime()
        job = Job(mapper_factory=_ProbeBatchMapper)
        result = runtime.run(
            job, split_records(records, 2), JobConf(num_reducers=0)
        )
        output = [(k, v) for k, v in result.output]
        sizes = [v for k, v in output if k == "rows_per_call"]
        assert sizes == [(1, 1, 1), (1, 1, 1)]
        assert sum(v for k, v in output if k == "sum") == sum(range(6))

    def test_map_fallback_wraps_single_rows(self):
        # Calling the inherited map() directly must equal a 1-row batch.
        ctx = Context(DistributedCache(), Counters(), task_id=0)
        mapper = _ProbeBatchMapper()
        mapper.setup(ctx)
        mapper.map(3, np.array([1.0, 2.0]), ctx)
        mapper.map(4, np.array([3.0, 4.0]), ctx)
        mapper.cleanup(ctx)
        assert mapper.batch_sizes == [1, 1]
        assert dict(ctx.drain())["sum"] == 10.0

    def test_counters_count_rows_not_batches(self):
        data = np.ones((10, 2))
        runtime = MapReduceRuntime()
        job = Job(mapper_factory=_ProbeBatchMapper)
        result = runtime.run(
            job, split_records(data, 3), JobConf(num_reducers=0)
        )
        snapshot = result.counters.snapshot()
        assert snapshot["framework"]["map_input_records"] == 10
