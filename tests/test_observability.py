"""Tests for the observability subsystem (`repro.obs`) and the
EventLog subscriber/serialisation hardening it relies on."""

from __future__ import annotations

import json
from typing import Any

import pytest

from repro.mapreduce import (
    Context,
    Job,
    Mapper,
    MapReduceRuntime,
    Reducer,
)
from repro.mapreduce.chain import JobChain
from repro.mapreduce.events import (
    Event,
    EventKind,
    EventLog,
    events_to_jsonl,
    format_trace,
)
from repro.mapreduce.types import split_records
from repro.obs import (
    NULL_OBS,
    Histogram,
    MetricsRegistry,
    Observability,
    SpanTracer,
    build_run_report,
    duration_stats,
    peak_rss_kb,
    render_run_report,
    spans_to_chrome_trace,
    spans_to_jsonl,
    validate_run_report,
)


class WordCountMapper(Mapper):
    def map(self, key: Any, value: str, context: Context) -> None:
        for word in value.split():
            context.emit(word, 1)


class SumReducer(Reducer):
    def reduce(self, key: Any, values: list[int], context: Context) -> None:
        context.emit(key, sum(values))


def _text_splits():
    lines = [
        (0, "the quick brown fox"),
        (1, "the lazy dog"),
        (2, "the quick dog"),
    ]
    return split_records(lines, 2)


def _run_wordcount(obs: Observability | None = None) -> JobChain:
    runtime = MapReduceRuntime(obs=obs)
    chain = JobChain(runtime)
    job = Job(mapper_factory=WordCountMapper, reducer_factory=SumReducer)
    chain.run("wordcount", job, _text_splits(), num_reducers=1)
    return chain


# -- EventLog hardening (subscriber isolation, unsubscribe) -------------


class TestEventLogSubscribers:
    def test_raising_subscriber_does_not_abort_the_job(self, caplog):
        log = EventLog()

        def bad(event: Event) -> None:
            raise RuntimeError("sink exploded")

        seen: list[str] = []
        log.subscribe(bad)
        log.subscribe(lambda e: seen.append(e.kind))
        event = log.emit(EventKind.JOB_START, "job")
        # The event is recorded and later subscribers still ran.
        assert log.events == [event]
        assert seen == [EventKind.JOB_START]
        assert "continuing" in caplog.text

    def test_unsubscribe_stops_delivery(self):
        log = EventLog()
        seen: list[str] = []

        def sink(event: Event) -> None:
            seen.append(event.kind)

        log.subscribe(sink)
        log.emit(EventKind.JOB_START, "job")
        log.unsubscribe(sink)
        log.emit(EventKind.JOB_FINISH, "job")
        assert seen == [EventKind.JOB_START]

    def test_unsubscribe_unknown_callback_is_noop(self):
        log = EventLog()
        log.unsubscribe(lambda e: None)  # must not raise


class TestEventSerialisation:
    def test_jsonl_round_trip_preserves_fields(self):
        log = EventLog()
        log.emit(EventKind.JOB_START, "histogram_building")
        log.emit(
            EventKind.TASK_FINISH,
            "histogram_building",
            phase="map",
            task_id=3,
            attempt=1,
            duration_s=0.01,
            counters={"framework": {"map_input_records": 7}},
        )
        lines = events_to_jsonl(log).splitlines()
        decoded = [json.loads(line) for line in lines]
        assert [d["kind"] for d in decoded] == [
            EventKind.JOB_START,
            EventKind.TASK_FINISH,
        ]
        assert [d["seq"] for d in decoded] == [0, 1]
        task = decoded[1]
        assert task["task_id"] == 3 and task["attempt"] == 1
        assert task["counters"]["framework"]["map_input_records"] == 7
        # None fields are dropped from the serialised form.
        assert "error" not in task and "phase" not in decoded[0]

    def test_select_and_phase_seconds_edge_cases(self):
        log = EventLog()
        assert log.select() == []
        assert log.phase_seconds("nope", "map") == 0.0
        log.emit(EventKind.PHASE_FINISH, "job", phase="map", duration_s=0.5)
        log.emit(EventKind.PHASE_FINISH, "job", phase="map", duration_s=0.25)
        log.emit(EventKind.PHASE_FINISH, "other", phase="map", duration_s=9.0)
        assert log.phase_seconds("job", "map") == pytest.approx(0.75)
        assert log.phase_seconds("job", "reduce") == 0.0
        assert len(log.select(job="job")) == 2
        assert log.select(kind=EventKind.JOB_START) == []


class TestFormatTraceCounterDeltas:
    def test_job_finish_renders_deltas_not_cumulative(self):
        log = EventLog()
        log.emit(EventKind.JOB_START, "j")
        log.emit(
            EventKind.PHASE_FINISH,
            "j",
            phase="map",
            duration_s=0.1,
            counters={"framework": {"shuffle_records": 8}},
        )
        log.emit(
            EventKind.JOB_FINISH,
            "j",
            duration_s=0.2,
            counters={"framework": {"shuffle_records": 8,
                                    "reduce_output_records": 2}},
        )
        trace = format_trace(log)
        phase_line, job_line = trace.splitlines()[1:3]
        assert "shuffle=8" in phase_line
        # Job finish is differenced against the phase snapshot: only the
        # reduce output is new.
        assert "reduce_out=2" in job_line
        assert "shuffle" not in job_line

    def test_task_counters_render_per_attempt(self):
        log = EventLog()
        log.emit(
            EventKind.TASK_FINISH,
            "j",
            phase="map",
            task_id=0,
            attempt=1,
            duration_s=0.01,
            counters={"framework": {"map_input_records": 5},
                      "custom": {"hits": 2}},
        )
        line = format_trace(log)
        assert "map_in=5" in line
        assert "custom.hits=2" in line


# -- spans --------------------------------------------------------------


class TestSpanTracer:
    def test_nesting_and_parentage(self):
        tracer = SpanTracer()
        with tracer.span("run", "run") as run:
            with tracer.span("stage", "stage") as stage:
                assert tracer.current is stage
            assert tracer.current is run
        assert tracer.current is None
        run_span, stage_span = tracer.spans
        assert run_span.parent_id is None
        assert stage_span.parent_id == run_span.span_id
        assert stage_span.end_s is not None
        assert run_span.duration_s >= stage_span.duration_s

    def test_close_ends_dangling_spans(self):
        tracer = SpanTracer()
        tracer.begin("run", "run")
        tracer.begin("stage", "stage")
        tracer.close()
        assert all(s.end_s is not None for s in tracer.spans)
        assert tracer.current is None

    def test_add_complete_does_not_touch_stack(self):
        tracer = SpanTracer()
        parent = tracer.begin("phase", "phase")
        span = tracer.add_complete(
            "task0", "task", start_s=0.5, duration_s=0.25, task_id=0
        )
        assert tracer.current is parent
        assert span.parent_id == parent.span_id
        assert span.end_s == pytest.approx(0.75)

    def test_jsonl_export_round_trips(self):
        tracer = SpanTracer()
        with tracer.span("run", "run", n=10):
            pass
        record = json.loads(spans_to_jsonl(tracer.spans))
        assert record["name"] == "run" and record["kind"] == "run"
        assert record["attrs"] == {"n": 10}
        assert record["duration_s"] == pytest.approx(
            record["end_s"] - record["start_s"], abs=1e-5
        )

    def test_chrome_trace_structure(self):
        tracer = SpanTracer()
        with tracer.span("run", "run"):
            with tracer.span("job", "job"):
                tracer.add_complete(
                    "t7", "task", start_s=0.0, duration_s=0.001, task_id=7
                )
        trace = spans_to_chrome_trace(tracer.spans)
        events = trace["traceEvents"]
        assert {e["ph"] for e in events} == {"X"}
        assert all(e["pid"] == 1 for e in events)
        by_name = {e["name"]: e for e in events}
        # Hierarchy spans share tid=1; tasks get their own lane.
        assert by_name["run"]["tid"] == 1 and by_name["job"]["tid"] == 1
        assert by_name["t7"]["tid"] == 2 + 7
        assert by_name["t7"]["dur"] == pytest.approx(1000.0)  # µs
        assert by_name["job"]["args"]["parent_id"] == by_name["run"]["args"][
            "span_id"
        ]


# -- metrics ------------------------------------------------------------


class TestMetricsRegistry:
    def test_snapshot_golden(self):
        metrics = MetricsRegistry()
        metrics.count("kills.poisson", 3)
        metrics.count("kills.poisson")
        metrics.gauge("em.iterations", 4)
        metrics.gauge("em.iterations", 7)  # last write wins
        metrics.record_all("em.log_likelihood", [-10.0, -8.5, -8.4])
        metrics.observe("durations", 0.002, buckets=(0.001, 0.01, 0.1))
        metrics.observe("durations", 0.05, buckets=(0.001, 0.01, 0.1))
        metrics.observe("durations", 99.0)

        snap = metrics.snapshot()
        assert snap["counters"] == {"kills.poisson": 4}
        assert snap["gauges"] == {"em.iterations": 7.0}
        assert snap["series"] == {"em.log_likelihood": [-10.0, -8.5, -8.4]}
        hist = snap["histograms"]["durations"]
        assert hist["count"] == 3
        assert hist["min"] == pytest.approx(0.002)
        assert hist["max"] == pytest.approx(99.0)
        # Cumulative le-buckets (first observe fixed the bucket bounds).
        assert hist["buckets"] == {
            "le_0.001": 0,
            "le_0.01": 1,
            "le_0.1": 2,
            "le_inf": 3,
        }

    def test_counter_rejects_negative_increment(self):
        with pytest.raises(ValueError):
            MetricsRegistry().count("x", -1)

    def test_queries_on_missing_names(self):
        metrics = MetricsRegistry()
        assert metrics.counter_value("nope") == 0
        assert metrics.gauge_value("nope", default=1.5) == 1.5
        assert metrics.series_values("nope") == []

    def test_empty_histogram_snapshot_is_stable(self):
        hist = Histogram(buckets=(1.0,))
        snap = hist.snapshot()
        assert snap["count"] == 0 and snap["min"] == 0.0 and snap["max"] == 0.0

    def test_histogram_rejects_empty_buckets(self):
        with pytest.raises(ValueError):
            Histogram(buckets=())


# -- resources ----------------------------------------------------------


class TestResources:
    def test_peak_rss_positive_on_posix(self):
        assert peak_rss_kb() > 0

    def test_duration_stats_empty(self):
        stats = duration_stats([])
        assert stats == {
            "tasks": 0, "p50_s": 0.0, "p95_s": 0.0,
            "max_s": 0.0, "mean_s": 0.0, "skew_ratio": 0.0,
        }

    def test_duration_stats_percentiles_and_skew(self):
        stats = duration_stats([1.0, 1.0, 1.0, 5.0])
        assert stats["tasks"] == 4
        assert stats["p50_s"] == pytest.approx(1.0)
        assert stats["max_s"] == pytest.approx(5.0)
        assert stats["mean_s"] == pytest.approx(2.0)
        assert stats["skew_ratio"] == pytest.approx(2.5)

    def test_single_task_is_balanced(self):
        assert duration_stats([0.3])["skew_ratio"] == pytest.approx(1.0)


# -- the Observability context on a real MR run -------------------------


class TestObservabilityBridge:
    def test_event_bridge_builds_full_hierarchy(self):
        obs = Observability()
        with obs.run("test_run", n=9):
            with obs.stage("counting"):
                _run_wordcount(obs)

        kinds = [s.kind for s in obs.tracer.spans]
        assert kinds.count("run") == 1
        assert kinds.count("stage") == 1
        assert kinds.count("job") == 1
        assert kinds.count("phase") == 2  # map + reduce
        assert kinds.count("task") == 3  # 2 map + 1 reduce
        assert all(s.end_s is not None for s in obs.tracer.spans)

        by_kind = {s.kind: s for s in obs.tracer.spans}
        assert by_kind["stage"].parent_id == by_kind["run"].span_id
        assert by_kind["job"].parent_id == by_kind["stage"].span_id
        task_parents = {
            s.parent_id for s in obs.tracer.spans if s.kind == "task"
        }
        phase_ids = {
            s.span_id for s in obs.tracer.spans if s.kind == "phase"
        }
        assert task_parents <= phase_ids

        assert obs.metrics.counter_value("mr.jobs") == 1
        hist = obs.metrics.snapshot()["histograms"]["mr.task_duration_s"]
        assert hist["count"] == 3
        # Job + two phase boundaries + run end produced memory samples.
        assert len(obs.resources.samples) >= 4

    def test_run_context_detaches_bridge(self):
        obs = Observability()
        with obs.run("r"):
            chain = _run_wordcount(obs)
        spans_after = len(obs.tracer.spans)
        # Further jobs on the same runtime are no longer observed.
        job = Job(mapper_factory=WordCountMapper, reducer_factory=SumReducer)
        chain.run("again", job, _text_splits(), num_reducers=1)
        assert len(obs.tracer.spans) == spans_after

    def test_disabled_context_records_nothing(self):
        obs = Observability(enabled=False)
        with obs.run("r") as span:
            assert span is None
            with obs.stage("s") as stage:
                assert stage is None
            obs.count("c")
            obs.gauge("g", 1)
            obs.record("s", 1)
            obs.observe_events(EventLog())
        assert obs.tracer.spans == []
        assert obs.metrics.snapshot() == {
            "counters": {}, "gauges": {}, "series": {}, "histograms": {},
        }

    def test_null_obs_is_disabled(self):
        assert NULL_OBS.enabled is False


# -- the run report -----------------------------------------------------


class TestRunReport:
    def _report(self):
        obs = Observability()
        with obs.run("test_run"):
            obs.gauge("em.iterations", 3)
            chain = _run_wordcount(obs)
        return build_run_report(
            "wordcount",
            obs=obs,
            chain=chain,
            dataset={"n": 3, "d": 1},
            result={"num_clusters": 0},
            wall_time_s=0.5,
        )

    def test_build_and_validate(self):
        report = self._report()
        assert validate_run_report(report) == []
        assert report["schema"] == "repro.obs/run-report/v1"
        assert report["totals"]["mr_jobs"] == 1
        job = report["jobs"][0]
        assert job["name"] == "wordcount"
        assert job["map_tasks"] == 2 and job["reduce_tasks"] == 1
        assert job["task_durations"]["tasks"] == 3
        assert report["metrics"]["gauges"]["em.iterations"] == 3.0
        assert report["resources"]["peak_rss_kb"] > 0
        assert {s["kind"] for s in report["spans"]} == {
            "run", "job", "phase", "task",
        }

    def test_report_survives_json_round_trip(self, tmp_path):
        from repro.obs import load_run_report, save_run_report

        report = self._report()
        path = tmp_path / "run.json"
        save_run_report(str(path), report)
        assert validate_run_report(load_run_report(str(path))) == []

    def test_degrades_without_chain_and_obs(self):
        report = build_run_report("serial", dataset={"n": 5, "d": 2})
        assert validate_run_report(report) == []
        assert report["jobs"] == [] and report["spans"] == []
        assert report["metrics"] == {}

    def test_validate_flags_problems(self):
        report = self._report()
        report["schema"] = "bogus/v9"
        del report["totals"]
        report["jobs"][0].pop("executor")
        report["jobs"][0]["task_durations"].pop("skew_ratio")
        errors = validate_run_report(report)
        assert any("schema" in e for e in errors)
        assert any("totals" in e for e in errors)
        assert any("executor" in e for e in errors)
        assert any("skew_ratio" in e for e in errors)
        assert validate_run_report("not a mapping") != []

    def test_render_mentions_jobs_and_metrics(self):
        text = render_run_report(self._report())
        assert "wordcount" in text
        assert "1 MR jobs" in text
        assert "em.iterations" in text
        assert "peak RSS" in text


# -- per-run scoping ----------------------------------------------------


class TestPerRunScoping:
    def test_metrics_registry_chains_to_parent(self):
        parent = MetricsRegistry()
        child = MetricsRegistry(parent=parent)
        child.count("mr.jobs", 2)
        child.gauge("clusters.found", 3)
        child.observe("durations", 0.5)
        assert child.snapshot()["counters"] == {"mr.jobs": 2}
        assert parent.snapshot()["counters"] == {"mr.jobs": 2}
        assert parent.snapshot()["gauges"] == {"clusters.found": 3.0}
        assert parent.snapshot()["histograms"]["durations"]["count"] == 1

    def test_for_run_returns_fresh_scope_once(self):
        base = Observability(enabled=True)
        scope = base.for_run("run-1")
        assert scope is not base
        assert scope.run_id == "run-1"
        # Already-scoped obs passes through unchanged (the service hands
        # drivers a pre-scoped context; drivers must not re-wrap it).
        assert scope.for_run("run-2") is scope
        # Disabled obs never allocates scopes.
        assert NULL_OBS.for_run("run-3") is NULL_OBS

    def test_back_to_back_driver_runs_report_disjointly(self, tiny_dataset):
        """Regression: two fits sharing one obs used to interleave
        their spans and sum their counters into a single report."""
        from repro.mr import P3CPlusMRConfig, P3CPlusMRLight

        base = Observability(enabled=True)
        data = tiny_dataset.data
        algo1 = P3CPlusMRLight(
            mr_config=P3CPlusMRConfig(num_splits=4), obs=base
        )
        algo1.fit(data)
        scope1, chain1 = algo1.obs, algo1.chain
        algo2 = P3CPlusMRLight(
            mr_config=P3CPlusMRConfig(num_splits=4), obs=base
        )
        algo2.fit(data)
        scope2, chain2 = algo2.obs, algo2.chain

        # Each fit wrote to its own scope with its own run id ...
        assert scope1 is not base and scope2 is not base
        assert scope1 is not scope2
        assert scope1.run_id != scope2.run_id
        for scope, chain in ((scope1, chain1), (scope2, chain2)):
            counters = scope.metrics.snapshot()["counters"]
            assert counters["mr.jobs"] == chain.num_jobs
        # ... every span carries its run id ...
        for scope in (scope1, scope2):
            assert all(
                span.attrs.get("run_id") == scope.run_id
                for span in scope.tracer.spans
            )
        # ... and the base aggregates both runs instead of mixing them.
        base_counters = base.metrics.snapshot()["counters"]
        assert base_counters["mr.jobs"] == chain1.num_jobs + chain2.num_jobs
        report1 = build_run_report("mr-light", obs=scope1, chain=chain1)
        report2 = build_run_report("mr-light", obs=scope2, chain=chain2)
        assert (
            report1["metrics"]["counters"]["mr.jobs"] == chain1.num_jobs
        )
        assert (
            report2["metrics"]["counters"]["mr.jobs"] == chain2.num_jobs
        )

    def test_concurrent_writers_roll_up_to_parent(self):
        """Two chains writing through their own for_run scopes from
        separate threads: each child sees only its own writes, and the
        parent aggregate is exactly the sum — no lost updates."""
        import threading

        base = Observability(enabled=True)
        scopes = [base.for_run(f"run-{i}") for i in range(2)]
        per_writer = 5000

        def pound(scope) -> None:
            for i in range(per_writer):
                scope.count("mr.jobs")
                scope.observe("mr.task_duration_s", (i % 10) / 100.0)

        workers = [
            threading.Thread(target=pound, args=(scope,))
            for scope in scopes
        ]
        for worker in workers:
            worker.start()
        for worker in workers:
            worker.join()
        for scope in scopes:
            snapshot = scope.metrics.snapshot()
            assert snapshot["counters"]["mr.jobs"] == per_writer
            assert (
                snapshot["histograms"]["mr.task_duration_s"]["count"]
                == per_writer
            )
        aggregate = base.metrics.snapshot()
        assert aggregate["counters"]["mr.jobs"] == 2 * per_writer
        assert (
            aggregate["histograms"]["mr.task_duration_s"]["count"]
            == 2 * per_writer
        )

    def test_telemetry_plane_is_shared_across_scopes(self):
        """for_run scoping keeps per-run isolation, but the telemetry
        plane is service-lifetime: children share the parent's."""
        from repro.obs.telemetry import TelemetryHub

        base = Observability(enabled=True)
        hub = TelemetryHub()
        base.telemetry = hub
        scope = base.for_run("run-1")
        assert scope.telemetry is hub
