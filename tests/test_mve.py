"""Tests for the exact(er) MVE estimator — the paper's unevaluated
extension (Section 4.2.2)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.outliers import (
    detect_outliers_mve,
    minimum_volume_enclosing_ellipsoid,
    mvb_estimate,
    mve_estimate,
)
from repro.core.p3c_plus import P3CPlus, P3CPlusConfig


class TestMVEE:
    def test_contains_all_points(self, rng):
        points = rng.normal(size=(80, 3))
        center, shape = minimum_volume_enclosing_ellipsoid(points)
        diff = points - center
        distances = np.einsum("ij,jk,ik->i", diff, shape, diff)
        assert distances.max() <= 1.05  # tolerance of the iteration

    def test_sphere_for_symmetric_cloud(self, rng):
        points = rng.normal(size=(3_000, 2))
        _, shape = minimum_volume_enclosing_ellipsoid(points, tolerance=1e-6)
        eigenvalues = np.linalg.eigvalsh(shape)
        assert eigenvalues.max() / eigenvalues.min() < 2.5

    def test_elongated_cloud_yields_elongated_ellipsoid(self, rng):
        points = rng.normal(size=(500, 2)) * np.array([10.0, 0.1])
        _, shape = minimum_volume_enclosing_ellipsoid(points, tolerance=1e-6)
        eigenvalues = np.linalg.eigvalsh(shape)
        assert eigenvalues.max() / eigenvalues.min() > 100

    def test_tighter_than_bounding_sphere(self, rng):
        """The MVEE of an elongated cloud has far less volume than the
        minimum enclosing sphere."""
        points = rng.normal(size=(300, 2)) * np.array([5.0, 0.05])
        _, shape = minimum_volume_enclosing_ellipsoid(points, tolerance=1e-6)
        # volume ∝ 1/sqrt(det(shape)); sphere radius >= max |x|.
        ellipsoid_volume = 1.0 / np.sqrt(np.linalg.det(shape))
        radius = np.linalg.norm(points, axis=1).max()
        sphere_volume = radius**2
        assert ellipsoid_volume < 0.5 * sphere_volume

    def test_single_point(self):
        center, shape = minimum_volume_enclosing_ellipsoid(
            np.array([[0.3, 0.7]])
        )
        assert center == pytest.approx([0.3, 0.7])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            minimum_volume_enclosing_ellipsoid(np.empty((0, 2)))


class TestMVEEstimate:
    def test_resists_masking(self, rng):
        core = rng.normal(0.3, 0.01, size=(200, 2))
        heavy = np.full((60, 2), 0.9)
        points = np.vstack([core, heavy])
        estimate = mve_estimate(points)
        assert estimate.mean[0] == pytest.approx(0.3, abs=0.02)

    def test_converges(self, rng):
        points = rng.normal(0.5, 0.05, size=(150, 3))
        estimate = mve_estimate(points)
        assert estimate.iterations <= 20
        assert estimate.subset_size >= len(points) // 2

    def test_elongated_cluster_tighter_than_mvb(self, rng):
        """The paper's conjecture: on anisotropic clusters the ellipsoid
        fits better than the ball, giving a smaller covariance volume."""
        points = rng.normal(0.0, 1.0, size=(400, 2)) * np.array([0.2, 0.005])
        points += 0.5
        mve = mve_estimate(points)
        mvb = mvb_estimate(points)
        assert np.linalg.det(mve.covariance) <= np.linalg.det(
            mvb.covariance
        ) * 1.5


class TestMVEDetector:
    def test_flags_injected_outliers(self, rng):
        points = rng.normal(0.5, 0.02, size=(300, 3))
        outliers = np.full((8, 3), 0.95)
        data = np.vstack([points, outliers])
        flags, _ = detect_outliers_mve(data, alpha=0.001)
        assert flags[-8:].all()
        assert flags[:300].mean() < 0.05

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            detect_outliers_mve(np.empty((0, 2)))

    def test_tiny_cluster_flags_nothing(self, rng):
        points = rng.uniform(size=(4, 6))
        flags, _ = detect_outliers_mve(points)
        assert not flags.any()


class TestPipelineIntegration:
    def test_mve_outlier_method_runs(self, tiny_dataset):
        config = P3CPlusConfig(outlier_method="mve")
        result = P3CPlus(config).fit(tiny_dataset.data)
        assert result.n_points == len(tiny_dataset.data)
        assert result.num_clusters >= 1
