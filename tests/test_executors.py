"""Tests for the pluggable executor layer and the runtime event stream:
backend resolution, serial/thread/process parity (down to the full
P3C+-MR pipeline on the Figure-6 small config), parallel reduce, and
per-attempt trace events.
"""

from __future__ import annotations

import time
from typing import Any

import numpy as np
import pytest

from repro.core.types import ClusteringResult
from repro.mapreduce import (
    Context,
    EventKind,
    Job,
    JobConf,
    Mapper,
    MapReduceRuntime,
    ProcessExecutor,
    Reducer,
    SerialExecutor,
    ThreadExecutor,
    resolve_executor,
)
from repro.mapreduce.events import format_trace
from repro.mapreduce.executors import Executor
from repro.mapreduce.types import split_records
from repro.mr import P3CPlusMR, P3CPlusMRConfig

EXECUTOR_NAMES = ("serial", "thread", "process")


class WordCountMapper(Mapper):
    def map(self, key: Any, value: str, context: Context) -> None:
        for word in value.split():
            context.emit(word, 1)


class SumReducer(Reducer):
    def reduce(self, key: Any, values: list[int], context: Context) -> None:
        context.emit(key, sum(values))


def _text_splits():
    lines = [
        (0, "the quick brown fox"),
        (1, "the lazy dog"),
        (2, "the quick dog"),
        (3, "fox and dog and fox"),
    ]
    return split_records(lines, 2)


def _double(x: int) -> int:
    return 2 * x


def _maybe_fail(x: int) -> int:
    if x == 2:
        raise ValueError("boom")
    return x


class TestResolveExecutor:
    def test_auto_rule(self):
        assert isinstance(resolve_executor(None), SerialExecutor)
        assert isinstance(resolve_executor(None, 1), SerialExecutor)
        assert isinstance(resolve_executor(None, 3), ProcessExecutor)

    def test_by_name(self):
        assert isinstance(resolve_executor("serial"), SerialExecutor)
        assert isinstance(resolve_executor("thread", 2), ThreadExecutor)
        assert isinstance(resolve_executor("process", 2), ProcessExecutor)

    def test_instance_passthrough(self):
        backend = ThreadExecutor(2)
        assert resolve_executor(backend) is backend

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError, match="unknown executor"):
            resolve_executor("gpu")

    def test_invalid_worker_count_rejected(self):
        with pytest.raises(ValueError):
            ThreadExecutor(0)


class TestRunBatch:
    @pytest.mark.parametrize(
        "backend",
        [SerialExecutor(), ThreadExecutor(2), ProcessExecutor(2)],
        ids=EXECUTOR_NAMES,
    )
    def test_results_in_call_order(self, backend: Executor):
        outcomes = backend.run_batch(_double, [(i,) for i in range(6)])
        assert [o.value for o in outcomes] == [0, 2, 4, 6, 8, 10]
        assert all(o.error is None for o in outcomes)

    @pytest.mark.parametrize(
        "backend",
        [SerialExecutor(), ThreadExecutor(2), ProcessExecutor(2)],
        ids=EXECUTOR_NAMES,
    )
    def test_errors_captured_not_raised(self, backend: Executor):
        outcomes = backend.run_batch(_maybe_fail, [(i,) for i in range(4)])
        assert [o.value for o in outcomes] == [0, 1, None, 3]
        assert isinstance(outcomes[2].error, ValueError)


class _SpyExecutor(Executor):
    """Delegating backend that records every batch it executes."""

    name = "spy"

    def __init__(self, inner: Executor) -> None:
        self.inner = inner
        self.batches: list[tuple[str, int]] = []

    def run_batch(self, fn, calls):
        self.batches.append((fn.__name__, len(calls)))
        return self.inner.run_batch(fn, calls)


class TestExecutorDispatch:
    def test_both_phases_run_through_the_executor(self):
        spy = _SpyExecutor(ThreadExecutor(2))
        runtime = MapReduceRuntime(executor=spy)
        job = Job(mapper_factory=WordCountMapper, reducer_factory=SumReducer)
        result = runtime.run(job, _text_splits(), JobConf(num_reducers=4))
        assert result.executor == "spy"
        assert spy.batches == [("_run_map_task", 2), ("_run_reduce_task", 4)]
        assert result.num_map_tasks == 2
        assert result.num_reduce_tasks == 4

    def test_jobconf_overrides_runtime_default(self):
        runtime = MapReduceRuntime()  # serial default
        job = Job(mapper_factory=WordCountMapper, reducer_factory=SumReducer)
        result = runtime.run(
            job, _text_splits(), JobConf(executor="thread", num_reducers=2)
        )
        assert result.executor == "thread"
        assert runtime.run(job, _text_splits(), JobConf()).executor == "serial"


class TestExecutorParity:
    def _run(self, name: str, num_reducers: int):
        runtime = MapReduceRuntime(executor=name, max_workers=2)
        job = Job(mapper_factory=WordCountMapper, reducer_factory=SumReducer)
        return runtime.run(job, _text_splits(), JobConf(num_reducers=num_reducers))

    @pytest.mark.parametrize("num_reducers", [1, 3])
    def test_wordcount_bit_identical(self, num_reducers: int):
        results = [self._run(name, num_reducers) for name in EXECUTOR_NAMES]
        baseline = results[0]
        for other in results[1:]:
            assert other.output == baseline.output  # order included
            assert other.counters.snapshot() == baseline.counters.snapshot()

    def test_full_pipeline_bit_identical(self):
        """All three executors on the full P3C+-MR pipeline, Figure-6
        small config (smallest QUICK_SCALE cell): bit-identical results."""
        from repro.experiments.configs import QUICK_SCALE
        from repro.experiments.runner import make_dataset

        dataset = make_dataset(
            QUICK_SCALE.sizes[0],
            QUICK_SCALE.dims,
            QUICK_SCALE.num_clusters[0],
            QUICK_SCALE.noise_levels[2],
            QUICK_SCALE.seed,
        )
        results = []
        for name in EXECUTOR_NAMES:
            driver = P3CPlusMR(
                mr_config=P3CPlusMRConfig(executor=name, max_workers=2)
            )
            results.append(driver.fit(dataset.data))
        _assert_identical_results(results[0], results[1])
        _assert_identical_results(results[0], results[2])


def _assert_identical_results(a: ClusteringResult, b: ClusteringResult) -> None:
    assert a.n_points == b.n_points and a.n_dims == b.n_dims
    assert np.array_equal(a.outliers, b.outliers)
    assert len(a.clusters) == len(b.clusters)
    for ca, cb in zip(a.clusters, b.clusters):
        assert np.array_equal(ca.members, cb.members)
        assert ca.relevant_attributes == cb.relevant_attributes
        assert ca.signature == cb.signature
    assert a.metadata == b.metadata


class TestEvents:
    def test_job_lifecycle_events(self):
        runtime = MapReduceRuntime()
        job = Job(mapper_factory=WordCountMapper, reducer_factory=SumReducer)
        result = runtime.run(job, _text_splits(), JobConf(name="wc"))
        kinds = [e.kind for e in result.events]
        assert kinds[0] == EventKind.JOB_START
        assert kinds[-1] == EventKind.JOB_FINISH
        assert kinds.count(EventKind.PHASE_START) == 2  # map + reduce
        assert kinds.count(EventKind.PHASE_FINISH) == 2
        # One start and one finish per task attempt: 2 maps + 1 reduce.
        assert kinds.count(EventKind.TASK_START) == 3
        assert kinds.count(EventKind.TASK_FINISH) == 3

    def test_task_finish_carries_counters_and_timing(self):
        runtime = MapReduceRuntime()
        job = Job(mapper_factory=WordCountMapper, reducer_factory=SumReducer)
        result = runtime.run(job, _text_splits(), JobConf(name="wc"))
        finishes = [
            e
            for e in result.events
            if e.kind == EventKind.TASK_FINISH and e.phase == "map"
        ]
        assert all(e.duration_s is not None for e in finishes)
        assert (
            sum(e.counter("framework", "map_input_records") for e in finishes)
            == 4
        )

    def test_phase_seconds_and_log_queries(self):
        runtime = MapReduceRuntime()
        job = Job(mapper_factory=WordCountMapper, reducer_factory=SumReducer)
        result = runtime.run(job, _text_splits(), JobConf(name="wc"))
        assert result.phase_seconds("map") > 0
        assert runtime.events.phase_seconds("wc", "map") == pytest.approx(
            result.phase_seconds("map")
        )
        assert runtime.events.task_attempts("wc") == 3

    def test_format_trace_renders_every_event(self):
        runtime = MapReduceRuntime()
        job = Job(mapper_factory=WordCountMapper, reducer_factory=SumReducer)
        result = runtime.run(job, _text_splits(), JobConf(name="wc"))
        trace = format_trace(result.events)
        assert trace.count("\n") + 1 == len(result.events)
        assert "job_start" in trace and "task_finish" in trace

    def test_events_to_jsonl_round_trips(self):
        import json

        from repro.mapreduce import events_to_jsonl

        runtime = MapReduceRuntime()
        job = Job(mapper_factory=WordCountMapper, reducer_factory=SumReducer)
        result = runtime.run(job, _text_splits(), JobConf(name="wc"))
        lines = events_to_jsonl(result.events).splitlines()
        records = [json.loads(line) for line in lines]
        assert len(records) == len(result.events)
        assert records[0]["kind"] == "job_start"
        assert records[0]["job"] == "wc"

    def test_serial_and_thread_emit_same_event_shape(self):
        def run(name: str, pipelined=None):
            runtime = MapReduceRuntime(executor=name, max_workers=2)
            job = Job(mapper_factory=WordCountMapper, reducer_factory=SumReducer)
            result = runtime.run(
                job,
                _text_splits(),
                JobConf(name="wc", num_reducers=2, pipelined=pipelined),
            )
            return [
                (e.kind, e.phase, e.task_id, e.attempt) for e in result.events
            ]

        # Barrier scheduling: the event streams match exactly.
        assert run("serial") == run("thread", pipelined=False)
        # Pipelined scheduling settles tasks in completion order, so the
        # interleaving may differ — but the event multiset must not.
        assert sorted(run("serial")) == sorted(run("thread"))


class _StragglerMapper(Mapper):
    """Map task 0 sleeps; the others finish fast.  With a partition
    hint, their reduce partitions become ready while task 0 runs."""

    def map(self, key: Any, value: int, context: Context) -> None:
        if context.task_id == 0:
            time.sleep(0.25)
        context.emit(context.task_id, value)


class TestPipelinedReduce:
    NUM_SPLITS = 4

    def _splits(self):
        return split_records([(i, i) for i in range(20)], self.NUM_SPLITS)

    def _hint(self, task_id: int) -> list[int]:
        # Each map task emits only its own task_id as key.
        from repro.mapreduce import HashPartitioner

        return [HashPartitioner().partition(task_id, self.NUM_SPLITS)]

    def _run(self, pipelined: bool | None, partition_hint=None):
        runtime = MapReduceRuntime(executor="thread", max_workers=2)
        job = Job(
            mapper_factory=_StragglerMapper,
            reducer_factory=SumReducer,
            partition_hint=partition_hint,
        )
        result = runtime.run(
            job,
            self._splits(),
            JobConf(
                name="straggle",
                num_reducers=self.NUM_SPLITS,
                pipelined=pipelined,
            ),
        )
        return result

    def test_reduce_starts_before_last_map_finishes(self):
        """The point of pipelining: with partition hints, reduces for
        delivered partitions launch under the straggling map task."""
        from repro.mapreduce import Counters

        result = self._run(pipelined=True, partition_hint=self._hint)
        assert (
            result.counters.framework_value(Counters.PIPELINED_REDUCES) >= 1
        )
        map_finish = next(
            e.time_s
            for e in result.events
            if e.kind == EventKind.PHASE_FINISH and e.phase == "map"
        )
        first_reduce_start = min(
            e.time_s
            for e in result.events
            if e.kind == EventKind.TASK_START and e.phase == "reduce"
        )
        assert first_reduce_start < map_finish

    def test_pipelined_output_matches_barrier(self):
        from repro.mapreduce import Counters

        def framework(result):
            counts = dict(result.counters.snapshot()["framework"])
            counts.pop(Counters.PIPELINED_REDUCES, None)
            return counts

        baseline = self._run(pipelined=False)
        for hint in (None, self._hint):
            pipelined = self._run(pipelined=True, partition_hint=hint)
            assert pipelined.output == baseline.output
            assert framework(pipelined) == framework(baseline)

    def test_without_hints_no_early_dispatch(self):
        """No partition hint → readiness degrades to the full map
        barrier; the pipelined counter must stay zero."""
        from repro.mapreduce import Counters

        result = self._run(pipelined=True, partition_hint=None)
        assert (
            result.counters.framework_value(Counters.PIPELINED_REDUCES) == 0
        )

    def test_lying_partition_hint_fails_loudly(self):
        """A hint that under-declares partitions must raise, not
        silently drop or mis-route the undeclared bucket."""
        from repro.mapreduce import ShuffleIntegrityError, TaskFailedError

        with pytest.raises(TaskFailedError) as info:
            self._run(pipelined=True, partition_hint=lambda task_id: [])
        assert isinstance(info.value.cause, ShuffleIntegrityError)


class TestCalibration:
    def test_calibrate_from_events(self):
        from repro.mapreduce import ClusterCostModel, calibrate_from_events

        runtime = MapReduceRuntime()
        job = Job(mapper_factory=WordCountMapper, reducer_factory=SumReducer)
        runtime.run(job, _text_splits(), JobConf(name="wc"))
        base = ClusterCostModel()
        fitted = calibrate_from_events(runtime.events, base=base)
        assert fitted.map_record_cost_s > 0
        assert fitted.map_record_cost_s != base.map_record_cost_s
        assert fitted.reduce_record_cost_s > 0
        # Constants without a local observable keep their defaults.
        assert fitted.shuffle_record_cost_s == base.shuffle_record_cost_s
        assert fitted.job_overhead_s == base.job_overhead_s

    def test_calibrate_with_no_events_is_identity(self):
        from repro.mapreduce import ClusterCostModel, calibrate_from_events

        base = ClusterCostModel()
        assert calibrate_from_events([], base=base) == base

    def test_model_shorthand(self):
        from repro.mapreduce import ClusterCostModel

        runtime = MapReduceRuntime()
        job = Job(mapper_factory=WordCountMapper, reducer_factory=SumReducer)
        runtime.run(job, _text_splits(), JobConf(name="wc"))
        fitted = ClusterCostModel().calibrate(runtime.events)
        assert fitted.map_record_cost_s > 0
