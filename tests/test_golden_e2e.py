"""Golden end-to-end regression: exact clustering output snapshot.

``tests/golden/mr_light_tiny.json`` pins the full P3C+-MR-Light result
(cluster memberships, relevant attributes, outlier set, job count) for
the fixed-seed tiny dataset.  Any change to this output — from the
runtime, the fault-tolerance machinery or the algorithm itself — fails
the comparison *exactly*, not approximately.

Chaos runs must reproduce the same snapshot: injected faults are
recovered by retries and shuffle-integrity validation, so they may
never leak into results.

Regenerating after an intentional algorithm change::

    PYTHONPATH=src python tests/test_golden_e2e.py regen
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

import pytest

from repro.data import GeneratorConfig, generate_synthetic
from repro.mapreduce import FaultPlan
from repro.mr import P3CPlusMRConfig, P3CPlusMRLight

GOLDEN_PATH = Path(__file__).parent / "golden" / "mr_light_tiny.json"

CHAOS_SPEC = "map:error:p=0.25;reduce:error:p=0.2;map:corrupt:p=0.15"


def _dataset():
    return generate_synthetic(
        GeneratorConfig(
            n=600,
            d=8,
            num_clusters=2,
            noise_fraction=0.10,
            max_cluster_dims=4,
            seed=5,
        )
    )


def _snapshot(mr_config: P3CPlusMRConfig) -> dict:
    algo = P3CPlusMRLight(mr_config=mr_config)
    result = algo.fit(_dataset().data)
    return {
        "schema": "repro.tests/golden-mr-light/v1",
        "dataset": {
            "n": 600,
            "d": 8,
            "num_clusters": 2,
            "noise_fraction": 0.10,
            "max_cluster_dims": 4,
            "seed": 5,
        },
        "config": {"num_splits": 4},
        "clusters": sorted(
            (
                {
                    "members": sorted(int(m) for m in c.members),
                    "relevant_attributes": sorted(
                        int(a) for a in c.relevant_attributes
                    ),
                }
                for c in result.clusters
            ),
            key=lambda c: (c["members"], c["relevant_attributes"]),
        ),
        "outliers": sorted(int(i) for i in result.outliers),
        "num_mr_jobs": algo.chain.num_jobs,
    }


@pytest.fixture(scope="module")
def golden() -> dict:
    with open(GOLDEN_PATH, "r", encoding="utf-8") as handle:
        return json.load(handle)


def test_clean_run_matches_golden_exactly(golden):
    assert _snapshot(P3CPlusMRConfig(num_splits=4)) == golden


@pytest.mark.parametrize("seed", [0, 3])
def test_chaos_run_matches_golden_exactly(golden, seed):
    plan = FaultPlan.parse(CHAOS_SPEC, seed=seed)
    assert _snapshot(P3CPlusMRConfig(num_splits=4, fault_plan=plan)) == golden


def test_golden_snapshot_is_well_formed(golden):
    assert golden["schema"] == "repro.tests/golden-mr-light/v1"
    members = [m for c in golden["clusters"] for m in c["members"]]
    overlap = set(members) & set(golden["outliers"])
    assert not overlap  # members and outliers partition disjointly
    assert len(golden["clusters"]) >= 1
    assert golden["num_mr_jobs"] >= 5


if __name__ == "__main__" and "regen" in sys.argv:
    snapshot = _snapshot(P3CPlusMRConfig(num_splits=4))
    with open(GOLDEN_PATH, "w", encoding="utf-8") as handle:
        json.dump(snapshot, handle, indent=1, sort_keys=True)
        handle.write("\n")
    print(f"regenerated {GOLDEN_PATH}")
