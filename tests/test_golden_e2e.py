"""Golden end-to-end regression: exact clustering output snapshot.

``tests/golden/mr_light_tiny.json`` pins the full P3C+-MR-Light result
(cluster memberships, relevant attributes, outlier set, job count) for
the fixed-seed tiny dataset.  Any change to this output — from the
runtime, the fault-tolerance machinery or the algorithm itself — fails
the comparison *exactly*, not approximately.

``tests/golden/serve_probe.json`` extends the pin to the serving path:
the model auto-registered by the same fit, saved and re-loaded through
the registry, must score a frozen probe batch (including boundary,
out-of-range and non-finite rows) to exactly the snapshotted
assignments — and bitwise identically to the in-memory model.

Chaos runs must reproduce the same snapshot: injected faults are
recovered by retries and shuffle-integrity validation, so they may
never leak into results.

Regenerating after an intentional algorithm change::

    PYTHONPATH=src python tests/test_golden_e2e.py regen
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

import pytest

import numpy as np

from repro.data import GeneratorConfig, generate_synthetic
from repro.mapreduce import FaultPlan
from repro.mr import P3CPlusMRConfig, P3CPlusMRLight

GOLDEN_PATH = Path(__file__).parent / "golden" / "mr_light_tiny.json"
SERVE_GOLDEN_PATH = Path(__file__).parent / "golden" / "serve_probe.json"

CHAOS_SPEC = "map:error:p=0.25;reduce:error:p=0.2;map:corrupt:p=0.15"


def _probe_batch() -> np.ndarray:
    """Frozen 64-row probe: in-range points plus the awkward edges."""
    probe = np.random.default_rng(7).uniform(-0.1, 1.1, size=(64, 8))
    probe[0] = 0.0  # exact lower boundary
    probe[1] = 1.0  # exact upper boundary
    probe[2, 3] = np.nan  # non-finite on a (possibly relevant) attribute
    probe[3, 0] = np.inf
    probe[4, 5] = -np.inf
    return probe


def _dataset():
    return generate_synthetic(
        GeneratorConfig(
            n=600,
            d=8,
            num_clusters=2,
            noise_fraction=0.10,
            max_cluster_dims=4,
            seed=5,
        )
    )


def _snapshot(mr_config: P3CPlusMRConfig) -> dict:
    algo = P3CPlusMRLight(mr_config=mr_config)
    result = algo.fit(_dataset().data)
    return {
        "schema": "repro.tests/golden-mr-light/v1",
        "dataset": {
            "n": 600,
            "d": 8,
            "num_clusters": 2,
            "noise_fraction": 0.10,
            "max_cluster_dims": 4,
            "seed": 5,
        },
        "config": {"num_splits": 4},
        "clusters": sorted(
            (
                {
                    "members": sorted(int(m) for m in c.members),
                    "relevant_attributes": sorted(
                        int(a) for a in c.relevant_attributes
                    ),
                }
                for c in result.clusters
            ),
            key=lambda c: (c["members"], c["relevant_attributes"]),
        ),
        "outliers": sorted(int(i) for i in result.outliers),
        "num_mr_jobs": algo.chain.num_jobs,
    }


def _serve_snapshot() -> dict:
    """Fit, auto-register, reload through the registry, score the probe.

    Asserts along the way that the reloaded model scores bitwise
    identically to the in-memory one — the registry round trip may not
    perturb a single ULP.
    """
    import tempfile

    from repro.serving import ModelRegistry

    probe = _probe_batch()
    with tempfile.TemporaryDirectory() as root:
        mr_config = P3CPlusMRConfig(num_splits=4, model_registry=root)
        algo = P3CPlusMRLight(mr_config=mr_config)
        algo.fit(_dataset().data)
        assert algo.model_id is not None
        loaded = ModelRegistry(root).load("latest")
        in_memory = algo.fitted_model.assign(probe)
        served = loaded.assign(probe)
    assert np.array_equal(served.cluster_ids, in_memory.cluster_ids)
    assert np.array_equal(served.outlier_mask, in_memory.outlier_mask)
    assert np.array_equal(served.scores, in_memory.scores, equal_nan=True)
    return {
        "schema": "repro.tests/golden-serve-probe/v1",
        "model_id": algo.model_id,
        "algorithm": loaded.algorithm,
        "cluster_ids": [int(c) for c in served.cluster_ids],
        "outlier_mask": [bool(o) for o in served.outlier_mask],
        "scores": [
            float(s) if np.isfinite(s) else None for s in served.scores
        ],
    }


@pytest.fixture(scope="module")
def golden() -> dict:
    with open(GOLDEN_PATH, "r", encoding="utf-8") as handle:
        return json.load(handle)


def test_clean_run_matches_golden_exactly(golden):
    assert _snapshot(P3CPlusMRConfig(num_splits=4)) == golden


@pytest.mark.parametrize("seed", [0, 3])
def test_chaos_run_matches_golden_exactly(golden, seed):
    plan = FaultPlan.parse(CHAOS_SPEC, seed=seed)
    assert _snapshot(P3CPlusMRConfig(num_splits=4, fault_plan=plan)) == golden


def test_serve_probe_matches_golden_exactly():
    with open(SERVE_GOLDEN_PATH, "r", encoding="utf-8") as handle:
        serve_golden = json.load(handle)
    assert _serve_snapshot() == serve_golden


def test_golden_snapshot_is_well_formed(golden):
    assert golden["schema"] == "repro.tests/golden-mr-light/v1"
    members = [m for c in golden["clusters"] for m in c["members"]]
    overlap = set(members) & set(golden["outliers"])
    assert not overlap  # members and outliers partition disjointly
    assert len(golden["clusters"]) >= 1
    assert golden["num_mr_jobs"] >= 5


if __name__ == "__main__" and "regen" in sys.argv:
    snapshot = _snapshot(P3CPlusMRConfig(num_splits=4))
    with open(GOLDEN_PATH, "w", encoding="utf-8") as handle:
        json.dump(snapshot, handle, indent=1, sort_keys=True)
        handle.write("\n")
    print(f"regenerated {GOLDEN_PATH}")
    serve_snapshot = _serve_snapshot()
    with open(SERVE_GOLDEN_PATH, "w", encoding="utf-8") as handle:
        json.dump(serve_snapshot, handle, indent=1, sort_keys=True)
        handle.write("\n")
    print(f"regenerated {SERVE_GOLDEN_PATH}")
