"""Tests for the multi-tenant service plane: the fair-share slot pool
(weighted grants, quotas, cancellation, counters), the executor slot
lease seam, and the long-lived :class:`ClusterService` (submission,
cost-gated admission, per-tenant concurrency caps, cancel semantics,
per-run observability scoping).
"""

from __future__ import annotations

import threading
import time
from typing import Any

import pytest

from repro.mapreduce import (
    ClusterService,
    Context,
    FairShareSlotPool,
    Job,
    JobCancelledError,
    JobChain,
    Mapper,
    MapReduceRuntime,
    Reducer,
    SlotLease,
    TenantQuota,
    ThreadExecutor,
)
from repro.mapreduce.types import split_records
from repro.obs import Observability


def _wait_until(predicate, timeout: float = 5.0) -> None:
    deadline = time.perf_counter() + timeout
    while not predicate():
        if time.perf_counter() > deadline:
            raise AssertionError("condition not reached in time")
        time.sleep(0.005)


def _acquire_in_thread(
    pool: FairShareSlotPool,
    tenant: str,
    grants: list[str],
    cancel: threading.Event | None = None,
) -> threading.Thread:
    def run() -> None:
        pool.acquire(tenant, cancel=cancel)
        grants.append(tenant)

    thread = threading.Thread(target=run, daemon=True)
    thread.start()
    return thread


def _waiting(pool: FairShareSlotPool, tenant: str) -> int:
    return pool.snapshot()["waiting"].get(tenant, 0)


class TestFairShareSlotPool:
    def test_grants_up_to_slots_and_blocks_beyond(self):
        pool = FairShareSlotPool(2)
        pool.acquire("a")
        pool.acquire("a")
        grants: list[str] = []
        thread = _acquire_in_thread(pool, "a", grants)
        _wait_until(lambda: _waiting(pool, "a") == 1)
        assert grants == []
        pool.release("a")
        thread.join(timeout=5)
        assert grants == ["a"]

    def test_prefers_starved_tenant(self):
        # a holds the whole pool; waiters arrive as b then a.  The
        # freed slot must go to b (share 0) over a (share > 0), even
        # though a asked "first" in wall-clock terms is irrelevant —
        # starvation, not FIFO, orders grants.
        pool = FairShareSlotPool(2)
        pool.acquire("a")
        pool.acquire("a")
        grants: list[str] = []
        thread_b = _acquire_in_thread(pool, "b", grants)
        _wait_until(lambda: _waiting(pool, "b") == 1)
        thread_a = _acquire_in_thread(pool, "a", grants)
        _wait_until(lambda: _waiting(pool, "a") == 1)

        pool.release("a")
        thread_b.join(timeout=5)
        assert grants == ["b"]
        pool.release("a")
        thread_a.join(timeout=5)
        assert grants == ["b", "a"]

    def test_weight_scales_fair_share(self):
        # x, h (weight 2) and l (weight 1) each hold one slot; h and l
        # both wait for a second.  When x releases, h's share (1/2) is
        # below l's (1/1), so the heavier tenant is granted first.
        pool = FairShareSlotPool(3)
        pool.configure("h", TenantQuota(weight=2.0))
        pool.acquire("x")
        pool.acquire("h")
        pool.acquire("l")
        grants: list[str] = []
        thread_h = _acquire_in_thread(pool, "h", grants)
        _wait_until(lambda: _waiting(pool, "h") == 1)
        thread_l = _acquire_in_thread(pool, "l", grants)
        _wait_until(lambda: _waiting(pool, "l") == 1)

        pool.release("x")
        thread_h.join(timeout=5)
        assert grants == ["h"]
        pool.release("h")
        pool.release("h")
        thread_l.join(timeout=5)
        assert grants == ["h", "l"]

    def test_max_slots_caps_tenant_without_blocking_others(self):
        pool = FairShareSlotPool(3)
        pool.configure("capped", TenantQuota(max_slots=1))
        pool.acquire("capped")
        grants: list[str] = []
        thread = _acquire_in_thread(pool, "capped", grants)
        _wait_until(lambda: _waiting(pool, "capped") == 1)
        assert grants == []  # over its cap with two slots still free

        # A capped waiter must not veto other tenants' grants.
        assert pool.acquire("other") < 1.0
        assert grants == []

        pool.release("capped")
        thread.join(timeout=5)
        assert grants == ["capped"]

    def test_cancel_set_before_acquire_raises_immediately(self):
        pool = FairShareSlotPool(1)
        cancel = threading.Event()
        cancel.set()
        with pytest.raises(JobCancelledError):
            pool.acquire("a", cancel=cancel)
        assert pool.snapshot()["in_use"] == {}

    def test_cancel_while_waiting_raises(self):
        pool = FairShareSlotPool(1, poll_s=0.01)
        pool.acquire("holder")
        cancel = threading.Event()
        errors: list[BaseException] = []

        def run() -> None:
            try:
                pool.acquire("victim", cancel=cancel)
            except JobCancelledError as error:
                errors.append(error)

        thread = threading.Thread(target=run, daemon=True)
        thread.start()
        _wait_until(lambda: _waiting(pool, "victim") == 1)
        cancel.set()
        thread.join(timeout=5)
        assert len(errors) == 1
        assert _waiting(pool, "victim") == 0

    def test_release_without_acquire_raises(self):
        pool = FairShareSlotPool(1)
        with pytest.raises(RuntimeError, match="never acquired"):
            pool.release("ghost")

    def test_counters_track_grants_per_tenant_and_aggregate(self):
        pool = FairShareSlotPool(2)
        pool.acquire("a")
        pool.release("a")
        pool.acquire("a")
        pool.release("a")
        pool.acquire("b")
        pool.release("b")
        counters = pool.counters.snapshot()
        assert counters["tenant.a"]["slots_granted"] == 2
        assert counters["tenant.b"]["slots_granted"] == 1
        assert counters["service"]["slots_granted"] == 3
        assert counters["service"]["slot_wait_ms"] >= 0

    def test_invalid_quota_rejected(self):
        with pytest.raises(ValueError):
            TenantQuota(weight=0.0)
        with pytest.raises(ValueError):
            TenantQuota(max_slots=0)
        with pytest.raises(ValueError):
            TenantQuota(max_concurrent=0)
        with pytest.raises(ValueError):
            FairShareSlotPool(0)


class _CountingLease(SlotLease):
    """Semaphore-backed lease that records peak concurrency."""

    def __init__(self, slots: int) -> None:
        self._semaphore = threading.Semaphore(slots)
        self._lock = threading.Lock()
        self.acquires = 0
        self.releases = 0
        self.active = 0
        self.peak = 0

    def acquire(self) -> None:
        self._semaphore.acquire()
        with self._lock:
            self.acquires += 1
            self.active += 1
            self.peak = max(self.peak, self.active)

    def release(self) -> None:
        with self._lock:
            self.releases += 1
            self.active -= 1
        self._semaphore.release()


def _nap(i: int) -> int:
    time.sleep(0.02)
    return i


class TestExecutorLeaseSeam:
    def test_lease_bounds_pool_concurrency(self):
        # A 4-worker pool under a 2-slot lease never runs more than 2
        # tasks at once, and acquire/release balance over the batch.
        executor = ThreadExecutor(max_workers=4)
        lease = _CountingLease(2)
        executor.slot_lease = lease
        outcomes = executor.run_batch(_nap, [(i,) for i in range(8)])
        assert [o.value for o in outcomes] == list(range(8))
        assert lease.acquires == 8
        assert lease.releases == 8
        assert lease.active == 0
        assert lease.peak <= 2

    def test_lease_released_on_task_error(self):
        executor = ThreadExecutor(max_workers=2)
        lease = _CountingLease(2)
        executor.slot_lease = lease

        def boom(i: int) -> int:
            raise ValueError(f"task {i}")

        outcomes = executor.run_batch(boom, [(i,) for i in range(4)])
        assert all(o.error is not None for o in outcomes)
        assert lease.acquires == lease.releases == 4
        assert lease.active == 0


class AddMapper(Mapper):
    def map(self, key: Any, value: int, context: Context) -> None:
        context.emit(key % 4, value + 1)


class SumReducer(Reducer):
    def reduce(self, key: Any, values: list[int], context: Context) -> None:
        context.emit(key, sum(values))


def _sum_chain(ctx) -> list:
    chain = JobChain(MapReduceRuntime(context=ctx))
    data = split_records([(i, i) for i in range(40)], 4)
    result = chain.run(
        "sums", Job(mapper_factory=AddMapper, reducer_factory=SumReducer),
        data, num_reducers=2,
    )
    return sorted(result.output)


def _serial_baseline() -> list:
    chain = JobChain(MapReduceRuntime())
    data = split_records([(i, i) for i in range(40)], 4)
    result = chain.run(
        "sums", Job(mapper_factory=AddMapper, reducer_factory=SumReducer),
        data, num_reducers=2,
    )
    return sorted(result.output)


class TestClusterService:
    def test_concurrent_tenants_match_serial(self):
        expected = _serial_baseline()
        with ClusterService(slots=2, executor="thread") as service:
            handles = [
                service.submit(_sum_chain, name=f"c{i}", tenant=f"t{i % 2}")
                for i in range(4)
            ]
            results = [handle.result(timeout=60) for handle in handles]
        assert all(result == expected for result in results)
        counters = service.pool.counters.snapshot()
        assert counters["tenant.t0"]["slots_granted"] > 0
        assert counters["tenant.t1"]["slots_granted"] > 0
        assert counters["service"]["slots_granted"] == (
            counters["tenant.t0"]["slots_granted"]
            + counters["tenant.t1"]["slots_granted"]
        )

    def test_handle_lifecycle_and_info(self):
        with ClusterService(slots=2) as service:
            handle = service.submit(_sum_chain, name="chain", tenant="alice")
            assert handle.result(timeout=60) == _serial_baseline()
        assert handle.status() == "done"
        assert handle.done()
        assert handle.job_id == "alice/chain-1"
        info = handle.info()
        assert info["state"] == "done"
        assert info["queue_wait_s"] >= 0.0
        assert info["run_s"] > 0.0

    def test_admission_gates_on_cost_budget(self):
        # Budget below one default chain estimate: the first (idle
        # service) submission always runs; the second queues until the
        # first completes, then is admitted — gated, never rejected.
        release = threading.Event()

        def blocking_chain(ctx) -> str:
            assert release.wait(timeout=30)
            return "first"

        with ClusterService(slots=2, admission_budget_s=1.0) as service:
            first = service.submit(blocking_chain, tenant="a")
            second = service.submit(lambda ctx: "second", tenant="b")
            _wait_until(lambda: first.status() == "running")
            time.sleep(0.05)
            assert second.status() == "queued"
            release.set()
            assert first.result(timeout=30) == "first"
            assert second.result(timeout=30) == "second"

    def test_max_concurrent_quota_queues_excess_chains(self):
        release = threading.Event()

        def blocking_chain(ctx) -> str:
            assert release.wait(timeout=30)
            return ctx.run_id

        with ClusterService(slots=4) as service:
            service.set_quota("a", max_concurrent=1)
            first = service.submit(blocking_chain, tenant="a")
            second = service.submit(blocking_chain, tenant="a")
            _wait_until(lambda: first.status() == "running")
            time.sleep(0.05)
            assert second.status() == "queued"
            release.set()
            assert first.result(timeout=30)
            assert second.result(timeout=30)

    def test_cancel_queued_job(self):
        release = threading.Event()

        def blocking_chain(ctx) -> str:
            assert release.wait(timeout=30)
            return "ok"

        with ClusterService(slots=2, admission_budget_s=1.0) as service:
            first = service.submit(blocking_chain, tenant="a")
            second = service.submit(lambda ctx: "never", tenant="b")
            _wait_until(lambda: first.status() == "running")
            second.cancel()
            assert second.status() == "cancelled"
            with pytest.raises(JobCancelledError):
                second.result(timeout=5)
            release.set()
            assert first.result(timeout=30) == "ok"

    def test_cancel_running_job_at_slot_acquire(self):
        started = threading.Event()

        def endless_chain(ctx) -> None:
            chain = JobChain(MapReduceRuntime(context=ctx))
            data = split_records([(i, i) for i in range(8)], 2)
            job = Job(mapper_factory=AddMapper, reducer_factory=SumReducer)
            for ordinal in range(10_000):
                chain.run(f"job_{ordinal}", job, data, num_reducers=2)
                started.set()

        with ClusterService(slots=2) as service:
            handle = service.submit(endless_chain, tenant="a")
            assert started.wait(timeout=30)
            handle.cancel()
            with pytest.raises(JobCancelledError):
                handle.result(timeout=30)
        assert handle.status() == "cancelled"
        # Every slot the cancelled chain held was returned to the pool.
        assert service.pool.snapshot()["in_use"] == {}

    def test_failed_chain_reraises_from_result(self):
        def broken_chain(ctx) -> None:
            raise ValueError("deliberate failure")

        with ClusterService(slots=2) as service:
            handle = service.submit(broken_chain, tenant="a")
            with pytest.raises(ValueError, match="deliberate failure"):
                handle.result(timeout=30)
        assert handle.status() == "failed"
        assert isinstance(handle.error, ValueError)

    def test_submit_after_shutdown_rejected(self):
        service = ClusterService(slots=1)
        service.shutdown()
        with pytest.raises(RuntimeError, match="shut down"):
            service.submit(lambda ctx: None)

    def test_per_run_obs_scopes_are_isolated(self):
        base = Observability(enabled=True)
        seen: dict[str, Any] = {}

        def chain(ctx) -> str:
            seen[ctx.run_id] = ctx.obs
            ctx.obs.count("chain.ticks")
            return ctx.run_id

        with ClusterService(slots=2, obs=base) as service:
            first = service.submit(chain, tenant="a", name="one")
            second = service.submit(chain, tenant="b", name="two")
            run_ids = {first.result(timeout=30), second.result(timeout=30)}
        assert run_ids == {"a/one-1", "b/two-2"}
        scopes = list(seen.values())
        assert scopes[0] is not scopes[1]
        for scope in scopes:
            assert scope.metrics.snapshot()["counters"]["chain.ticks"] == 1
        # Per-run counts chain up into the service-level aggregate, and
        # lifecycle counts land on the base scope.
        base_counters = base.metrics.snapshot()["counters"]
        assert base_counters["chain.ticks"] == 2
        assert base_counters["service.done"] == 2

    def test_priority_reconfigures_tenant_weight(self):
        with ClusterService(slots=2) as service:
            service.set_quota("a", max_slots=1)
            service.submit(lambda ctx: None, tenant="a", priority=3.0)
            quota = service.pool.quota("a")
        assert quota.weight == 3.0
        assert quota.max_slots == 1  # priority keeps existing caps
