"""Unit tests for relevant-interval detection (chi-squared marking)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.binning import Histogram, build_all_histograms
from repro.core.intervals import (
    find_relevant_intervals,
    find_relevant_intervals_for_histogram,
    mark_relevant_bins,
    merge_adjacent_bins,
)


class TestMarking:
    def test_uniform_histogram_marks_nothing(self):
        assert mark_relevant_bins(np.array([100, 101, 99, 100, 100])) == []

    def test_single_spike_marked(self):
        counts = np.array([10, 10, 500, 10, 10])
        assert mark_relevant_bins(counts) == [2]

    def test_two_spikes_marked(self):
        counts = np.array([500, 10, 10, 400, 10])
        assert mark_relevant_bins(counts) == [0, 3]

    def test_marking_stops_when_remaining_uniform(self):
        counts = np.array([1000, 50, 52, 48, 50])
        marked = mark_relevant_bins(counts)
        assert marked == [0]

    def test_all_but_one_bin_can_be_marked(self):
        # Strictly decreasing, highly non-uniform histogram.
        counts = np.array([10_000, 1_000, 1])
        marked = mark_relevant_bins(counts)
        assert len(marked) <= 2  # at least one bin always stays unmarked

    def test_tie_broken_to_lowest_index(self):
        counts = np.array([500, 500, 1, 1, 1, 1, 1, 1])
        marked = mark_relevant_bins(counts)
        assert marked[0] in (0, 1)
        assert sorted(marked) == marked


class TestMerging:
    def _histogram(self, num_bins: int = 10) -> Histogram:
        return Histogram(attribute=2, counts=np.ones(num_bins, dtype=int))

    def test_no_marks_no_intervals(self):
        assert merge_adjacent_bins(self._histogram(), []) == []

    def test_single_bin_interval(self):
        intervals = merge_adjacent_bins(self._histogram(), [3])
        assert len(intervals) == 1
        assert intervals[0].lower == pytest.approx(0.3)
        assert intervals[0].upper == pytest.approx(0.4)

    def test_adjacent_bins_merge(self):
        intervals = merge_adjacent_bins(self._histogram(), [3, 4, 5])
        assert len(intervals) == 1
        assert intervals[0].lower == pytest.approx(0.3)
        assert intervals[0].upper == pytest.approx(0.6)

    def test_gap_produces_two_intervals(self):
        intervals = merge_adjacent_bins(self._histogram(), [1, 2, 7])
        assert len(intervals) == 2
        assert intervals[0].lower == pytest.approx(0.1)
        assert intervals[0].upper == pytest.approx(0.3)
        assert intervals[1].lower == pytest.approx(0.7)
        assert intervals[1].upper == pytest.approx(0.8)

    def test_unsorted_marks_accepted(self):
        intervals = merge_adjacent_bins(self._histogram(), [7, 1, 2])
        assert len(intervals) == 2


class TestDetection:
    def test_relevant_attribute_detected(self, tiny_dataset):
        relevant_attrs = set()
        for cluster in tiny_dataset.hidden_clusters:
            relevant_attrs |= cluster.relevant_attributes
        histograms = build_all_histograms(tiny_dataset.data, 8)
        intervals = find_relevant_intervals(histograms, alpha=0.001)
        found_attrs = {iv.attribute for iv in intervals}
        # Every hidden-cluster attribute hosts a dense interval.
        assert relevant_attrs <= found_attrs

    def test_uniform_attribute_not_detected(self, rng):
        data = rng.uniform(size=(2_000, 3))
        histograms = build_all_histograms(data, 10)
        intervals = find_relevant_intervals(histograms, alpha=0.001)
        assert intervals == []

    def test_interval_covers_the_dense_region(self, rng):
        data = rng.uniform(size=(3_000, 1))
        data[:1_000, 0] = rng.normal(0.5, 0.02, size=1_000).clip(0, 1)
        histograms = build_all_histograms(data, 20)
        found = find_relevant_intervals_for_histogram(histograms[0])
        assert found.is_relevant
        assert any(iv.contains(0.5) for iv in found.intervals)

    def test_result_records_marked_bins(self, rng):
        data = rng.uniform(size=(3_000, 1))
        data[:1_500, 0] = 0.55
        histograms = build_all_histograms(data, 10)
        found = find_relevant_intervals_for_histogram(histograms[0])
        assert 5 in found.marked_bins
