"""Reducer purity under re-execution: partial-sum aggregation must
never mutate its input values.

The runtime may hand the *same* cached shuffle value objects to more
than one reduce attempt (task retry after a validation failure, or a
speculative duplicate).  A reducer that accumulates in place — e.g.
``values[0] += partial`` — would make the second attempt see partials
already contaminated by the first, silently corrupting histograms,
support counts and covariance sums.  These tests pin the fix: all sum
reducers route through :func:`repro.mr.aggregate.sum_partials`, which
allocates a fresh output array.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.mapreduce.job import Context
from repro.mr.aggregate import sum_partials
from repro.mr.attribute_jobs import MatrixSumReducer
from repro.mr.em_jobs import CovarianceSumsReducer
from repro.mr.histogram import HistogramSumReducer
from repro.mr.support import SupportSumReducer


def _context():
    from repro.mapreduce.cache import DistributedCache
    from repro.mapreduce.counters import Counters

    return Context(DistributedCache(), Counters(), task_id=0)


def test_sum_partials_matches_numpy_sum():
    values = [np.arange(6.0).reshape(2, 3) * k for k in range(4)]
    assert np.array_equal(sum_partials(values), np.sum(values, axis=0))


def test_sum_partials_leaves_inputs_untouched():
    values = [np.ones((3, 3)), np.full((3, 3), 2.0)]
    originals = [v.copy() for v in values]
    total = sum_partials(values)
    for value, original in zip(values, originals):
        assert np.array_equal(value, original)
    assert total is not values[0]
    assert np.array_equal(total, np.full((3, 3), 3.0))


def test_sum_partials_single_value_returns_fresh_array():
    value = np.arange(4.0)
    total = sum_partials([value])
    assert total is not value
    total += 100
    assert np.array_equal(value, np.arange(4.0))


@pytest.mark.parametrize(
    "reducer_cls",
    [HistogramSumReducer, SupportSumReducer, MatrixSumReducer, CovarianceSumsReducer],
)
def test_sum_reducers_are_pure_under_reexecution(reducer_cls):
    """Reducing the same cached values twice yields identical output
    and leaves the value objects byte-identical — the contract retried
    and speculated reduce attempts rely on."""
    values = [np.arange(12.0).reshape(3, 4) * k for k in (1.0, 2.0, 5.0)]
    originals = [v.copy() for v in values]

    first = _context()
    reducer_cls().reduce("k", values, first)
    second = _context()
    reducer_cls().reduce("k", values, second)

    (key1, total1), = first.drain()
    (key2, total2), = second.drain()
    assert key1 == key2 == "k"
    assert np.array_equal(total1, total2)
    for value, original in zip(values, originals):
        assert np.array_equal(value, original)
