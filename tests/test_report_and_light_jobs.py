"""Tests for the consolidated report harness and the Light membership job."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.types import ClusterCore
from repro.experiments import report
from repro.experiments.configs import ExperimentScale
from repro.mapreduce import JobChain, MapReduceRuntime
from repro.mapreduce.types import split_records
from repro.mr.light_jobs import run_light_membership_job


class TestReport:
    def test_section_selection(self):
        text = report.run(sections=("figure1", "figure2"))
        assert "figure1" in text
        assert "figure2" in text
        assert "figure6" not in text

    def test_unknown_section_rejected(self):
        with pytest.raises(ValueError, match="unknown"):
            report.run(sections=("nope",))

    def test_report_header_names_scale(self):
        scale = ExperimentScale(name="unit-test", sizes=(400,), dims=8)
        text = report.run(scale=scale, sections=("figure1",))
        assert "unit-test" in text
        assert "Figure 1" in text


class TestLightMembershipJob:
    def test_matches_driver_side_masks(self, tiny_dataset):
        data = tiny_dataset.data
        n = len(data)
        cores = []
        for cluster in tiny_dataset.hidden_clusters:
            sig = cluster.signature
            cores.append(
                ClusterCore(
                    signature=sig,
                    support=sig.support(data),
                    expected_support=sig.expected_support(n),
                )
            )
        signatures = [c.signature for c in cores]
        chain = JobChain(MapReduceRuntime())
        splits = split_records(data, 5)
        exclusive, assignment = run_light_membership_job(
            chain, splits, signatures, n
        )

        masks = np.stack([s.support_mask(data) for s in signatures], axis=1)
        cover = masks.sum(axis=1)
        expected_exclusive = np.where(cover == 1, np.argmax(masks, axis=1), -1)
        expected_assignment = np.where(cover > 0, np.argmax(masks, axis=1), -1)
        assert np.array_equal(exclusive, expected_exclusive)
        assert np.array_equal(assignment, expected_assignment)

    def test_uncovered_points_are_minus_one(self, tiny_dataset):
        from repro.core.types import Interval, Signature

        chain = JobChain(MapReduceRuntime())
        splits = split_records(tiny_dataset.data, 3)
        # A signature covering nothing.
        empty_sig = Signature([Interval(0, 0.999999, 1.0)])
        exclusive, assignment = run_light_membership_job(
            chain, splits, [empty_sig], len(tiny_dataset.data)
        )
        assert (assignment == -1).sum() > 0


class TestExclusiveSupportMembership:
    def test_matches_light_membership_job(self, tiny_dataset):
        """The cache-shipped membership model and the map-only job are
        two routes to the same m' mapping."""
        from repro.mr.attribute_jobs import ExclusiveSupportMembership

        data = tiny_dataset.data
        signatures = [c.signature for c in tiny_dataset.hidden_clusters]

        chain = JobChain(MapReduceRuntime())
        splits = split_records(data, 4)
        exclusive, _ = run_light_membership_job(
            chain, splits, signatures, len(data)
        )

        model = ExclusiveSupportMembership(signatures)
        keys = np.arange(len(data))
        assert np.array_equal(model.labels(keys, data), exclusive)
