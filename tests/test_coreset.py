"""Coreset fast path: weighted kernels, sampling invariants, driver quality.

Three layers of guarantees:

- **Unit-weight bitwise parity** — an all-ones weight vector is
  canonicalised away at every job boundary, so weighted histogram /
  support / EM runs with unit weights are *byte-identical* to runs that
  never heard of weights, on every executor backend.
- **Integer-weight duplication oracle** — a point with weight ``w``
  must count exactly like ``w`` duplicated unit-weight points.  Counts
  are exact (integer-valued float64 sums below 2^53); EM moments match
  to float tolerance (association order differs).
- **Driver quality gate** — a coreset fit's E4SC against ground truth
  retains >= 0.9 of the exact fit's score, and the full-data assignment
  pass labels all n points.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.p3c_plus import P3CPlusConfig
from repro.core.stats import effective_sample_size
from repro.core.types import ClusterCore, Interval, Signature
from repro.eval import e4sc_score
from repro.mapreduce import JobChain, MapReduceRuntime, split_records
from repro.mr import P3CPlusMR, P3CPlusMRConfig
from repro.mr.coreset import (
    SUPPORTED_MODES,
    allocate_quotas,
    build_coreset,
    run_assign_job,
)
from repro.mr.em_jobs import run_em_mr
from repro.mr.histogram import run_histogram_job
from repro.mr.support import run_support_job
from repro.mr.weights import canonical_weights, take_weights


def _chain(executor: str = "serial", max_workers: int | None = None) -> JobChain:
    return JobChain(MapReduceRuntime(executor=executor, max_workers=max_workers))


# -- weight plumbing -------------------------------------------------------


class TestCanonicalWeights:
    def test_none_passes_through(self):
        assert canonical_weights(None) is None

    def test_unit_weights_canonicalised_to_none(self):
        assert canonical_weights(np.ones(17)) is None

    def test_genuine_weights_kept_as_float64(self):
        weights = canonical_weights(np.array([1, 2, 3]))
        assert weights is not None
        assert weights.dtype == np.float64

    @pytest.mark.parametrize(
        "bad",
        [
            np.array([]),
            np.ones((3, 2)),
            np.array([1.0, -0.5]),
            np.array([1.0, np.nan]),
            np.array([1.0, np.inf]),
        ],
    )
    def test_invalid_weights_rejected(self, bad):
        with pytest.raises(ValueError):
            canonical_weights(bad)

    def test_take_weights_indexes_by_key(self):
        weights = np.array([10.0, 20.0, 30.0, 40.0])
        assert np.array_equal(take_weights(weights, [3, 0]), [40.0, 10.0])


# -- quota allocation ------------------------------------------------------


class TestAllocateQuotas:
    @settings(max_examples=50, deadline=None)
    @given(
        sizes=st.lists(st.integers(0, 500), min_size=1, max_size=12),
        size=st.integers(1, 600),
    )
    def test_invariants(self, sizes, size):
        table = dict(enumerate(sizes))
        quotas = allocate_quotas(table, size)
        assert set(quotas) == set(table)
        for sid, quota in quotas.items():
            assert 0 <= quota <= table[sid]
            if table[sid] > 0:
                assert quota >= 1
            else:
                assert quota == 0

    def test_exact_when_size_covers_everything(self):
        sizes = {0: 5, 1: 7, 2: 0}
        assert allocate_quotas(sizes, 100) == {0: 5, 1: 7, 2: 0}

    def test_proportional_split(self):
        quotas = allocate_quotas({0: 100, 1: 300}, 40)
        assert quotas == {0: 10, 1: 30}

    def test_deterministic(self):
        sizes = {i: (i * 37) % 11 + 1 for i in range(9)}
        assert allocate_quotas(sizes, 13) == allocate_quotas(sizes, 13)


# -- coreset construction --------------------------------------------------


class TestBuildCoreset:
    def _data(self, n=400, d=3, seed=0):
        return np.random.default_rng(seed).uniform(size=(n, d))

    @pytest.mark.parametrize("mode", SUPPORTED_MODES)
    def test_deterministic_for_fixed_seed(self, mode):
        data = self._data()
        first = build_coreset(
            _chain(), split_records(data, 4), 80, mode=mode, seed=3
        )
        second = build_coreset(
            _chain(), split_records(data, 4), 80, mode=mode, seed=3
        )
        assert np.array_equal(first.points, second.points)
        assert np.array_equal(first.weights, second.weights)

    def test_seed_changes_the_sample(self):
        data = self._data()
        a = build_coreset(_chain(), split_records(data, 4), 80, seed=0)
        b = build_coreset(_chain(), split_records(data, 4), 80, seed=1)
        assert not np.array_equal(a.points, b.points)

    def test_uniform_total_weight_is_n(self):
        data = self._data(n=500)
        summary = build_coreset(_chain(), split_records(data, 4), 100)
        assert summary.total_weight == pytest.approx(500.0)
        assert summary.size == 100
        assert summary.effective_size <= summary.size + 1e-9

    def test_lightweight_unbiased_weight_total(self):
        # E[sum of importance weights] = n; generous tolerance for one draw.
        data = self._data(n=2000, seed=5)
        summary = build_coreset(
            _chain(), split_records(data, 4), 400, mode="lightweight"
        )
        assert summary.mode == "lightweight"
        assert summary.total_weight == pytest.approx(2000.0, rel=0.25)
        assert np.all(summary.weights > 0)

    def test_oversized_request_returns_all_points_unit_weight(self):
        data = self._data(n=60)
        summary = build_coreset(_chain(), split_records(data, 3), 500)
        assert summary.size == 60
        assert canonical_weights(summary.weights) is None
        # Split concatenation preserves row order.
        assert np.array_equal(np.sort(summary.points, axis=0), np.sort(data, axis=0))

    def test_every_split_is_represented(self):
        data = self._data(n=300)
        splits = split_records(data, 6)
        summary = build_coreset(_chain(), splits, 12)
        assert summary.size >= 6  # min-1 per non-empty split

    def test_invalid_arguments_rejected(self):
        data = self._data(n=50)
        with pytest.raises(ValueError, match="size"):
            build_coreset(_chain(), split_records(data, 2), 0)
        with pytest.raises(ValueError, match="mode"):
            build_coreset(_chain(), split_records(data, 2), 10, mode="fancy")


# -- unit-weight bitwise parity --------------------------------------------

_PARITY_EXECUTORS = ["serial", "thread"]


class TestUnitWeightParity:
    """All-ones weights must be byte-invisible in every weighted kernel."""

    def _splits(self, rng_seed=11, n=240, d=4, num_splits=5):
        data = np.random.default_rng(rng_seed).uniform(size=(n, d))
        return data, split_records(data, num_splits)

    @pytest.mark.parametrize("executor", _PARITY_EXECUTORS)
    def test_histogram_bitwise(self, executor):
        _, splits = self._splits()
        plain = run_histogram_job(_chain(executor, 3), splits, 10)
        unit = run_histogram_job(
            _chain(executor, 3), splits, 10, weights=np.ones(240)
        )
        for h_plain, h_unit in zip(plain, unit):
            assert h_unit.counts.dtype == h_plain.counts.dtype == np.int64
            assert h_unit.counts.tobytes() == h_plain.counts.tobytes()

    @pytest.mark.parametrize("executor", _PARITY_EXECUTORS)
    def test_support_bitwise(self, executor):
        data, splits = self._splits()
        signatures = [
            Signature([Interval(0, 0.0, 0.5)]),
            Signature([Interval(1, 0.25, 0.75), Interval(2, 0.0, 0.6)]),
        ]
        plain = run_support_job(_chain(executor, 3), splits, signatures)
        unit = run_support_job(
            _chain(executor, 3), splits, signatures, weights=np.ones(len(data))
        )
        assert unit == plain
        assert all(type(v) is type(plain[s]) for s, v in unit.items())

    def test_histogram_process_executor_bitwise(self):
        _, splits = self._splits()
        plain = run_histogram_job(_chain("process", 2), splits, 10)
        unit = run_histogram_job(
            _chain("process", 2), splits, 10, weights=np.ones(240)
        )
        for h_plain, h_unit in zip(plain, unit):
            assert h_unit.counts.tobytes() == h_plain.counts.tobytes()

    def test_em_bitwise(self):
        data, splits = self._em_workload()
        cores = self._em_cores()
        plain = run_em_mr(_chain(), splits, cores, len(data), max_iter=3)
        unit = run_em_mr(
            _chain(),
            splits,
            cores,
            len(data),
            max_iter=3,
            point_weights=np.ones(len(data)),
        )
        assert unit.means.tobytes() == plain.means.tobytes()
        assert unit.covariances.tobytes() == plain.covariances.tobytes()
        assert unit.weights.tobytes() == plain.weights.tobytes()

    @staticmethod
    def _em_workload(seed=2, n=300):
        rng = np.random.default_rng(seed)
        a = np.clip(rng.normal(0.25, 0.05, size=(n // 2, 3)), 0, 1)
        b = np.clip(rng.normal(0.75, 0.05, size=(n // 2, 3)), 0, 1)
        data = np.concatenate([a, b])
        return data, split_records(data, 4)

    @staticmethod
    def _em_cores():
        return [
            ClusterCore(
                signature=Signature([Interval(0, 0.0, 0.5)]),
                support=150,
                expected_support=75.0,
            ),
            ClusterCore(
                signature=Signature([Interval(0, 0.5, 1.0)]),
                support=150,
                expected_support=75.0,
            ),
        ]

    @settings(max_examples=15, deadline=None)
    @given(
        seed=st.integers(0, 2**32 - 1),
        n=st.integers(20, 120),
        d=st.integers(1, 4),
        num_bins=st.integers(2, 12),
        num_splits=st.integers(1, 5),
    )
    def test_histogram_bitwise_property(self, seed, n, d, num_bins, num_splits):
        data = np.random.default_rng(seed).uniform(size=(n, d))
        splits = split_records(data, num_splits)
        plain = run_histogram_job(_chain(), splits, num_bins)
        unit = run_histogram_job(
            _chain(), splits, num_bins, weights=np.ones(n)
        )
        for h_plain, h_unit in zip(plain, unit):
            assert h_unit.counts.tobytes() == h_plain.counts.tobytes()


# -- integer-weight duplication oracle -------------------------------------


class TestDuplicationOracle:
    """Weight w must behave exactly like w duplicated unit points."""

    def _weighted_workload(self, seed=7, n=120, d=3):
        rng = np.random.default_rng(seed)
        data = rng.uniform(size=(n, d))
        weights = rng.integers(1, 5, size=n)
        duplicated = np.repeat(data, weights, axis=0)
        return data, weights, duplicated

    def test_histogram_counts_exact(self):
        data, weights, duplicated = self._weighted_workload()
        weighted = run_histogram_job(
            _chain(), split_records(data, 4), 8, weights=weights.astype(float)
        )
        oracle = run_histogram_job(_chain(), split_records(duplicated, 4), 8)
        for h_w, h_o in zip(weighted, oracle):
            # Integer-valued float64 sums below 2^53 are exact in any order.
            assert np.array_equal(h_w.counts, h_o.counts.astype(float))

    def test_support_counts_exact(self):
        data, weights, duplicated = self._weighted_workload()
        signatures = [
            Signature([Interval(0, 0.1, 0.9)]),
            Signature([Interval(1, 0.0, 0.4), Interval(2, 0.3, 1.0)]),
            Signature([Interval(2, 0.95, 1.0)]),  # exercises near-empty support
        ]
        weighted = run_support_job(
            _chain(), split_records(data, 4), signatures, weights=weights.astype(float)
        )
        oracle = run_support_job(_chain(), split_records(duplicated, 4), signatures)
        assert {s: float(v) for s, v in weighted.items()} == {
            s: float(v) for s, v in oracle.items()
        }

    def test_em_moments_match(self):
        rng = np.random.default_rng(13)
        n = 160
        a = np.clip(rng.normal(0.25, 0.06, size=(n // 2, 2)), 0, 1)
        b = np.clip(rng.normal(0.75, 0.06, size=(n // 2, 2)), 0, 1)
        data = np.concatenate([a, b])
        weights = rng.integers(1, 4, size=n)
        duplicated = np.repeat(data, weights, axis=0)
        cores = TestUnitWeightParity._em_cores()
        weighted = run_em_mr(
            _chain(),
            split_records(data, 3),
            cores,
            n,
            max_iter=4,
            point_weights=weights.astype(float),
        )
        oracle = run_em_mr(
            _chain(),
            split_records(duplicated, 3),
            cores,
            len(duplicated),
            max_iter=4,
        )
        assert np.allclose(weighted.means, oracle.means, atol=1e-6)
        assert np.allclose(weighted.weights, oracle.weights, atol=1e-6)
        # Covariances differ by the Bessel-style small-sample correction:
        # the weighted path's squared-weight term is sum((w*r)^2) while
        # the duplicated data has sum(w*r^2) — identical in the limit,
        # ~1% apart at n=160.
        assert np.allclose(weighted.covariances, oracle.covariances, rtol=0.03)


# -- effective sample size -------------------------------------------------


class TestEffectiveSampleSize:
    def test_unit_weights_give_n(self):
        assert effective_sample_size(np.ones(50)) == pytest.approx(50.0)

    def test_scale_invariant(self):
        w = np.array([1.0, 2.0, 3.0])
        assert effective_sample_size(w) == pytest.approx(
            effective_sample_size(10 * w)
        )

    def test_concentrated_weights_shrink_ess(self):
        w = np.array([100.0, 1.0, 1.0, 1.0])
        assert effective_sample_size(w) < 2.0


# -- full-data assignment job ----------------------------------------------


class TestAssignJob:
    def test_matches_serving_scorer(self, small_dataset):
        driver = P3CPlusMR(
            P3CPlusConfig(outlier_method="mvb"),
            P3CPlusMRConfig(num_splits=4),
        )
        driver.fit(small_dataset.data)
        expected = driver.fitted_model.assign(small_dataset.data).cluster_ids
        membership = run_assign_job(
            _chain(),
            split_records(small_dataset.data, 5),
            driver.fitted_model,
            len(small_dataset.data),
        )
        assert np.array_equal(membership, expected)


# -- driver-level coreset fit ----------------------------------------------


class TestCoresetDriver:
    @pytest.fixture(scope="class")
    def exact_score(self, small_dataset):
        result = P3CPlusMR(
            P3CPlusConfig(outlier_method="mvb"),
            P3CPlusMRConfig(num_splits=4),
        ).fit(small_dataset.data)
        truth = small_dataset.ground_truth_clusters()
        return e4sc_score(result.clusters, truth)

    @pytest.mark.parametrize("mode", SUPPORTED_MODES)
    def test_e4sc_retention(self, small_dataset, exact_score, mode):
        result = P3CPlusMR(
            P3CPlusConfig(outlier_method="mvb"),
            P3CPlusMRConfig(num_splits=4, coreset_size=600, coreset_mode=mode),
        ).fit(small_dataset.data)
        truth = small_dataset.ground_truth_clusters()
        score = e4sc_score(result.clusters, truth)
        assert score >= 0.9 * exact_score

    def test_labels_cover_all_points(self, small_dataset):
        result = P3CPlusMR(
            P3CPlusConfig(outlier_method="mvb"),
            P3CPlusMRConfig(num_splits=4, coreset_size=600),
        ).fit(small_dataset.data)
        n = len(small_dataset.data)
        assert result.n_points == n
        members = np.concatenate(
            [c.members for c in result.clusters] + [result.outliers]
        )
        # Clusters + outliers partition [0, n).
        assert np.array_equal(np.sort(members), np.arange(n))

    def test_coreset_diagnostics_recorded(self, small_dataset):
        driver = P3CPlusMR(
            mr_config=P3CPlusMRConfig(num_splits=4, coreset_size=500)
        )
        result = driver.fit(small_dataset.data)
        info = result.metadata["coreset"]
        assert info["mode"] == "uniform"
        assert info["requested_size"] == 500
        assert 0 < info["size"] <= 520
        assert info["total_weight"] == pytest.approx(1500.0)
        # Timings stay out of result metadata so coreset outputs remain
        # byte-identical across executors and chaos runs.
        assert "build_s" not in info
        # The job ledger includes the final full-data assignment pass.
        assert result.metadata["mr_jobs"] == driver.chain.num_jobs

    def test_coreset_fit_runs_fewer_summary_records(self, small_dataset):
        exact = P3CPlusMR(mr_config=P3CPlusMRConfig(num_splits=4))
        exact.fit(small_dataset.data)
        coreset = P3CPlusMR(
            mr_config=P3CPlusMRConfig(num_splits=4, coreset_size=300)
        )
        coreset.fit(small_dataset.data)
        # EM runs many jobs over m=300 instead of n=1500: the chain's
        # total record traffic must drop despite the two extra scans.
        assert (
            coreset.chain.total_map_input_records()
            < exact.chain.total_map_input_records()
        )

    def test_oversized_coreset_takes_exact_path(self, small_dataset):
        config = P3CPlusConfig(outlier_method="mvb")
        exact = P3CPlusMR(config, P3CPlusMRConfig(num_splits=4)).fit(
            small_dataset.data
        )
        via_coreset = P3CPlusMR(
            config, P3CPlusMRConfig(num_splits=4, coreset_size=10_000)
        ).fit(small_dataset.data)
        assert "coreset" not in via_coreset.metadata
        assert np.array_equal(exact.labels(), via_coreset.labels())

    def test_deterministic_across_runs(self, small_dataset):
        config = P3CPlusMRConfig(num_splits=4, coreset_size=600, coreset_seed=7)
        first = P3CPlusMR(mr_config=config).fit(small_dataset.data)
        second = P3CPlusMR(mr_config=config).fit(small_dataset.data)
        assert np.array_equal(first.labels(), second.labels())
