"""Tests for the label-accuracy measure (colon experiment)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.types import ClusteringResult, ProjectedCluster
from repro.eval import label_accuracy


def _result(cluster_members: list[list[int]], n: int) -> ClusteringResult:
    clusters = [
        ProjectedCluster(np.array(m, dtype=np.int64), frozenset({0}))
        for m in cluster_members
    ]
    assigned = np.zeros(n, dtype=bool)
    for m in cluster_members:
        assigned[m] = True
    return ClusteringResult(
        clusters=clusters,
        outliers=np.where(~assigned)[0],
        n_points=n,
        n_dims=1,
    )


class TestMajorityMapping:
    def test_perfect_clustering(self):
        labels = np.array([0, 0, 1, 1])
        result = _result([[0, 1], [2, 3]], 4)
        assert label_accuracy(result, labels) == 1.0

    def test_split_class_not_punished(self):
        labels = np.array([0, 0, 0, 0, 1, 1])
        result = _result([[0, 1], [2, 3], [4, 5]], 6)
        assert label_accuracy(result, labels) == 1.0

    def test_mixed_cluster_counts_majority(self):
        labels = np.array([0, 0, 1, 1, 1, 1])
        result = _result([[0, 1, 2, 3, 4, 5]], 6)
        assert label_accuracy(result, labels) == pytest.approx(4 / 6)

    def test_outliers_count_as_errors(self):
        labels = np.array([0, 0, 1, 1])
        result = _result([[0, 1]], 4)  # points 2, 3 unassigned
        assert label_accuracy(result, labels) == pytest.approx(0.5)

    def test_no_clusters_scores_zero(self):
        labels = np.array([0, 1])
        result = _result([], 2)
        assert label_accuracy(result, labels) == 0.0


class TestOneToOneMapping:
    def test_split_is_punished(self):
        labels = np.array([0, 0, 0, 0, 1, 1])
        result = _result([[0, 1], [2, 3], [4, 5]], 6)
        assert label_accuracy(result, labels, mapping="one_to_one") == (
            pytest.approx(4 / 6)
        )

    def test_perfect_one_to_one(self):
        labels = np.array([0, 0, 1, 1])
        result = _result([[0, 1], [2, 3]], 4)
        assert label_accuracy(result, labels, mapping="one_to_one") == 1.0


class TestValidation:
    def test_length_mismatch_rejected(self):
        result = _result([[0]], 1)
        with pytest.raises(ValueError):
            label_accuracy(result, np.array([0, 1]))

    def test_unknown_mapping_rejected(self):
        result = _result([[0, 1]], 2)
        with pytest.raises(ValueError):
            label_accuracy(result, np.array([0, 1]), mapping="nope")
