"""Unit tests for the Definition 1-5 value types."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.types import (
    ClusterCore,
    ClusteringResult,
    Interval,
    ProjectedCluster,
    Signature,
)


def interval_strategy(attribute=st.integers(0, 5)):
    return st.tuples(
        attribute,
        st.floats(0, 1, allow_nan=False),
        st.floats(0, 1, allow_nan=False),
    ).map(lambda t: Interval(t[0], min(t[1], t[2]), max(t[1], t[2])))


class TestInterval:
    def test_width(self):
        assert Interval(0, 0.2, 0.5).width == pytest.approx(0.3)

    def test_degenerate_interval_allowed(self):
        assert Interval(0, 0.5, 0.5).width == 0.0

    def test_empty_interval_rejected(self):
        with pytest.raises(ValueError):
            Interval(0, 0.6, 0.5)

    def test_negative_attribute_rejected(self):
        with pytest.raises(ValueError):
            Interval(-1, 0.0, 1.0)

    def test_contains_is_closed(self):
        interval = Interval(0, 0.2, 0.5)
        assert interval.contains(0.2)
        assert interval.contains(0.5)
        assert not interval.contains(0.5000001)

    def test_contains_column(self):
        interval = Interval(0, 0.25, 0.75)
        column = np.array([0.0, 0.25, 0.5, 0.75, 1.0])
        assert interval.contains_column(column).tolist() == [
            False,
            True,
            True,
            True,
            False,
        ]

    def test_overlaps_same_attribute_only(self):
        assert Interval(0, 0.0, 0.5).overlaps(Interval(0, 0.5, 1.0))
        assert not Interval(0, 0.0, 0.5).overlaps(Interval(1, 0.0, 0.5))
        assert not Interval(0, 0.0, 0.4).overlaps(Interval(0, 0.5, 1.0))

    def test_covers(self):
        outer = Interval(0, 0.1, 0.9)
        inner = Interval(0, 0.2, 0.8)
        assert outer.covers(inner)
        assert not inner.covers(outer)
        assert not outer.covers(Interval(1, 0.2, 0.8))

    def test_merge_takes_union_span(self):
        merged = Interval(0, 0.1, 0.4).merge(Interval(0, 0.3, 0.8))
        assert (merged.lower, merged.upper) == (0.1, 0.8)

    def test_merge_different_attributes_rejected(self):
        with pytest.raises(ValueError):
            Interval(0, 0.1, 0.4).merge(Interval(1, 0.3, 0.8))

    @given(interval_strategy())
    def test_interval_is_hashable_and_ordered(self, interval):
        assert hash(interval) == hash(
            Interval(interval.attribute, interval.lower, interval.upper)
        )


class TestSignature:
    def setup_method(self):
        self.i0 = Interval(0, 0.1, 0.3)
        self.i1 = Interval(1, 0.4, 0.6)
        self.i2 = Interval(2, 0.0, 0.5)

    def test_intervals_sorted_by_attribute(self):
        sig = Signature([self.i1, self.i0])
        assert [iv.attribute for iv in sig] == [0, 1]

    def test_equal_signatures_hash_equal(self):
        assert Signature([self.i1, self.i0]) == Signature([self.i0, self.i1])
        assert hash(Signature([self.i1, self.i0])) == hash(
            Signature([self.i0, self.i1])
        )

    def test_duplicate_attribute_rejected(self):
        with pytest.raises(ValueError):
            Signature([self.i0, Interval(0, 0.5, 0.9)])

    def test_volume_is_width_product(self):
        sig = Signature([self.i0, self.i1])
        assert sig.volume() == pytest.approx(0.2 * 0.2)

    def test_extend_and_without_roundtrip(self):
        sig = Signature([self.i0, self.i1])
        extended = sig.extend(self.i2)
        assert len(extended) == 3
        assert extended.without(self.i2) == sig

    def test_extend_existing_attribute_rejected(self):
        sig = Signature([self.i0])
        with pytest.raises(ValueError):
            sig.extend(Interval(0, 0.5, 0.9))

    def test_without_missing_interval_rejected(self):
        with pytest.raises(ValueError):
            Signature([self.i0]).without(self.i1)

    def test_issubset(self):
        small = Signature([self.i0])
        big = Signature([self.i0, self.i1])
        assert small.issubset(big)
        assert small.is_proper_subset(big)
        assert not big.issubset(small)
        assert not big.is_proper_subset(big)

    def test_support_mask_matches_manual(self):
        data = np.array(
            [
                [0.2, 0.5, 0.1],
                [0.2, 0.9, 0.1],
                [0.9, 0.5, 0.1],
                [0.15, 0.45, 0.9],
            ]
        )
        sig = Signature([self.i0, self.i1])
        assert sig.support_mask(data).tolist() == [True, False, False, True]
        assert sig.support(data) == 2

    def test_contains_point(self):
        sig = Signature([self.i0, self.i1])
        assert sig.contains_point(np.array([0.2, 0.5, 0.99]))
        assert not sig.contains_point(np.array([0.2, 0.7, 0.99]))

    def test_expected_support_eq7(self):
        sig = Signature([self.i0, self.i1])
        assert sig.expected_support(1000) == pytest.approx(1000 * 0.04)

    def test_interval_on(self):
        sig = Signature([self.i0, self.i1])
        assert sig.interval_on(0) == self.i0
        assert sig.interval_on(5) is None

    def test_attributes(self):
        assert Signature([self.i0, self.i2]).attributes == frozenset({0, 2})


class TestClusterCore:
    def test_interestingness_ratio(self):
        core = ClusterCore(
            signature=Signature([Interval(0, 0.0, 0.1)]),
            support=50,
            expected_support=10.0,
        )
        assert core.interestingness == pytest.approx(5.0)

    def test_zero_expected_support(self):
        core = ClusterCore(
            signature=Signature([Interval(0, 0.5, 0.5)]),
            support=5,
            expected_support=0.0,
        )
        assert core.interestingness == float("inf")


class TestProjectedCluster:
    def test_micro_objects(self):
        cluster = ProjectedCluster(
            members=np.array([3, 7]), relevant_attributes=frozenset({0, 2})
        )
        assert cluster.micro_objects() == {(3, 0), (3, 2), (7, 0), (7, 2)}

    def test_member_set(self):
        cluster = ProjectedCluster(
            members=np.array([1, 2]), relevant_attributes=frozenset({0})
        )
        assert cluster.member_set() == {1, 2}


class TestClusteringResult:
    def test_labels_unique_assignment(self):
        result = ClusteringResult(
            clusters=[
                ProjectedCluster(np.array([0, 1]), frozenset({0})),
                ProjectedCluster(np.array([2]), frozenset({1})),
            ],
            outliers=np.array([3]),
            n_points=4,
            n_dims=2,
        )
        assert result.labels().tolist() == [0, 0, 1, -1]

    def test_labels_prefers_first_cluster_on_overlap(self):
        result = ClusteringResult(
            clusters=[
                ProjectedCluster(np.array([0]), frozenset({0})),
                ProjectedCluster(np.array([0, 1]), frozenset({1})),
            ],
            n_points=2,
            n_dims=2,
        )
        assert result.labels().tolist() == [0, 1]

    def test_summary_mentions_counts(self):
        result = ClusteringResult(clusters=[], n_points=10, n_dims=3)
        assert "0 clusters" in result.summary()
