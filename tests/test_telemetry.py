"""Tests for the live telemetry plane: ring-buffered time series, the
sampling hub, OpenMetrics exposition (render + validating parse), the
HTTP endpoints owned by :class:`ClusterService`, per-tenant SLO
tracking, the ``repro top`` renderer, and the bench-regression gate.
"""

from __future__ import annotations

import json
import subprocess
import sys
import threading
import urllib.error
import urllib.request
from pathlib import Path

import pytest

from repro.mapreduce import (
    ClusterService,
    Job,
    JobChain,
    Mapper,
    MapReduceRuntime,
    Reducer,
)
from repro.mapreduce.types import split_records
from repro.obs.metrics import Histogram
from repro.obs.resources import percentile, quantile_summary
from repro.obs.slo import (
    LATENCY_BUCKETS,
    SLORegistry,
    SLOTarget,
    SlidingWindow,
    TenantSLO,
)
from repro.obs.telemetry import (
    OPENMETRICS_CONTENT_TYPE,
    TelemetryHub,
    TelemetryPlane,
    TimeSeries,
    parse_openmetrics,
    render_openmetrics,
    render_top,
    summarize_log_lines,
)

REPO_ROOT = Path(__file__).resolve().parents[1]


class _SumMapper(Mapper):
    def map(self, key, value, ctx):
        ctx.emit(value % 4, value)


class _SumReducer(Reducer):
    def reduce(self, key, values, ctx):
        ctx.emit(key, sum(values))


def _run_chain(ctx):
    chain = JobChain(MapReduceRuntime(context=ctx))
    data = split_records([(i, i) for i in range(64)], 4)
    job = Job(mapper_factory=_SumMapper, reducer_factory=_SumReducer)
    return chain.run("sum", job, data, num_reducers=2).output


class _FakeClock:
    def __init__(self, now: float = 100.0) -> None:
        self.now = now

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


# -- quantile helper -----------------------------------------------------


def test_percentile_interpolates():
    values = [1.0, 2.0, 3.0, 4.0]
    assert percentile(values, 0.0) == 1.0
    assert percentile(values, 1.0) == 4.0
    assert percentile(values, 0.5) == pytest.approx(2.5)
    assert percentile([], 0.95) == 0.0
    assert percentile([7.0], 0.5) == 7.0


def test_quantile_summary_keys_and_empty():
    stats = quantile_summary([3.0, 1.0, 2.0])
    assert stats["count"] == 3
    assert stats["p50"] == 2.0
    assert stats["max"] == 3.0
    empty = quantile_summary([])
    assert empty["count"] == 0 and empty["p95"] == 0.0


# -- time series and hub -------------------------------------------------


def test_time_series_ring_eviction():
    series = TimeSeries("s", capacity=3)
    for i in range(5):
        series.append(float(i), float(i * 10))
    assert series.values() == [20.0, 30.0, 40.0]
    assert series.last() == (4.0, 40.0)
    assert series.window(3.0) == [(3.0, 30.0), (4.0, 40.0)]
    with pytest.raises(ValueError):
        TimeSeries("bad", capacity=0)


def test_hub_merges_probes_and_flattens():
    clock = _FakeClock()
    hub = TelemetryHub(capacity=8, clock=clock)
    hub.add_probe("", lambda: {"scheduler": {"queue_depth": 3}})
    hub.add_probe("process", lambda: {"threads": 7})
    sample = hub.sample()
    assert sample["scheduler"]["queue_depth"] == 3
    assert sample["process"]["threads"] == 7
    assert hub.series("scheduler.queue_depth").values() == [3.0]
    assert hub.series("process.threads").values() == [7.0]


def test_hub_probe_error_is_isolated():
    hub = TelemetryHub(clock=_FakeClock())

    def bad():
        raise RuntimeError("probe down")

    hub.add_probe("broken", bad)
    hub.add_probe("fine", lambda: {"x": 1})
    sample = hub.sample()
    assert "probe down" in sample["broken"]["error"]
    assert sample["fine"]["x"] == 1


def test_hub_flatten_skips_histograms_and_targets():
    hub = TelemetryHub(clock=_FakeClock())
    hub.add_probe(
        "",
        lambda: {
            "tenants": {
                "a": {
                    "slots_in_use": 1,
                    "wait_histogram": {"count": 5, "le_inf": 5},
                }
            },
            "slo": {"a": {"target": {"latency_p95_s": 1.0}}},
        },
    )
    hub.sample()
    names = hub.series_names()
    assert "tenants.a.slots_in_use" in names
    assert not any("wait_histogram" in name for name in names)
    assert not any("target" in name for name in names)


# -- thread-safe histogram ----------------------------------------------


def test_histogram_concurrent_observe():
    histogram = Histogram((0.1, 1.0, 10.0))
    per_thread, threads = 2000, 8

    def pound(seed: int) -> None:
        for i in range(per_thread):
            histogram.observe((seed + i) % 12)

    workers = [
        threading.Thread(target=pound, args=(t,)) for t in range(threads)
    ]
    for worker in workers:
        worker.start()
    for worker in workers:
        worker.join()
    snap = histogram.snapshot()
    assert snap["count"] == per_thread * threads
    assert snap["buckets"]["le_inf"] == per_thread * threads


# -- SLO tracking --------------------------------------------------------


def test_sliding_window_evicts_by_age():
    window = SlidingWindow(window_s=10.0)
    window.append(1.0, now=0.0)
    window.append(2.0, now=5.0)
    assert window.values(now=9.0) == [1.0, 2.0]
    assert window.values(now=11.0) == [2.0]
    with pytest.raises(ValueError):
        window.append(-1.0, now=12.0)


def test_tenant_slo_status_transitions():
    clock = _FakeClock()
    target = SLOTarget(latency_p95_s=1.0, window_s=60.0, warn_fraction=0.8)
    slo = TenantSLO("alice", target, clock=clock)
    assert slo.status() == "ok"  # no samples: silence is not an outage
    for _ in range(10):
        slo.record_completion(0.2)
    assert slo.status() == "ok"
    for _ in range(10):
        slo.record_completion(0.9)
    assert slo.status() == "warn"
    for _ in range(10):
        slo.record_completion(5.0)
    assert slo.status() == "breach"
    # Eviction clears the breach once the slow samples age out.
    clock.advance(120.0)
    assert slo.status() == "ok"


def test_tenant_slo_error_rate_breach():
    clock = _FakeClock()
    slo = TenantSLO(
        "bob", SLOTarget(max_error_rate=0.25, window_s=60.0), clock=clock
    )
    for _ in range(3):
        slo.record_completion(0.1, state="done")
    slo.record_completion(0.1, state="failed")
    assert slo.snapshot()["error_rate"] == pytest.approx(0.25)
    assert slo.status() == "ok"  # at the bound, not over it
    slo.record_completion(0.1, state="failed")
    assert slo.status() == "breach"


def test_tenant_slo_snapshot_counts_and_histogram():
    clock = _FakeClock()
    slo = TenantSLO("carl", clock=clock)
    slo.record_admitted()
    slo.record_admitted()
    slo.record_rejected()
    slo.record_completion(0.3, state="done")
    slo.record_completion(0.4, state="cancelled")
    slo.record_wait(0.05)
    snap = slo.snapshot()
    assert snap["admitted"] == 2
    assert snap["rejected"] == 1
    assert snap["completed"] == 1 and snap["cancelled"] == 1
    assert snap["latency"]["count"] == 2
    assert snap["wait"]["p95_s"] == pytest.approx(0.05)
    assert snap["latency_histogram"]["count"] == 2
    assert len(LATENCY_BUCKETS) > 4


def test_slo_registry_set_target_restarts_windows():
    clock = _FakeClock()
    registry = SLORegistry(clock=clock)
    tracker = registry.tenant("t")
    tracker.record_completion(2.0)
    assert registry.tenant("t") is tracker
    registry.set_target("t", SLOTarget(latency_p95_s=0.5, window_s=30.0))
    snap = tracker.snapshot()
    assert snap["latency"]["count"] == 0  # windows restarted
    assert snap["completed"] == 1  # counts carry over
    assert tracker.target.latency_p95_s == 0.5


# -- OpenMetrics render + parse ------------------------------------------


def _service_sample():
    return {
        "schema": "repro.obs/telemetry-sample/v1",
        "t_s": 1.0,
        "uptime_s": 1.0,
        "service": {"name": "svc", "executor": "thread", "uptime_s": 1.0},
        "scheduler": {
            "queue_depth": 2,
            "running_chains": 1,
            "slots_total": 4,
            "slots_in_use": 3,
            "utilization": 0.75,
            "waiting_tasks": 1,
        },
        "tenants": {
            "alice": {
                "queued_chains": 1,
                "running_chains": 1,
                "slots_in_use": 2,
                "waiting_tasks": 1,
                "tasks_inflight": 2,
                "slots_granted_total": 9,
                "wait_histogram": {
                    "count": 3,
                    "sum": 0.3,
                    "buckets": {"le_0.1": 2, "le_1.0": 3, "le_inf": 3},
                },
            }
        },
        "slo": {
            "alice": {
                "admitted": 2,
                "completed": 1,
                "failed": 0,
                "cancelled": 0,
                "rejected": 0,
                "error_rate": 0.0,
                "status": "ok",
                "latency": {"count": 1, "p95_s": 0.5},
                "wait": {"count": 3, "p95_s": 0.1},
                "latency_histogram": {
                    "count": 1,
                    "sum": 0.5,
                    "buckets": {"le_1.0": 1, "le_inf": 1},
                },
            }
        },
        "process": {"rss_peak_kb": 120000, "threads": 9},
    }


def test_render_openmetrics_parses_cleanly():
    text = render_openmetrics(_service_sample())
    assert text.endswith("# EOF\n")
    families = parse_openmetrics(text)  # validate=True: every line parsed
    assert families["repro_queue_depth"]["type"] == "gauge"
    assert families["repro_slots_granted"]["type"] == "counter"
    wait = families["repro_slot_wait_seconds"]
    assert wait["type"] == "histogram"
    tenants = {s[1].get("tenant") for s in wait["samples"]}
    assert tenants == {"alice"}
    bucket_values = [
        value
        for name, labels, value in wait["samples"]
        if name.endswith("_bucket") and labels["tenant"] == "alice"
    ]
    assert bucket_values == sorted(bucket_values)  # cumulative
    status = families["repro_tenant_slo_status"]["samples"]
    assert status[0][2] == 0.0  # ok -> 0


def test_render_openmetrics_no_duplicate_families():
    text = render_openmetrics(_service_sample())
    declared = [
        line.split(" ")[2]
        for line in text.splitlines()
        if line.startswith("# TYPE ")
    ]
    assert len(declared) == len(set(declared))


def test_render_openmetrics_empty_families_render_nothing():
    families = parse_openmetrics(render_openmetrics({"t_s": 0.0}))
    assert "repro_slot_wait_seconds" not in families


def test_parse_rejects_malformed_expositions():
    with pytest.raises(ValueError, match="EOF"):
        parse_openmetrics("# TYPE x gauge\nx 1\n")
    with pytest.raises(ValueError, match="no # TYPE"):
        parse_openmetrics("x 1\n# EOF\n")
    with pytest.raises(ValueError, match="duplicate"):
        parse_openmetrics(
            "# TYPE x gauge\nx 1\n# TYPE x gauge\nx 2\n# EOF\n"
        )
    with pytest.raises(ValueError, match="cumulative|bucket"):
        parse_openmetrics(
            "# TYPE h histogram\n"
            'h_bucket{le="0.1"} 5\n'
            'h_bucket{le="+Inf"} 3\n'
            "h_count 3\n"
            "h_sum 1.0\n"
            "# EOF\n"
        )


# -- the plane: sampling loop, JSONL log, HTTP endpoints -----------------


def test_plane_jsonl_log_and_summary(tmp_path):
    log_path = tmp_path / "telemetry.jsonl"
    plane = TelemetryPlane(
        lambda: {"scheduler": {"queue_depth": 1}},
        interval_s=5.0,
        log_path=str(log_path),
    )
    plane.sample_once()
    plane.sample_once()
    plane.stop()
    lines = log_path.read_text().splitlines()
    assert len(lines) == 2
    sample = json.loads(lines[-1])
    assert sample["scheduler"]["queue_depth"] == 1
    summary = summarize_log_lines(lines + ["{corrupt", ""])
    assert summary["samples"] == 2 and summary["skipped"] == 1
    assert summary["series"]["scheduler.queue_depth"]["last"] == 1.0


def test_service_http_endpoints():
    service = ClusterService(slots=2, executor="thread")
    try:
        plane = service.start_telemetry(port=0, interval_s=0.2)
        assert plane.port
        with pytest.raises(RuntimeError):
            service.start_telemetry(port=0)
        handles = [
            service.submit(_run_chain, tenant=tenant)
            for tenant in ("alice", "bob")
        ]
        for handle in handles:
            handle.wait(timeout=30)
        base = f"http://127.0.0.1:{plane.port}"

        with urllib.request.urlopen(f"{base}/healthz", timeout=5) as resp:
            assert resp.status == 200
            health = json.loads(resp.read())
        assert health["status"] == "ok"

        with urllib.request.urlopen(f"{base}/metrics", timeout=5) as resp:
            assert resp.headers["Content-Type"] == OPENMETRICS_CONTENT_TYPE
            families = parse_openmetrics(resp.read().decode())
        assert "repro_queue_depth" in families
        wait = families["repro_slot_wait_seconds"]
        assert wait["type"] == "histogram"
        assert {s[1].get("tenant") for s in wait["samples"]} == {
            "alice",
            "bob",
        }

        with urllib.request.urlopen(f"{base}/statusz", timeout=5) as resp:
            status = json.loads(resp.read())
        assert status["scheduler"]["slots_total"] == 2
        assert set(status["tenants"]) == {"alice", "bob"}
        assert status["slo"]["alice"]["completed"] == 1

        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(f"{base}/nope", timeout=5)
        assert excinfo.value.code == 404
    finally:
        service.shutdown()
    assert service.telemetry is None  # shutdown stops the plane


def test_scheduler_snapshot_has_wait_histograms():
    service = ClusterService(slots=2, executor="thread")
    try:
        service.submit(_run_chain, tenant="alice").wait(timeout=30)
        snapshot = service.telemetry_snapshot()
        alice = snapshot["tenants"]["alice"]
        assert alice["slots_granted_total"] > 0
        assert alice["wait_histogram"]["count"] > 0
        assert snapshot["scheduler"]["slots_total"] == 2
        assert snapshot["slo"]["alice"]["latency"]["count"] == 1
    finally:
        service.shutdown()


# -- repro top -----------------------------------------------------------


def test_render_top_tenant_table():
    screen = render_top(_service_sample())
    lines = screen.splitlines()
    assert "slots 3/4" in lines[0] and "queue 2" in lines[0]
    assert "tenant" in lines[1] and "slo" in lines[1]
    alice = next(line for line in lines if line.startswith("alice"))
    assert "ok" in alice and "9" in alice


def test_render_top_empty_sample():
    screen = render_top({"t_s": 0.0})
    assert "(no tenants yet)" in screen


def test_cli_top_reads_log(tmp_path, capsys):
    from repro.cli import main

    log = tmp_path / "telemetry.jsonl"
    log.write_text(
        json.dumps(_service_sample()) + "\n" + "{mid-write", encoding="utf-8"
    )
    assert main(["top", "--log", str(log)]) == 0
    out = capsys.readouterr().out
    assert "alice" in out and "slots 3/4" in out
    # exactly one of --endpoint / --log must be given
    assert main(["top"]) == 2


# -- bench-regression gate -----------------------------------------------


def _run_gate(*extra: str) -> subprocess.CompletedProcess:
    return subprocess.run(
        [
            sys.executable,
            str(REPO_ROOT / "benchmarks" / "check_regression.py"),
            *extra,
        ],
        capture_output=True,
        text=True,
        cwd=REPO_ROOT,
    )


def test_check_regression_passes_on_committed_baselines():
    result = _run_gate()
    assert result.returncode == 0, result.stdout + result.stderr


GATED_ARTIFACTS = (
    "BENCH_hotpaths.json",
    "BENCH_service.json",
    "BENCH_serving.json",
    "BENCH_outofcore.json",
    "BENCH_coreset.json",
)


def test_check_regression_fails_on_starvation_regression(tmp_path):
    for name in GATED_ARTIFACTS:
        payload = json.loads((REPO_ROOT / name).read_text())
        if name == "BENCH_service.json":
            payload["starvation_ratio"] *= 1.25
        (tmp_path / name).write_text(json.dumps(payload))
    result = _run_gate("--current-dir", str(tmp_path))
    assert result.returncode == 1
    assert "starvation_ratio" in result.stderr


def test_check_regression_fails_on_assign_speedup_regression(tmp_path):
    for name in GATED_ARTIFACTS:
        payload = json.loads((REPO_ROOT / name).read_text())
        if name == "BENCH_serving.json":
            payload["assign_speedup"] *= 0.5
        (tmp_path / name).write_text(json.dumps(payload))
    result = _run_gate("--current-dir", str(tmp_path))
    assert result.returncode == 1
    assert "assign_speedup" in result.stderr


def test_check_regression_rss_ratio_has_absolute_slack(tmp_path):
    # peak_rss_ratio's baseline is 0.0 (fully bounded scan), so the
    # gate carries an absolute slack: small jitter passes, a real
    # unbounded-memory regression fails.
    for name in GATED_ARTIFACTS:
        payload = json.loads((REPO_ROOT / name).read_text())
        if name == "BENCH_outofcore.json":
            payload["peak_rss_ratio"] = 0.03  # within the 0.05 slack
        (tmp_path / name).write_text(json.dumps(payload))
    result = _run_gate("--current-dir", str(tmp_path))
    assert result.returncode == 0, result.stdout + result.stderr

    payload = json.loads((REPO_ROOT / "BENCH_outofcore.json").read_text())
    payload["peak_rss_ratio"] = 0.4  # scan no longer bounded
    (tmp_path / "BENCH_outofcore.json").write_text(json.dumps(payload))
    result = _run_gate("--current-dir", str(tmp_path))
    assert result.returncode == 1
    assert "peak_rss_ratio" in result.stderr


def test_check_regression_quick_skips_scale_sensitive(tmp_path):
    # A quick-mode service artifact against the full-run baseline:
    # probe_p95_s and throughput must be skipped, ratios still gated.
    for name in GATED_ARTIFACTS:
        payload = json.loads((REPO_ROOT / name).read_text())
        if name == "BENCH_service.json":
            payload["probe_p95_s"] *= 10  # would fail if compared
        (tmp_path / name).write_text(json.dumps(payload))
    result = _run_gate("--current-dir", str(tmp_path), "--quick")
    assert result.returncode == 0, result.stdout + result.stderr
    assert "SKIP BENCH_service.json:probe_p95_s" in result.stdout
