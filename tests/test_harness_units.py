"""Unit tests for harness render/projection helpers (no heavy sweeps)."""

from __future__ import annotations

import pytest

from repro.experiments.billion import BillionResult, render as billion_render
from repro.experiments.colon import ColonResult, render as colon_render
from repro.experiments.figure4 import Figure4Row, render as figure4_render
from repro.experiments.figure5 import Figure5Row, render as figure5_render
from repro.experiments.figure6 import render as figure6_render
from repro.experiments.figure7 import (
    RuntimeRow,
    project_runtime,
    run_projected,
)
from repro.experiments.runner import SweepRow
from repro.mapreduce.costmodel import ClusterCostModel


class TestFigure4Render:
    def test_pairs_cells(self):
        rows = [
            Figure4Row("NAIVE", 1000, 3, 0.05, 0.8),
            Figure4Row("MVB", 1000, 3, 0.05, 0.9),
        ]
        text = figure4_render(rows)
        assert "1/1 cells" in text
        assert "0.800" in text and "0.900" in text


class TestFigure5Render:
    def test_renders_thresholds(self):
        rows = [
            Figure5Row(n=1000, threshold=1e-20, test="Poisson",
                       cores_no_filter=40, cores_filtered=5),
            Figure5Row(n=1000, threshold=1e-20, test="Combined",
                       cores_no_filter=12, cores_filtered=5),
        ]
        text = figure5_render(rows, num_clusters=5)
        assert "1e-20" in text
        assert "optimal = 5" in text


class TestFigure6Render:
    def test_panels_grouped(self):
        rows = [
            SweepRow("MR (Light)", 1000, 3, 0.0, 0.9, 1.0, 3),
            SweepRow("BoW (Light)", 1000, 3, 0.0, 0.7, 0.5, 3),
            SweepRow("MR (Light)", 1000, 5, 0.1, 0.8, 1.2, 5),
        ]
        text = figure6_render(rows)
        assert "(3 clusters, 0% noise)" in text
        assert "(5 clusters, 10% noise)" in text


class TestFigure7Projection:
    def test_mr_cost_scales_with_jobs(self):
        model = ClusterCostModel()
        few = project_runtime("MR (Light)", 10**7, 5, model)
        many = project_runtime("MR (Light)", 10**7, 10, model)
        assert many == pytest.approx(2 * few)

    def test_bow_cost_includes_plugin_term(self):
        model = ClusterCostModel()
        light = project_runtime("BoW (Light)", 10**8, 1, model)
        mvb = project_runtime("BoW (MVB)", 10**8, 1, model)
        assert mvb > light  # heavier plug-in per reducer

    def test_run_projected_uses_largest_measured_jobs(self):
        measured = [
            RuntimeRow("MR (Light)", 1000, 1.0, mr_jobs=5),
            RuntimeRow("MR (Light)", 2000, 2.0, mr_jobs=7),
        ]
        projected = run_projected(measured, sizes=(10**6,))
        assert projected[0].mr_jobs == 7

    def test_monotone_in_n(self):
        model = ClusterCostModel()
        times = [
            project_runtime("BoW (Light)", n, 1, model)
            for n in (10**5, 10**7, 10**9)
        ]
        assert times == sorted(times)


class TestBillionRender:
    def test_mentions_both_algorithms(self):
        outcome = BillionResult(
            measured_mr_light_s=10.0,
            measured_bow_light_s=5.0,
            measured_mr_jobs=7,
            projected_mr_light_s=4500.0,
            projected_bow_light_s=8200.0,
        )
        text = billion_render(outcome, scaled_n=4000)
        assert "MR (Light)" in text and "BoW (Light)" in text
        assert outcome.projected_ratio == pytest.approx(8200 / 4500)


class TestColonRender:
    def test_reports_means_and_ordering(self):
        outcome = ColonResult(per_seed=[(7, 0.9, 0.8), (11, 0.7, 0.8)])
        assert outcome.p3c_plus_mean == pytest.approx(0.8)
        assert outcome.p3c_mean == pytest.approx(0.8)
        assert outcome.ordering_reproduced
        text = colon_render(outcome)
        assert "mean" in text
