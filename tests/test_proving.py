"""Unit tests for candidate proving (Eq. 1 + effect size)."""

from __future__ import annotations

import pytest

from repro.core.proving import SupportTester, count_supports
from repro.core.types import Interval, Signature


def _sig(*attrs: int, width: float = 0.1) -> Signature:
    return Signature([Interval(a, 0.0, width) for a in attrs])


class TestCountSupports:
    def test_matches_signature_support(self, tiny_dataset):
        sigs = [_sig(0, width=0.5), _sig(0, 1, width=0.5)]
        supports = count_supports(tiny_dataset.data, sigs)
        for sig in sigs:
            assert supports[sig] == sig.support(tiny_dataset.data)


class TestSupportTester:
    def test_validates_n(self):
        with pytest.raises(ValueError):
            SupportTester(0)

    def test_level1_significant_singleton_passes(self):
        tester = SupportTester(n=1_000, alpha=0.01, theta_cc=0.35)
        sig = _sig(0)  # width 0.1 => expected 100
        assert tester.passes(sig, support=500, known={})

    def test_level1_uniform_singleton_fails(self):
        tester = SupportTester(n=1_000, alpha=0.01, theta_cc=0.35)
        sig = _sig(0)
        assert not tester.passes(sig, support=100, known={})

    def test_effect_size_blocks_weak_but_significant(self):
        # Huge n: +2% is significant but below theta_cc = 0.35.
        tester = SupportTester(n=10_000_000, alpha=0.01, theta_cc=0.35)
        sig = _sig(0)  # expected 1e6
        support = 1_020_000
        assert not tester.passes(sig, support, known={})
        poisson_only = SupportTester(n=10_000_000, alpha=0.01, theta_cc=None)
        assert poisson_only.passes(sig, support, known={})

    def test_eq1_requires_every_leave_one_out(self):
        tester = SupportTester(n=1_000, alpha=0.01, theta_cc=None)
        pair = _sig(0, 1)
        known = {_sig(0): 500, _sig(1): 900}
        # 120 >> 500*0.1 = 50 (attr 1 left out: parent {0});
        # but 120 vs 900*0.1 = 90 (attr 0 left out) is a weak deviation.
        assert not tester.passes(pair, support=92, known=known)
        assert tester.passes(pair, support=500, known=known)

    def test_missing_parent_raises_keyerror(self):
        tester = SupportTester(n=100)
        with pytest.raises(KeyError):
            tester.parent_support(_sig(0, 1), {})

    def test_empty_parent_has_support_n(self):
        tester = SupportTester(n=123)
        parents = tester.parent_support(_sig(0), {})
        assert list(parents.values()) == [123]


class TestProveBatch:
    def test_level_order_resolves_parents(self):
        tester = SupportTester(n=1_000, alpha=0.01, theta_cc=None)
        s0, s1 = _sig(0), _sig(1)
        pair = _sig(0, 1)
        supports = {s0: 400, s1: 400, pair: 380}
        proven = tester.prove([pair, s0, s1], supports)
        assert {p.signature for p in proven} == {s0, s1, pair}

    def test_unproven_parent_blocks_child(self):
        tester = SupportTester(n=1_000, alpha=0.01, theta_cc=None)
        s0, s1 = _sig(0), _sig(1)
        pair = _sig(0, 1)
        # s1 is uniform (fails level 1), so the pair must not be proven
        # even though its own counts look significant.
        supports = {s0: 400, s1: 100, pair: 95}
        proven = {p.signature for p in tester.prove([s0, s1, pair], supports)}
        assert s0 in proven
        assert s1 not in proven
        assert pair not in proven

    def test_proven_set_carries_across_batches(self):
        tester = SupportTester(n=1_000, alpha=0.01, theta_cc=None)
        s0, s1 = _sig(0), _sig(1)
        batch1 = tester.prove([s0, s1], {s0: 400, s1: 400})
        assert len(batch1) == 2
        pair = _sig(0, 1)
        batch2 = tester.prove(
            [pair],
            {pair: 380},
            known={s0: 400, s1: 400},
            proven_set=[p.signature for p in batch1],
        )
        assert [p.signature for p in batch2] == [pair]

    def test_missing_parent_support_fails_closed(self):
        tester = SupportTester(n=1_000, alpha=0.01, theta_cc=None)
        pair = _sig(0, 1)
        proven = tester.prove(
            [pair], {pair: 380}, proven_set=[_sig(0), _sig(1)]
        )
        assert proven == []

    def test_proven_signature_records_support(self):
        tester = SupportTester(n=1_000, alpha=0.01, theta_cc=None)
        (proven,) = tester.prove([_sig(0)], {_sig(0): 400})
        assert proven.support == 400
        assert proven.p == 1
