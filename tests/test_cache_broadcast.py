"""Tests for the process-executor data plane: stable cache
fingerprints, per-worker broadcast via :class:`CacheHandle`, and
pickle-5 out-of-band argument packing.
"""

from __future__ import annotations

import pickle
from typing import Any

import numpy as np
import pytest

from repro.core.types import Interval, Signature
from repro.mapreduce import (
    CacheHandle,
    Context,
    DistributedCache,
    Job,
    JobConf,
    Mapper,
    MapReduceRuntime,
    ProcessExecutor,
    Reducer,
    SerialExecutor,
)
from repro.mapreduce.executors import (
    _WORKER_CACHES,
    _install_broadcasts,
    _pack_args,
    _run_packed,
)
from repro.mapreduce.types import split_records


class TestFingerprintStability:
    def test_equal_entries_equal_fingerprint(self):
        a = DistributedCache({"x": 1, "y": [1, 2, 3]})
        b = DistributedCache({"y": [1, 2, 3], "x": 1})  # other insertion order
        assert a.fingerprint() == b.fingerprint()

    def test_different_entries_different_fingerprint(self):
        a = DistributedCache({"x": 1})
        assert a.fingerprint() != DistributedCache({"x": 2}).fingerprint()
        assert a.fingerprint() != DistributedCache({"z": 1}).fingerprint()

    def test_ndarray_entries(self):
        data = np.arange(12.0).reshape(3, 4)
        a = DistributedCache({"m": data})
        assert a.fingerprint() == DistributedCache({"m": data.copy()}).fingerprint()
        assert (
            a.fingerprint()
            != DistributedCache({"m": data + 1e-9}).fingerprint()
        )
        # Same bytes, different shape must not collide.
        assert (
            a.fingerprint()
            != DistributedCache({"m": data.reshape(4, 3)}).fingerprint()
        )

    def test_set_entries_order_independent(self):
        # Native set iteration order varies across processes under hash
        # randomisation; the fingerprint must not.
        a = DistributedCache({"s": {"alpha", "beta", "gamma"}})
        b = DistributedCache({"s": {"gamma", "alpha", "beta"}})
        assert a.fingerprint() == b.fingerprint()

    def test_nested_dict_entries(self):
        a = DistributedCache({"cfg": {"lo": 0.1, "hi": 0.9}})
        b = DistributedCache({"cfg": {"hi": 0.9, "lo": 0.1}})
        assert a.fingerprint() == b.fingerprint()

    def test_value_dataclass_entries(self):
        sigs = [Signature([Interval(0, 0.1, 0.4)])]
        a = DistributedCache({"signatures": sigs})
        assert (
            a.fingerprint()
            == DistributedCache({"signatures": list(sigs)}).fingerprint()
        )

    def test_pickle_roundtrip_preserves_fingerprint(self):
        cache = DistributedCache(
            {"b": np.ones(5), "a": {"k": (1, 2)}, "c": {3, 1, 2}}
        )
        clone = pickle.loads(pickle.dumps(cache))
        assert clone.fingerprint() == cache.fingerprint()
        assert sorted(clone) == sorted(cache)
        np.testing.assert_array_equal(clone["b"], cache["b"])
        assert clone["a"] == cache["a"] and clone["c"] == cache["c"]


class TestCacheHandle:
    def test_resolves_against_registry(self):
        cache = DistributedCache({"k": 41})
        _WORKER_CACHES[cache.fingerprint()] = cache
        try:
            handle = CacheHandle(cache.fingerprint())
            assert handle["k"] == 41
            assert len(handle) == 1
            assert list(handle) == ["k"]
            assert handle.fingerprint() == cache.fingerprint()
        finally:
            del _WORKER_CACHES[cache.fingerprint()]

    def test_miss_raises_helpful_error(self):
        handle = CacheHandle("deadbeefdeadbeef")
        with pytest.raises(RuntimeError, match="not\\s+installed"):
            handle["anything"]

    def test_pickles_to_constant_size(self):
        big = DistributedCache({"blob": np.zeros((500, 500))})
        executor = ProcessExecutor(max_workers=1)
        handle = executor.broadcast(big)
        handle_bytes = pickle.dumps(handle, protocol=5)
        cache_bytes = pickle.dumps(big, protocol=5)
        assert len(handle_bytes) < 200
        assert len(cache_bytes) > 1_000_000
        clone = pickle.loads(handle_bytes)
        assert isinstance(clone, CacheHandle)
        assert clone.fingerprint() == big.fingerprint()

    def test_broadcast_is_idempotent(self):
        executor = ProcessExecutor(max_workers=1)
        cache = DistributedCache({"x": np.arange(4)})
        first = executor.broadcast(cache)
        second = executor.broadcast(DistributedCache({"x": np.arange(4)}))
        assert first.fingerprint() == second.fingerprint()
        assert len(executor._broadcasts) == 1

    def test_install_broadcasts_initializer(self):
        cache = DistributedCache({"seed": 7})
        try:
            _install_broadcasts({cache.fingerprint(): cache})
            assert CacheHandle(cache.fingerprint())["seed"] == 7
        finally:
            del _WORKER_CACHES[cache.fingerprint()]


class TestArgumentPacking:
    def test_roundtrip_plain_args(self):
        data, buffers = _pack_args((1, "two", [3.0]))
        assert _run_packed(lambda *a: a, data, buffers) == (1, "two", [3.0])

    def test_ndarrays_travel_out_of_band(self):
        block = np.arange(10_000, dtype=np.float64).reshape(100, 100)
        data, buffers = _pack_args((block, "meta"))
        # The array's 80kB payload left the pickle stream...
        assert len(data) < 2_000
        assert sum(len(b) for b in buffers) >= block.nbytes
        # ...and reassembles bit-identically on the worker side.
        restored, meta = _run_packed(lambda *a: a, data, buffers)
        np.testing.assert_array_equal(restored, block)
        assert meta == "meta"


# -- end-to-end: broadcast through a real process-pool job ---------------


class CacheProbeMapper(Mapper):
    """Emits, per record, the value looked up in the distributed cache
    and the concrete cache type the task saw."""

    def setup(self, context: Context) -> None:
        self._offsets: np.ndarray = context.cache["offsets"]
        self._cache_type = type(context.cache).__name__

    def map(self, key: Any, value: int, context: Context) -> None:
        context.emit(key, int(self._offsets[value]))
        context.emit(("cache_type", key), self._cache_type)


class FirstReducer(Reducer):
    def reduce(self, key: Any, values: list[Any], context: Context) -> None:
        context.emit(key, values[0])


def _probe_job() -> tuple[Job, list]:
    job = Job(
        mapper_factory=CacheProbeMapper,
        reducer_factory=FirstReducer,
        cache=DistributedCache({"offsets": np.arange(8) * 10}),
    )
    splits = split_records([(i, i) for i in range(8)], 4)
    return job, splits


class TestBroadcastEndToEnd:
    def test_process_tasks_see_a_handle_and_correct_values(self):
        job, splits = _probe_job()
        runtime = MapReduceRuntime(executor=ProcessExecutor(2))
        result = runtime.run(job, splits, JobConf(num_reducers=1))
        output = dict(result.output)
        for i in range(8):
            assert output[i] == i * 10
        # Every map task resolved the cache through the broadcast handle.
        assert {
            v for k, v in output.items()
            if isinstance(k, tuple) and k[0] == "cache_type"
        } == {"CacheHandle"}

    def test_serial_matches_process_output(self):
        job, splits = _probe_job()
        serial = MapReduceRuntime(executor=SerialExecutor()).run(
            job, splits, JobConf(num_reducers=1)
        )
        process = MapReduceRuntime(executor=ProcessExecutor(2)).run(
            job, splits, JobConf(num_reducers=1)
        )
        # Payloads match except the probe rows naming the cache type.
        def payload(result):
            return [
                (k, v) for k, v in result.output
                if not (isinstance(k, tuple) and k[0] == "cache_type")
            ]

        assert payload(serial) == payload(process)
