"""Chain checkpoint/resume: kill-and-recover, staleness, accounting."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.mapreduce import (
    CheckpointStore,
    Counters,
    FaultPlan,
    JobChain,
    MapReduceRuntime,
    TaskFailedError,
    chain_fingerprint,
    fingerprint_splits,
    split_records,
)
from repro.mapreduce.events import EventKind
from repro.mapreduce.job import Job, Mapper, Reducer
from repro.mapreduce.types import JobConf
from repro.mr import P3CPlusMRConfig, P3CPlusMRLight
from repro.obs import Observability, build_run_report


class AddMapper(Mapper):
    def map(self, key, value, context):
        context.emit(key % 4, value)


class SumReducer(Reducer):
    def reduce(self, key, values, context):
        context.emit(key, sum(values))


def _records(n=48, offset=0):
    return [(i, i + offset) for i in range(n)]


def _run_chain(tmpdir, resume=False, fault_spec=None, offset=0, names=None):
    plan = FaultPlan.parse(fault_spec) if fault_spec else None
    runtime = MapReduceRuntime(fault_plan=plan)
    chain = JobChain(runtime, checkpoint=tmpdir, resume=resume)
    names = names or ["stage_a", "stage_b", "stage_c"]
    splits = split_records(_records(offset=offset), 4)
    result = None
    for name in names:
        result = chain.run(
            name,
            Job(mapper_factory=AddMapper, reducer_factory=SumReducer),
            splits,
            num_reducers=2,
        )
        splits = split_records(result.output, 2)
    return chain, result


# -- fingerprints -------------------------------------------------------


class TestFingerprints:
    def test_split_fingerprint_is_stable(self):
        splits = split_records(_records(), 4)
        assert fingerprint_splits(splits) == fingerprint_splits(
            split_records(_records(), 4)
        )

    def test_split_fingerprint_sees_data_changes(self):
        a = fingerprint_splits(split_records(_records(offset=0), 4))
        b = fingerprint_splits(split_records(_records(offset=1), 4))
        assert a != b

    def test_split_fingerprint_sees_resplits(self):
        a = fingerprint_splits(split_records(_records(), 4))
        b = fingerprint_splits(split_records(_records(), 6))
        assert a != b

    def test_split_fingerprint_handles_numpy_rows(self):
        data = np.arange(20.0).reshape(10, 2)
        a = fingerprint_splits(split_records(data, 2))
        data2 = data.copy()
        data2[0, 0] += 1
        b = fingerprint_splits(split_records(data2, 2))
        assert a != b

    def test_chain_fingerprint_folds_history(self):
        splits = split_records(_records(), 4)
        conf = JobConf(name="x", num_splits=4)
        a = chain_fingerprint("", "x", conf, splits)
        b = chain_fingerprint(a, "x", conf, splits)
        assert a != b

    def test_chain_fingerprint_sees_conf_changes(self):
        splits = split_records(_records(), 4)
        a = chain_fingerprint("", "x", JobConf(name="x", num_reducers=1), splits)
        b = chain_fingerprint("", "x", JobConf(name="x", num_reducers=2), splits)
        assert a != b


# -- the store ----------------------------------------------------------


class TestCheckpointStore:
    def test_round_trip(self, tmp_path):
        store = CheckpointStore(tmp_path)
        store.save("000_a", "fp1", [(1, 2)], meta={"wall_time": 0.5})
        output, meta = store.load("000_a", "fp1")
        assert output == [(1, 2)]
        assert meta["wall_time"] == 0.5

    def test_stale_fingerprint_misses(self, tmp_path):
        store = CheckpointStore(tmp_path)
        store.save("000_a", "fp1", [(1, 2)], meta={})
        assert store.load("000_a", "other") is None

    def test_corrupt_manifest_is_tolerated(self, tmp_path):
        store = CheckpointStore(tmp_path)
        store.save("000_a", "fp1", [(1, 2)], meta={})
        (tmp_path / "manifest.json").write_text("{not json")
        reopened = CheckpointStore(tmp_path)
        assert len(reopened) == 0

    def test_truncated_pickle_is_tolerated(self, tmp_path):
        store = CheckpointStore(tmp_path)
        store.save("000_a", "fp1", [(1, 2)], meta={})
        (tmp_path / "jobs" / "000_a.pkl").write_bytes(b"\x80")
        reopened = CheckpointStore(tmp_path)
        assert reopened.load("000_a", "fp1") is None

    def test_job_key_sanitizes_names(self):
        assert CheckpointStore.job_key(3, "em step/2 (cov)") == "003_em_step_2_cov_"

    def test_manifest_is_valid_json_with_schema(self, tmp_path):
        store = CheckpointStore(tmp_path)
        store.save("000_a", "fp1", [], meta={})
        manifest = json.loads((tmp_path / "manifest.json").read_text())
        assert manifest["schema"] == CheckpointStore.SCHEMA
        assert "000_a" in manifest["jobs"]


# -- resume semantics ---------------------------------------------------


class TestResume:
    def test_full_resume_skips_every_job(self, tmp_path):
        chain1, result1 = _run_chain(tmp_path)
        assert chain1.num_restored_jobs == 0

        chain2, result2 = _run_chain(tmp_path, resume=True)
        assert chain2.num_restored_jobs == 3
        assert result2.output == result1.output
        assert result2.executor == "checkpoint"
        skipped = [
            e
            for e in chain2.runtime.events.events
            if e.kind == EventKind.JOB_SKIPPED
        ]
        assert [e.job for e in skipped] == ["stage_a", "stage_b", "stage_c"]

    def test_restored_counters_match_original(self, tmp_path):
        chain1, result1 = _run_chain(tmp_path)
        chain2, result2 = _run_chain(tmp_path, resume=True)
        assert result2.counters.snapshot() == result1.counters.snapshot()
        assert chain2.total_shuffle_records == chain1.total_shuffle_records

    def test_kill_after_job_k_then_resume_matches_uninterrupted(self, tmp_path):
        # Uninterrupted reference run (separate store).
        _, reference = _run_chain(tmp_path / "ref")

        # Interrupted run: permanent fault kills stage_b.
        with pytest.raises(TaskFailedError):
            _run_chain(
                tmp_path / "ck", fault_spec="map:error:job=stage_b:always=1"
            )
        interrupted = CheckpointStore(tmp_path / "ck")
        assert len(interrupted) == 1  # only stage_a completed

        # Resume without the fault: stage_a restored, b/c re-run.
        chain, result = _run_chain(tmp_path / "ck", resume=True)
        assert result.output == reference.output
        assert chain.num_restored_jobs == 1
        skipped = [
            e
            for e in chain.runtime.events.events
            if e.kind == EventKind.JOB_SKIPPED
        ]
        assert [e.job for e in skipped] == ["stage_a"]

    def test_stale_input_forces_recompute(self, tmp_path):
        _run_chain(tmp_path)
        # Same chain shape, different data: nothing may be restored.
        chain, _ = _run_chain(tmp_path, resume=True, offset=100)
        assert chain.num_restored_jobs == 0

    def test_renamed_job_forces_recompute_of_suffix(self, tmp_path):
        _run_chain(tmp_path)
        chain, _ = _run_chain(
            tmp_path,
            resume=True,
            names=["stage_a", "stage_b2", "stage_c"],
        )
        # stage_a restores; the rename breaks the chained fingerprint
        # for everything after it.
        assert chain.num_restored_jobs == 1

    def test_without_resume_flag_store_is_write_only(self, tmp_path):
        _run_chain(tmp_path)
        chain, _ = _run_chain(tmp_path, resume=False)
        assert chain.num_restored_jobs == 0


# -- auto-tune + resume: the partition plan is part of the checkpoint ---


class FanoutMapper(Mapper):
    def map(self, key, value, context):
        context.emit(key % 8, value)


class SlowSumReducer(Reducer):
    def reduce(self, key, values, context):
        import time

        time.sleep(0.002)
        context.emit(key, sum(values))


def _run_tuned_chain(tmpdir, resume=False, fault_spec=None):
    plan = FaultPlan.parse(fault_spec) if fault_spec else None
    runtime = MapReduceRuntime(
        executor="thread", max_workers=4, fault_plan=plan
    )
    chain = JobChain(runtime, checkpoint=tmpdir, resume=resume, auto_tune=True)
    splits = split_records(_records(n=120), 4)
    for name in ["stage_a", "stage_b", "stage_c"]:
        result = chain.run(
            name,
            Job(mapper_factory=FanoutMapper, reducer_factory=SlowSumReducer),
            splits,
            num_reducers=None,
        )
        splits = split_records(result.output, 4)
    return chain, [step.result.conf.num_reducers for step in chain.steps]


class TestAutoTuneResume:
    def test_resumed_chain_reuses_checkpointed_partition_plan(self, tmp_path):
        # Kill stage_c on the first attempt: stages a and b complete
        # and persist both their outputs and their partition plans.
        with pytest.raises(TaskFailedError):
            _run_tuned_chain(
                tmp_path, fault_spec="map:error:job=stage_c:always=1"
            )
        original = CheckpointStore(tmp_path)
        planned = {
            key: entry["num_reducers"]
            for key, entry in original._manifest.get("plans", {}).items()
        }
        assert planned["001_stage_b"] > 1  # non-vacuous: b was tuned up

        # The resume must restore a and b — which requires re-choosing
        # the *same* reducer counts, or the chained JobConf fingerprint
        # breaks.  Re-planning would calibrate from the restored run's
        # empty event history and pick a different count; the stored
        # plan is authoritative instead.
        chain, reducers = _run_tuned_chain(tmp_path, resume=True)
        assert chain.num_restored_jobs == 2
        assert reducers[0] == planned["000_stage_a"]
        assert reducers[1] == planned["001_stage_b"]

    def test_resume_and_rerun_pick_identical_plans(self, tmp_path):
        _, reducers1 = _run_tuned_chain(tmp_path)
        chain, reducers2 = _run_tuned_chain(tmp_path, resume=True)
        assert chain.num_restored_jobs == 3
        assert reducers2 == reducers1


# -- driver + run-report integration ------------------------------------


class TestDriverResume:
    @pytest.fixture(scope="class")
    def data(self, tiny_dataset):
        return tiny_dataset.data

    def test_mr_light_resume_matches_and_reports_skips(self, tmp_path, data):
        ck = str(tmp_path / "ck")
        algo1 = P3CPlusMRLight(
            mr_config=P3CPlusMRConfig(num_splits=4, checkpoint_dir=ck)
        )
        result1 = algo1.fit(data)

        obs = Observability(enabled=True)
        algo2 = P3CPlusMRLight(
            mr_config=P3CPlusMRConfig(
                num_splits=4, checkpoint_dir=ck, resume=True
            ),
            obs=obs,
        )
        with obs.run("resume"):
            result2 = algo2.fit(data)

        assert algo2.chain.num_restored_jobs == algo2.chain.num_jobs
        members1 = sorted(tuple(sorted(c.members)) for c in result1.clusters)
        members2 = sorted(tuple(sorted(c.members)) for c in result2.clusters)
        assert members1 == members2
        assert np.array_equal(
            np.sort(result1.outliers), np.sort(result2.outliers)
        )

        # run.json surfaces the skips: the counter and the per-job
        # executor column both say "checkpoint".
        report = build_run_report("mr-light", obs=obs, chain=algo2.chain)
        counters = report["metrics"]["counters"]
        assert counters["mr.jobs_skipped"] == algo2.chain.num_jobs
        assert {row["executor"] for row in report["jobs"]} == {"checkpoint"}

    def test_mr_light_kill_then_resume(self, tmp_path, data):
        ck = str(tmp_path / "ck2")
        reference = P3CPlusMRLight(
            mr_config=P3CPlusMRConfig(num_splits=4)
        ).fit(data)

        plan = FaultPlan.parse("map:error:job=light_membership:always=1")
        broken = P3CPlusMRLight(
            mr_config=P3CPlusMRConfig(
                num_splits=4, checkpoint_dir=ck, fault_plan=plan
            )
        )
        with pytest.raises(TaskFailedError):
            broken.fit(data)
        completed_before = broken.chain.num_jobs
        assert completed_before >= 1

        resumed = P3CPlusMRLight(
            mr_config=P3CPlusMRConfig(
                num_splits=4, checkpoint_dir=ck, resume=True
            )
        )
        result = resumed.fit(data)
        assert resumed.chain.num_restored_jobs == completed_before
        members_ref = sorted(
            tuple(sorted(c.members)) for c in reference.clusters
        )
        members_res = sorted(tuple(sorted(c.members)) for c in result.clusters)
        assert members_ref == members_res
        assert np.array_equal(
            np.sort(reference.outliers), np.sort(result.outliers)
        )


# -- counters restore ---------------------------------------------------


def test_counters_snapshot_round_trip():
    counters = Counters()
    counters.increment("framework", "map_input_records", 7)
    counters.increment("app", "things", 3)
    restored = Counters.from_snapshot(counters.snapshot())
    assert restored.snapshot() == counters.snapshot()
