"""Tests for file-backed CSV input splits (larger-than-memory path)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.io import save_dataset_csv
from repro.mapreduce.fs import make_csv_splits
from repro.mapreduce.types import split_records
from repro.mr import P3CPlusMRConfig, P3CPlusMRLight


@pytest.fixture()
def csv_file(tmp_path, tiny_dataset):
    path = tmp_path / "data.csv"
    save_dataset_csv(path, tiny_dataset.data)
    return path


class TestCSVSplits:
    def test_dimensions_detected(self, csv_file, tiny_dataset):
        splits, n, d = make_csv_splits(csv_file, 4)
        assert n == len(tiny_dataset.data)
        assert d == tiny_dataset.data.shape[1]

    def test_records_match_source(self, csv_file, tiny_dataset):
        splits, _, _ = make_csv_splits(csv_file, 4)
        for split in splits:
            for idx, row in split:
                assert np.allclose(row, tiny_dataset.data[idx], atol=1e-8)

    def test_all_rows_covered_exactly_once(self, csv_file, tiny_dataset):
        splits, n, _ = make_csv_splits(csv_file, 7)
        seen = sorted(idx for split in splits for idx, _ in split)
        assert seen == list(range(n))

    def test_single_split(self, csv_file, tiny_dataset):
        splits, n, _ = make_csv_splits(csv_file, 1)
        assert len(splits) == 1
        assert len(splits[0]) == n

    def test_more_splits_than_rows(self, tmp_path):
        path = tmp_path / "small.csv"
        save_dataset_csv(path, np.array([[0.1, 0.2], [0.3, 0.4]]))
        splits, n, _ = make_csv_splits(path, 10)
        assert n == 2
        assert sum(len(s) for s in splits) == 2

    def test_empty_file_rejected(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("")
        with pytest.raises(ValueError):
            make_csv_splits(path, 2)

    def test_invalid_split_count(self, csv_file):
        with pytest.raises(ValueError):
            make_csv_splits(csv_file, 0)

    def test_streams_are_reiterable(self, csv_file):
        """Tasks may be retried: a split must be consumable repeatedly."""
        splits, _, _ = make_csv_splits(csv_file, 3)
        first = [idx for idx, _ in splits[0]]
        second = [idx for idx, _ in splits[0]]
        assert first == second

    def test_getitem(self, csv_file, tiny_dataset):
        splits, _, _ = make_csv_splits(csv_file, 3)
        idx, row = splits[0].records[0]
        assert np.allclose(row, tiny_dataset.data[idx], atol=1e-8)
        with pytest.raises(IndexError):
            splits[0].records[len(splits[0])]


class TestFileBackedClustering:
    def test_csv_equals_in_memory_clustering(self, csv_file, tiny_dataset):
        """The headline property: clustering from file-backed splits is
        identical to clustering the in-memory matrix."""
        csv_splits, n, d = make_csv_splits(csv_file, 4)
        from_file = P3CPlusMRLight(
            mr_config=P3CPlusMRConfig(num_splits=4)
        ).fit_splits(csv_splits, n, d)

        from_memory = P3CPlusMRLight(
            mr_config=P3CPlusMRConfig(num_splits=4)
        ).fit(tiny_dataset.data)

        assert from_file.num_clusters == from_memory.num_clusters
        assert np.array_equal(from_file.labels(), from_memory.labels())

    def test_fit_splits_with_memory_splits(self, tiny_dataset):
        splits = split_records(tiny_dataset.data, 4)
        n, d = tiny_dataset.data.shape
        result = P3CPlusMRLight(
            mr_config=P3CPlusMRConfig(num_splits=4)
        ).fit_splits(splits, n, d)
        direct = P3CPlusMRLight(
            mr_config=P3CPlusMRConfig(num_splits=4)
        ).fit(tiny_dataset.data)
        assert np.array_equal(result.labels(), direct.labels())


class TestCSVHardening:
    """Regression coverage for the CSV stream failure modes."""

    def _one_split(self, path):
        splits, _, _ = make_csv_splits(path, 1)
        return splits[0].records

    def test_truncated_file_raises_on_iter(self, csv_file):
        records = self._one_split(csv_file)
        with open(csv_file, "r+b") as handle:
            handle.truncate(csv_file.stat().st_size // 2)
        with pytest.raises(ValueError, match="truncated CSV input"):
            list(records)

    def test_truncated_file_raises_on_as_block(self, csv_file):
        records = self._one_split(csv_file)
        with open(csv_file, "r+b") as handle:
            handle.truncate(csv_file.stat().st_size // 2)
        with pytest.raises(ValueError, match="truncated CSV input"):
            records.as_block()

    def test_truncated_file_raises_on_iter_blocks(self, csv_file):
        records = self._one_split(csv_file)
        with open(csv_file, "r+b") as handle:
            handle.truncate(csv_file.stat().st_size // 2)
        with pytest.raises(ValueError, match="truncated CSV input"):
            for _ in records.iter_blocks(8):
                pass

    def test_truncation_error_names_file_and_offset(self, csv_file):
        records = self._one_split(csv_file)
        keep = csv_file.stat().st_size // 2
        with open(csv_file, "r+b") as handle:
            handle.truncate(keep)
        with pytest.raises(ValueError) as err:
            list(records)
        message = str(err.value)
        assert str(csv_file) in message
        assert "byte" in message

    def test_malformed_field_error_carries_context(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_bytes(b"0.1,0.2\n0.3,oops\n0.5,0.6\n")
        splits, _, _ = make_csv_splits(path, 1)
        with pytest.raises(ValueError) as err:
            list(splits[0].records)
        message = str(err.value)
        assert "malformed CSV record" in message
        assert str(path) in message
        assert "row 1" in message
        assert "byte offset 8" in message
        assert "oops" in message

    def test_getitem_opens_file_once_per_access(
        self, csv_file, monkeypatch
    ):
        """Random access must not rescan the range: the offset index is
        built once, then every access is one open + one seek."""
        import repro.mapreduce.fs as fs_mod

        records = self._one_split(csv_file)
        opens = []
        real_open = open

        def counting_open(*args, **kwargs):
            opens.append(args[0])
            return real_open(*args, **kwargs)

        monkeypatch.setattr(fs_mod, "open", counting_open, raising=False)
        records[10]  # first access builds the offset index (+1 open)
        assert len(opens) == 2
        records[500]
        records[0]
        records[250]
        assert len(opens) == 5


@pytest.fixture()
def npy_file(tmp_path, tiny_dataset):
    path = tmp_path / "data.npy"
    np.save(path, tiny_dataset.data)
    return path


class TestNpySplits:
    @pytest.mark.parametrize("mode", ["read", "mmap"])
    def test_records_match_source(self, npy_file, tiny_dataset, mode):
        from repro.mapreduce.fs import make_npy_splits

        splits, n, d = make_npy_splits(npy_file, 4, mode=mode)
        assert (n, d) == tiny_dataset.data.shape
        for split in splits:
            for idx, row in split:
                assert np.array_equal(row, tiny_dataset.data[idx])

    @pytest.mark.parametrize("mode", ["read", "mmap"])
    def test_all_rows_covered_exactly_once(self, npy_file, mode):
        from repro.mapreduce.fs import make_npy_splits

        splits, n, _ = make_npy_splits(npy_file, 7, mode=mode)
        seen = sorted(idx for split in splits for idx, _ in split)
        assert seen == list(range(n))

    @pytest.mark.parametrize("mode", ["read", "mmap"])
    def test_iter_blocks_concat_equals_as_block(
        self, npy_file, tiny_dataset, mode
    ):
        from repro.mapreduce.fs import make_npy_splits

        splits, _, _ = make_npy_splits(npy_file, 3, mode=mode)
        for split in splits:
            keys, block = split.records.as_block()
            chunks = list(split.records.iter_blocks(5))
            assert max(len(k) for k, _ in chunks) <= 5
            assert np.array_equal(
                np.concatenate([k for k, _ in chunks]), keys
            )
            assert np.array_equal(
                np.concatenate([b for _, b in chunks]), block
            )

    def test_csv_iter_blocks_concat_equals_as_block(self, csv_file):
        splits, _, _ = make_csv_splits(csv_file, 3)
        for split in splits:
            keys, block = split.records.as_block()
            chunks = list(split.records.iter_blocks(5))
            assert np.array_equal(
                np.concatenate([k for k, _ in chunks]), keys
            )
            assert np.array_equal(
                np.concatenate([b for _, b in chunks]), block
            )

    def test_getitem(self, npy_file, tiny_dataset):
        from repro.mapreduce.fs import make_npy_splits

        splits, _, _ = make_npy_splits(npy_file, 3)
        records = splits[1].records
        idx, row = records[0]
        assert np.array_equal(row, tiny_dataset.data[idx])
        idx, row = records[-1]
        assert np.array_equal(row, tiny_dataset.data[idx])
        with pytest.raises(IndexError):
            records[len(records)]

    def test_mmap_stream_survives_pickling(self, npy_file, tiny_dataset):
        """Process-executor transport: the cached memmap view must be
        dropped on pickle and lazily reopened on the other side."""
        import pickle

        from repro.mapreduce.fs import make_npy_splits

        splits, _, _ = make_npy_splits(npy_file, 2, mode="mmap")
        records = splits[0].records
        records.as_block()  # populate the memmap cache
        clone = pickle.loads(pickle.dumps(records))
        keys, block = clone.as_block()
        assert np.array_equal(block, tiny_dataset.data[keys])

    def test_truncated_npy_raises(self, npy_file):
        from repro.mapreduce.fs import make_npy_splits

        splits, _, _ = make_npy_splits(npy_file, 1, mode="read")
        with open(npy_file, "r+b") as handle:
            handle.truncate(npy_file.stat().st_size // 2)
        with pytest.raises(ValueError, match="truncated npy input"):
            splits[0].records.as_block()

    def test_rejects_non_2d(self, tmp_path):
        from repro.mapreduce.fs import make_npy_splits

        path = tmp_path / "vec.npy"
        np.save(path, np.arange(10.0))
        with pytest.raises(ValueError, match="2-D"):
            make_npy_splits(path, 2)

    def test_rejects_fortran_order(self, tmp_path, tiny_dataset):
        from repro.mapreduce.fs import make_npy_splits

        path = tmp_path / "fortran.npy"
        np.save(path, np.asfortranarray(tiny_dataset.data))
        with pytest.raises(ValueError, match="row-major"):
            make_npy_splits(path, 2)

    def test_rejects_empty_matrix(self, tmp_path):
        from repro.mapreduce.fs import make_npy_splits

        path = tmp_path / "empty.npy"
        np.save(path, np.empty((0, 3)))
        with pytest.raises(ValueError, match="no data rows"):
            make_npy_splits(path, 2)

    def test_rejects_unknown_mode(self, npy_file):
        from repro.mapreduce.fs import make_npy_splits

        with pytest.raises(ValueError, match="mode"):
            make_npy_splits(npy_file, 2, mode="bogus")

    @pytest.mark.parametrize("mode", ["read", "mmap"])
    def test_npy_equals_in_memory_clustering(
        self, npy_file, tiny_dataset, mode
    ):
        from repro.mapreduce.fs import make_npy_splits

        splits, n, d = make_npy_splits(npy_file, 4, mode=mode)
        from_file = P3CPlusMRLight(
            mr_config=P3CPlusMRConfig(num_splits=4)
        ).fit_splits(splits, n, d)
        from_memory = P3CPlusMRLight(
            mr_config=P3CPlusMRConfig(num_splits=4)
        ).fit(tiny_dataset.data)
        assert from_file.num_clusters == from_memory.num_clusters
        assert np.array_equal(from_file.labels(), from_memory.labels())


class TestOutOfCoreClustering:
    """Bounded-memory delivery and spill must not change the answer."""

    def test_chunked_delivery_matches_whole_split(
        self, csv_file, tiny_dataset
    ):
        splits, n, d = make_csv_splits(csv_file, 4)
        chunked = P3CPlusMRLight(
            mr_config=P3CPlusMRConfig(num_splits=4, max_block_rows=7)
        ).fit_splits(splits, n, d)
        whole = P3CPlusMRLight(
            mr_config=P3CPlusMRConfig(num_splits=4)
        ).fit(tiny_dataset.data)
        assert np.array_equal(chunked.labels(), whole.labels())

    def test_memory_budget_matches_in_memory(
        self, csv_file, tiny_dataset, tmp_path
    ):
        """The full out-of-core stack — budget-derived chunking plus
        spill-to-disk shuffle — reproduces the in-memory clustering."""
        spill_root = tmp_path / "spill"
        spill_root.mkdir()
        splits, n, d = make_csv_splits(csv_file, 4)
        bounded = P3CPlusMRLight(
            mr_config=P3CPlusMRConfig(
                num_splits=4,
                memory_budget_bytes=4096,
                spill_dir=str(spill_root),
            )
        ).fit_splits(splits, n, d)
        in_memory = P3CPlusMRLight(
            mr_config=P3CPlusMRConfig(num_splits=4)
        ).fit(tiny_dataset.data)
        assert bounded.num_clusters == in_memory.num_clusters
        assert np.array_equal(bounded.labels(), in_memory.labels())
        # Every job-scoped spill directory is cleaned up on job exit.
        assert list(spill_root.iterdir()) == []
