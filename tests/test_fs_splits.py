"""Tests for file-backed CSV input splits (larger-than-memory path)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.io import save_dataset_csv
from repro.mapreduce.fs import make_csv_splits
from repro.mapreduce.types import split_records
from repro.mr import P3CPlusMRConfig, P3CPlusMRLight


@pytest.fixture()
def csv_file(tmp_path, tiny_dataset):
    path = tmp_path / "data.csv"
    save_dataset_csv(path, tiny_dataset.data)
    return path


class TestCSVSplits:
    def test_dimensions_detected(self, csv_file, tiny_dataset):
        splits, n, d = make_csv_splits(csv_file, 4)
        assert n == len(tiny_dataset.data)
        assert d == tiny_dataset.data.shape[1]

    def test_records_match_source(self, csv_file, tiny_dataset):
        splits, _, _ = make_csv_splits(csv_file, 4)
        for split in splits:
            for idx, row in split:
                assert np.allclose(row, tiny_dataset.data[idx], atol=1e-8)

    def test_all_rows_covered_exactly_once(self, csv_file, tiny_dataset):
        splits, n, _ = make_csv_splits(csv_file, 7)
        seen = sorted(idx for split in splits for idx, _ in split)
        assert seen == list(range(n))

    def test_single_split(self, csv_file, tiny_dataset):
        splits, n, _ = make_csv_splits(csv_file, 1)
        assert len(splits) == 1
        assert len(splits[0]) == n

    def test_more_splits_than_rows(self, tmp_path):
        path = tmp_path / "small.csv"
        save_dataset_csv(path, np.array([[0.1, 0.2], [0.3, 0.4]]))
        splits, n, _ = make_csv_splits(path, 10)
        assert n == 2
        assert sum(len(s) for s in splits) == 2

    def test_empty_file_rejected(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("")
        with pytest.raises(ValueError):
            make_csv_splits(path, 2)

    def test_invalid_split_count(self, csv_file):
        with pytest.raises(ValueError):
            make_csv_splits(csv_file, 0)

    def test_streams_are_reiterable(self, csv_file):
        """Tasks may be retried: a split must be consumable repeatedly."""
        splits, _, _ = make_csv_splits(csv_file, 3)
        first = [idx for idx, _ in splits[0]]
        second = [idx for idx, _ in splits[0]]
        assert first == second

    def test_getitem(self, csv_file, tiny_dataset):
        splits, _, _ = make_csv_splits(csv_file, 3)
        idx, row = splits[0].records[0]
        assert np.allclose(row, tiny_dataset.data[idx], atol=1e-8)
        with pytest.raises(IndexError):
            splits[0].records[len(splits[0])]


class TestFileBackedClustering:
    def test_csv_equals_in_memory_clustering(self, csv_file, tiny_dataset):
        """The headline property: clustering from file-backed splits is
        identical to clustering the in-memory matrix."""
        csv_splits, n, d = make_csv_splits(csv_file, 4)
        from_file = P3CPlusMRLight(
            mr_config=P3CPlusMRConfig(num_splits=4)
        ).fit_splits(csv_splits, n, d)

        from_memory = P3CPlusMRLight(
            mr_config=P3CPlusMRConfig(num_splits=4)
        ).fit(tiny_dataset.data)

        assert from_file.num_clusters == from_memory.num_clusters
        assert np.array_equal(from_file.labels(), from_memory.labels())

    def test_fit_splits_with_memory_splits(self, tiny_dataset):
        splits = split_records(tiny_dataset.data, 4)
        n, d = tiny_dataset.data.shape
        result = P3CPlusMRLight(
            mr_config=P3CPlusMRConfig(num_splits=4)
        ).fit_splits(splits, n, d)
        direct = P3CPlusMRLight(
            mr_config=P3CPlusMRConfig(num_splits=4)
        ).fit(tiny_dataset.data)
        assert np.array_equal(result.labels(), direct.labels())
