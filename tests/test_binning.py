"""Unit + property tests for histogram building and bin-count rules."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.core.binning import (
    Histogram,
    bin_index,
    build_all_histograms,
    build_histogram,
    freedman_diaconis_bins,
    sturges_bins,
)


class TestBinRules:
    def test_sturges_known_values(self):
        assert sturges_bins(1) == 1
        assert sturges_bins(62) == 7  # the colon data set
        assert sturges_bins(1024) == 11

    def test_freedman_diaconis_known_values(self):
        # bins = ceil(n^(1/3)) under the IQR = 1/2 simplification
        assert freedman_diaconis_bins(62) == 4
        assert freedman_diaconis_bins(1000) == 10
        assert freedman_diaconis_bins(1_000_000) == 100

    def test_fd_exceeds_sturges_for_large_n(self):
        """The paper's point: Sturges oversmooths large data sets."""
        assert freedman_diaconis_bins(10**6) > sturges_bins(10**6)

    def test_sturges_exceeds_fd_for_tiny_n(self):
        assert sturges_bins(62) > freedman_diaconis_bins(62)

    def test_invalid_sizes_rejected(self):
        with pytest.raises(ValueError):
            sturges_bins(0)
        with pytest.raises(ValueError):
            freedman_diaconis_bins(0)
        with pytest.raises(ValueError):
            freedman_diaconis_bins(100, iqr=0.0)

    @given(st.integers(1, 10**9))
    def test_rules_always_positive(self, n):
        assert sturges_bins(n) >= 1
        assert freedman_diaconis_bins(n) >= 1


class TestBinIndex:
    def test_eq8_semantics(self):
        # max(1, ceil(m * x)) with m = 4, 0-based
        values = np.array([0.0, 0.1, 0.25, 0.26, 0.5, 0.75, 1.0])
        assert bin_index(values, 4).tolist() == [0, 0, 0, 1, 1, 2, 3]

    def test_zero_maps_to_first_bin(self):
        assert bin_index(np.array([0.0]), 10)[0] == 0

    def test_one_maps_to_last_bin(self):
        assert bin_index(np.array([1.0]), 10)[0] == 9

    def test_invalid_bins_rejected(self):
        with pytest.raises(ValueError):
            bin_index(np.array([0.5]), 0)

    @given(
        hnp.arrays(
            float,
            st.integers(1, 50),
            elements=st.floats(0, 1, allow_nan=False),
        ),
        st.integers(1, 64),
    )
    def test_indices_always_in_range(self, values, m):
        idx = bin_index(values, m)
        assert (idx >= 0).all() and (idx < m).all()


class TestHistogram:
    def test_mass_conservation(self, tiny_dataset):
        m = 8
        histograms = build_all_histograms(tiny_dataset.data, m)
        for histogram in histograms:
            assert histogram.total == len(tiny_dataset.data)

    def test_masked_histogram_counts_only_members(self, tiny_dataset):
        mask = np.zeros(len(tiny_dataset.data), dtype=bool)
        mask[:100] = True
        histogram = build_histogram(tiny_dataset.data, 0, 5, mask=mask)
        assert histogram.total == 100

    def test_bin_interval_bounds(self):
        histogram = Histogram(attribute=3, counts=np.array([1, 2, 3, 4]))
        interval = histogram.bin_interval(1)
        assert interval.attribute == 3
        assert (interval.lower, interval.upper) == (0.25, 0.5)

    def test_bins_to_interval_run(self):
        histogram = Histogram(attribute=0, counts=np.array([1, 2, 3, 4]))
        interval = histogram.bins_to_interval(1, 2)
        assert (interval.lower, interval.upper) == (0.25, 0.75)

    def test_bins_to_interval_validates_range(self):
        histogram = Histogram(attribute=0, counts=np.array([1, 2]))
        with pytest.raises(IndexError):
            histogram.bins_to_interval(1, 0)
        with pytest.raises(IndexError):
            histogram.bin_interval(5)

    def test_counts_are_copied(self):
        counts = np.array([1, 2, 3])
        histogram = Histogram(attribute=0, counts=counts)
        counts[0] = 99
        assert histogram.counts[0] == 1

    @settings(max_examples=25)
    @given(
        hnp.arrays(
            float,
            st.integers(1, 200),
            elements=st.floats(0, 1, allow_nan=False),
        ),
        st.integers(1, 32),
    )
    def test_histogram_mass_property(self, values, m):
        data = values.reshape(-1, 1)
        histogram = build_histogram(data, 0, m)
        assert histogram.total == len(values)
