"""Serving-path tests: scorer oracle parity, registry, service wiring.

The batched ``FittedModel.assign`` must be element-wise *bitwise*
identical to the scalar :func:`repro.serving.reference_assign` oracle —
including NaN/±inf rows and finite values outside [0, 1] (the batch
RSSC clamp territory).  The registry must round-trip models with stable
fingerprints, fail loudly (typed errors, no unpickling) on truncated or
tampered bundles, and survive concurrent saves.  ``serve_assign`` must
run batches through the fair-share pool and feed the ``repro_assign_*``
telemetry families.
"""

from __future__ import annotations

import json
import threading

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.em import GaussianMixture
from repro.core.types import ClusterCore, Interval, Signature
from repro.mapreduce import ClusterService
from repro.mr import P3CPlusMRConfig, P3CPlusMRLight
from repro.obs import parse_openmetrics
from repro.obs.telemetry import render_openmetrics
from repro.serving import (
    SCHEMA_VERSION,
    FittedModel,
    ModelCorruptError,
    ModelNotFoundError,
    ModelRegistry,
    reference_assign,
)

D = 6


def _random_cores(rng: np.random.Generator, num_cores: int) -> list[ClusterCore]:
    cores = []
    for _ in range(num_cores):
        num_attrs = int(rng.integers(1, 4))
        attrs = rng.choice(D, size=num_attrs, replace=False)
        intervals = []
        for attr in attrs:
            lower = float(rng.uniform(0.0, 0.8))
            width = float(rng.uniform(0.05, 0.3))
            intervals.append(
                Interval(int(attr), lower, min(1.0, lower + width))
            )
        cores.append(
            ClusterCore(
                signature=Signature(intervals),
                support=int(rng.integers(10, 200)),
                expected_support=float(rng.uniform(1.0, 20.0)),
            )
        )
    return cores


def _random_spd(rng: np.random.Generator, m: int) -> np.ndarray:
    a = rng.normal(size=(m, m))
    return 0.01 * (a @ a.T) + 1e-3 * np.eye(m)


def _random_model(rng: np.random.Generator, full: bool) -> FittedModel:
    cores = _random_cores(rng, int(rng.integers(1, 5)))
    mixture = od_means = od_covs = od_counts = None
    if full:
        k = len(cores)
        m = int(rng.integers(1, 4))
        attrs = tuple(
            int(a) for a in np.sort(rng.choice(D, size=m, replace=False))
        )
        mixture = GaussianMixture(
            means=rng.uniform(0.2, 0.8, size=(k, m)),
            covariances=np.stack([_random_spd(rng, m) for _ in range(k)]),
            weights=rng.dirichlet(np.ones(k)),
            attributes=attrs,
        )
        od_means = mixture.means + rng.normal(scale=0.01, size=(k, m))
        od_covs = np.stack([_random_spd(rng, m) for _ in range(k)])
        od_counts = rng.integers(2, 500, size=k).astype(float)
    return FittedModel(
        algorithm="mr" if full else "mr-light",
        cores=cores,
        mixture=mixture,
        od_means=od_means,
        od_covariances=od_covs,
        od_counts=od_counts,
        outlier_alpha=0.001,
        num_bins=20,
        n_points=500,
        n_dims=D,
    )


def _random_batch(rng: np.random.Generator) -> np.ndarray:
    n = int(rng.integers(0, 60))
    # Out-of-[0,1] finite values are deliberate: the light path must
    # clamp exactly as the batch RSSC does.
    batch = rng.uniform(-0.4, 1.4, size=(n, D))
    for bad in (np.nan, np.inf, -np.inf):
        hits = rng.random(size=batch.shape) < 0.03
        batch[hits] = bad
    return batch


def _assert_bitwise_equal(batch_result, scalar_result) -> None:
    assert batch_result.cluster_ids.dtype == np.int64
    assert batch_result.outlier_mask.dtype == np.bool_
    assert np.array_equal(batch_result.cluster_ids, scalar_result.cluster_ids)
    assert np.array_equal(batch_result.outlier_mask, scalar_result.outlier_mask)
    assert np.array_equal(
        batch_result.scores, scalar_result.scores, equal_nan=True
    )


class TestScorerOracle:
    @settings(max_examples=30, deadline=None)
    @given(st.integers(0, 10_000))
    def test_light_batch_matches_scalar_reference(self, seed: int) -> None:
        rng = np.random.default_rng(seed)
        model = _random_model(rng, full=False)
        batch = _random_batch(rng)
        _assert_bitwise_equal(model.assign(batch), reference_assign(model, batch))

    @settings(max_examples=30, deadline=None)
    @given(st.integers(0, 10_000))
    def test_full_batch_matches_scalar_reference(self, seed: int) -> None:
        rng = np.random.default_rng(seed)
        model = _random_model(rng, full=True)
        batch = _random_batch(rng)
        _assert_bitwise_equal(model.assign(batch), reference_assign(model, batch))

    def test_nonfinite_rows_are_unassigned(self, rng) -> None:
        model = _random_model(rng, full=True)
        batch = np.full((3, D), 0.5)
        batch[0, model.relevant_attributes[0]] = np.nan
        batch[1, model.relevant_attributes[-1]] = -np.inf
        result = model.assign(batch)
        assert result.cluster_ids[0] == -1 and result.outlier_mask[0]
        assert result.cluster_ids[1] == -1 and result.outlier_mask[1]
        assert np.isnan(result.scores[0]) and np.isnan(result.scores[1])
        assert np.isfinite(result.scores[2])

    def test_nonfinite_on_irrelevant_attribute_is_ignored(self, rng) -> None:
        model = _random_model(rng, full=True)
        irrelevant = sorted(set(range(D)) - set(model.relevant_attributes))
        if not irrelevant:
            pytest.skip("model happens to use every attribute")
        batch = np.full((1, D), 0.5)
        batch[0, irrelevant[0]] = np.nan
        result = model.assign(batch)
        assert np.isfinite(result.scores[0])

    def test_empty_batch(self, rng) -> None:
        model = _random_model(rng, full=False)
        result = model.assign(np.empty((0, D)))
        assert result.cluster_ids.shape == (0,)
        assert result.outlier_mask.shape == (0,)
        assert result.scores.shape == (0,)

    def test_shape_mismatch_raises(self, rng) -> None:
        model = _random_model(rng, full=False)
        with pytest.raises(ValueError, match="incompatible"):
            model.assign(np.zeros((4, D + 1)))

    def test_full_assignment_matches_mixture_argmax(self, rng) -> None:
        """Pre-verdict component choice agrees with GaussianMixture.assign
        (the serving scorer recomputes the log-joint row-stably but must
        stay mathematically identical)."""
        model = _random_model(rng, full=True)
        batch = np.clip(rng.uniform(0, 1, size=(200, D)), 0, 1)
        result = model.assign(batch)
        expected = model.mixture.assign(model.mixture.project(batch))
        chosen = result.cluster_ids[result.cluster_ids >= 0]
        assert np.array_equal(chosen, expected[result.cluster_ids >= 0])


class TestRegistry:
    def test_round_trip_is_bitwise_stable(self, tmp_path, rng) -> None:
        for full in (False, True):
            model = _random_model(rng, full=full)
            registry = ModelRegistry(tmp_path / ("full" if full else "light"))
            model_id = registry.save(model, tags=("latest",))
            loaded = registry.load("latest")
            assert loaded.fingerprint() == model.fingerprint()
            assert model_id.endswith(model.fingerprint())
            batch = _random_batch(rng)
            _assert_bitwise_equal(loaded.assign(batch), model.assign(batch))

    def test_save_is_idempotent(self, tmp_path, rng) -> None:
        model = _random_model(rng, full=True)
        registry = ModelRegistry(tmp_path)
        assert registry.save(model) == registry.save(model)
        assert len(registry.list_models()) == 1

    def test_tags_point_at_models(self, tmp_path, rng) -> None:
        registry = ModelRegistry(tmp_path)
        first = registry.save(_random_model(rng, full=False), tags=("latest",))
        second = registry.save(_random_model(rng, full=True), tags=("latest", "prod"))
        assert registry.tags() == {"latest": second, "prod": second}
        assert registry.resolve("latest") == second
        assert registry.resolve(first) == first
        with pytest.raises(ModelNotFoundError):
            registry.tag("no-such-model", "broken")

    def test_missing_model_raises_not_found(self, tmp_path) -> None:
        registry = ModelRegistry(tmp_path)
        with pytest.raises(ModelNotFoundError):
            registry.load("nope")
        with pytest.raises(ModelNotFoundError):
            registry.resolve("nope")

    def test_truncated_arrays_raise_corrupt(self, tmp_path, rng) -> None:
        registry = ModelRegistry(tmp_path)
        model_id = registry.save(_random_model(rng, full=True))
        npz = registry.models_dir / model_id / "arrays.npz"
        npz.write_bytes(npz.read_bytes()[: npz.stat().st_size // 2])
        with pytest.raises(ModelCorruptError):
            registry.load(model_id)

    def test_missing_metadata_raises_corrupt(self, tmp_path, rng) -> None:
        registry = ModelRegistry(tmp_path)
        model_id = registry.save(_random_model(rng, full=False))
        (registry.models_dir / model_id / "model.json").unlink()
        with pytest.raises(ModelCorruptError):
            registry.load(model_id)

    def test_tampered_parameters_fail_fingerprint_check(self, tmp_path, rng) -> None:
        registry = ModelRegistry(tmp_path)
        model_id = registry.save(_random_model(rng, full=False))
        meta_path = registry.models_dir / model_id / "model.json"
        meta = json.loads(meta_path.read_text())
        meta["cores"][0]["support"] += 1
        meta_path.write_text(json.dumps(meta))
        with pytest.raises(ModelCorruptError, match="fingerprint"):
            registry.load(model_id)

    def test_wrong_schema_raises_corrupt(self, tmp_path, rng) -> None:
        registry = ModelRegistry(tmp_path)
        model_id = registry.save(_random_model(rng, full=False))
        meta_path = registry.models_dir / model_id / "model.json"
        meta = json.loads(meta_path.read_text())
        assert meta["schema"] == SCHEMA_VERSION
        meta["schema"] = "repro.serving/fitted-model/v999"
        meta_path.write_text(json.dumps(meta))
        with pytest.raises(ModelCorruptError, match="schema"):
            registry.load(model_id)

    def test_concurrent_saves_do_not_clobber(self, tmp_path, rng) -> None:
        model = _random_model(rng, full=True)
        registry = ModelRegistry(tmp_path)
        ids: list[str] = []
        errors: list[BaseException] = []

        def save() -> None:
            try:
                ids.append(ModelRegistry(tmp_path).save(model, tags=("latest",)))
            except BaseException as exc:  # noqa: BLE001 - collected
                errors.append(exc)

        threads = [threading.Thread(target=save) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        assert len(set(ids)) == 1
        loaded = registry.load("latest")
        assert loaded.fingerprint() == model.fingerprint()


class TestDriverRegistration:
    def test_light_fit_registers_model(self, tmp_path, tiny_dataset) -> None:
        driver = P3CPlusMRLight(
            mr_config=P3CPlusMRConfig(
                num_splits=4, model_registry=str(tmp_path)
            )
        )
        result = driver.fit(tiny_dataset.data)
        assert driver.model_id is not None
        assert driver.fitted_model is not None
        registry = ModelRegistry(tmp_path)
        loaded = registry.load("latest")
        assert loaded.fingerprint() == driver.fitted_model.fingerprint()
        # The serve-time assignment over the training data reproduces
        # the fit's own outlier verdict.
        assigned = loaded.assign(tiny_dataset.data)
        assert set(np.where(assigned.outlier_mask)[0]) == set(
            int(i) for i in result.outliers
        )


class TestServeAssign:
    def test_serve_assign_end_to_end(self, tmp_path, rng) -> None:
        model = _random_model(rng, full=True)
        registry = ModelRegistry(tmp_path)
        registry.save(model, tags=("latest",))
        batch = _random_batch(rng)
        expected = model.assign(batch)
        with ClusterService(slots=2, registry=str(tmp_path)) as service:
            handle = service.serve_assign("latest", batch, tenant="alice")
            result = handle.result(timeout=30)
            snapshot = service.telemetry_snapshot()
        assert np.array_equal(result["cluster_ids"], expected.cluster_ids)
        assert np.array_equal(result["outlier_mask"], expected.outlier_mask)
        assert np.array_equal(result["scores"], expected.scores, equal_nan=True)
        assert result["n_points"] == len(batch)
        serving = snapshot["serving"]
        assert serving["models_loaded"] == 1
        alice = serving["tenants"]["alice"]
        assert alice["requests_total"] == 1
        assert alice["points_total"] == len(batch)
        assert alice["outliers_total"] == int(expected.outlier_mask.sum())
        assert alice["latency_histogram"]["count"] == 1

    def test_serve_assign_without_registry_fails(self, rng) -> None:
        with ClusterService(slots=1) as service:
            handle = service.serve_assign("latest", np.zeros((2, D)))
            with pytest.raises(RuntimeError, match="no model registry"):
                handle.result(timeout=30)

    def test_serve_assign_inline_model(self, rng) -> None:
        model = _random_model(rng, full=False)
        batch = _random_batch(rng)
        with ClusterService(slots=1) as service:
            handle = service.serve_assign(model, batch, tenant="bob")
            result = handle.result(timeout=30)
        assert result["model_id"] == "inline"
        _assert_bitwise_equal(model.assign(batch), reference_assign(model, batch))
        assert np.array_equal(result["cluster_ids"], model.assign(batch).cluster_ids)

    def test_assign_metrics_render_as_openmetrics(self, tmp_path, rng) -> None:
        model = _random_model(rng, full=False)
        registry = ModelRegistry(tmp_path)
        registry.save(model, tags=("latest",))
        with ClusterService(slots=1, registry=registry) as service:
            service.serve_assign("latest", _random_batch(rng), tenant="alice")
            service.drain(timeout=30)
            sample = service.telemetry_snapshot()
        text = render_openmetrics(sample)
        families = parse_openmetrics(text)
        assert families["repro_assign_requests"]["type"] == "counter"
        tenants = {
            sample[1].get("tenant")
            for sample in families["repro_assign_requests"]["samples"]
        }
        assert "alice" in tenants
        assert families["repro_assign_latency_seconds"]["type"] == "histogram"
        assert families["repro_assign_models_loaded"]["samples"]
