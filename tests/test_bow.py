"""Tests for the BoW baseline (partitioning, merging, end-to-end)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import BoW, BoWConfig
from repro.baselines.bow import _Box, merge_boxes
from repro.core.types import Interval, Signature
from repro.eval import e4sc_score


def _box(attr_intervals: dict[int, tuple[float, float]], members) -> _Box:
    signature = Signature(
        [Interval(a, lo, hi) for a, (lo, hi) in sorted(attr_intervals.items())]
    )
    return _Box(
        signature=signature,
        attributes=frozenset(attr_intervals),
        members=np.asarray(members, dtype=np.int64),
    )


class TestMergeBoxes:
    def test_identical_boxes_merge(self):
        a = _box({0: (0.1, 0.3), 1: (0.5, 0.7)}, [1, 2])
        b = _box({0: (0.1, 0.3), 1: (0.5, 0.7)}, [3, 4])
        merged = merge_boxes([a, b], attribute_jaccard=0.5)
        assert len(merged) == 1
        assert set(merged[0].members) == {1, 2, 3, 4}

    def test_overlapping_boxes_take_union_span(self):
        a = _box({0: (0.1, 0.3)}, [1])
        b = _box({0: (0.25, 0.5)}, [2])
        merged = merge_boxes([a, b], attribute_jaccard=0.5)
        assert len(merged) == 1
        interval = merged[0].signature.interval_on(0)
        assert (interval.lower, interval.upper) == (0.1, 0.5)

    def test_disjoint_intervals_dont_merge(self):
        a = _box({0: (0.1, 0.2)}, [1])
        b = _box({0: (0.5, 0.6)}, [2])
        assert len(merge_boxes([a, b], attribute_jaccard=0.5)) == 2

    def test_dissimilar_attribute_sets_dont_merge(self):
        a = _box({0: (0.1, 0.3), 1: (0.1, 0.3), 2: (0.1, 0.3)}, [1])
        b = _box({0: (0.1, 0.3), 5: (0.1, 0.3), 6: (0.1, 0.3)}, [2])
        # Jaccard = 1/5 < 0.5
        assert len(merge_boxes([a, b], attribute_jaccard=0.5)) == 2

    def test_transitive_merging(self):
        a = _box({0: (0.1, 0.3)}, [1])
        b = _box({0: (0.25, 0.45)}, [2])
        c = _box({0: (0.4, 0.6)}, [3])
        merged = merge_boxes([a, b, c], attribute_jaccard=0.5)
        assert len(merged) == 1

    def test_attribute_union_in_merge(self):
        a = _box({0: (0.1, 0.3), 1: (0.1, 0.3)}, [1])
        b = _box({0: (0.1, 0.3), 2: (0.1, 0.3)}, [2])
        merged = merge_boxes([a, b], attribute_jaccard=0.3)
        assert merged[0].attributes == frozenset({0, 1, 2})

    def test_empty_input(self):
        assert merge_boxes([], attribute_jaccard=0.5) == []


class TestBoWEndToEnd:
    @pytest.mark.parametrize("variant", ["light", "mvb"])
    def test_finds_clusters(self, small_dataset, variant):
        bow = BoW(
            bow_config=BoWConfig(variant=variant, samples_per_reducer=500)
        )
        result = bow.fit(small_dataset.data)
        truth = small_dataset.ground_truth_clusters()
        assert result.num_clusters >= 1
        assert e4sc_score(result.clusters, truth) > 0.3

    def test_partitions_cover_all_points(self, small_dataset):
        bow = BoW(bow_config=BoWConfig(samples_per_reducer=400))
        result = bow.fit(small_dataset.data)
        assert result.metadata["num_partitions"] == (
            len(small_dataset.data) + 399
        ) // 400

    def test_single_partition_degenerates_to_plugin(self, tiny_dataset):
        from repro.core.p3c_plus import P3CPlusLight

        bow = BoW(
            bow_config=BoWConfig(
                variant="light", samples_per_reducer=10**6
            )
        )
        bow_result = bow.fit(tiny_dataset.data)
        plugin_result = P3CPlusLight().fit(tiny_dataset.data)
        assert bow_result.metadata["num_partitions"] == 1
        assert bow_result.num_clusters == plugin_result.num_clusters

    def test_deterministic_given_seed(self, tiny_dataset):
        config = BoWConfig(samples_per_reducer=300, seed=3)
        a = BoW(bow_config=config).fit(tiny_dataset.data)
        b = BoW(bow_config=config).fit(tiny_dataset.data)
        assert a.num_clusters == b.num_clusters
        assert np.array_equal(a.labels(), b.labels())

    def test_merge_reduces_box_count(self, small_dataset):
        bow = BoW(bow_config=BoWConfig(samples_per_reducer=400))
        result = bow.fit(small_dataset.data)
        assert (
            result.metadata["boxes_after_merge"]
            <= result.metadata["boxes_before_merge"]
        )

    def test_members_disjoint(self, small_dataset):
        bow = BoW(bow_config=BoWConfig(samples_per_reducer=500))
        result = bow.fit(small_dataset.data)
        all_members = np.concatenate(
            [c.members for c in result.clusters]
        ) if result.clusters else np.empty(0)
        assert len(all_members) == len(np.unique(all_members))
