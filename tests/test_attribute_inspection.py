"""Unit tests for attribute inspection (Section 4.2.3)."""

from __future__ import annotations

import numpy as np

from repro.core.attribute_inspection import inspect_attributes


def _cluster_data(rng, n=800, d=6):
    """A cluster dense on attributes 0 and 1; uniform elsewhere."""
    data = rng.uniform(size=(n, d))
    members = np.zeros(n, dtype=bool)
    members[:300] = True
    data[members, 0] = rng.normal(0.3, 0.02, 300).clip(0, 1)
    data[members, 1] = rng.normal(0.7, 0.02, 300).clip(0, 1)
    return data, members


class TestInspection:
    def test_finds_missed_attribute(self, rng):
        data, members = _cluster_data(rng)
        result = inspect_attributes(
            data, members, known_attributes=frozenset({0})
        )
        assert 1 in result.attributes
        assert 0 in result.attributes

    def test_known_attributes_always_kept(self, rng):
        data, members = _cluster_data(rng)
        result = inspect_attributes(
            data, members, known_attributes=frozenset({0, 5})
        )
        assert {0, 5} <= set(result.attributes)

    def test_uniform_attributes_not_added(self, rng):
        data, members = _cluster_data(rng)
        result = inspect_attributes(
            data, members, known_attributes=frozenset({0, 1})
        )
        # attributes 2..5 are uniform for the members
        assert result.attributes == frozenset({0, 1})

    def test_ai_proving_blocks_weak_intervals(self, rng):
        """A mild density ripple passes the chi-squared marking at a loose
        level but must fail AI proving."""
        data, members = _cluster_data(rng)
        # Attribute 2: slight concentration for members (weak effect).
        data[members, 2] = np.where(
            rng.uniform(size=members.sum()) < 0.6,
            rng.uniform(0.0, 0.5, members.sum()),
            rng.uniform(size=members.sum()),
        )
        proven = inspect_attributes(
            data,
            members,
            known_attributes=frozenset({0, 1}),
            chi2_alpha=0.05,
            prove=True,
            theta_cc=0.35,
        )
        unproven = inspect_attributes(
            data,
            members,
            known_attributes=frozenset({0, 1}),
            chi2_alpha=0.05,
            prove=False,
        )
        assert len(proven.attributes) <= len(unproven.attributes)

    def test_empty_cluster_returns_known(self, rng):
        data, _ = _cluster_data(rng)
        empty = np.zeros(len(data), dtype=bool)
        result = inspect_attributes(data, empty, known_attributes=frozenset({3}))
        assert result.attributes == frozenset({3})
        assert result.intervals == ()

    def test_intervals_cover_dense_regions(self, rng):
        data, members = _cluster_data(rng)
        result = inspect_attributes(data, members, known_attributes=frozenset())
        attr0 = [iv for iv in result.intervals if iv.attribute == 0]
        assert any(iv.contains(0.3) for iv in attr0)

    def test_explicit_num_bins(self, rng):
        data, members = _cluster_data(rng)
        result = inspect_attributes(
            data, members, known_attributes=frozenset(), num_bins=5
        )
        widths = {round(iv.width, 10) for iv in result.intervals}
        # All intervals are unions of 0.2-wide bins.
        assert all(w % 0.2 < 1e-9 or abs(w % 0.2 - 0.2) < 1e-9 for w in widths)

    def test_max_bins_clamp(self, rng):
        data, members = _cluster_data(rng, n=3_000)
        result = inspect_attributes(
            data, members, known_attributes=frozenset(), max_bins=4
        )
        assert all(iv.width >= 0.25 - 1e-9 for iv in result.intervals)
