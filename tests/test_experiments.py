"""Smoke + shape tests for the experiment harnesses (tiny parameters)."""

from __future__ import annotations

import pytest

from repro.experiments import figure1, figure2, figure5
from repro.experiments.configs import ExperimentScale
from repro.experiments.runner import algorithm_registry, format_table, make_dataset


class TestFigure1:
    def test_power_rises_with_mu(self):
        series = figure1.run(mus=(100, 10_000, 1_000_000))
        powers = [p for _, p in series]
        assert powers == sorted(powers)
        assert powers[-1] > 0.99

    def test_main_renders(self):
        text = figure1.main(mus=(100, 1_000))
        assert "Figure 1" in text


class TestFigure2:
    def test_redundant_signature_removed(self):
        outcome = figure2.run()
        assert outcome["s3_passes_poisson"]
        assert outcome["s3_removed"]
        assert outcome["s1_kept"] and outcome["s2_kept"]

    def test_paper_ratios(self):
        outcome = figure2.run()
        assert outcome["ratios"]["S1"] == pytest.approx(50.0)
        assert outcome["ratios"]["S3"] == pytest.approx(10.0)

    def test_main_renders(self):
        assert "redundant" in figure2.main().lower()


class TestFigure5:
    @pytest.fixture(scope="class")
    def rows(self):
        return figure5.run(
            sizes=(1_200,),
            dims=10,
            num_clusters=3,
            thresholds=(1e-40, 1e-3),
            seed=1,
        )

    def test_rows_cover_grid(self, rows):
        assert len(rows) == 1 * 2 * 2  # sizes x thresholds x tests

    def test_filtered_never_exceeds_unfiltered(self, rows):
        for row in rows:
            assert row.cores_filtered <= row.cores_no_filter

    def test_combined_never_exceeds_poisson(self, rows):
        by_key = {(r.threshold, r.test): r for r in rows}
        for threshold in (1e-40, 1e-3):
            combined = by_key[(threshold, "Combined")]
            poisson = by_key[(threshold, "Poisson")]
            assert combined.cores_no_filter <= poisson.cores_no_filter


class TestRunner:
    def test_registry_has_all_five_algorithms(self):
        registry = algorithm_registry()
        assert set(registry) == {
            "BoW (Light)",
            "BoW (MVB)",
            "MR (Light)",
            "MR (MVB)",
            "MR (Naive)",
        }

    def test_make_dataset_deterministic(self):
        a = make_dataset(200, 6, 2, 0.1, seed=1)
        b = make_dataset(200, 6, 2, 0.1, seed=1)
        assert (a.data == b.data).all()

    def test_format_table_alignment(self):
        table = format_table(["a", "bb"], [[1, 2.5], [30, 4.0]])
        lines = table.splitlines()
        assert len(lines) == 4
        assert "2.500" in table

    def test_format_table_empty_rows(self):
        table = format_table(["col"], [])
        assert "col" in table


class TestScaleProfiles:
    def test_quick_scale_is_small(self):
        from repro.experiments.configs import FULL_SCALE, QUICK_SCALE

        assert max(QUICK_SCALE.sizes) <= min(5_001, max(FULL_SCALE.sizes))
        assert QUICK_SCALE.dims <= FULL_SCALE.dims

    def test_custom_scale(self):
        scale = ExperimentScale(name="test", sizes=(100,), dims=5)
        assert scale.noise_levels == (0.0, 0.05, 0.10, 0.20)
