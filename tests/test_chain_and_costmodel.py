"""Tests for the job-chain ledger and the cluster cost model."""

from __future__ import annotations

from typing import Any

import pytest

from repro.mapreduce import (
    ClusterCostModel,
    Context,
    Job,
    JobChain,
    Mapper,
    MapReduceRuntime,
    Reducer,
)
from repro.mapreduce.costmodel import ZERO_COST, CostEstimate
from repro.mapreduce.types import split_records


class _EchoMapper(Mapper):
    def map(self, key: Any, value: Any, context: Context) -> None:
        context.emit("k", 1)


class _CountReducer(Reducer):
    def reduce(self, key: Any, values: list[Any], context: Context) -> None:
        context.emit(key, len(values))


class TestJobChain:
    def _chain(self) -> JobChain:
        return JobChain(MapReduceRuntime())

    def test_ledger_records_steps(self):
        chain = self._chain()
        splits = split_records([(i, i) for i in range(10)], 2)
        job = Job(mapper_factory=_EchoMapper, reducer_factory=_CountReducer)
        chain.run("step_a", job, splits)
        chain.run("step_b", job, splits)
        assert chain.num_jobs == 2
        assert [s.name for s in chain.steps] == ["step_a", "step_b"]

    def test_shuffle_totals(self):
        chain = self._chain()
        splits = split_records([(i, i) for i in range(10)], 2)
        job = Job(mapper_factory=_EchoMapper, reducer_factory=_CountReducer)
        chain.run("step", job, splits)
        assert chain.total_shuffle_records == 10
        assert chain.total_map_input_records() == 10

    def test_report_format(self):
        chain = self._chain()
        splits = split_records([(i, i) for i in range(4)], 1)
        job = Job(mapper_factory=_EchoMapper, reducer_factory=_CountReducer)
        chain.run("my_step", job, splits)
        report = chain.report()
        assert "my_step" in report
        assert "TOTAL" in report

    def test_report_shows_task_counts_executor_and_phase_times(self):
        chain = self._chain()
        splits = split_records([(i, i) for i in range(10)], 3)
        job = Job(mapper_factory=_EchoMapper, reducer_factory=_CountReducer)
        chain.run("counted_step", job, splits, num_reducers=2)
        report = chain.report()
        header, row, total = report.splitlines()
        for column in ("maps", "reds", "executor", "map(s)", "reduce(s)"):
            assert column in header
        assert "serial" in row
        assert row.split()[1:3] == ["3", "2"]  # map tasks, reduce tasks
        assert "TOTAL (1 jobs)" in total

    def test_report_totals_sum_task_counts(self):
        chain = self._chain()
        splits = split_records([(i, i) for i in range(10)], 2)
        job = Job(mapper_factory=_EchoMapper, reducer_factory=_CountReducer)
        chain.run("a", job, splits)
        chain.run("b", job, splits, num_reducers=3)
        total = chain.report().splitlines()[-1]
        assert "TOTAL (2 jobs)" in total
        # "TOTAL (2 jobs)" splits into three tokens; counts follow.
        assert total.split()[3:5] == ["4", "4"]  # 2+2 maps, 1+3 reduces


class TestCostModel:
    def test_job_cost_components_positive(self):
        model = ClusterCostModel()
        cost = model.job_cost(10**7, shuffle_records=1_000, reduce_records=10)
        assert cost.overhead_s == model.job_overhead_s
        assert cost.map_s > 0
        assert cost.total_s > cost.overhead_s

    def test_map_time_scales_with_waves(self):
        model = ClusterCostModel(map_slots=10, split_records=1_000)
        small = model.job_cost(10_000)  # 10 splits, 1 wave
        large = model.job_cost(100_000)  # 100 splits, 10 waves
        assert large.map_s == pytest.approx(10 * small.map_s)

    def test_overhead_dominates_small_jobs(self):
        model = ClusterCostModel()
        cost = model.job_cost(1_000)
        assert cost.overhead_s > cost.map_s

    def test_negative_records_rejected(self):
        with pytest.raises(ValueError):
            ClusterCostModel().job_cost(-1)

    def test_cost_addition(self):
        a = CostEstimate(1.0, 2.0, 3.0, 4.0)
        b = CostEstimate(0.5, 0.5, 0.5, 0.5)
        total = a + b
        assert total.total_s == pytest.approx(12.0)
        assert (ZERO_COST + a).total_s == a.total_s

    def test_chain_cost(self):
        model = ClusterCostModel()
        jobs = [model.scan_job(10**6) for _ in range(3)]
        assert model.chain_cost(jobs).total_s == pytest.approx(
            sum(j.total_s for j in jobs)
        )

    def test_multiplier_scales_map_cost(self):
        model = ClusterCostModel()
        plain = model.scan_job(10**7, multiplier=1.0)
        heavy = model.scan_job(10**7, multiplier=2.0)
        assert heavy.map_s == pytest.approx(2 * plain.map_s)

    def test_billion_point_calibration(self):
        """The Section 7.5.2 anchor: MR-Light (7 scan jobs) lands in the
        right order of magnitude at 10^9 points, and BoW's modelled time
        exceeds it (the paper's headline: 4300s vs 9500s)."""
        from repro.experiments.figure7 import project_runtime

        model = ClusterCostModel()
        mr_light = project_runtime("MR (Light)", 10**9, 7, model)
        bow_light = project_runtime("BoW (Light)", 10**9, 1, model)
        assert 1_000 < mr_light < 20_000
        assert bow_light > mr_light
