"""Edge-case tests across modules (final coverage sweep)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import DOC, DOCConfig, Proclus, ProclusConfig
from repro.cli import main as cli_main
from repro.core.p3c_plus import P3CPlus, P3CPlusLight
from repro.data.io import load_result_json, save_dataset_csv
from repro.mapreduce import JobChain, MapReduceRuntime
from repro.mapreduce.costmodel import ClusterCostModel


class TestSinglePointAndDegenerate:
    def test_single_point_dataset(self):
        data = np.full((1, 3), 0.5)
        result = P3CPlusLight().fit(data)
        assert result.n_points == 1

    def test_constant_attribute(self, rng):
        """A constant column lands all mass in one bin — relevant by the
        chi-squared test but harmless downstream."""
        data = rng.uniform(size=(500, 3))
        data[:, 1] = 0.5
        result = P3CPlusLight().fit(data)
        assert result.n_points == 500

    def test_duplicate_points(self):
        data = np.tile(np.array([[0.3, 0.7]]), (200, 1))
        result = P3CPlusLight().fit(data)
        # One degenerate cluster containing everything (or none): both
        # are legal; the pipeline must simply not crash or mislabel.
        counted = sum(c.size for c in result.clusters) + len(result.outliers)
        assert counted == 200

    def test_two_dimensional_minimum(self, rng):
        data = rng.uniform(size=(300, 2))
        data[:150, 0] = rng.normal(0.3, 0.02, 150).clip(0, 1)
        data[:150, 1] = rng.normal(0.7, 0.02, 150).clip(0, 1)
        result = P3CPlus().fit(data)
        assert result.n_points == 300


class TestCostModelEdges:
    def test_zero_input_records(self):
        cost = ClusterCostModel().job_cost(0)
        assert cost.total_s >= ClusterCostModel().job_overhead_s

    def test_scan_job_shuffle_clamped(self):
        model = ClusterCostModel()
        small = model.scan_job(100)
        assert small.shuffle_s <= 100 * model.shuffle_record_cost_s + 1e-12


class TestCLIEdges:
    def test_cluster_with_normalize(self, tmp_path, rng):
        raw = rng.normal(50.0, 10.0, size=(300, 6))
        raw[:150, 0] = rng.normal(20.0, 0.5, 150)
        raw[:150, 1] = rng.normal(80.0, 0.5, 150)
        data_path = tmp_path / "raw.csv"
        save_dataset_csv(data_path, raw)
        result_path = tmp_path / "out.json"
        code = cli_main(
            [
                "cluster",
                "--algorithm", "p3c-plus-light",
                "--data", str(data_path),
                "--normalize",
                "--out", str(result_path),
            ]
        )
        assert code == 0
        assert load_result_json(result_path).n_points == 300

    def test_unnormalised_data_without_flag_fails(self, tmp_path, rng):
        raw = rng.normal(50.0, 10.0, size=(50, 3))
        data_path = tmp_path / "raw.csv"
        save_dataset_csv(data_path, raw)
        with pytest.raises(ValueError, match="normalis"):
            cli_main(
                [
                    "cluster",
                    "--algorithm", "p3c-plus-light",
                    "--data", str(data_path),
                    "--out", str(tmp_path / "out.json"),
                ]
            )


class TestBaselineEdges:
    def test_proclus_more_clusters_than_candidates(self, rng):
        data = rng.uniform(size=(30, 4))
        config = ProclusConfig(
            num_clusters=5, avg_dimensions=2, sample_factor=2, seed=0
        )
        result = Proclus(config).fit(data)
        assert result.n_points == 30

    def test_doc_uniform_data_few_clusters(self, rng):
        data = rng.uniform(size=(400, 5))
        result = DOC(DOCConfig(seed=1, max_clusters=3)).fit(data)
        # Uniform data: boxes exist but are weak; never more than asked.
        assert result.num_clusters <= 3

    def test_doc_respects_max_clusters(self, small_dataset):
        result = DOC(DOCConfig(seed=1, max_clusters=1)).fit(
            small_dataset.data
        )
        assert result.num_clusters <= 1


class TestChainEdges:
    def test_chain_with_explicit_num_splits(self, rng):
        from repro.mr.histogram import run_histogram_job
        from repro.mapreduce.types import split_records

        chain = JobChain(MapReduceRuntime())
        splits = split_records(rng.uniform(size=(50, 2)), 3)
        run_histogram_job(chain, splits, 4)
        assert chain.steps[0].result.conf.num_splits == len(splits)
