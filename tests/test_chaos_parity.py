"""Executor parity under chaos: the acid test of the fault machinery.

For a multi-job chain under injected map errors, reduce errors,
stragglers and corrupted shuffle partitions, every executor backend
must produce *byte-identical* results to a clean serial run — fault
recovery (retries + shuffle-integrity validation) must be invisible in
the output.  The fault schedule is a pure function of the seed, so the
sweep is reproducible.
"""

from __future__ import annotations

import pickle

import numpy as np
import pytest

from repro.core.types import Interval, Signature
from repro.mapreduce import (
    FaultPlan,
    JobChain,
    MapReduceRuntime,
    split_records,
)
from repro.mapreduce.events import EventKind
from repro.mapreduce.job import Job, Mapper, Reducer
from repro.mr.support import run_support_job

# One spec exercising every fault kind across both phases.
CHAOS_SPEC = (
    "map:error:p=0.3;reduce:error:p=0.25;map:delay:p=0.2:ms=3;map:corrupt:p=0.2"
)

N_RECORDS = 120
NUM_SPLITS = 6


class TokenizeMapper(Mapper):
    """records -> (word_bucket, 1) pairs with a combiner-friendly shape."""

    def map(self, key, value, context):
        context.emit(value % 7, 1)


class CountReducer(Reducer):
    def reduce(self, key, values, context):
        context.emit(key, sum(values))


class RescaleMapper(Mapper):
    """Consumes job 1's output: (bucket, count) -> (bucket % 2, count)."""

    def map(self, key, value, context):
        context.emit(key % 2, value * 10)


class MaxReducer(Reducer):
    def reduce(self, key, values, context):
        context.emit(key, max(values))


class SpreadMapper(Mapper):
    """Map-only job over job 2's output (exercises map-only corruption)."""

    def map(self, key, value, context):
        context.emit(key, value + 1)
        context.emit(key + 100, value)


def _run_jobs(chain: JobChain) -> bytes:
    """The 3-job chaos chain body; returns the pickled outputs."""
    splits = split_records([(i, i) for i in range(N_RECORDS)], NUM_SPLITS)
    r1 = chain.run(
        "count",
        Job(mapper_factory=TokenizeMapper, reducer_factory=CountReducer),
        splits,
        num_reducers=3,
    )
    r2 = chain.run(
        "rescale",
        Job(mapper_factory=RescaleMapper, reducer_factory=MaxReducer),
        split_records(r1.output, 4),
        num_reducers=2,
    )
    r3 = chain.run(
        "spread",
        Job(mapper_factory=SpreadMapper),
        split_records(r2.output, 2),
        num_reducers=0,
    )
    return pickle.dumps([r1.output, r2.output, sorted(r3.output)])


def run_chain(
    executor: str | None,
    fault_spec: str | None,
    seed: int = 0,
    max_workers: int | None = None,
):
    """Run the 3-job chain; returns (pickled outputs, runtime)."""
    plan = FaultPlan.parse(fault_spec, seed=seed) if fault_spec else None
    runtime = MapReduceRuntime(
        executor=executor, max_workers=max_workers, fault_plan=plan
    )
    outputs = _run_jobs(JobChain(runtime))
    return outputs, runtime


@pytest.fixture(scope="module")
def clean_baseline():
    outputs, _ = run_chain("serial", None)
    return outputs


@pytest.mark.parametrize("seed", range(20))
def test_serial_chaos_matches_clean_run(clean_baseline, seed):
    outputs, runtime = run_chain("serial", CHAOS_SPEC, seed=seed)
    assert outputs == clean_baseline
    kinds = {e.kind for e in runtime.events.events}
    assert EventKind.TASK_FAILED not in kinds


@pytest.mark.parametrize("seed", range(20))
def test_thread_chaos_matches_clean_run(clean_baseline, seed):
    outputs, _ = run_chain("thread", CHAOS_SPEC, seed=seed, max_workers=4)
    assert outputs == clean_baseline


@pytest.mark.parametrize("seed", [0, 7, 13])
def test_process_chaos_matches_clean_run(clean_baseline, seed):
    # Fewer seeds: each process-pool chain pays worker spawn cost.
    outputs, _ = run_chain("process", CHAOS_SPEC, seed=seed, max_workers=2)
    assert outputs == clean_baseline


@pytest.mark.parametrize("executor", ["serial", "thread"])
def test_fault_schedule_identical_across_executors(executor):
    """The injected schedule (not just the output) matches serial."""

    def schedule(runtime):
        return sorted(
            (e.job, e.phase, e.task_id, e.attempt, e.error)
            for e in runtime.events.events
            if e.kind == EventKind.FAULT_INJECTED
        )

    _, baseline_rt = run_chain("serial", CHAOS_SPEC, seed=5)
    _, runtime = run_chain(executor, CHAOS_SPEC, seed=5, max_workers=4)
    assert schedule(runtime) == schedule(baseline_rt)


def test_chaos_runs_actually_injected_faults():
    """Guard against a silently inert sweep."""
    _, runtime = run_chain("serial", CHAOS_SPEC, seed=0)
    injected = sum(
        1 for e in runtime.events.events if e.kind == EventKind.FAULT_INJECTED
    )
    assert injected >= 3


# -- service-plane parity: concurrent chains on one shared pool -----------
#
# N chains submitted through the ClusterService — sharing one
# fair-share slot pool, interleaved at every task grant, optionally
# under per-chain chaos — must each reproduce the clean serial output
# byte for byte.  This is the isolation acid test: no cross-chain state
# (events, counters, retries, shuffle buffers) may leak.


@pytest.mark.parametrize(
    ("executor", "slots", "num_chains", "fault_spec"),
    [
        ("serial", 2, 4, None),
        ("thread", 4, 8, None),  # the 8-concurrent-chains criterion
        ("thread", 4, 4, CHAOS_SPEC),
        ("process", 2, 2, CHAOS_SPEC),
    ],
)
def test_scheduler_concurrent_chains_match_serial(
    clean_baseline, executor, slots, num_chains, fault_spec
):
    from repro.mapreduce import ClusterService

    def make_chain_fn(index: int):
        plan = (
            FaultPlan.parse(fault_spec, seed=index) if fault_spec else None
        )

        def run(ctx) -> bytes:
            return _run_jobs(JobChain(MapReduceRuntime(context=ctx)))

        return run, plan

    with ClusterService(slots=slots, executor=executor) as service:
        handles = []
        for i in range(num_chains):
            fn, plan = make_chain_fn(i)
            handles.append(
                service.submit(
                    fn, name=f"c{i}", tenant=f"t{i % 2}", fault_plan=plan
                )
            )
        results = [handle.result(timeout=120) for handle in handles]
    assert all(outputs == clean_baseline for outputs in results)


# -- vectorized (BatchMapper) chain parity --------------------------------
#
# The support-counting job runs the whole vectorized data plane: the
# runtime feeds ndarray split blocks to a BatchMapper, the RSSC counts
# supports through the packed-uint64 batch path, and on the process
# executor the cache ships via per-worker broadcast.  All of that must
# stay byte-invisible: under chaos, every backend must reproduce the
# clean serial output exactly.


def _support_workload():
    rng = np.random.default_rng(99)
    data = rng.uniform(size=(150, 5))
    signatures = []
    for j in range(12):
        attribute = j % 5
        lo = float(rng.uniform(0, 0.7))
        signatures.append(
            Signature([Interval(attribute, lo, lo + float(rng.uniform(0.1, 0.3)))])
        )
    # Exact boundary hits keep the closed-interval edge cases in play.
    data[0, 0] = signatures[0].intervals[0].lower
    data[1, 0] = signatures[0].intervals[0].upper
    return data, signatures


def run_vectorized_chain(
    executor: str | None,
    fault_spec: str | None,
    seed: int = 0,
    max_workers: int | None = None,
):
    """Run the RSSC support job end to end; returns (pickled output, runtime)."""
    plan = FaultPlan.parse(fault_spec, seed=seed) if fault_spec else None
    runtime = MapReduceRuntime(
        executor=executor, max_workers=max_workers, fault_plan=plan
    )
    chain = JobChain(runtime)
    data, signatures = _support_workload()
    supports = run_support_job(
        chain, split_records(data, NUM_SPLITS), signatures
    )
    outputs = pickle.dumps([(repr(sig), count) for sig, count in supports.items()])
    return outputs, runtime


@pytest.fixture(scope="module")
def clean_vectorized_baseline():
    outputs, _ = run_vectorized_chain("serial", None)
    return outputs


@pytest.mark.parametrize("seed", [0, 3, 11])
def test_vectorized_serial_chaos_matches_clean_run(
    clean_vectorized_baseline, seed
):
    outputs, runtime = run_vectorized_chain("serial", CHAOS_SPEC, seed=seed)
    assert outputs == clean_vectorized_baseline
    kinds = {e.kind for e in runtime.events.events}
    assert EventKind.TASK_FAILED not in kinds


@pytest.mark.parametrize("seed", [0, 3, 11])
def test_vectorized_thread_chaos_matches_clean_run(
    clean_vectorized_baseline, seed
):
    outputs, _ = run_vectorized_chain(
        "thread", CHAOS_SPEC, seed=seed, max_workers=4
    )
    assert outputs == clean_vectorized_baseline


@pytest.mark.parametrize("seed", [0, 7])
def test_vectorized_process_chaos_matches_clean_run(
    clean_vectorized_baseline, seed
):
    # The process run also exercises the cache broadcast + pickle-5
    # packing path; fewer seeds since each chain spawns a pool.
    outputs, _ = run_vectorized_chain(
        "process", CHAOS_SPEC, seed=seed, max_workers=2
    )
    assert outputs == clean_vectorized_baseline


# -- coreset-summary chain parity ------------------------------------------
#
# The coreset mapper samples in cleanup with an RNG derived from
# (seed, split id), so a chaos-injected retry of a map task must redraw
# the *identical* sample — points and weights of the summary stay byte-
# identical to a clean serial run on every backend.  Without this, a
# retried split would silently change the downstream weighted fit.


def run_coreset_chain(
    executor: str | None,
    fault_spec: str | None,
    seed: int = 0,
    max_workers: int | None = None,
):
    from repro.mr.coreset import build_coreset

    plan = FaultPlan.parse(fault_spec, seed=seed) if fault_spec else None
    runtime = MapReduceRuntime(
        executor=executor, max_workers=max_workers, fault_plan=plan
    )
    data = np.random.default_rng(42).uniform(size=(200, 4))
    summary = build_coreset(
        JobChain(runtime),
        split_records(data, NUM_SPLITS),
        60,
        mode="lightweight",
        seed=17,
    )
    return pickle.dumps((summary.points, summary.weights)), runtime


@pytest.fixture(scope="module")
def clean_coreset_baseline():
    outputs, _ = run_coreset_chain("serial", None)
    return outputs


@pytest.mark.parametrize("seed", [0, 3, 11])
def test_coreset_serial_chaos_preserves_weights(clean_coreset_baseline, seed):
    outputs, runtime = run_coreset_chain("serial", CHAOS_SPEC, seed=seed)
    assert outputs == clean_coreset_baseline
    kinds = {e.kind for e in runtime.events.events}
    assert EventKind.TASK_FAILED not in kinds


@pytest.mark.parametrize("seed", [0, 3, 11])
def test_coreset_thread_chaos_preserves_weights(clean_coreset_baseline, seed):
    outputs, _ = run_coreset_chain(
        "thread", CHAOS_SPEC, seed=seed, max_workers=4
    )
    assert outputs == clean_coreset_baseline


def test_coreset_process_chaos_preserves_weights(clean_coreset_baseline):
    outputs, _ = run_coreset_chain(
        "process", CHAOS_SPEC, seed=7, max_workers=2
    )
    assert outputs == clean_coreset_baseline


def test_vectorized_counts_match_bruteforce():
    """Anchor the parity sweep to ground truth, not just to itself."""
    from repro.core.proving import count_supports

    data, signatures = _support_workload()
    expected = count_supports(data, signatures)
    outputs, _ = run_vectorized_chain("serial", None)
    assert pickle.loads(outputs) == [
        (repr(sig), expected[sig]) for sig in signatures
    ]


# -- columnar vs tuple shuffle-plane parity (property-based) ---------------
#
# The tuple plane is the columnar plane's oracle: for any uniform
# (key, ndarray) workload, packing buckets into ColumnarBucket blocks
# (plus the vectorized combiner fold) must be byte-invisible in the
# job output on every executor backend.

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mapreduce import JobConf
from repro.mapreduce.job import ArraySumCombiner


class ArrayEmitMapper(Mapper):
    def map(self, key, value, context):
        inner_key, row = value
        context.emit(inner_key, row)


class ArraySumReducer(Reducer):
    def reduce(self, key, values, context):
        total = values[0].copy()
        for value in values[1:]:
            total += value
        context.emit(key, total)


def _run_array_job(records, num_reducers, executor, columnar):
    runtime = MapReduceRuntime(executor=executor, max_workers=2)
    job = Job(
        mapper_factory=ArrayEmitMapper,
        reducer_factory=ArraySumReducer,
        combiner_factory=ArraySumCombiner,
    )
    result = runtime.run(
        job,
        split_records(records, 3),
        JobConf(num_reducers=num_reducers, columnar_shuffle=columnar),
    )
    return pickle.dumps(result.output)


@settings(max_examples=20, deadline=None)
@given(
    seed=st.integers(0, 2**32 - 1),
    n=st.integers(2, 60),
    d=st.integers(1, 5),
    num_keys=st.integers(1, 8),
    num_reducers=st.integers(1, 4),
    numpy_keys=st.booleans(),
)
def test_columnar_plane_matches_tuple_plane(
    seed, n, d, num_keys, num_reducers, numpy_keys
):
    rng = np.random.default_rng(seed)
    data = rng.uniform(size=(n, d))
    key_of = (lambda i: np.int64(i % num_keys)) if numpy_keys else (
        lambda i: int(i % num_keys)
    )
    records = [(i, (key_of(i), data[i])) for i in range(n)]
    oracle = _run_array_job(records, num_reducers, "serial", columnar=False)
    assert _run_array_job(records, num_reducers, "serial", True) == oracle
    assert _run_array_job(records, num_reducers, "thread", True) == oracle


def test_columnar_plane_matches_tuple_plane_on_process_executor():
    """One fixed workload through the real pickle-5 process transport.

    Both planes run on the process executor so the transport is held
    constant: arrays that cross a process boundary come back with a
    non-singleton dtype instance, which perturbs whole-list pickle
    memoization against a serial run while every pair stays
    byte-identical — so the serial oracle is compared pairwise."""
    rng = np.random.default_rng(7)
    records = [(i, (int(i % 5), rng.uniform(size=3))) for i in range(40)]
    columnar = _run_array_job(records, 2, "process", columnar=True)
    assert columnar == _run_array_job(records, 2, "process", columnar=False)
    serial = pickle.loads(_run_array_job(records, 2, "serial", columnar=False))
    assert [pickle.dumps(pair) for pair in pickle.loads(columnar)] == [
        pickle.dumps(pair) for pair in serial
    ]


# -- spill-to-disk shuffle parity ------------------------------------------
#
# The in-heap columnar plane is the spill plane's oracle: with a
# one-byte memory budget every columnar bucket is written out as
# compressed npz segments and gathered by streaming concat, and the job
# output must stay byte-identical — clean and under chaos, on every
# backend.


def _spill_records(n=80, d=4, num_keys=6, seed=21):
    rng = np.random.default_rng(seed)
    data = rng.uniform(size=(n, d))
    return [(i, (int(i % num_keys), data[i])) for i in range(n)]


def _run_spill_job(
    records,
    num_reducers,
    executor,
    spill,
    fault_spec=None,
    seed=0,
    spill_dir=None,
):
    plan = FaultPlan.parse(fault_spec, seed=seed) if fault_spec else None
    runtime = MapReduceRuntime(
        executor=executor, max_workers=2, fault_plan=plan
    )
    job = Job(
        mapper_factory=ArrayEmitMapper,
        reducer_factory=ArraySumReducer,
        combiner_factory=ArraySumCombiner,
    )
    conf = JobConf(
        num_reducers=num_reducers,
        memory_budget_bytes=1 if spill else None,
        spill_dir=str(spill_dir) if spill_dir is not None else None,
    )
    result = runtime.run(job, split_records(records, 3), conf)
    return pickle.dumps(result.output), result


def test_spill_plane_matches_heap_plane():
    records = _spill_records()
    oracle, heap_result = _run_spill_job(records, 3, "serial", spill=False)
    spilled, result = _run_spill_job(records, 3, "serial", spill=True)
    assert spilled == oracle
    assert result.counters.framework_value("spilled_bytes") > 0
    assert result.counters.framework_value("spill_segments") > 0
    assert heap_result.counters.framework_value("spilled_bytes") == 0
    # Spilling must not change the *logical* shuffle volume accounting.
    assert result.counters.framework_value(
        "shuffle_bytes"
    ) == heap_result.counters.framework_value("shuffle_bytes")


def test_spill_leaves_no_segments_behind(tmp_path):
    root = tmp_path / "spill-root"
    root.mkdir()
    records = _spill_records()
    oracle, _ = _run_spill_job(records, 3, "serial", spill=False)
    spilled, _ = _run_spill_job(
        records, 3, "serial", spill=True, spill_dir=root
    )
    assert spilled == oracle
    # The user-supplied root survives; the job-scoped subdir (and every
    # segment in it) is removed when the job finishes.
    assert root.exists()
    assert list(root.iterdir()) == []


@pytest.mark.parametrize("executor", ["serial", "thread"])
@pytest.mark.parametrize("seed", [0, 3, 11])
def test_spill_chaos_matches_heap_plane(executor, seed):
    records = _spill_records()
    oracle, _ = _run_spill_job(records, 3, "serial", spill=False)
    spilled, result = _run_spill_job(
        records, 3, executor, spill=True, fault_spec=CHAOS_SPEC, seed=seed
    )
    assert spilled == oracle
    assert result.counters.framework_value("spill_segments") > 0


def test_spill_process_matches_heap_plane():
    # Workers spill into the runtime-resolved directory from separate
    # processes; the reducer side streams them back through pickle-5
    # transport.  Compared against the process-executor heap run so the
    # transport is held constant (see the columnar process test above).
    records = _spill_records()
    heap, _ = _run_spill_job(records, 2, "process", spill=False)
    spilled, result = _run_spill_job(records, 2, "process", spill=True)
    assert spilled == heap
    assert result.counters.framework_value("spill_segments") > 0


@settings(max_examples=10, deadline=None)
@given(
    seed=st.integers(0, 2**32 - 1),
    n=st.integers(2, 50),
    d=st.integers(1, 4),
    num_keys=st.integers(1, 6),
    num_reducers=st.integers(1, 4),
)
def test_spill_plane_property_parity(seed, n, d, num_keys, num_reducers):
    rng = np.random.default_rng(seed)
    data = rng.uniform(size=(n, d))
    records = [(i, (int(i % num_keys), data[i])) for i in range(n)]
    oracle, _ = _run_spill_job(records, num_reducers, "serial", spill=False)
    spilled, _ = _run_spill_job(records, num_reducers, "serial", spill=True)
    assert spilled == oracle
