"""Tests for the Figure 3 and blurring-effect harnesses."""

from __future__ import annotations

import pytest

from repro.experiments import blurring, figure3
from repro.data import GeneratorConfig, generate_synthetic


class TestFigure3:
    def test_s2_bit_always_one(self):
        outcome = figure3.run()
        assert outcome["s2_bit_always_one"]

    def test_boundaries_span_unit_interval(self):
        outcome = figure3.run()
        assert outcome["boundaries"][0] == 0.0
        assert outcome["boundaries"][-1] == 1.0

    def test_cell_count_matches_boundaries(self):
        outcome = figure3.run()
        assert len(outcome["cells"]) == 2 * len(outcome["boundaries"]) - 1

    def test_main_renders(self):
        assert "Figure 3" in figure3.main()


class TestInjection:
    @pytest.fixture(scope="class")
    def base(self):
        return generate_synthetic(
            GeneratorConfig(
                n=400, d=8, num_clusters=2, noise_fraction=0.05,
                max_cluster_dims=4, seed=21,
            )
        )

    def test_injected_count(self, base):
        data, blurred = blurring.inject_blurring_points(base, 6)
        assert len(data) == 400 + 6 * len(base.hidden_clusters)
        assert len(blurred) == len(base.hidden_clusters)

    def test_zero_injection_returns_original(self, base):
        data, _ = blurring.inject_blurring_points(base, 0)
        assert data is base.data

    def test_injected_points_match_centres_except_blur_attr(self, base):
        data, blurred = blurring.inject_blurring_points(base, 2)
        injected = data[400:]
        for j, (cid, blur_attr) in enumerate(blurred):
            cluster = base.hidden_clusters[cid]
            point = injected[2 * j]
            for interval in cluster.signature:
                if interval.attribute == blur_attr:
                    assert point[interval.attribute] in (0.0, 1.0)
                else:
                    centre = (interval.lower + interval.upper) / 2
                    assert point[interval.attribute] == pytest.approx(centre)

    def test_injected_points_in_unit_cube(self, base):
        data, _ = blurring.inject_blurring_points(base, 4)
        assert data.min() >= 0.0 and data.max() <= 1.0


class TestBlurringRender:
    def test_render_orders_algorithms(self):
        rows = [
            blurring.BlurringRow("MR (Naive)", 0, 1.5),
            blurring.BlurringRow("MR (MVB)", 0, 1.0),
            blurring.BlurringRow("MR (Light)", 0, 0.9),
        ]
        text = blurring.render(rows)
        assert text.index("MR (Naive)") < text.index("MR (MVB)")
        assert "blurring effect" in text
