"""End-to-end equivalence of the MapReduce drivers and serial references.

The MR formulation is *exact* (the paper's headline claim), so:

- cluster cores must be identical signature-for-signature;
- the Light variant's full output must match the serial Light exactly;
- the full pipeline's quality must match the serial P3C+ to tolerance
  (EM partial sums differ only in float association order).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.p3c_plus import P3CPlus, P3CPlusConfig, P3CPlusLight
from repro.eval import e4sc_score
from repro.mr import P3CPlusMR, P3CPlusMRConfig, P3CPlusMRLight


@pytest.fixture(scope="module")
def mr_config() -> P3CPlusMRConfig:
    return P3CPlusMRConfig(num_splits=4)


class TestLightEquivalence:
    def test_cores_identical(self, small_dataset, mr_config):
        serial = P3CPlusLight().fit(small_dataset.data)
        mr = P3CPlusMRLight(mr_config=mr_config).fit(small_dataset.data)
        serial_cores = sorted(
            (c.core.signature for c in serial.clusters),
            key=lambda s: s.intervals,
        )
        mr_cores = sorted(
            (c.core.signature for c in mr.clusters), key=lambda s: s.intervals
        )
        assert serial_cores == mr_cores

    def test_memberships_identical(self, small_dataset, mr_config):
        serial = P3CPlusLight().fit(small_dataset.data)
        mr = P3CPlusMRLight(mr_config=mr_config).fit(small_dataset.data)
        assert np.array_equal(serial.labels(), mr.labels())

    def test_outliers_identical(self, small_dataset, mr_config):
        serial = P3CPlusLight().fit(small_dataset.data)
        mr = P3CPlusMRLight(mr_config=mr_config).fit(small_dataset.data)
        assert np.array_equal(serial.outliers, mr.outliers)

    def test_multi_level_collection_same_cores(self, small_dataset):
        baseline = P3CPlusMRLight(
            mr_config=P3CPlusMRConfig(num_splits=4, multi_level=False)
        ).fit(small_dataset.data)
        multi = P3CPlusMRLight(
            mr_config=P3CPlusMRConfig(num_splits=4, multi_level=True, t_c=50)
        ).fit(small_dataset.data)
        assert sorted(
            (c.core.signature for c in baseline.clusters),
            key=lambda s: s.intervals,
        ) == sorted(
            (c.core.signature for c in multi.clusters),
            key=lambda s: s.intervals,
        )

    def test_multi_level_uses_fewer_proving_jobs(self, small_dataset):
        per_level = P3CPlusMRLight(
            mr_config=P3CPlusMRConfig(num_splits=2, multi_level=False)
        )
        per_level.fit(small_dataset.data)
        collected = P3CPlusMRLight(
            mr_config=P3CPlusMRConfig(num_splits=2, multi_level=True)
        )
        collected.fit(small_dataset.data)
        per_level_jobs = sum(
            1 for s in per_level.chain.steps if s.name == "candidate_proving"
        )
        collected_jobs = sum(
            1 for s in collected.chain.steps if s.name == "candidate_proving"
        )
        assert collected_jobs <= per_level_jobs


class TestFullEquivalence:
    def test_cores_identical(self, small_dataset, mr_config):
        config = P3CPlusConfig(outlier_method="mvb")
        serial = P3CPlus(config).fit(small_dataset.data)
        mr = P3CPlusMR(config, mr_config).fit(small_dataset.data)
        serial_cores = sorted(
            (c.core.signature for c in serial.clusters),
            key=lambda s: s.intervals,
        )
        mr_cores = sorted(
            (c.core.signature for c in mr.clusters), key=lambda s: s.intervals
        )
        assert serial_cores == mr_cores

    def test_quality_matches_serial(self, small_dataset, mr_config):
        truth = small_dataset.ground_truth_clusters()
        config = P3CPlusConfig(outlier_method="mvb")
        serial = e4sc_score(P3CPlus(config).fit(small_dataset.data).clusters, truth)
        mr = e4sc_score(
            P3CPlusMR(config, mr_config).fit(small_dataset.data).clusters, truth
        )
        assert mr == pytest.approx(serial, abs=0.05)

    def test_naive_variant_runs(self, small_dataset, mr_config):
        config = P3CPlusConfig(outlier_method="naive")
        result = P3CPlusMR(config, mr_config).fit(small_dataset.data)
        assert result.num_clusters >= 1

    def test_job_ledger_recorded(self, small_dataset, mr_config):
        driver = P3CPlusMR(mr_config=mr_config)
        result = driver.fit(small_dataset.data)
        assert result.metadata["mr_jobs"] == driver.chain.num_jobs
        assert result.metadata["mr_jobs"] > 10  # EM alone needs many jobs
        assert driver.chain.total_shuffle_records > 0

    def test_light_runs_fewer_jobs(self, small_dataset, mr_config):
        full = P3CPlusMR(mr_config=mr_config)
        light = P3CPlusMRLight(mr_config=mr_config)
        full_jobs = full.fit(small_dataset.data).metadata["mr_jobs"]
        light_jobs = light.fit(small_dataset.data).metadata["mr_jobs"]
        assert light_jobs < full_jobs


class TestDriverEdgeCases:
    def test_uniform_data_yields_no_clusters(self, rng):
        data = rng.uniform(size=(800, 5))
        result = P3CPlusMRLight(
            mr_config=P3CPlusMRConfig(num_splits=3)
        ).fit(data)
        assert result.num_clusters == 0
        assert len(result.outliers) == 800

    def test_unnormalised_data_rejected(self):
        data = np.full((10, 2), 3.5)
        with pytest.raises(ValueError, match="normalis"):
            P3CPlusMRLight().fit(data)

    def test_chain_reset_between_fits(self, small_dataset, mr_config):
        driver = P3CPlusMRLight(mr_config=mr_config)
        first = driver.fit(small_dataset.data).metadata["mr_jobs"]
        second = driver.fit(small_dataset.data).metadata["mr_jobs"]
        assert first == second
