"""Tests for CSV/JSON (de)serialisation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.p3c_plus import P3CPlusLight
from repro.data.io import (
    load_dataset_csv,
    load_result_json,
    result_from_dict,
    result_to_dict,
    save_dataset_csv,
    save_result_json,
)


class TestDatasetCSV:
    def test_roundtrip(self, tmp_path, rng):
        data = rng.uniform(size=(50, 4))
        labels = rng.integers(-1, 3, size=50)
        path = tmp_path / "data.csv"
        save_dataset_csv(path, data, labels)
        loaded, loaded_labels = load_dataset_csv(path)
        assert np.allclose(loaded, data)
        assert np.array_equal(loaded_labels, labels)

    def test_roundtrip_without_labels(self, tmp_path, rng):
        data = rng.uniform(size=(10, 2))
        path = tmp_path / "data.csv"
        save_dataset_csv(path, data)
        loaded, labels = load_dataset_csv(path)
        assert np.allclose(loaded, data)
        assert labels is None

    def test_rejects_1d(self, tmp_path):
        with pytest.raises(ValueError):
            save_dataset_csv(tmp_path / "x.csv", np.zeros(5))

    def test_rejects_label_mismatch(self, tmp_path, rng):
        with pytest.raises(ValueError):
            save_dataset_csv(
                tmp_path / "x.csv", rng.uniform(size=(5, 2)), np.zeros(3)
            )

    def test_single_row(self, tmp_path):
        path = tmp_path / "one.csv"
        save_dataset_csv(path, np.array([[0.1, 0.2]]))
        loaded, _ = load_dataset_csv(path)
        assert loaded.shape == (1, 2)


class TestResultJSON:
    @pytest.fixture(scope="class")
    def result(self, tiny_dataset):
        return P3CPlusLight().fit(tiny_dataset.data)

    def test_roundtrip_preserves_structure(self, tmp_path, result):
        path = tmp_path / "result.json"
        save_result_json(path, result)
        loaded = load_result_json(path)
        assert loaded.n_points == result.n_points
        assert loaded.num_clusters == result.num_clusters
        assert np.array_equal(loaded.outliers, result.outliers)
        for a, b in zip(loaded.clusters, result.clusters):
            assert np.array_equal(a.members, b.members)
            assert a.relevant_attributes == b.relevant_attributes
            assert a.signature == b.signature

    def test_labels_roundtrip(self, tmp_path, result):
        path = tmp_path / "result.json"
        save_result_json(path, result)
        loaded = load_result_json(path)
        assert np.array_equal(loaded.labels(), result.labels())

    def test_version_checked(self, result):
        payload = result_to_dict(result)
        payload["format_version"] = 999
        with pytest.raises(ValueError, match="version"):
            result_from_dict(payload)

    def test_metadata_is_json_safe(self, result):
        import json

        payload = result_to_dict(result)
        json.dumps(payload)  # must not raise

    def test_numpy_metadata_coerced(self):
        from repro.core.types import ClusteringResult
        from repro.data.io import result_to_dict

        result = ClusteringResult(
            clusters=[],
            n_points=1,
            n_dims=1,
            metadata={"count": np.int64(5), "values": np.array([1.5, 2.5])},
        )
        payload = result_to_dict(result)
        assert payload["metadata"]["count"] == 5
        assert payload["metadata"]["values"] == [1.5, 2.5]
