"""MR jobs must agree with their serial counterparts exactly (integer
counting) or to float tolerance (moment sums)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.binning import build_all_histograms
from repro.core.em import fit_em, initialize_from_cores
from repro.core.proving import count_supports
from repro.core.types import ClusterCore, Interval, Signature
from repro.mapreduce import JobChain, MapReduceRuntime
from repro.mapreduce.types import split_records
from repro.mr.candidates import pair_from_index, run_candidate_generation
from repro.core.apriori import generate_candidates, singleton_signatures
from repro.mr.em_jobs import (
    CoreSupportWeights,
    run_em_mr,
    run_moment_jobs,
)
from repro.mr.histogram import run_histogram_job
from repro.mr.support import run_support_job


@pytest.fixture()
def chain() -> JobChain:
    return JobChain(MapReduceRuntime())


def _cores_for(dataset) -> list[ClusterCore]:
    cores = []
    for cluster in dataset.hidden_clusters:
        sig = cluster.signature
        cores.append(
            ClusterCore(
                signature=sig,
                support=sig.support(dataset.data),
                expected_support=sig.expected_support(len(dataset.data)),
            )
        )
    return cores


class TestHistogramJob:
    def test_matches_serial_histograms(self, tiny_dataset, chain):
        splits = split_records(tiny_dataset.data, 4)
        mr_histograms = run_histogram_job(chain, splits, 8)
        serial = build_all_histograms(tiny_dataset.data, 8)
        for a, b in zip(mr_histograms, serial):
            assert a.attribute == b.attribute
            assert np.array_equal(a.counts, b.counts)

    def test_split_count_does_not_matter(self, tiny_dataset, chain):
        one = run_histogram_job(
            chain, split_records(tiny_dataset.data, 1), 6
        )
        many = run_histogram_job(
            chain, split_records(tiny_dataset.data, 9), 6
        )
        for a, b in zip(one, many):
            assert np.array_equal(a.counts, b.counts)


class TestSupportJob:
    def test_matches_bruteforce(self, tiny_dataset, chain):
        splits = split_records(tiny_dataset.data, 4)
        candidates = [c.signature for c in tiny_dataset.hidden_clusters]
        candidates += [
            Signature([Interval(0, 0.0, 0.5)]),
            Signature([Interval(0, 0.0, 0.5), Interval(1, 0.5, 1.0)]),
        ]
        supports = run_support_job(chain, splits, candidates)
        assert supports == count_supports(tiny_dataset.data, candidates)

    def test_empty_candidates_no_job(self, tiny_dataset, chain):
        splits = split_records(tiny_dataset.data, 2)
        assert run_support_job(chain, splits, []) == {}
        assert chain.num_jobs == 0


class TestCandidateGeneration:
    def test_pair_from_index_roundtrip(self):
        k = 7
        pairs = [pair_from_index(i, k) for i in range(k * (k - 1) // 2)]
        assert pairs == [(i, j) for i in range(k) for j in range(i + 1, k)]

    def test_pair_from_index_validates(self):
        with pytest.raises(ValueError):
            pair_from_index(-1, 4)
        with pytest.raises(ValueError):
            pair_from_index(6, 4)

    def test_parallel_matches_serial(self, chain):
        intervals = [Interval(a, 0.0, 0.3) for a in range(10)]
        singles = singleton_signatures(intervals)
        serial = generate_candidates(singles, prune=False)
        parallel = run_candidate_generation(chain, singles, t_gen=5)
        assert parallel == serial
        assert chain.num_jobs == 1  # the parallel path actually ran

    def test_small_sets_stay_serial(self, chain):
        intervals = [Interval(a, 0.0, 0.3) for a in range(4)]
        singles = singleton_signatures(intervals)
        run_candidate_generation(chain, singles, t_gen=1_000)
        assert chain.num_jobs == 0


class TestMomentJobs:
    def test_support_weights_moments_match_numpy(self, tiny_dataset, chain):
        cores = _cores_for(tiny_dataset)
        attrs = tuple(
            sorted(set().union(*(c.attributes for c in cores)))
        )
        splits = split_records(tiny_dataset.data, 4)
        model = CoreSupportWeights([c.signature for c in cores])
        means, covs, weight_sums, _ = run_moment_jobs(
            chain, splits, model, attrs, "test"
        )
        sub = tiny_dataset.data[:, list(attrs)]
        for j, core in enumerate(cores):
            mask = core.signature.support_mask(tiny_dataset.data)
            assert weight_sums[j] == pytest.approx(mask.sum())
            assert means[j] == pytest.approx(sub[mask].mean(axis=0), abs=1e-9)
            # The job adds the same 1e-6 ridge the serial EM uses.
            expected_cov = np.cov(sub[mask].T) + 1e-6 * np.eye(len(attrs))
            assert covs[j] == pytest.approx(expected_cov, abs=1e-9)

    def test_em_mr_matches_serial_em(self, tiny_dataset, chain):
        cores = _cores_for(tiny_dataset)
        splits = split_records(tiny_dataset.data, 4)
        mr_mixture = run_em_mr(
            chain, splits, cores, len(tiny_dataset.data), max_iter=5
        )
        serial_init = initialize_from_cores(tiny_dataset.data, cores)
        serial_mixture = fit_em(tiny_dataset.data, serial_init, max_iter=5)
        assert mr_mixture.attributes == serial_mixture.attributes
        assert mr_mixture.means == pytest.approx(serial_mixture.means, abs=1e-6)
        assert mr_mixture.weights == pytest.approx(
            serial_mixture.weights, abs=1e-6
        )

    def test_em_mr_loglik_non_decreasing(self, tiny_dataset, chain):
        cores = _cores_for(tiny_dataset)
        splits = split_records(tiny_dataset.data, 3)
        mixture = run_em_mr(
            chain, splits, cores, len(tiny_dataset.data), max_iter=6
        )
        history = mixture.log_likelihood_history
        for earlier, later in zip(history, history[1:]):
            assert later >= earlier - 1e-6
