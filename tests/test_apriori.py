"""Unit + property tests for Apriori signature generation."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.apriori import (
    generate_candidates,
    join_signatures,
    maximal_signatures,
    singleton_signatures,
)
from repro.core.types import Interval, Signature


def _iv(attribute: int, lo: float = 0.0, hi: float = 0.5) -> Interval:
    return Interval(attribute, lo, hi)


class TestJoin:
    def test_singletons_join_on_distinct_attributes(self):
        joined = join_signatures(Signature([_iv(0)]), Signature([_iv(1)]))
        assert joined is not None
        assert joined.attributes == frozenset({0, 1})

    def test_singletons_same_attribute_dont_join(self):
        a = Signature([_iv(0, 0.0, 0.2)])
        b = Signature([_iv(0, 0.5, 0.7)])
        assert join_signatures(a, b) is None

    def test_two_sigs_sharing_one_interval_join(self):
        shared = _iv(0)
        a = Signature([shared, _iv(1)])
        b = Signature([shared, _iv(2)])
        joined = join_signatures(a, b)
        assert joined is not None
        assert joined.attributes == frozenset({0, 1, 2})

    def test_two_sigs_sharing_nothing_dont_join(self):
        a = Signature([_iv(0), _iv(1)])
        b = Signature([_iv(2), _iv(3)])
        assert join_signatures(a, b) is None

    def test_different_sizes_dont_join(self):
        a = Signature([_iv(0)])
        b = Signature([_iv(1), _iv(2)])
        assert join_signatures(a, b) is None

    def test_odd_intervals_on_same_attribute_dont_join(self):
        shared = _iv(0)
        a = Signature([shared, _iv(1, 0.0, 0.2)])
        b = Signature([shared, _iv(1, 0.5, 0.9)])
        assert join_signatures(a, b) is None

    def test_join_is_symmetric(self):
        a = Signature([_iv(0), _iv(1)])
        b = Signature([_iv(0), _iv(2)])
        assert join_signatures(a, b) == join_signatures(b, a)


class TestCandidateGeneration:
    def test_all_pairs_of_singletons(self):
        singles = singleton_signatures([_iv(0), _iv(1), _iv(2)])
        candidates = generate_candidates(singles)
        assert len(candidates) == 3
        assert all(len(c) == 2 for c in candidates)

    def test_deduplication(self):
        # Three 2-sigs over {0,1,2} all join pairwise to the same 3-sig.
        s01 = Signature([_iv(0), _iv(1)])
        s02 = Signature([_iv(0), _iv(2)])
        s12 = Signature([_iv(1), _iv(2)])
        candidates = generate_candidates([s01, s02, s12])
        assert len(candidates) == 1
        assert candidates[0].attributes == frozenset({0, 1, 2})

    def test_prune_requires_all_subsignatures(self):
        s01 = Signature([_iv(0), _iv(1)])
        s02 = Signature([_iv(0), _iv(2)])
        # {1,2} missing: the 3-sig candidate must be pruned.
        assert generate_candidates([s01, s02], prune=True) == []
        assert len(generate_candidates([s01, s02], prune=False)) == 1

    def test_empty_input(self):
        assert generate_candidates([]) == []

    def test_deterministic_order(self):
        singles = singleton_signatures([_iv(2), _iv(0), _iv(1)])
        assert generate_candidates(singles) == generate_candidates(singles)

    @settings(max_examples=30)
    @given(st.sets(st.integers(0, 8), min_size=2, max_size=6))
    def test_singleton_level2_count(self, attrs):
        """k singletons on distinct attributes produce C(k, 2) pairs."""
        singles = singleton_signatures([_iv(a) for a in sorted(attrs)])
        candidates = generate_candidates(singles)
        k = len(attrs)
        assert len(candidates) == k * (k - 1) // 2


class TestMaximality:
    def test_subsets_removed(self):
        small = Signature([_iv(0)])
        big = Signature([_iv(0), _iv(1)])
        assert maximal_signatures([small, big]) == [big]

    def test_incomparable_kept(self):
        a = Signature([_iv(0), _iv(1)])
        b = Signature([_iv(0), _iv(2)])
        assert set(maximal_signatures([a, b])) == {a, b}

    def test_duplicates_collapse(self):
        a = Signature([_iv(0)])
        result = maximal_signatures([a, a])
        assert result == [a]

    def test_chain_keeps_only_top(self):
        s1 = Signature([_iv(0)])
        s2 = Signature([_iv(0), _iv(1)])
        s3 = Signature([_iv(0), _iv(1), _iv(2)])
        assert maximal_signatures([s1, s2, s3]) == [s3]

    def test_same_attribute_different_intervals_incomparable(self):
        a = Signature([_iv(0, 0.0, 0.2)])
        b = Signature([_iv(0, 0.5, 0.9)])
        assert len(maximal_signatures([a, b])) == 2


class TestSingletons:
    def test_one_signature_per_interval(self):
        intervals = [_iv(0), _iv(1), _iv(0, 0.6, 0.9)]
        singles = singleton_signatures(intervals)
        assert len(singles) == 3
        assert all(len(s) == 1 for s in singles)
