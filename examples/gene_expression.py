"""Micro-array scenario: tiny n, huge d (the paper's Section 7.6 case).

Projected clustering was motivated by exactly this workload: 62 tissue
samples described by 2 000 genes, where only a handful of genes carry
the tumour/normal signal and everything else is noise.  Full-space
clustering drowns in the 1 990 irrelevant dimensions; P3C+ finds the
informative subspace automatically.

The script compares the original P3C against P3C+ (the paper's
Section 7.6 experiment) on the synthetic colon-cancer stand-in and
reports which genes each algorithm declared relevant.

Run:  python examples/gene_expression.py
"""

from __future__ import annotations

import numpy as np

from repro.core.p3c import P3C
from repro.core.p3c_plus import P3CPlus
from repro.data import make_colon_like
from repro.eval import label_accuracy


def describe(name: str, result, dataset) -> None:
    accuracy = label_accuracy(result, dataset.labels)
    print(f"\n{name}: {result.num_clusters} clusters, "
          f"{len(result.outliers)} outliers, accuracy {accuracy:.1%}")
    informative = set(int(g) for g in dataset.informative_genes)
    for cid, cluster in enumerate(result.clusters):
        found = sorted(cluster.relevant_attributes)
        true_hits = sum(1 for g in found if g in informative)
        class_counts = np.bincount(
            dataset.labels[cluster.members], minlength=2
        )
        print(
            f"  cluster {cid}: {cluster.size:3d} samples "
            f"(normal/tumour = {class_counts[0]}/{class_counts[1]}), "
            f"{len(found)} relevant genes, {true_hits} truly informative"
        )


def main() -> None:
    dataset = make_colon_like(seed=11)
    print(
        f"Data: {dataset.n_samples} samples x {dataset.n_genes} genes, "
        f"{len(dataset.informative_genes)} informative genes"
    )
    print(f"Informative genes: {sorted(int(g) for g in dataset.informative_genes)}")

    describe("Original P3C", P3C().fit(dataset.data), dataset)
    describe("P3C+", P3CPlus().fit(dataset.data), dataset)

    print(
        "\nNote: the paper reports 71% (P3C+) vs 67% (P3C) on the real "
        "UCI set; on this synthetic stand-in both land in the same band "
        "and the exact ordering is seed noise (see DESIGN.md)."
    )


if __name__ == "__main__":
    main()
