"""Exact vs approximate scale-out: P3C+-MR-Light against BoW.

BoW parallelises by clustering random data subsets independently and
merging the resulting hyperrectangles — fast, but approximate: a
cluster slightly shifted in one subset fragments or blurs the merged
result.  P3C+-MR computes the *exact* P3C+ result with MapReduce jobs.

This script runs both on the same data at increasing sizes and prints
the E4SC quality plus runtime side by side (a miniature of the paper's
Figures 6 and 7).

Run:  python examples/bow_vs_p3c_mr.py
"""

from __future__ import annotations

import time

from repro.baselines import BoW, BoWConfig
from repro.data import GeneratorConfig, generate_synthetic
from repro.eval import e4sc_score
from repro.experiments.runner import format_table
from repro.mr import P3CPlusMRConfig, P3CPlusMRLight


def run_once(algorithm, data):
    started = time.perf_counter()
    result = algorithm.fit(data)
    return result, time.perf_counter() - started


def main() -> None:
    rows = []
    for n in (1_000, 3_000, 6_000):
        dataset = generate_synthetic(
            GeneratorConfig(
                n=n, d=15, num_clusters=4, noise_fraction=0.10,
                max_cluster_dims=6, seed=7,
            )
        )
        truth = dataset.ground_truth_clusters()

        mr_light = P3CPlusMRLight(mr_config=P3CPlusMRConfig(num_splits=8))
        mr_result, mr_seconds = run_once(mr_light, dataset.data)

        bow = BoW(
            bow_config=BoWConfig(variant="light", samples_per_reducer=1_000)
        )
        bow_result, bow_seconds = run_once(bow, dataset.data)

        rows.append(
            [
                n,
                e4sc_score(mr_result.clusters, truth),
                mr_seconds,
                mr_result.num_clusters,
                e4sc_score(bow_result.clusters, truth),
                bow_seconds,
                bow_result.num_clusters,
                bow_result.metadata["num_partitions"],
            ]
        )

    print(
        format_table(
            [
                "n",
                "MR-Light E4SC",
                "MR-Light s",
                "MR k",
                "BoW-Light E4SC",
                "BoW-Light s",
                "BoW k",
                "BoW partitions",
            ],
            rows,
        )
    )
    print(
        "\nExpected shape (paper, Figures 6-7): the exact MR algorithm "
        "keeps its quality as n grows while BoW's sampling error "
        "accumulates with more partitions."
    )


if __name__ == "__main__":
    main()
