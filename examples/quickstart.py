"""Quickstart: cluster a synthetic projected-clustering workload.

Generates the paper's synthetic workload (hyperrectangular clusters in
a 20-dimensional space with 10 % uniform noise), runs P3C+-MR-Light —
the paper's recommended algorithm for large data — and scores the
result against the ground truth with E4SC.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro.data import GeneratorConfig, generate_synthetic
from repro.eval import ce_score, e4sc_score, f1_score, rnia_score
from repro.mr import P3CPlusMRConfig, P3CPlusMRLight


def main() -> None:
    # 1. A data set with 3 hidden projected clusters (Section 7.1 recipe).
    dataset = generate_synthetic(
        GeneratorConfig(
            n=4_000,
            d=20,
            num_clusters=3,
            noise_fraction=0.10,
            max_cluster_dims=8,
            seed=42,
        )
    )
    print("Hidden clusters:")
    for cid, cluster in enumerate(dataset.hidden_clusters):
        attrs = sorted(cluster.relevant_attributes)
        print(f"  cluster {cid}: {cluster.size} points, subspace {attrs}")

    # 2. Run P3C+-MR-Light against the in-process MapReduce runtime.
    algorithm = P3CPlusMRLight(mr_config=P3CPlusMRConfig(num_splits=8))
    result = algorithm.fit(dataset.data)

    print("\nFound clustering:")
    print(result.summary())
    print(f"\nMapReduce jobs executed: {result.metadata['mr_jobs']}")
    print(algorithm.chain.report())

    # 3. Score against the ground truth.
    truth = dataset.ground_truth_clusters()
    print("\nQuality (1.0 = perfect):")
    print(f"  E4SC : {e4sc_score(result.clusters, truth):.3f}")
    print(f"  F1   : {f1_score(result.clusters, truth):.3f}")
    print(f"  RNIA : {rnia_score(result.clusters, truth):.3f}")
    print(f"  CE   : {ce_score(result.clusters, truth):.3f}")

    # 4. Inspect one found cluster's tightened output signature.
    if result.clusters:
        cluster = result.clusters[0]
        print("\nTightened signature of the first found cluster:")
        for interval in cluster.signature:
            print(
                f"  attribute {interval.attribute}: "
                f"[{interval.lower:.3f}, {interval.upper:.3f}]"
            )


if __name__ == "__main__":
    main()
