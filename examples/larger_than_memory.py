"""Streaming scenario: cluster a CSV file through file-backed splits.

The paper's whole point is *huge* data: the 10^9-point data set is
~0.2 TB and never fits in memory.  The MapReduce drivers therefore also
accept file-backed input splits that stream records from byte ranges of
a CSV — the driver never materialises the data matrix; peak memory is
one split.

This script writes a data set to disk, clusters it straight from the
file, and verifies the result is identical to clustering the in-memory
matrix.

Run:  python examples/larger_than_memory.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

import numpy as np

from repro.data import GeneratorConfig, generate_synthetic
from repro.data.io import save_dataset_csv
from repro.mapreduce.fs import make_csv_splits
from repro.mr import P3CPlusMRConfig, P3CPlusMRLight


def main() -> None:
    dataset = generate_synthetic(
        GeneratorConfig(
            n=5_000, d=15, num_clusters=3, noise_fraction=0.10,
            max_cluster_dims=6, seed=13,
        )
    )

    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "points.csv"
        save_dataset_csv(path, dataset.data)
        size_mb = path.stat().st_size / 1e6
        print(f"wrote {path.name}: {size_mb:.1f} MB on disk")

        # Build streaming splits: one byte range per mapper, records
        # parsed lazily inside the tasks.
        splits, n, d = make_csv_splits(path, num_splits=16)
        print(f"{len(splits)} file-backed splits over {n} x {d} values")

        driver = P3CPlusMRLight(mr_config=P3CPlusMRConfig(num_splits=16))
        from_file = driver.fit_splits(splits, n, d)
        print("\nclustered from disk:")
        print(from_file.summary())
        print(driver.chain.report())

        from_memory = P3CPlusMRLight(
            mr_config=P3CPlusMRConfig(num_splits=16)
        ).fit(dataset.data)
        identical = np.array_equal(from_file.labels(), from_memory.labels())
        print(f"\nidentical to the in-memory run: {identical}")


if __name__ == "__main__":
    main()
