"""Noisy-sensor scenario: quality under growing noise (Figure 6's axis).

A plausible deployment of projected clustering: a sensor field where
each record is one time window over 25 channels; operating *modes*
(clusters) constrain only a few channels each, faulty sensors add
uniform noise records, and the remaining channels are irrelevant.

This script sweeps the noise fraction from 0 % to 30 % and compares the
full P3C+ (EM + MVB outlier detection) against P3C+-Light, including
how well each recovers the hidden mode subspaces.

Run:  python examples/sensor_noise_sweep.py
"""

from __future__ import annotations

from repro.core.p3c_plus import P3CPlus, P3CPlusConfig, P3CPlusLight
from repro.data import GeneratorConfig, generate_synthetic
from repro.eval import e4sc_score
from repro.experiments.runner import format_table


def subspace_recall(result, dataset) -> float:
    """Fraction of hidden-cluster attributes recovered by the best
    matching found cluster."""
    if not result.clusters:
        return 0.0
    total, hit = 0, 0
    for hidden in dataset.hidden_clusters:
        best = max(
            result.clusters,
            key=lambda c: len(
                c.relevant_attributes & hidden.relevant_attributes
            ),
        )
        total += len(hidden.relevant_attributes)
        hit += len(best.relevant_attributes & hidden.relevant_attributes)
    return hit / total if total else 0.0


def main() -> None:
    rows = []
    for noise in (0.0, 0.10, 0.20, 0.30):
        dataset = generate_synthetic(
            GeneratorConfig(
                n=3_000,
                d=25,
                num_clusters=4,
                noise_fraction=noise,
                min_cluster_dims=3,
                max_cluster_dims=6,
                seed=21,
            )
        )
        truth = dataset.ground_truth_clusters()

        full = P3CPlus(P3CPlusConfig(outlier_method="mvb")).fit(dataset.data)
        light = P3CPlusLight().fit(dataset.data)

        rows.append(
            [
                f"{noise:.0%}",
                e4sc_score(full.clusters, truth),
                subspace_recall(full, dataset),
                len(full.outliers),
                e4sc_score(light.clusters, truth),
                subspace_recall(light, dataset),
            ]
        )

    print(
        format_table(
            [
                "noise",
                "P3C+ E4SC",
                "P3C+ subspace recall",
                "P3C+ #outliers",
                "Light E4SC",
                "Light subspace recall",
            ],
            rows,
        )
    )
    print(
        "\nExpected shape: both variants degrade gracefully with noise; "
        "the Light variant avoids the blurring that the EM/OD phases "
        "introduce (Section 6)."
    )


if __name__ == "__main__":
    main()
