"""``repro.obs``: the end-to-end observability subsystem.

One import surface for the four layers ISSUE'd from the paper's
evaluation methodology (Sections 7.4–7.5):

- **spans** — hierarchical run → stage → job → phase → task tracing
  with Chrome trace-event export (:mod:`repro.obs.spans`);
- **metrics** — the algorithm-side ledger: counters, gauges, series
  and bucketed histograms (:mod:`repro.obs.metrics`);
- **resources** — memory high-water marks and task-skew statistics
  (:mod:`repro.obs.resources`);
- **report** — the ``run.json`` artifact tying it all together
  (:mod:`repro.obs.report`).

:class:`Observability` (:mod:`repro.obs.context`) is the context object
drivers thread through the stack; ``NULL_OBS`` is the shared disabled
instance used when no one is watching.
"""

from repro.obs.context import NULL_OBS, Observability
from repro.obs.metrics import DEFAULT_BUCKETS, Histogram, MetricsRegistry
from repro.obs.report import (
    SCHEMA_VERSION,
    build_run_report,
    job_summary,
    load_run_report,
    render_run_report,
    save_run_report,
    validate_run_report,
)
from repro.obs.resources import (
    ResourceSample,
    ResourceSampler,
    duration_stats,
    peak_rss_kb,
    percentile,
    quantile_summary,
)
from repro.obs.slo import SLORegistry, SLOTarget, TenantSLO
from repro.obs.telemetry import (
    OPENMETRICS_CONTENT_TYPE,
    TelemetryHub,
    TelemetryPlane,
    TimeSeries,
    parse_openmetrics,
    render_openmetrics,
    render_top,
    summarize_log_lines,
)
from repro.obs.spans import (
    SPAN_KINDS,
    Span,
    SpanTracer,
    spans_to_chrome_trace,
    spans_to_jsonl,
)

__all__ = [
    "build_run_report",
    "DEFAULT_BUCKETS",
    "duration_stats",
    "Histogram",
    "job_summary",
    "load_run_report",
    "MetricsRegistry",
    "NULL_OBS",
    "Observability",
    "OPENMETRICS_CONTENT_TYPE",
    "parse_openmetrics",
    "peak_rss_kb",
    "percentile",
    "quantile_summary",
    "render_openmetrics",
    "render_run_report",
    "render_top",
    "ResourceSample",
    "ResourceSampler",
    "save_run_report",
    "SCHEMA_VERSION",
    "SLORegistry",
    "SLOTarget",
    "summarize_log_lines",
    "TelemetryHub",
    "TelemetryPlane",
    "TenantSLO",
    "TimeSeries",
    "Span",
    "SPAN_KINDS",
    "SpanTracer",
    "spans_to_chrome_trace",
    "spans_to_jsonl",
    "validate_run_report",
]
