"""Resource and skew sampling: memory high-water marks and task skew.

Two concerns live here:

- **Memory**: :func:`peak_rss_kb` reads the process high-water mark
  (``ru_maxrss``; monotone, so per-phase "peak" is the value at phase
  end), and :class:`ResourceSampler` collects labelled samples —
  optionally with ``tracemalloc`` peaks, which cost real overhead and
  are therefore opt-in.
- **Skew**: :func:`duration_stats` condenses a task-duration list into
  the percentiles and the straggler ratio the paper's reduce-skew
  discussion needs (p50/p95/max and ``max/mean``: 1.0 means perfectly
  balanced tasks, large values mean one straggler dominated the phase).
"""

from __future__ import annotations

import sys
import tracemalloc
from dataclasses import dataclass, field
from typing import Any, Sequence

try:
    import resource as _resource
except ImportError:  # pragma: no cover - non-POSIX platforms
    _resource = None  # type: ignore[assignment]


def peak_rss_kb() -> int:
    """Process peak resident-set size in KiB (0 when unavailable).

    ``ru_maxrss`` is KiB on Linux but bytes on macOS; normalise both.
    """
    if _resource is None:  # pragma: no cover
        return 0
    peak = _resource.getrusage(_resource.RUSAGE_SELF).ru_maxrss
    if sys.platform == "darwin":  # pragma: no cover
        peak //= 1024
    return int(peak)


@dataclass
class ResourceSample:
    """One labelled memory observation."""

    label: str
    time_s: float
    rss_peak_kb: int
    tracemalloc_peak_kb: int | None = None

    def as_dict(self) -> dict[str, Any]:
        record: dict[str, Any] = {
            "label": self.label,
            "time_s": round(self.time_s, 6),
            "rss_peak_kb": self.rss_peak_kb,
        }
        if self.tracemalloc_peak_kb is not None:
            record["tracemalloc_peak_kb"] = self.tracemalloc_peak_kb
        return record


@dataclass
class ResourceSampler:
    """Collects :class:`ResourceSample` records at phase/job boundaries.

    With ``trace_allocations=True`` the sampler starts ``tracemalloc``
    and records (and resets) the Python-allocation peak per sample, so
    each sample's ``tracemalloc_peak_kb`` is the peak *since the
    previous sample* — a per-phase allocation high-water mark.
    """

    trace_allocations: bool = False
    samples: list[ResourceSample] = field(default_factory=list)
    _started_tracing: bool = field(default=False, repr=False)

    def start(self) -> None:
        if self.trace_allocations and not tracemalloc.is_tracing():
            tracemalloc.start()
            self._started_tracing = True

    def stop(self) -> None:
        if self._started_tracing and tracemalloc.is_tracing():
            tracemalloc.stop()
            self._started_tracing = False

    def sample(self, label: str, time_s: float) -> ResourceSample:
        alloc_peak = None
        if self.trace_allocations and tracemalloc.is_tracing():
            _, peak = tracemalloc.get_traced_memory()
            alloc_peak = peak // 1024
            tracemalloc.reset_peak()
        record = ResourceSample(
            label=label,
            time_s=time_s,
            rss_peak_kb=peak_rss_kb(),
            tracemalloc_peak_kb=alloc_peak,
        )
        self.samples.append(record)
        return record

    def as_dicts(self) -> list[dict[str, Any]]:
        return [sample.as_dict() for sample in self.samples]


def percentile(ordered: Sequence[float], q: float) -> float:
    """Linear-interpolated percentile of a pre-sorted sample.

    ``q`` is a fraction in [0, 1] (0.95 = p95).  This is the one
    quantile implementation in the repo: :func:`duration_stats`, the
    SLO trackers (:mod:`repro.obs.slo`) and the service benchmark all
    call it, so every reported percentile uses the same interpolation.
    """
    if not ordered:
        return 0.0
    if len(ordered) == 1:
        return ordered[0]
    position = (len(ordered) - 1) * q
    low = int(position)
    high = min(low + 1, len(ordered) - 1)
    fraction = position - low
    return ordered[low] * (1.0 - fraction) + ordered[high] * fraction


def quantile_summary(
    values: Sequence[float], digits: int = 6
) -> dict[str, float]:
    """The standard p50/p95/p99 summary of an unsorted sample.

    Empty input yields all-zero stats so JSON schemas stay stable.
    """
    if not values:
        return {"count": 0, "p50": 0.0, "p95": 0.0, "p99": 0.0,
                "mean": 0.0, "max": 0.0}
    ordered = sorted(values)
    return {
        "count": len(ordered),
        "p50": round(percentile(ordered, 0.50), digits),
        "p95": round(percentile(ordered, 0.95), digits),
        "p99": round(percentile(ordered, 0.99), digits),
        "mean": round(sum(ordered) / len(ordered), digits),
        "max": round(ordered[-1], digits),
    }


#: Backwards-compatible alias for the pre-telemetry private name.
_percentile = percentile


def duration_stats(durations: list[float]) -> dict[str, float]:
    """Task-duration percentiles and the straggler/skew ratio.

    ``skew_ratio`` is ``max / mean`` (1.0 = perfectly balanced); an
    empty list yields all-zero stats so the report schema stays stable.
    """
    if not durations:
        return {
            "tasks": 0,
            "p50_s": 0.0,
            "p95_s": 0.0,
            "max_s": 0.0,
            "mean_s": 0.0,
            "skew_ratio": 0.0,
        }
    ordered = sorted(durations)
    mean = sum(ordered) / len(ordered)
    return {
        "tasks": len(ordered),
        "p50_s": round(percentile(ordered, 0.50), 6),
        "p95_s": round(percentile(ordered, 0.95), 6),
        "max_s": round(ordered[-1], 6),
        "mean_s": round(mean, 6),
        "skew_ratio": round(ordered[-1] / mean, 3) if mean > 0 else 0.0,
    }
