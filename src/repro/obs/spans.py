"""Hierarchical span tracing: run → stage → MR job → phase → task.

A :class:`Span` is one timed region of a driver run.  The tracer keeps
an explicit open-span stack so nesting is structural, not inferred from
timestamps: drivers open ``run``/``stage`` spans via
:meth:`SpanTracer.span`, and the runtime's job/phase/task spans are
derived from its event stream by
:class:`repro.obs.context.Observability` (the event bridge), parented
under whatever span is open at the time.

Exports:

- :meth:`SpanTracer.to_dicts` / :func:`spans_to_jsonl` — flat records
  for machine consumption (the run report embeds these);
- :func:`spans_to_chrome_trace` — Chrome trace-event JSON (``ph: "X"``
  complete events) loadable in Perfetto / ``chrome://tracing``; the
  span hierarchy renders as nested slices, parallel tasks land on
  per-task rows.
"""

from __future__ import annotations

import json
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Iterator, Sequence

#: Well-known span kinds, outermost first.
SPAN_KINDS = ("run", "stage", "job", "phase", "task")


@dataclass
class Span:
    """One timed region of a run, with structural parentage."""

    name: str
    kind: str
    span_id: int
    parent_id: int | None
    start_s: float
    end_s: float | None = None
    attrs: dict[str, Any] = field(default_factory=dict)

    @property
    def duration_s(self) -> float | None:
        if self.end_s is None:
            return None
        return self.end_s - self.start_s

    def as_dict(self) -> dict[str, Any]:
        record: dict[str, Any] = {
            "name": self.name,
            "kind": self.kind,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "start_s": round(self.start_s, 6),
            "end_s": round(self.end_s, 6) if self.end_s is not None else None,
            "duration_s": (
                round(self.duration_s, 6) if self.duration_s is not None else None
            ),
        }
        if self.attrs:
            record["attrs"] = dict(self.attrs)
        return record


class SpanTracer:
    """Collects spans with an explicit open-span (ancestry) stack.

    All times are relative to the tracer's creation, on the same
    ``time.perf_counter`` clock :class:`~repro.mapreduce.events.EventLog`
    uses, so event times can be aligned via ``EventLog.origin``.
    """

    def __init__(self) -> None:
        self._origin = time.perf_counter()
        self.spans: list[Span] = []
        self._stack: list[Span] = []
        #: Merged into every span's attrs at creation (explicit attrs
        #: win); per-run scopes stamp their ``run_id`` here so every
        #: span stays attributable after cross-run merges.
        self.default_attrs: dict[str, Any] = {}

    @property
    def origin(self) -> float:
        return self._origin

    def now(self) -> float:
        return time.perf_counter() - self._origin

    @property
    def current(self) -> Span | None:
        """The innermost open span (parent for new spans)."""
        return self._stack[-1] if self._stack else None

    # -- span lifecycle -------------------------------------------------

    def begin(self, name: str, kind: str, **attrs: Any) -> Span:
        """Open a span under the current one and push it on the stack."""
        span = Span(
            name=name,
            kind=kind,
            span_id=len(self.spans),
            parent_id=self.current.span_id if self.current else None,
            start_s=self.now(),
            attrs={**self.default_attrs, **attrs},
        )
        self.spans.append(span)
        self._stack.append(span)
        return span

    def end(self, span: Span, **attrs: Any) -> Span:
        """Close ``span`` (and any deeper spans left open under it)."""
        while self._stack:
            top = self._stack.pop()
            if top.end_s is None:
                top.end_s = self.now()
            if top is span:
                break
        else:
            if span.end_s is None:
                span.end_s = self.now()
        span.attrs.update(attrs)
        return span

    @contextmanager
    def span(self, name: str, kind: str, **attrs: Any) -> Iterator[Span]:
        opened = self.begin(name, kind, **attrs)
        try:
            yield opened
        finally:
            self.end(opened)

    def add_complete(
        self,
        name: str,
        kind: str,
        start_s: float,
        duration_s: float,
        parent: Span | None = None,
        **attrs: Any,
    ) -> Span:
        """Record an already-finished span (e.g. a task whose timing
        arrives with its ``task_finish`` event) without touching the
        open-span stack."""
        if parent is None:
            parent = self.current
        span = Span(
            name=name,
            kind=kind,
            span_id=len(self.spans),
            parent_id=parent.span_id if parent else None,
            start_s=start_s,
            end_s=start_s + duration_s,
            attrs={**self.default_attrs, **attrs},
        )
        self.spans.append(span)
        return span

    def close(self) -> None:
        """End every span still open (crash-safe export)."""
        while self._stack:
            self.end(self._stack[-1])

    # -- export ---------------------------------------------------------

    def to_dicts(self) -> list[dict[str, Any]]:
        return [span.as_dict() for span in self.spans]


def spans_to_jsonl(spans: Sequence[Span]) -> str:
    """One JSON object per line, in span-id order."""
    return "\n".join(json.dumps(span.as_dict()) for span in spans)


def spans_to_chrome_trace(spans: Sequence[Span]) -> dict[str, Any]:
    """Chrome trace-event JSON (the ``traceEvents`` envelope).

    Every span becomes a ``ph: "X"`` complete event.  Driver hierarchy
    spans (run/stage/job/phase) share one track so they nest visually;
    task spans go to a per-task track (``tid = 2 + task_id``) because
    parallel tasks overlap in time and overlapping slices on one track
    render incorrectly.
    """
    events = []
    for span in spans:
        end = span.end_s if span.end_s is not None else span.start_s
        tid = 1
        if span.kind == "task":
            tid = 2 + int(span.attrs.get("task_id", 0))
        events.append(
            {
                "name": span.name,
                "cat": span.kind,
                "ph": "X",
                "ts": round(span.start_s * 1e6, 1),
                "dur": round((end - span.start_s) * 1e6, 1),
                "pid": 1,
                "tid": tid,
                "args": {
                    "span_id": span.span_id,
                    "parent_id": span.parent_id,
                    **span.attrs,
                },
            }
        )
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {"exporter": "repro.obs"},
    }
