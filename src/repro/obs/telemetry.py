"""The live telemetry plane: ring-buffered time series, OpenMetrics
exposition, health/status endpoints and an append-only JSONL log.

PR 2's ``run.json`` is a *post-mortem*: one artifact per chain, written
when the chain dies.  Since the service plane turned the runtime into a
long-lived daemon, the observables that matter — queue depth, slot
starvation, per-tenant latency drift — exist only *while the service
runs*.  This module samples them continuously (the elasticity framing
of Fries et al., EDBT 2014: cluster load across waves of jobs is the
signal that drives scaling decisions):

:class:`TimeSeries`
    A bounded ring buffer of ``(t, value)`` points; the hub keeps one
    per flattened metric name, so memory is fixed regardless of how
    long the service lives.

:class:`TelemetryHub`
    Owns the series and a set of *probes* (callables returning nested
    mappings — the scheduler snapshot, process resources).  Each
    :meth:`~TelemetryHub.sample` merges all probes into one structured
    sample, appends every numeric leaf to its series, and remembers
    the sample as "latest" for the endpoints.

:class:`TelemetryPlane`
    The deployable bundle: hub + periodic sampler thread + stdlib
    ``http.server`` endpoints (``/metrics`` OpenMetrics text,
    ``/healthz`` and ``/statusz`` JSON) + append-only JSONL log.
    Owned by :class:`~repro.mapreduce.scheduler.ClusterService` via
    ``start_telemetry`` (CLI: ``repro serve --telemetry-port``).

:func:`render_openmetrics` / :func:`parse_openmetrics`
    The text exposition and its validating parser.  The parser is not
    just for tests: the CI smoke job scrapes a live service and
    re-parses the payload, so the exposition can never drift from what
    a Prometheus scraper accepts.

No third-party dependencies — stdlib ``http.server`` + ``json`` only.
"""

from __future__ import annotations

import json
import threading
import time
from collections import deque
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Callable, Deque, Mapping

from repro.obs.resources import peak_rss_kb, quantile_summary

__all__ = [
    "OPENMETRICS_CONTENT_TYPE",
    "SAMPLE_SCHEMA",
    "TelemetryHub",
    "TelemetryPlane",
    "TimeSeries",
    "parse_openmetrics",
    "process_probe",
    "render_openmetrics",
    "render_top",
    "summarize_log_lines",
]

SAMPLE_SCHEMA = "repro.obs/telemetry-sample/v1"
OPENMETRICS_CONTENT_TYPE = (
    "application/openmetrics-text; version=1.0.0; charset=utf-8"
)


class TimeSeries:
    """Bounded ring buffer of ``(t_s, value)`` points (thread-safe)."""

    def __init__(self, name: str, capacity: int = 720) -> None:
        if capacity < 1:
            raise ValueError("time series capacity must be >= 1")
        self.name = name
        self.capacity = capacity
        self._points: Deque[tuple[float, float]] = deque(maxlen=capacity)
        self._lock = threading.Lock()

    def append(self, t_s: float, value: float) -> None:
        with self._lock:
            self._points.append((float(t_s), float(value)))

    def last(self) -> tuple[float, float] | None:
        with self._lock:
            return self._points[-1] if self._points else None

    def points(self) -> list[tuple[float, float]]:
        with self._lock:
            return list(self._points)

    def values(self) -> list[float]:
        with self._lock:
            return [value for _, value in self._points]

    def window(self, since_s: float) -> list[tuple[float, float]]:
        """Points with ``t_s >= since_s`` (ring order is time order)."""
        with self._lock:
            return [(t, v) for t, v in self._points if t >= since_s]

    def __len__(self) -> int:
        with self._lock:
            return len(self._points)


def process_probe() -> dict[str, Any]:
    """Built-in probe: process-level resources."""
    return {
        "rss_peak_kb": peak_rss_kb(),
        "threads": threading.active_count(),
    }


#: Subtrees skipped when flattening a sample into time series —
#: histogram bucket maps would mint one series per bucket bound per
#: tenant, and targets are configuration, not signal.
_FLATTEN_SKIP = ("buckets", "target")


def _flatten_numeric(
    mapping: Mapping[str, Any],
    prefix: str = "",
    out: dict[str, float] | None = None,
) -> dict[str, float]:
    if out is None:
        out = {}
    for key, value in mapping.items():
        key = str(key)
        if key in _FLATTEN_SKIP or key.endswith("_histogram"):
            continue
        path = f"{prefix}.{key}" if prefix else key
        if isinstance(value, Mapping):
            _flatten_numeric(value, path, out)
        elif isinstance(value, bool):
            continue
        elif isinstance(value, (int, float)):
            out[path] = float(value)
    return out


class TelemetryHub:
    """Named ring-buffered series fed by registered probes.

    Probes are callables returning a nested mapping; ``sample()``
    merges them (top-level keys must be disjoint) into one structured
    sample and appends every numeric leaf — dotted path as the series
    name — to its :class:`TimeSeries`.  A probe that raises records an
    ``error`` entry instead of killing the sampler: one bad probe must
    not blind the whole plane.
    """

    def __init__(
        self, capacity: int = 720, clock: Callable[[], float] = time.monotonic
    ) -> None:
        self.capacity = capacity
        self._clock = clock
        self._origin = clock()
        self._lock = threading.Lock()
        self._series: dict[str, TimeSeries] = {}
        self._probes: list[tuple[str, Callable[[], Mapping[str, Any]]]] = []
        self._last_sample: dict[str, Any] | None = None
        self.samples_taken = 0

    def add_probe(
        self, name: str, fn: Callable[[], Mapping[str, Any]]
    ) -> None:
        """Register a probe whose mapping lands under sample key
        ``name`` (empty name = merged at the top level)."""
        with self._lock:
            self._probes.append((name, fn))

    def series(self, name: str) -> TimeSeries:
        with self._lock:
            ts = self._series.get(name)
            if ts is None:
                ts = self._series[name] = TimeSeries(name, self.capacity)
            return ts

    def series_names(self) -> list[str]:
        with self._lock:
            return sorted(self._series)

    def record_point(self, name: str, value: float) -> None:
        """Directly append one point outside the probe cycle."""
        self.series(name).append(self._clock() - self._origin, value)

    def sample(self) -> dict[str, Any]:
        """Run every probe, store the flattened leaves, return the
        structured sample."""
        t_s = self._clock() - self._origin
        sample: dict[str, Any] = {
            "schema": SAMPLE_SCHEMA,
            "time_unix": time.time(),
            "t_s": round(t_s, 6),
        }
        with self._lock:
            probes = list(self._probes)
        for name, fn in probes:
            try:
                payload = dict(fn())
            except Exception as exc:  # noqa: BLE001 - probe isolation
                payload = {"error": f"{type(exc).__name__}: {exc}"}
            if name:
                sample[name] = payload
            else:
                for key, value in payload.items():
                    sample.setdefault(key, value)
        for path, value in _flatten_numeric(
            {k: v for k, v in sample.items() if isinstance(v, Mapping)}
        ).items():
            self.series(path).append(t_s, value)
        with self._lock:
            self._last_sample = sample
            self.samples_taken += 1
        return sample

    def last_sample(self) -> dict[str, Any] | None:
        with self._lock:
            return self._last_sample

    def summary(self) -> dict[str, Any]:
        """Compact JSON view: per-series last value + window stats."""
        names = self.series_names()
        out: dict[str, Any] = {"samples_taken": self.samples_taken,
                               "series": {}}
        for name in names:
            values = self.series(name).values()
            if not values:
                continue
            stats = quantile_summary(values)
            out["series"][name] = {
                "last": values[-1],
                "count": stats["count"],
                "p50": stats["p50"],
                "p95": stats["p95"],
                "max": stats["max"],
            }
        return out


# -- OpenMetrics exposition ----------------------------------------------


def _escape_label(value: str) -> str:
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _fmt_labels(labels: Mapping[str, str]) -> str:
    if not labels:
        return ""
    inner = ",".join(
        f'{key}="{_escape_label(str(value))}"'
        for key, value in sorted(labels.items())
    )
    return "{" + inner + "}"


def _fmt_value(value: float) -> str:
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


class _Family:
    """One metric family: TYPE header plus its sample lines."""

    def __init__(self, name: str, kind: str, help_text: str) -> None:
        self.name = name
        self.kind = kind
        self.help = help_text
        self.lines: list[str] = []

    def add(
        self, value: float, labels: Mapping[str, str] | None = None,
        suffix: str = "",
    ) -> None:
        self.lines.append(
            f"{self.name}{suffix}{_fmt_labels(labels or {})} "
            f"{_fmt_value(value)}"
        )

    def add_histogram(
        self, snapshot: Mapping[str, Any], labels: Mapping[str, str]
    ) -> None:
        """Emit ``_bucket``/``_count``/``_sum`` lines from a
        :meth:`repro.obs.metrics.Histogram.snapshot` dict."""
        for bucket_key, count in snapshot.get("buckets", {}).items():
            bound = bucket_key[3:]  # strip the "le_" prefix
            le = "+Inf" if bound == "inf" else bound
            self.add(count, {**labels, "le": le}, suffix="_bucket")
        self.add(snapshot.get("count", 0), labels, suffix="_count")
        self.add(snapshot.get("sum", 0.0), labels, suffix="_sum")

    def render(self) -> list[str]:
        if not self.lines:
            return []
        out = [f"# HELP {self.name} {self.help}",
               f"# TYPE {self.name} {self.kind}"]
        out.extend(self.lines)
        return out


def render_openmetrics(sample: Mapping[str, Any] | None) -> str:
    """OpenMetrics text exposition of one structured telemetry sample.

    Tolerates partial samples — families with no data render nothing —
    so the endpoint works from the first scrape, before the scheduler
    has seen any tenant.
    """
    sample = sample or {}
    scheduler = sample.get("scheduler") or {}
    tenants = sample.get("tenants") or {}
    slo = sample.get("slo") or {}
    process = sample.get("process") or {}

    families: list[_Family] = []

    def family(name: str, kind: str, help_text: str) -> _Family:
        fam = _Family(name, kind, help_text)
        families.append(fam)
        return fam

    gauge = family(
        "repro_queue_depth", "gauge",
        "Chains queued for admission on the cluster service.",
    )
    if "queue_depth" in scheduler:
        gauge.add(scheduler["queue_depth"])

    running = family(
        "repro_running_chains", "gauge", "Chains currently executing."
    )
    if "running_chains" in scheduler:
        running.add(scheduler["running_chains"])

    slots = family(
        "repro_slots", "gauge", "Total task slots in the shared pool."
    )
    if "slots_total" in scheduler:
        slots.add(scheduler["slots_total"])

    in_use = family(
        "repro_slots_in_use", "gauge", "Task slots currently held."
    )
    if "slots_in_use" in scheduler:
        in_use.add(scheduler["slots_in_use"])

    utilization = family(
        "repro_slot_utilization", "gauge",
        "Fraction of pool slots currently held.",
    )
    if "utilization" in scheduler:
        utilization.add(scheduler["utilization"])

    uptime = family(
        "repro_uptime_seconds", "gauge", "Service telemetry uptime."
    )
    if "uptime_s" in sample:
        uptime.add(sample["uptime_s"])

    tenant_slots = family(
        "repro_tenant_slots_in_use", "gauge",
        "Slots held per tenant right now.",
    )
    tenant_waiting = family(
        "repro_tenant_waiting_tasks", "gauge",
        "Tasks of the tenant blocked waiting for a slot.",
    )
    tenant_inflight = family(
        "repro_tenant_tasks_inflight", "gauge",
        "Leased task attempts in flight per tenant.",
    )
    granted = family(
        "repro_slots_granted", "counter",
        "Slot grants per tenant since service start.",
    )
    wait_hist = family(
        "repro_slot_wait_seconds", "histogram",
        "Slot-wait (scheduling delay) distribution per tenant.",
    )
    for name, row in sorted(tenants.items()):
        labels = {"tenant": name}
        if "slots_in_use" in row:
            tenant_slots.add(row["slots_in_use"], labels)
        if "waiting_tasks" in row:
            tenant_waiting.add(row["waiting_tasks"], labels)
        if "tasks_inflight" in row:
            tenant_inflight.add(row["tasks_inflight"], labels)
        if "slots_granted_total" in row:
            granted.add(row["slots_granted_total"], labels, suffix="_total")
        if row.get("wait_histogram"):
            wait_hist.add_histogram(row["wait_histogram"], labels)

    serving = sample.get("serving") or {}
    models_loaded = family(
        "repro_assign_models_loaded", "gauge",
        "Fitted models resident in the serving cache.",
    )
    if "models_loaded" in serving:
        models_loaded.add(serving["models_loaded"])
    assign_requests = family(
        "repro_assign_requests", "counter",
        "Serve-time assign requests per tenant since service start.",
    )
    assign_points = family(
        "repro_assign_points", "counter",
        "Points scored by serve-time assign per tenant.",
    )
    assign_outliers = family(
        "repro_assign_outliers", "counter",
        "Points judged outliers at serve time per tenant.",
    )
    assign_errors = family(
        "repro_assign_errors", "counter",
        "Failed serve-time assign requests per tenant.",
    )
    assign_latency = family(
        "repro_assign_latency_seconds", "histogram",
        "Serve-time assign batch latency distribution per tenant.",
    )
    for name, row in sorted((serving.get("tenants") or {}).items()):
        labels = {"tenant": name}
        if "requests_total" in row:
            assign_requests.add(row["requests_total"], labels, suffix="_total")
        if "points_total" in row:
            assign_points.add(row["points_total"], labels, suffix="_total")
        if "outliers_total" in row:
            assign_outliers.add(row["outliers_total"], labels, suffix="_total")
        if "errors_total" in row:
            assign_errors.add(row["errors_total"], labels, suffix="_total")
        if row.get("latency_histogram"):
            assign_latency.add_histogram(row["latency_histogram"], labels)

    chains = family(
        "repro_tenant_chains", "counter",
        "Chain lifecycle counts per tenant since service start.",
    )
    latency_hist = family(
        "repro_tenant_latency_seconds", "histogram",
        "Chain completion latency distribution per tenant.",
    )
    slo_status = family(
        "repro_tenant_slo_status", "gauge",
        "SLO verdict per tenant: 0 ok, 1 warn, 2 breach.",
    )
    latency_p95 = family(
        "repro_tenant_latency_p95_seconds", "gauge",
        "Windowed p95 chain completion latency per tenant.",
    )
    wait_p95 = family(
        "repro_tenant_wait_p95_seconds", "gauge",
        "Windowed p95 slot wait per tenant.",
    )
    error_rate = family(
        "repro_tenant_error_rate", "gauge",
        "Failed / finished chains over the SLO window per tenant.",
    )
    status_code = {"ok": 0, "warn": 1, "breach": 2}
    for name, row in sorted(slo.items()):
        labels = {"tenant": name}
        for state in ("admitted", "completed", "failed", "cancelled",
                      "rejected"):
            if state in row:
                chains.add(
                    row[state], {**labels, "state": state}, suffix="_total"
                )
        if row.get("latency_histogram"):
            latency_hist.add_histogram(row["latency_histogram"], labels)
        if "status" in row:
            slo_status.add(status_code.get(row["status"], 2), labels)
        latency = row.get("latency") or {}
        if "p95_s" in latency:
            latency_p95.add(latency["p95_s"], labels)
        wait = row.get("wait") or {}
        if "p95_s" in wait:
            wait_p95.add(wait["p95_s"], labels)
        if "error_rate" in row:
            error_rate.add(row["error_rate"], labels)

    rss = family(
        "repro_process_rss_peak_kb", "gauge",
        "Process peak resident set size (KiB).",
    )
    if "rss_peak_kb" in process:
        rss.add(process["rss_peak_kb"])
    threads = family(
        "repro_process_threads", "gauge", "Live thread count."
    )
    if "threads" in process:
        threads.add(process["threads"])

    lines: list[str] = []
    for fam in families:
        lines.extend(fam.render())
    lines.append("# EOF")
    return "\n".join(lines) + "\n"


def parse_openmetrics(
    text: str, validate: bool = True
) -> dict[str, dict[str, Any]]:
    """Parse (and optionally validate) an OpenMetrics exposition.

    Returns ``{family: {"type": ..., "help": ..., "samples":
    [(sample_name, labels, value), ...]}}``.  With ``validate=True``
    raises :class:`ValueError` on: a missing ``# EOF`` terminator, a
    sample with no preceding ``# TYPE``, a duplicate family
    declaration, an unparsable line, or histogram buckets that are not
    cumulative / not capped by a ``+Inf`` bucket matching ``_count``.
    """
    families: dict[str, dict[str, Any]] = {}
    lines = [line for line in text.split("\n") if line.strip()]
    if validate and (not lines or lines[-1] != "# EOF"):
        raise ValueError("exposition must end with '# EOF'")
    current: str | None = None
    for line in lines:
        if line == "# EOF":
            continue
        if line.startswith("# TYPE "):
            parts = line.split(" ")
            if len(parts) != 4:
                raise ValueError(f"bad TYPE line: {line!r}")
            _, _, name, kind = parts
            if name in families and families[name].get("type"):
                raise ValueError(f"duplicate family declaration: {name}")
            families.setdefault(
                name, {"help": None, "samples": []}
            )["type"] = kind
            current = name
            continue
        if line.startswith("# HELP "):
            _, _, name, help_text = line.split(" ", 3)
            families.setdefault(
                name, {"type": None, "samples": []}
            )["help"] = help_text
            continue
        if line.startswith("#"):
            if validate:
                raise ValueError(f"unexpected comment line: {line!r}")
            continue
        name, labels, value = _parse_sample_line(line)
        base = name
        for suffix in ("_bucket", "_count", "_sum", "_total"):
            if name.endswith(suffix) and name[: -len(suffix)] in families:
                base = name[: -len(suffix)]
                break
        if base not in families or families[base].get("type") is None:
            if validate:
                raise ValueError(f"sample {name!r} has no # TYPE header")
            families.setdefault(base, {"type": None, "help": None,
                                       "samples": []})
        if validate and current is not None and base != current:
            # Families must not interleave: a sample after another
            # family's TYPE header is a violation.
            raise ValueError(
                f"sample {name!r} interleaves family {current!r}"
            )
        if base == current or not validate:
            families[base]["samples"].append((name, labels, value))
    if validate:
        for name, family in families.items():
            if family.get("type") == "histogram":
                _validate_histogram_family(name, family["samples"])
    return families


def _parse_sample_line(line: str) -> tuple[str, dict[str, str], float]:
    if "{" in line:
        name, rest = line.split("{", 1)
        label_text, value_text = rest.rsplit("} ", 1)
        labels: dict[str, str] = {}
        for part in _split_labels(label_text):
            key, raw = part.split("=", 1)
            labels[key] = (
                raw.strip('"')
                .replace('\\"', '"')
                .replace("\\n", "\n")
                .replace("\\\\", "\\")
            )
    else:
        name, value_text = line.rsplit(" ", 1)
        labels = {}
    name = name.strip()
    if not name or " " in name:
        raise ValueError(f"bad sample line: {line!r}")
    return name, labels, float(value_text)


def _split_labels(label_text: str) -> list[str]:
    """Split ``a="x",b="y"`` on commas outside quoted values."""
    parts: list[str] = []
    depth_quote = False
    current = ""
    i = 0
    while i < len(label_text):
        char = label_text[i]
        if char == "\\" and depth_quote:
            current += label_text[i : i + 2]
            i += 2
            continue
        if char == '"':
            depth_quote = not depth_quote
        if char == "," and not depth_quote:
            parts.append(current)
            current = ""
        else:
            current += char
        i += 1
    if current:
        parts.append(current)
    return parts


def _validate_histogram_family(
    name: str, samples: list[tuple[str, dict[str, str], float]]
) -> None:
    """Per label-set: bucket counts cumulative, +Inf present == count."""
    by_labels: dict[tuple, dict[str, Any]] = {}
    for sample_name, labels, value in samples:
        key = tuple(sorted(
            (k, v) for k, v in labels.items() if k != "le"
        ))
        entry = by_labels.setdefault(key, {"buckets": [], "count": None})
        if sample_name.endswith("_bucket"):
            entry["buckets"].append((labels.get("le", ""), value))
        elif sample_name.endswith("_count"):
            entry["count"] = value
    for key, entry in by_labels.items():
        buckets = entry["buckets"]
        if not buckets:
            raise ValueError(f"{name}{dict(key)}: histogram has no buckets")
        counts = [value for _, value in buckets]
        if any(b > a for b, a in zip(counts, counts[1:])):
            raise ValueError(f"{name}{dict(key)}: buckets not cumulative")
        if buckets[-1][0] != "+Inf":
            raise ValueError(f"{name}{dict(key)}: last bucket must be +Inf")
        if entry["count"] is not None and buckets[-1][1] != entry["count"]:
            raise ValueError(
                f"{name}{dict(key)}: +Inf bucket != _count"
            )


# -- HTTP endpoints ------------------------------------------------------


class _TelemetryHandler(BaseHTTPRequestHandler):
    """Routes ``/metrics`` / ``/healthz`` / ``/statusz``."""

    server: "_TelemetryHTTPServer"

    def do_GET(self) -> None:  # noqa: N802 - http.server contract
        plane = self.server.plane
        path = self.path.split("?", 1)[0]
        try:
            if path == "/metrics":
                body = plane.openmetrics().encode("utf-8")
                self._reply(200, OPENMETRICS_CONTENT_TYPE, body)
            elif path == "/healthz":
                health = plane.health()
                status = 200 if health["status"] == "ok" else 503
                self._reply_json(status, health)
            elif path == "/statusz":
                self._reply_json(200, plane.status())
            else:
                self._reply_json(404, {"error": f"no route {path}"})
        except Exception as exc:  # noqa: BLE001 - endpoint isolation
            self._reply_json(
                500, {"error": f"{type(exc).__name__}: {exc}"}
            )

    def _reply(self, code: int, content_type: str, body: bytes) -> None:
        self.send_response(code)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _reply_json(self, code: int, payload: Mapping[str, Any]) -> None:
        body = json.dumps(payload, indent=2, sort_keys=True,
                          default=repr).encode("utf-8")
        self._reply(code, "application/json; charset=utf-8", body)

    def log_message(self, format: str, *args: Any) -> None:  # noqa: A002
        pass  # scrapes are high-frequency; stay silent


class _TelemetryHTTPServer(ThreadingHTTPServer):
    daemon_threads = True
    allow_reuse_address = True
    plane: "TelemetryPlane"


class TelemetryPlane:
    """Hub + sampler thread + HTTP endpoints + JSONL log, one lifecycle.

    ``snapshot_fn`` supplies the structured service view (the
    scheduler's ``telemetry_snapshot``); the built-in process probe is
    always attached.  ``start()`` binds the HTTP server (port 0 picks
    an ephemeral port — the bound port is returned and stored) and
    launches the periodic sampler; ``stop()`` tears both down and
    closes the log.  Every sample — periodic or scrape-triggered — is
    appended to the JSONL log when one is configured.
    """

    def __init__(
        self,
        snapshot_fn: Callable[[], Mapping[str, Any]] | None = None,
        *,
        interval_s: float = 1.0,
        log_path: str | None = None,
        capacity: int = 720,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if interval_s <= 0:
            raise ValueError("interval_s must be > 0")
        self.interval_s = interval_s
        self.log_path = log_path
        self._clock = clock
        self._started_t = clock()
        self.hub = TelemetryHub(capacity=capacity, clock=clock)
        if snapshot_fn is not None:
            self.hub.add_probe("", snapshot_fn)
        self.hub.add_probe("process", process_probe)
        self._log_lock = threading.Lock()
        self._log_handle = None
        self._server: _TelemetryHTTPServer | None = None
        self._server_thread: threading.Thread | None = None
        self._sampler_thread: threading.Thread | None = None
        self._stop = threading.Event()
        self.port: int | None = None

    # -- sampling -------------------------------------------------------

    def sample_once(self) -> dict[str, Any]:
        sample = self.hub.sample()
        sample["uptime_s"] = round(self._clock() - self._started_t, 6)
        if self.log_path is not None:
            line = json.dumps(sample, sort_keys=True, default=repr)
            with self._log_lock:
                if self._log_handle is None:
                    self._log_handle = open(
                        self.log_path, "a", encoding="utf-8"
                    )
                self._log_handle.write(line + "\n")
                self._log_handle.flush()
        return sample

    def _sampler_loop(self) -> None:
        while not self._stop.wait(self.interval_s):
            try:
                self.sample_once()
            except Exception:  # noqa: BLE001 - keep sampling
                pass

    # -- endpoint payloads ----------------------------------------------

    def openmetrics(self) -> str:
        """Collect-on-scrape: a fresh sample rendered as OpenMetrics."""
        return render_openmetrics(self.sample_once())

    def status(self) -> dict[str, Any]:
        """The full structured snapshot (``/statusz``), freshly sampled."""
        return self.sample_once()

    def health(self) -> dict[str, Any]:
        last = self.hub.last_sample()
        now = self._clock()
        age_s = None
        if last is not None:
            age_s = round(
                (now - self._started_t) - float(last.get("t_s", 0.0)), 6
            )
        stale = (
            self._sampler_thread is not None
            and age_s is not None
            and age_s > 3 * self.interval_s + 1.0
        )
        return {
            "status": "degraded" if stale else "ok",
            "uptime_s": round(now - self._started_t, 6),
            "samples_taken": self.hub.samples_taken,
            "last_sample_age_s": age_s,
            "port": self.port,
        }

    # -- lifecycle ------------------------------------------------------

    def start(self, port: int = 0, host: str = "127.0.0.1") -> int:
        """Bind the endpoints and launch the sampler; returns the port."""
        if self._server is not None:
            raise RuntimeError("telemetry plane already started")
        server = _TelemetryHTTPServer((host, port), _TelemetryHandler)
        server.plane = self
        self._server = server
        self.port = server.server_address[1]
        self._server_thread = threading.Thread(
            target=server.serve_forever,
            name="telemetry-http",
            daemon=True,
        )
        self._server_thread.start()
        self._sampler_thread = threading.Thread(
            target=self._sampler_loop, name="telemetry-sampler", daemon=True
        )
        self._sampler_thread.start()
        self.sample_once()  # the plane is never empty once started
        return self.port

    def stop(self) -> None:
        self._stop.set()
        if self._server is not None:
            self._server.shutdown()
            self._server.server_close()
            self._server = None
        if self._server_thread is not None:
            self._server_thread.join(timeout=5)
            self._server_thread = None
        if self._sampler_thread is not None:
            self._sampler_thread.join(timeout=5)
            self._sampler_thread = None
        with self._log_lock:
            if self._log_handle is not None:
                self._log_handle.close()
                self._log_handle = None

    def __enter__(self) -> "TelemetryPlane":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.stop()


# -- the ``repro top`` view ----------------------------------------------

def _fmt_seconds(value: float) -> str:
    """Compact human duration: ms below one second, seconds above."""
    if value <= 0:
        return "-"
    if value < 1.0:
        return f"{value * 1e3:.1f}ms"
    return f"{value:.2f}s"


def render_top(sample: Mapping[str, Any]) -> str:
    """The ``repro top`` screen: one header line plus the tenant table.

    Works on any structured telemetry sample — a ``/statusz`` payload,
    a JSONL log line, or :meth:`ClusterService.telemetry_snapshot`
    output directly — and degrades to a stub when the sample carries
    no scheduler section (e.g. a bare process-probe sample).
    """
    service = sample.get("service") or {}
    sched = sample.get("scheduler") or {}
    tenants = sample.get("tenants") or {}
    slo = sample.get("slo") or {}

    slots = sched.get("slots_total", service.get("slots", 0))
    in_use = sched.get("slots_in_use", 0)
    util = sched.get("utilization", 0.0)
    lines = [
        f"service {service.get('name', '?')} "
        f"({service.get('executor', '?')}) — "
        f"uptime {float(service.get('uptime_s', sample.get('uptime_s', 0.0))):.1f}s  "
        f"slots {in_use}/{slots} ({util:.0%})  "
        f"queue {sched.get('queue_depth', 0)}  "
        f"running {sched.get('running_chains', 0)}"
    ]
    header = (
        f"{'tenant':<16} {'queued':>6} {'running':>7} {'slots':>5} "
        f"{'waiting':>7} {'granted':>7} {'wait p95':>9} {'lat p95':>9} "
        f"{'err%':>5} {'slo':>6}"
    )
    lines.append(header)
    names = sorted(set(tenants) | set(slo))
    if not names:
        lines.append("(no tenants yet)")
        return "\n".join(lines)
    for name in names:
        row = tenants.get(name) or {}
        grade = slo.get(name) or {}
        wait_p95 = float((grade.get("wait") or {}).get("p95_s", 0.0))
        lat_p95 = float((grade.get("latency") or {}).get("p95_s", 0.0))
        err = float(grade.get("error_rate", 0.0)) * 100.0
        lines.append(
            f"{name[:16]:<16} "
            f"{row.get('queued_chains', 0):>6} "
            f"{row.get('running_chains', 0):>7} "
            f"{row.get('slots_in_use', 0):>5} "
            f"{row.get('waiting_tasks', 0):>7} "
            f"{row.get('slots_granted_total', 0):>7} "
            f"{_fmt_seconds(wait_p95):>9} "
            f"{_fmt_seconds(lat_p95):>9} "
            f"{err:>5.1f} "
            f"{grade.get('status', '-'):>6}"
        )
    return "\n".join(lines)


def summarize_log_lines(lines) -> dict[str, Any]:
    """Aggregate a telemetry JSONL log into per-series window stats.

    Accepts an iterable of JSON strings (blank and corrupt lines are
    counted, not fatal — the log is append-only and the last line may
    be mid-write).  Returns ``{"samples", "skipped", "span_s",
    "series": {name: quantile_summary + last}}``.
    """
    series: dict[str, list[float]] = {}
    samples = 0
    skipped = 0
    first_t: float | None = None
    last_t: float | None = None
    for line in lines:
        line = line.strip()
        if not line:
            continue
        try:
            sample = json.loads(line)
        except json.JSONDecodeError:
            skipped += 1
            continue
        if not isinstance(sample, dict):
            skipped += 1
            continue
        samples += 1
        t_s = float(sample.get("t_s", 0.0))
        first_t = t_s if first_t is None else first_t
        last_t = t_s
        flat = _flatten_numeric(
            {k: v for k, v in sample.items() if isinstance(v, Mapping)}
        )
        for path, value in flat.items():
            series.setdefault(path, []).append(value)
    out: dict[str, Any] = {
        "samples": samples,
        "skipped": skipped,
        "span_s": round((last_t - first_t), 6) if samples else 0.0,
        "series": {},
    }
    for name in sorted(series):
        values = series[name]
        stats = quantile_summary(values)
        stats["last"] = values[-1]
        out["series"][name] = stats
    return out
