"""Algorithm metrics: counters, gauges, series and bucketed histograms.

The MapReduce layer already accounts for *framework* activity (records,
shuffle volume, retries) via :mod:`repro.mapreduce.counters`.  This
registry is the *algorithm* side of the ledger: what the statistical
machinery of P3C+ actually did — candidates generated per Apriori
level, signatures killed by the Poisson test vs. the effect-size test
vs. the redundancy filter, EM iterations and the log-likelihood
trajectory, attribute-inspection accept/reject counts.  Sections
7.4–7.5 of the paper reason entirely in these terms.

Four instrument kinds:

``counter``
    Monotone accumulator (``kills.poisson``).
``gauge``
    Last-write-wins scalar (``em.iterations``).
``series``
    Ordered samples preserving order (``em.log_likelihood`` per
    iteration, ``apriori.candidates_per_level``).
``histogram``
    Fixed-bucket distribution summary (task durations); buckets are
    cumulative ``le``-bound counts plus count/sum/min/max.
"""

from __future__ import annotations

import math
import threading
from dataclasses import dataclass, field
from typing import Any, Iterable, Sequence

#: Default histogram buckets: exponential, in seconds — covers
#: sub-millisecond tasks up to minutes-scale phases.
DEFAULT_BUCKETS = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5,
    1.0, 2.5, 5.0, 10.0, 30.0, 60.0, 300.0,
)


@dataclass
class Histogram:
    """Fixed-bucket histogram with a running count/sum/min/max.

    Thread-safe: ``observe`` and ``snapshot`` serialize on an internal
    lock, so concurrent chains can feed one histogram while the
    telemetry sampler reads consistent (count, sum, buckets) triples
    from another thread — a torn snapshot would break the cumulative
    ``le`` invariant the OpenMetrics exposition relies on.
    """

    buckets: tuple[float, ...] = DEFAULT_BUCKETS
    counts: list[int] = field(default_factory=list)
    count: int = 0
    total: float = 0.0
    min: float = math.inf
    max: float = -math.inf
    _lock: threading.Lock = field(
        default_factory=threading.Lock, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        self.buckets = tuple(sorted(self.buckets))
        if not self.buckets:
            raise ValueError("histogram needs at least one bucket bound")
        if not self.counts:
            # One count per bound plus the +Inf overflow bucket.
            self.counts = [0] * (len(self.buckets) + 1)

    def observe(self, value: float) -> None:
        value = float(value)
        with self._lock:
            self.count += 1
            self.total += value
            self.min = min(self.min, value)
            self.max = max(self.max, value)
            for i, bound in enumerate(self.buckets):
                if value <= bound:
                    self.counts[i] += 1
                    return
            self.counts[-1] += 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def snapshot(self) -> dict[str, Any]:
        """JSON-ready summary with cumulative ``le`` bucket counts."""
        with self._lock:
            count, total = self.count, self.total
            low, high = self.min, self.max
            counts = list(self.counts)
        cumulative = 0
        buckets: dict[str, int] = {}
        for bound, n in zip(self.buckets, counts):
            cumulative += n
            buckets[f"le_{bound:g}"] = cumulative
        buckets["le_inf"] = count
        return {
            "count": count,
            "sum": total,
            "min": low if count else 0.0,
            "max": high if count else 0.0,
            "mean": total / count if count else 0.0,
            "buckets": buckets,
        }


class MetricsRegistry:
    """Namespaced metric store shared by driver, stages and sinks.

    A registry may be *chained* to a ``parent``: every write lands in
    both this registry and (recursively) the parent's.  The service
    plane uses this for per-run scoping — each submitted chain writes
    into its own registry, and the shared service-level registry still
    accumulates the aggregate view.  Writes are lock-protected so
    concurrent chains can share a parent safely.
    """

    def __init__(self, parent: "MetricsRegistry | None" = None) -> None:
        self._counters: dict[str, float] = {}
        self._gauges: dict[str, float] = {}
        self._series: dict[str, list[float]] = {}
        self._histograms: dict[str, Histogram] = {}
        self._parent = parent
        self._lock = threading.Lock()

    # -- instruments ----------------------------------------------------

    def count(self, name: str, amount: float = 1) -> None:
        """Increment the monotone counter ``name`` by ``amount``."""
        if amount < 0:
            raise ValueError(f"counter increments must be >= 0, got {amount}")
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + amount
        if self._parent is not None:
            self._parent.count(name, amount)

    def gauge(self, name: str, value: float) -> None:
        """Set the gauge ``name`` (last write wins)."""
        with self._lock:
            self._gauges[name] = float(value)
        if self._parent is not None:
            self._parent.gauge(name, value)

    def record(self, name: str, value: float) -> None:
        """Append one sample to the ordered series ``name``."""
        with self._lock:
            self._series.setdefault(name, []).append(float(value))
        if self._parent is not None:
            self._parent.record(name, value)

    def record_all(self, name: str, values: Iterable[float]) -> None:
        for value in values:
            self.record(name, value)

    def observe(
        self,
        name: str,
        value: float,
        buckets: Sequence[float] | None = None,
    ) -> None:
        """Feed one sample into the bucketed histogram ``name``."""
        with self._lock:
            if name not in self._histograms:
                self._histograms[name] = Histogram(
                    tuple(buckets) if buckets else DEFAULT_BUCKETS
                )
            self._histograms[name].observe(value)
        if self._parent is not None:
            self._parent.observe(name, value, buckets)

    # -- queries --------------------------------------------------------

    def counter_value(self, name: str) -> float:
        with self._lock:
            return self._counters.get(name, 0)

    def gauge_value(self, name: str, default: float = 0.0) -> float:
        with self._lock:
            return self._gauges.get(name, default)

    def series_values(self, name: str) -> list[float]:
        with self._lock:
            return list(self._series.get(name, []))

    def histogram_snapshot(self, name: str) -> dict[str, Any] | None:
        with self._lock:
            histogram = self._histograms.get(name)
        return histogram.snapshot() if histogram is not None else None

    def snapshot(self) -> dict[str, Any]:
        """One JSON-ready view of every instrument."""
        with self._lock:
            return {
                "counters": dict(sorted(self._counters.items())),
                "gauges": dict(sorted(self._gauges.items())),
                "series": {k: list(v) for k, v in sorted(self._series.items())},
                "histograms": {
                    k: h.snapshot() for k, h in sorted(self._histograms.items())
                },
            }
