"""The observability context threaded through drivers and the runtime.

:class:`Observability` bundles the three instruments — span tracer,
metrics registry, resource sampler — behind one object with a single
``enabled`` switch.  Disabled (the default for drivers constructed
without one), every entry point is a no-op, so the instrumented hot
paths pay one attribute check and nothing else.

Drivers open ``run``/``stage`` spans explicitly; the **event bridge**
(:meth:`Observability.observe_runtime`) subscribes to a runtime's
:class:`~repro.mapreduce.events.EventLog` and derives the inner levels
of the hierarchy from the lifecycle stream:

- ``job_start``/``job_finish``   → a ``job`` span under the open stage,
- ``phase_start``/``phase_finish`` → a ``phase`` span under the job
  (plus a memory sample at phase end),
- ``task_finish``/``task_failed`` → complete ``task`` spans under the
  phase (timed from the event's own duration),
- ``task_retry``                 → the ``mr.task_retries`` counter,
- ``job_skipped``                → a zero-cost ``job`` span marked
  ``skipped`` plus the ``mr.jobs_skipped`` counter (checkpoint resume),
- ``task_timeout`` / ``task_speculated`` / ``fault_injected`` → the
  ``mr.task_timeouts`` / ``mr.tasks_speculated`` / ``mr.faults_injected``
  counters (fault-tolerance machinery at work).

Phase spans are tracked per phase *name*, because the pipelined
scheduler overlaps the map and reduce phases of one job; the realised
overlap is recorded as the ``mr.pipeline_overlap_s`` observation, and
the job's ``framework.shuffle_bytes`` / ``framework.pipelined_reduces``
counters are mirrored into the ``mr.shuffle_bytes`` /
``mr.pipelined_reduces`` metrics at job finish.

The bridge registers via ``EventLog.subscribe`` and must be released
with :meth:`detach` (or the ``finally`` of :meth:`run`) so sinks do not
leak across chained jobs.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import TYPE_CHECKING, Any, Iterator

from repro.mapreduce.events import Event, EventKind, EventLog
from repro.obs.metrics import MetricsRegistry
from repro.obs.resources import ResourceSampler
from repro.obs.spans import Span, SpanTracer

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.mapreduce.runtime import MapReduceRuntime


class _EventBridge:
    """Turns one runtime's event stream into job/phase/task spans."""

    def __init__(self, obs: "Observability", log: EventLog) -> None:
        self.obs = obs
        # Event ``time_s`` values are relative to the log's origin;
        # both clocks are ``perf_counter``, so one offset aligns them.
        self.offset = log.origin - obs.tracer.origin
        self.job_span: Span | None = None
        # Keyed by phase name: the pipelined scheduler overlaps the map
        # and reduce phases, so two phase spans can be open at once.
        self.phase_spans: dict[str, Span] = {}
        self.map_finish_s: float | None = None
        self.first_reduce_start_s: float | None = None

    def __call__(self, event: Event) -> None:
        obs, tracer = self.obs, self.obs.tracer
        kind = event.kind
        if kind == EventKind.JOB_START:
            self.job_span = tracer.begin(event.job, "job")
            self.map_finish_s = None
            self.first_reduce_start_s = None
        elif kind == EventKind.JOB_FINISH:
            if self.job_span is not None:
                tracer.end(self.job_span, duration_s=event.duration_s)
                self.job_span = None
            obs.metrics.count("mr.jobs")
            for counter, metric in (
                ("shuffle_bytes", "mr.shuffle_bytes"),
                ("pipelined_reduces", "mr.pipelined_reduces"),
                ("spilled_bytes", "mr.spilled_bytes"),
                ("spill_segments", "mr.spill_segments"),
            ):
                value = event.counter("framework", counter)
                if value:
                    obs.metrics.count(metric, value)
            # Map/reduce overlap won by the pipelined scheduler: time
            # between the first reduce task starting and the last map
            # task settling (zero under barrier scheduling).
            if (
                self.map_finish_s is not None
                and self.first_reduce_start_s is not None
                and self.first_reduce_start_s < self.map_finish_s
            ):
                obs.metrics.observe(
                    "mr.pipeline_overlap_s",
                    self.map_finish_s - self.first_reduce_start_s,
                )
            obs.resources.sample(event.job, event.time_s + self.offset)
        elif kind == EventKind.PHASE_START:
            self.phase_spans[event.phase or ""] = tracer.begin(
                f"{event.job}/{event.phase}", "phase", phase=event.phase
            )
        elif kind == EventKind.PHASE_FINISH:
            span = self.phase_spans.pop(event.phase or "", None)
            if span is not None:
                tracer.end(span, duration_s=event.duration_s)
            if event.phase == "map":
                self.map_finish_s = event.time_s
            obs.resources.sample(
                f"{event.job}/{event.phase}", event.time_s + self.offset
            )
        elif kind == EventKind.TASK_START:
            if event.phase == "reduce" and self.first_reduce_start_s is None:
                self.first_reduce_start_s = event.time_s
        elif kind == EventKind.TASK_FINISH:
            duration = event.duration_s or 0.0
            tracer.add_complete(
                f"{event.job}/{event.phase}/task{event.task_id}",
                "task",
                start_s=event.time_s + self.offset - duration,
                duration_s=duration,
                parent=self.phase_spans.get(event.phase or ""),
                task_id=event.task_id,
                attempt=event.attempt,
            )
            obs.metrics.observe("mr.task_duration_s", duration)
        elif kind == EventKind.TASK_RETRY:
            obs.metrics.count("mr.task_retries")
        elif kind == EventKind.JOB_SKIPPED:
            tracer.add_complete(
                event.job,
                "job",
                start_s=event.time_s + self.offset,
                duration_s=0.0,
                skipped=True,
                saved_wall_s=event.duration_s,
            )
            obs.metrics.count("mr.jobs_skipped")
        elif kind == EventKind.TASK_TIMEOUT:
            obs.metrics.count("mr.task_timeouts")
        elif kind == EventKind.TASK_SPECULATED:
            obs.metrics.count("mr.tasks_speculated")
        elif kind == EventKind.FAULT_INJECTED:
            obs.metrics.count("mr.faults_injected")
        elif kind == EventKind.TASK_FAILED:
            tracer.add_complete(
                f"{event.job}/{event.phase}/task{event.task_id}",
                "task",
                start_s=event.time_s + self.offset,
                duration_s=0.0,
                parent=self.phase_spans.get(event.phase or ""),
                task_id=event.task_id,
                attempt=event.attempt,
                error=event.error,
            )
            obs.metrics.count("mr.task_failures")


class Observability:
    """Span tracer + metrics registry + resource sampler, one switch.

    Parameters
    ----------
    enabled:
        ``False`` turns every entry point into a no-op (the drivers'
        default — observability off must cost nothing measurable).
    trace_allocations:
        Additionally track ``tracemalloc`` peaks per sample.  Real
        overhead; only enable when hunting allocation hot spots.
    """

    def __init__(
        self, enabled: bool = True, trace_allocations: bool = False
    ) -> None:
        self.enabled = enabled
        self.tracer = SpanTracer()
        self.metrics = MetricsRegistry()
        self.resources = ResourceSampler(trace_allocations=trace_allocations)
        self._bridges: list[tuple[EventLog, _EventBridge]] = []
        self._trace_allocations = trace_allocations
        #: ``None`` for the classic process-wide context; set on scopes
        #: minted by :meth:`for_run` (one per submitted chain).
        self.run_id: str | None = None
        #: Optional live :class:`~repro.obs.telemetry.TelemetryHub` —
        #: attached by the service plane so drivers can feed points
        #: into the continuously-sampled series; shared (not scoped)
        #: across :meth:`for_run` scopes, because telemetry is a
        #: service-lifetime plane, not a per-run artifact.
        self.telemetry: Any = None

    def for_run(self, run_id: str) -> "Observability":
        """A per-run scope: own tracer/sampler, metrics chained to ours.

        Each concurrent chain writes spans and metrics into its own
        scope, so two chains in one process produce disjoint reports
        (the satellite leak fix) — while counters still roll up to this
        parent registry for the aggregate service view.  Idempotent:
        calling on an already-scoped (or disabled) context returns
        ``self``, so a service-provided scope passes through drivers
        unchanged.
        """
        if not self.enabled or self.run_id is not None:
            return self
        scope = Observability(
            enabled=True, trace_allocations=self._trace_allocations
        )
        scope.metrics = MetricsRegistry(parent=self.metrics)
        scope.run_id = run_id
        scope.tracer.default_attrs["run_id"] = run_id
        scope.telemetry = self.telemetry
        return scope

    # -- driver-facing span helpers -------------------------------------

    @contextmanager
    def run(self, name: str, **attrs: Any) -> Iterator[Span | None]:
        """Open the root ``run`` span (detaches bridges on exit)."""
        if not self.enabled:
            yield None
            return
        if self.run_id is not None:
            attrs.setdefault("run_id", self.run_id)
        self.resources.start()
        try:
            with self.tracer.span(name, "run", **attrs) as span:
                yield span
        finally:
            self.detach()
            self.resources.sample("run_end", self.tracer.now())
            self.resources.stop()

    @contextmanager
    def stage(self, name: str, **attrs: Any) -> Iterator[Span | None]:
        """Open a pipeline ``stage`` span under the current span."""
        if not self.enabled:
            yield None
            return
        with self.tracer.span(name, "stage", **attrs) as span:
            yield span

    # -- metrics convenience (no-ops when disabled) ---------------------

    def count(self, name: str, amount: float = 1) -> None:
        if self.enabled:
            self.metrics.count(name, amount)

    def gauge(self, name: str, value: float) -> None:
        if self.enabled:
            self.metrics.gauge(name, value)

    def record(self, name: str, value: float) -> None:
        if self.enabled:
            self.metrics.record(name, value)

    def observe(self, name: str, value: float) -> None:
        if self.enabled:
            self.metrics.observe(name, value)

    # -- runtime bridging -----------------------------------------------

    def observe_runtime(self, runtime: "MapReduceRuntime") -> None:
        """Derive job/phase/task spans from ``runtime``'s event stream."""
        self.observe_events(runtime.events)

    def observe_events(self, log: EventLog) -> None:
        if not self.enabled:
            return
        bridge = _EventBridge(self, log)
        log.subscribe(bridge)
        self._bridges.append((log, bridge))

    def detach(self) -> None:
        """Unsubscribe every event bridge (idempotent)."""
        for log, bridge in self._bridges:
            log.unsubscribe(bridge)
        self._bridges.clear()


#: Shared disabled context: the default for un-instrumented driver runs.
NULL_OBS = Observability(enabled=False)
