"""Per-tenant service-level objectives over sliding windows.

The service plane (:mod:`repro.mapreduce.scheduler`) admits chains
from many tenants onto one shared slot pool; this module answers the
operator question *"is each tenant getting the service it was
promised?"* continuously, while the service runs — not from a
post-mortem ``run.json``.

Each tenant gets one :class:`TenantSLO` tracker holding

- lifecycle counts (admitted / completed / failed / cancelled /
  rejected) and the derived **error rate**,
- a **sliding window** of chain completion latencies and slot waits
  (monotonic-stamped samples, evicted past ``window_s``), summarised
  as p50/p95/p99 through the shared quantile helper
  (:func:`repro.obs.resources.percentile` — the same interpolation
  every other percentile in the repo uses), and
- a cumulative fixed-bucket :class:`~repro.obs.metrics.Histogram` of
  latencies, which is what the OpenMetrics exposition exports (bucket
  counts must be monotone over the process lifetime for Prometheus
  ``rate()`` to work; the sliding window is for humans and SLO
  status, the cumulative histogram is for scrapers).

:meth:`TenantSLO.status` grades the tenant against its
:class:`SLOTarget`: ``ok``, ``warn`` (within the target but past the
warning fraction of the budget), or ``breach``.  A tenant with no
samples in the window is ``ok`` — silence is not an outage.

Everything is thread-safe: chains record completions from their own
threads while the telemetry sampler snapshots from its own.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass
from typing import Any, Deque

from repro.obs.metrics import Histogram
from repro.obs.resources import percentile

__all__ = [
    "SLORegistry",
    "SLOTarget",
    "SlidingWindow",
    "TenantSLO",
]

#: Latency-flavoured buckets (seconds): finer than the task-duration
#: defaults at the sub-second end where chain latencies live.
LATENCY_BUCKETS = (
    0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0,
    10.0, 30.0, 60.0, 120.0, 300.0, 600.0,
)


@dataclass(frozen=True)
class SLOTarget:
    """What one tenant was promised.

    ``latency_p95_s`` bounds the p95 completion latency over the
    sliding window; ``max_error_rate`` bounds failed/completed chains;
    ``window_s`` is the evaluation window; ``warn_fraction`` is the
    fraction of the latency budget at which status degrades to
    ``warn`` (early warning before a breach).
    """

    latency_p95_s: float | None = None
    max_error_rate: float | None = None
    window_s: float = 300.0
    warn_fraction: float = 0.8

    def __post_init__(self) -> None:
        if self.latency_p95_s is not None and self.latency_p95_s <= 0:
            raise ValueError("latency_p95_s must be > 0")
        if self.max_error_rate is not None and not (
            0.0 <= self.max_error_rate <= 1.0
        ):
            raise ValueError("max_error_rate must be in [0, 1]")
        if self.window_s <= 0:
            raise ValueError("window_s must be > 0")
        if not 0.0 < self.warn_fraction <= 1.0:
            raise ValueError("warn_fraction must be in (0, 1]")

    def as_dict(self) -> dict[str, Any]:
        return {
            "latency_p95_s": self.latency_p95_s,
            "max_error_rate": self.max_error_rate,
            "window_s": self.window_s,
        }


class SlidingWindow:
    """Monotonic-stamped samples with age-based eviction.

    Append-only plus lazy eviction: every mutation and query first
    drops samples older than ``window_s``.  Not internally locked —
    owners (``TenantSLO``) serialize access.
    """

    def __init__(self, window_s: float, max_samples: int = 4096) -> None:
        self.window_s = window_s
        self._samples: Deque[tuple[float, float]] = deque(maxlen=max_samples)

    def append(self, value: float, now: float) -> None:
        if value < 0:
            raise ValueError(f"window samples must be >= 0, got {value}")
        self._evict(now)
        self._samples.append((now, float(value)))

    def _evict(self, now: float) -> None:
        horizon = now - self.window_s
        while self._samples and self._samples[0][0] < horizon:
            self._samples.popleft()

    def values(self, now: float) -> list[float]:
        self._evict(now)
        return [value for _, value in self._samples]

    def __len__(self) -> int:
        return len(self._samples)


class TenantSLO:
    """One tenant's live objective tracker (thread-safe)."""

    def __init__(
        self,
        tenant: str,
        target: SLOTarget | None = None,
        clock=time.monotonic,
    ) -> None:
        self.tenant = tenant
        self.target = target or SLOTarget()
        self._clock = clock
        self._lock = threading.Lock()
        self.admitted = 0
        self.completed = 0
        self.failed = 0
        self.cancelled = 0
        self.rejected = 0
        self._latency = SlidingWindow(self.target.window_s)
        self._wait = SlidingWindow(self.target.window_s)
        #: Cumulative latency distribution for the scrape exposition.
        self.latency_histogram = Histogram(LATENCY_BUCKETS)

    # -- recording ------------------------------------------------------

    def record_admitted(self) -> None:
        with self._lock:
            self.admitted += 1

    def record_rejected(self) -> None:
        with self._lock:
            self.rejected += 1

    def record_completion(
        self, latency_s: float, state: str = "done", now: float | None = None
    ) -> None:
        """One chain finished: ``state`` is ``done``/``failed``/
        ``cancelled``; ``latency_s`` is submit-to-finish as the tenant
        experienced it (monotonic deltas, so never negative)."""
        latency_s = max(0.0, float(latency_s))
        now = self._clock() if now is None else now
        with self._lock:
            if state == "failed":
                self.failed += 1
            elif state == "cancelled":
                self.cancelled += 1
            else:
                self.completed += 1
            self._latency.append(latency_s, now)
        self.latency_histogram.observe(latency_s)

    def record_wait(self, wait_s: float, now: float | None = None) -> None:
        """One slot wait (scheduling delay) sample."""
        now = self._clock() if now is None else now
        with self._lock:
            self._wait.append(max(0.0, float(wait_s)), now)

    # -- evaluation -----------------------------------------------------

    def _error_rate_locked(self) -> float:
        finished = self.completed + self.failed
        return self.failed / finished if finished else 0.0

    def status(self, now: float | None = None) -> str:
        """``ok`` / ``warn`` / ``breach`` against the target."""
        now = self._clock() if now is None else now
        target = self.target
        with self._lock:
            latencies = self._latency.values(now)
            error_rate = self._error_rate_locked()
        verdict = "ok"
        if target.latency_p95_s is not None and latencies:
            p95 = percentile(sorted(latencies), 0.95)
            if p95 > target.latency_p95_s:
                verdict = "breach"
            elif p95 > target.latency_p95_s * target.warn_fraction:
                verdict = "warn"
        if target.max_error_rate is not None and error_rate > target.max_error_rate:
            verdict = "breach"
        return verdict

    def snapshot(self, now: float | None = None) -> dict[str, Any]:
        now = self._clock() if now is None else now
        with self._lock:
            latencies = sorted(self._latency.values(now))
            waits = sorted(self._wait.values(now))
            counts = {
                "admitted": self.admitted,
                "completed": self.completed,
                "failed": self.failed,
                "cancelled": self.cancelled,
                "rejected": self.rejected,
                "error_rate": round(self._error_rate_locked(), 6),
            }
        summary = dict(counts)
        summary["latency"] = {
            "count": len(latencies),
            "p50_s": round(percentile(latencies, 0.50), 6),
            "p95_s": round(percentile(latencies, 0.95), 6),
            "p99_s": round(percentile(latencies, 0.99), 6),
            "max_s": round(latencies[-1], 6) if latencies else 0.0,
        }
        summary["wait"] = {
            "count": len(waits),
            "p50_s": round(percentile(waits, 0.50), 6),
            "p95_s": round(percentile(waits, 0.95), 6),
            "p99_s": round(percentile(waits, 0.99), 6),
        }
        summary["status"] = self.status(now)
        summary["target"] = self.target.as_dict()
        summary["latency_histogram"] = self.latency_histogram.snapshot()
        return summary


class SLORegistry:
    """Tenant name → :class:`TenantSLO`, created on first touch.

    ``default_target`` applies to tenants without an explicit
    :meth:`set_target`; per-tenant targets may be installed before or
    after the tenant's first recorded event.
    """

    def __init__(
        self,
        default_target: SLOTarget | None = None,
        clock=time.monotonic,
    ) -> None:
        self.default_target = default_target or SLOTarget()
        self._clock = clock
        self._lock = threading.Lock()
        self._tenants: dict[str, TenantSLO] = {}

    def tenant(self, name: str) -> TenantSLO:
        with self._lock:
            tracker = self._tenants.get(name)
            if tracker is None:
                tracker = TenantSLO(
                    name, self.default_target, clock=self._clock
                )
                self._tenants[name] = tracker
            return tracker

    def set_target(self, name: str, target: SLOTarget) -> None:
        """Install (or replace) a tenant's objective.

        The sliding windows restart with the new ``window_s``; counts
        and the cumulative histogram carry over.
        """
        with self._lock:
            existing = self._tenants.get(name)
            if existing is None:
                tracker = TenantSLO(name, target, clock=self._clock)
                self._tenants[name] = tracker
                return
            existing.target = target
            with existing._lock:
                existing._latency = SlidingWindow(target.window_s)
                existing._wait = SlidingWindow(target.window_s)

    def tenants(self) -> list[str]:
        with self._lock:
            return sorted(self._tenants)

    def snapshot(self, now: float | None = None) -> dict[str, Any]:
        now = self._clock() if now is None else now
        with self._lock:
            trackers = list(self._tenants.values())
        return {
            tracker.tenant: tracker.snapshot(now)
            for tracker in sorted(trackers, key=lambda t: t.tenant)
        }
