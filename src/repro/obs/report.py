"""The run report: one JSON artifact describing one driver run.

Drivers, the CLI (``repro cluster --metrics run.json``) and the
benchmarks all emit the same schema, so every performance number in the
repo — per-job shuffle volumes, task-duration percentiles, EM
iterations, filter kill counts, memory peaks — lands in one stable,
diffable place.  ``repro report <run.json>`` renders it back as the
per-job ledger of paper Sections 7.4–7.5.

Schema (``repro.obs/run-report/v1``) — top-level keys:

- ``schema``, ``algorithm``, ``wall_time_s``
- ``dataset``: ``{n, d, ...}`` (free-form but ``n``/``d`` expected)
- ``jobs``: per-MR-job accounting rows (name, task counts, executor,
  shuffle volume, phase seconds, task-duration percentiles + skew)
- ``totals``: ``{mr_jobs, shuffle_records, wall_time_s}``
- ``metrics``: the :class:`~repro.obs.metrics.MetricsRegistry` snapshot
- ``resources``: ``{peak_rss_kb, samples: [...]}``
- ``spans``: the span list (``[]`` when tracing was off)
- ``result``: optional clustering outcome summary

:func:`validate_run_report` is the hand-rolled schema check used by the
tests and the CI smoke step (no jsonschema dependency in the image).
"""

from __future__ import annotations

import json
from typing import TYPE_CHECKING, Any, Mapping

from repro.mapreduce.counters import Counters
from repro.obs.context import Observability
from repro.obs.resources import duration_stats, peak_rss_kb

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.mapreduce.chain import JobChain

SCHEMA_VERSION = "repro.obs/run-report/v1"


def job_summary(name: str, result: Any) -> dict[str, Any]:
    """One per-job accounting row from a :class:`JobResult`."""
    task_times = list(result.map_task_times) + list(result.reduce_task_times)
    return {
        "name": name,
        "map_tasks": result.num_map_tasks,
        "reduce_tasks": result.num_reduce_tasks,
        "executor": result.executor,
        "shuffle_records": result.counters.framework_value(
            Counters.SHUFFLE_RECORDS
        ),
        "shuffled_bytes": result.counters.framework_value(
            Counters.SHUFFLE_BYTES
        ),
        "spilled_bytes": result.counters.framework_value(
            Counters.SPILLED_BYTES
        ),
        "spill_segments": result.counters.framework_value(
            Counters.SPILL_SEGMENTS
        ),
        "map_seconds": round(result.phase_seconds("map"), 6),
        "reduce_seconds": round(result.phase_seconds("reduce"), 6),
        "wall_seconds": round(result.wall_time, 6),
        "task_durations": duration_stats(task_times),
        "counters": result.counters.snapshot(),
    }


def build_run_report(
    algorithm: str,
    obs: Observability | None = None,
    chain: "JobChain | None" = None,
    dataset: Mapping[str, Any] | None = None,
    result: Mapping[str, Any] | None = None,
    wall_time_s: float | None = None,
    extra: Mapping[str, Any] | None = None,
) -> dict[str, Any]:
    """Assemble the schema-v1 run report from whatever is available.

    Every section degrades gracefully: no chain → empty job table, no
    (or disabled) ``obs`` → empty metrics/spans, so serial algorithms
    and benchmarks can emit comparable artifacts too.
    """
    jobs = (
        [job_summary(step.name, step.result) for step in chain.steps]
        if chain is not None
        else []
    )
    observed = obs is not None and obs.enabled
    if observed:
        obs.tracer.close()
    report: dict[str, Any] = {
        "schema": SCHEMA_VERSION,
        "algorithm": algorithm,
        "dataset": dict(dataset) if dataset else {},
        "wall_time_s": (
            round(wall_time_s, 6)
            if wall_time_s is not None
            else round(sum(j["wall_seconds"] for j in jobs), 6)
        ),
        "totals": {
            "mr_jobs": len(jobs),
            "shuffle_records": sum(j["shuffle_records"] for j in jobs),
            "shuffled_bytes": sum(j.get("shuffled_bytes", 0) for j in jobs),
            "spilled_bytes": sum(j.get("spilled_bytes", 0) for j in jobs),
            "spill_segments": sum(j.get("spill_segments", 0) for j in jobs),
            "task_attempts": sum(
                j["map_tasks"] + j["reduce_tasks"] for j in jobs
            ),
        },
        "jobs": jobs,
        "metrics": obs.metrics.snapshot() if observed else {},
        "resources": {
            "peak_rss_kb": peak_rss_kb(),
            "samples": obs.resources.as_dicts() if observed else [],
        },
        "spans": obs.tracer.to_dicts() if observed else [],
        "result": dict(result) if result else {},
    }
    # A run that executed under the live service plane carries a
    # compact view of the telemetry series (last value + window
    # quantiles per series) so the post-mortem artifact links back to
    # what the continuous plane saw.
    if observed and getattr(obs, "telemetry", None) is not None:
        try:
            report["telemetry"] = obs.telemetry.summary()
        except Exception:  # noqa: BLE001 - reports must always build
            pass
    if extra:
        report.update(dict(extra))
    return report


def save_run_report(path: str, report: Mapping[str, Any]) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, default=repr)
        handle.write("\n")


def load_run_report(path: str) -> dict[str, Any]:
    with open(path, "r", encoding="utf-8") as handle:
        return json.load(handle)


# -- validation ---------------------------------------------------------

_TOP_LEVEL: dict[str, type | tuple[type, ...]] = {
    "schema": str,
    "algorithm": str,
    "dataset": dict,
    "wall_time_s": (int, float),
    "totals": dict,
    "jobs": list,
    "metrics": dict,
    "resources": dict,
    "spans": list,
    "result": dict,
}

_JOB_FIELDS: dict[str, type | tuple[type, ...]] = {
    "name": str,
    "map_tasks": int,
    "reduce_tasks": int,
    "executor": str,
    "shuffle_records": int,
    "shuffled_bytes": int,
    "map_seconds": (int, float),
    "reduce_seconds": (int, float),
    "wall_seconds": (int, float),
    "task_durations": dict,
}

_DURATION_FIELDS = ("tasks", "p50_s", "p95_s", "max_s", "mean_s", "skew_ratio")


def validate_run_report(report: Mapping[str, Any]) -> list[str]:
    """Schema check; returns a list of problems (empty = valid)."""
    errors: list[str] = []
    if not isinstance(report, Mapping):
        return [f"report must be a mapping, got {type(report).__name__}"]
    for key, expected in _TOP_LEVEL.items():
        if key not in report:
            errors.append(f"missing top-level key {key!r}")
        elif not isinstance(report[key], expected):
            errors.append(
                f"{key!r} must be {expected}, got {type(report[key]).__name__}"
            )
    if report.get("schema") not in (None,) and report.get("schema") != SCHEMA_VERSION:
        errors.append(
            f"schema is {report.get('schema')!r}, expected {SCHEMA_VERSION!r}"
        )
    for index, job in enumerate(report.get("jobs") or []):
        if not isinstance(job, Mapping):
            errors.append(f"jobs[{index}] must be a mapping")
            continue
        for key, expected in _JOB_FIELDS.items():
            if key not in job:
                errors.append(f"jobs[{index}] missing {key!r}")
            elif not isinstance(job[key], expected):
                errors.append(f"jobs[{index}].{key} must be {expected}")
        durations = job.get("task_durations")
        if isinstance(durations, Mapping):
            for field in _DURATION_FIELDS:
                if field not in durations:
                    errors.append(
                        f"jobs[{index}].task_durations missing {field!r}"
                    )
    metrics = report.get("metrics")
    if isinstance(metrics, Mapping) and metrics:
        for section in ("counters", "gauges", "series", "histograms"):
            if section not in metrics:
                errors.append(f"metrics missing section {section!r}")
    resources = report.get("resources")
    if isinstance(resources, Mapping):
        if "peak_rss_kb" not in resources:
            errors.append("resources missing 'peak_rss_kb'")
        if not isinstance(resources.get("samples", []), list):
            errors.append("resources.samples must be a list")
    for index, span in enumerate(report.get("spans") or []):
        if not isinstance(span, Mapping):
            errors.append(f"spans[{index}] must be a mapping")
            continue
        for field in ("name", "kind", "span_id", "start_s"):
            if field not in span:
                errors.append(f"spans[{index}] missing {field!r}")
    return errors


# -- rendering ----------------------------------------------------------

def render_run_report(report: Mapping[str, Any]) -> str:
    """Human-readable ledger for ``repro report <run.json>``."""
    lines: list[str] = []
    dataset = report.get("dataset") or {}
    shape = ""
    if "n" in dataset and "d" in dataset:
        shape = f" on {dataset['n']} x {dataset['d']}"
    lines.append(
        f"run report — {report.get('algorithm', '?')}{shape} "
        f"({report.get('wall_time_s', 0):.3f}s wall)"
    )

    totals = report.get("totals") or {}
    lines.append(
        f"totals: {totals.get('mr_jobs', 0)} MR jobs, "
        f"{totals.get('shuffle_records', 0)} shuffle records, "
        f"{totals.get('task_attempts', 0)} tasks"
    )

    jobs = report.get("jobs") or []
    if jobs:
        lines.append("")
        lines.append(
            f"{'job':<34} {'maps':>5} {'reds':>5} {'shuffle':>10} "
            f"{'wall(s)':>8} {'p50(ms)':>8} {'p95(ms)':>8} {'skew':>6}"
        )
        for job in jobs:
            stats = job.get("task_durations") or {}
            lines.append(
                f"{job['name']:<34} {job['map_tasks']:>5} "
                f"{job['reduce_tasks']:>5} {job['shuffle_records']:>10} "
                f"{job['wall_seconds']:>8.4f} "
                f"{stats.get('p50_s', 0) * 1e3:>8.2f} "
                f"{stats.get('p95_s', 0) * 1e3:>8.2f} "
                f"{stats.get('skew_ratio', 0):>6.2f}"
            )

    metrics = report.get("metrics") or {}
    counters = metrics.get("counters") or {}
    gauges = metrics.get("gauges") or {}
    series = metrics.get("series") or {}
    if counters or gauges or series:
        lines.append("")
        lines.append("algorithm metrics:")
        for name, value in sorted(gauges.items()):
            lines.append(f"  {name} = {value:g}")
        for name, value in sorted(counters.items()):
            lines.append(f"  {name} = {value:g}")
        for name, values in sorted(series.items()):
            rendered = ", ".join(f"{v:g}" for v in values[:12])
            suffix = ", ..." if len(values) > 12 else ""
            lines.append(f"  {name} = [{rendered}{suffix}]")

    resources = report.get("resources") or {}
    if resources:
        lines.append("")
        lines.append(
            f"resources: peak RSS {resources.get('peak_rss_kb', 0)} KiB, "
            f"{len(resources.get('samples') or [])} samples"
        )

    result = report.get("result") or {}
    if result:
        pairs = ", ".join(f"{k}={v}" for k, v in sorted(result.items()))
        lines.append(f"result: {pairs}")

    spans = report.get("spans") or []
    if spans:
        lines.append(f"spans: {len(spans)} recorded (see trace export)")
    return "\n".join(lines)
