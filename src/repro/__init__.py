"""P3C+-MR: projected clustering for huge data sets in MapReduce.

A complete reproduction of Fries, Wels & Seidl (EDBT 2014).  The
packages mirror the system's layers:

- :mod:`repro.core`       — the P3C / P3C+ clustering model (serial),
- :mod:`repro.mapreduce`  — the in-process MapReduce runtime,
- :mod:`repro.mr`         — P3C+-MR and P3C+-MR-Light drivers,
- :mod:`repro.baselines`  — the BoW comparison framework,
- :mod:`repro.data`       — synthetic workloads and IO,
- :mod:`repro.eval`       — E4SC / F1 / RNIA / CE quality measures,
- :mod:`repro.experiments`— one harness per paper exhibit.

Quick start::

    from repro.data import GeneratorConfig, generate_synthetic
    from repro.mr import P3CPlusMRLight
    from repro.eval import e4sc_score

    dataset = generate_synthetic(GeneratorConfig(n=4000, d=20))
    result = P3CPlusMRLight().fit(dataset.data)
    print(e4sc_score(result.clusters, dataset.ground_truth_clusters()))
"""

__version__ = "1.0.0"

from repro.core.p3c import P3C
from repro.core.p3c_plus import P3CPlus, P3CPlusConfig, P3CPlusLight
from repro.core.types import (
    ClusterCore,
    ClusteringResult,
    Interval,
    ProjectedCluster,
    Signature,
)
from repro.mr import P3CPlusMR, P3CPlusMRConfig, P3CPlusMRLight

__all__ = [
    "ClusterCore",
    "ClusteringResult",
    "Interval",
    "P3C",
    "P3CPlus",
    "P3CPlusConfig",
    "P3CPlusLight",
    "P3CPlusMR",
    "P3CPlusMRConfig",
    "P3CPlusMRLight",
    "ProjectedCluster",
    "Signature",
    "__version__",
]
