"""Command-line interface: ``python -m repro <command>``.

Commands
--------
generate    write a synthetic data set (Section 7.1 recipe) to CSV
cluster     run an algorithm on a CSV data set, write a JSON result
evaluate    score a JSON result against a labelled data set
experiment  run one paper-exhibit harness and print its table
report      render a run-report JSON (see ``cluster --metrics``)
serve       run the multi-tenant cluster service over a job spool
submit      queue one clustering job on a service spool
assign      score points against a registered fitted model

Examples
--------
python -m repro generate --n 5000 --dims 20 --clusters 3 --noise 0.1 \\
    --out data.csv
python -m repro cluster --algorithm mr-light --data data.csv \\
    --out result.json --metrics run.json --trace-format chrome
python -m repro report run.json
python -m repro evaluate --data data.csv --result result.json
python -m repro experiment figure1
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable

import numpy as np

from repro.baselines import BoW, BoWConfig
from repro.core.p3c import P3C
from repro.core.p3c_plus import P3CPlus, P3CPlusConfig, P3CPlusLight
from repro.data import GeneratorConfig, generate_synthetic, normalize_unit_range
from repro.data.io import (
    load_dataset_csv,
    load_result_json,
    save_dataset_csv,
    save_result_json,
)
from repro.eval import e4sc_score, label_accuracy
from repro.mapreduce.events import events_to_jsonl, format_trace
from repro.mapreduce.executors import EXECUTORS
from repro.mapreduce.faults import FaultPlan
from repro.mr import P3CPlusMR, P3CPlusMRConfig, P3CPlusMRLight
from repro.obs import (
    Observability,
    build_run_report,
    load_run_report,
    render_run_report,
    save_run_report,
    spans_to_chrome_trace,
    spans_to_jsonl,
    validate_run_report,
)


@dataclass(frozen=True)
class ExecOptions:
    """Runtime executor selection (and observability / fault-tolerance
    context) forwarded to the MR/BoW drivers."""

    executor: str | None = None
    max_workers: int | None = None
    obs: Observability | None = None
    fault_plan: FaultPlan | None = None
    task_timeout_s: float | None = None
    speculative: bool = False
    checkpoint_dir: str | None = None
    resume: bool = False
    model_registry: str | None = None
    memory_budget_bytes: int | None = None
    spill_dir: str | None = None
    max_block_rows: int | None = None
    coreset_size: int | None = None
    coreset_mode: str = "uniform"
    coreset_seed: int = 0


ALGORITHMS: dict[str, Callable[[P3CPlusConfig, ExecOptions], Any]] = {
    "p3c": lambda config, opts: P3C(
        config.with_overrides(
            binning="sturges",
            theta_cc=None,
            redundancy_filter=False,
            outlier_method="naive",
            ai_proving=False,
        )
    ),
    "p3c-plus": lambda config, opts: P3CPlus(config),
    "p3c-plus-light": lambda config, opts: P3CPlusLight(config),
    "mr": lambda config, opts: P3CPlusMR(
        config,
        P3CPlusMRConfig(
            executor=opts.executor,
            max_workers=opts.max_workers,
            fault_plan=opts.fault_plan,
            task_timeout_s=opts.task_timeout_s,
            speculative=opts.speculative,
            checkpoint_dir=opts.checkpoint_dir,
            resume=opts.resume,
            model_registry=opts.model_registry,
            memory_budget_bytes=opts.memory_budget_bytes,
            spill_dir=opts.spill_dir,
            max_block_rows=opts.max_block_rows,
            coreset_size=opts.coreset_size,
            coreset_mode=opts.coreset_mode,
            coreset_seed=opts.coreset_seed,
        ),
        obs=opts.obs,
    ),
    "mr-light": lambda config, opts: P3CPlusMRLight(
        config,
        P3CPlusMRConfig(
            executor=opts.executor,
            max_workers=opts.max_workers,
            fault_plan=opts.fault_plan,
            task_timeout_s=opts.task_timeout_s,
            speculative=opts.speculative,
            checkpoint_dir=opts.checkpoint_dir,
            resume=opts.resume,
            model_registry=opts.model_registry,
            memory_budget_bytes=opts.memory_budget_bytes,
            spill_dir=opts.spill_dir,
            max_block_rows=opts.max_block_rows,
        ),
        obs=opts.obs,
    ),
    "bow-light": lambda config, opts: BoW(
        config,
        BoWConfig(
            variant="light",
            executor=opts.executor,
            max_workers=opts.max_workers,
        ),
    ),
    "bow-mvb": lambda config, opts: BoW(
        config,
        BoWConfig(
            variant="mvb",
            executor=opts.executor,
            max_workers=opts.max_workers,
        ),
    ),
}

EXPERIMENTS = (
    "figure1",
    "figure2",
    "figure3",
    "figure4",
    "figure5",
    "figure6",
    "figure7",
    "theta",
    "colon",
    "billion",
    "blurring",
    "report",
)


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="P3C+-MR reproduction (EDBT 2014) command-line interface",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    generate = commands.add_parser("generate", help="write a synthetic data set")
    generate.add_argument("--n", type=int, default=10_000)
    generate.add_argument("--dims", type=int, default=50)
    generate.add_argument("--clusters", type=int, default=5)
    generate.add_argument("--noise", type=float, default=0.10)
    generate.add_argument("--seed", type=int, default=0)
    generate.add_argument("--out", required=True)

    cluster = commands.add_parser("cluster", help="run an algorithm on a CSV")
    cluster.add_argument("--algorithm", choices=sorted(ALGORITHMS), required=True)
    cluster.add_argument("--data", required=True)
    cluster.add_argument("--out", required=True)
    cluster.add_argument("--theta-cc", type=float, default=0.35)
    cluster.add_argument("--poisson-alpha", type=float, default=0.01)
    cluster.add_argument(
        "--normalize",
        action="store_true",
        help="min-max normalise attributes to [0, 1] first",
    )
    cluster.add_argument(
        "--executor",
        choices=sorted(EXECUTORS),
        default=None,
        help="MapReduce executor backend for the mr/bow algorithms "
        "(default: serial, or process when --workers > 1)",
    )
    cluster.add_argument(
        "--workers",
        type=int,
        default=None,
        help="worker count for the thread/process executors",
    )
    cluster.add_argument(
        "--trace",
        action="store_true",
        help="print the per-task runtime event trace and job ledger "
        "after clustering (mr/bow algorithms only); shorthand for "
        "--trace-format text",
    )
    cluster.add_argument(
        "--trace-format",
        choices=("text", "jsonl", "chrome"),
        default=None,
        help="trace export: 'text' prints the event trace and ledger, "
        "'jsonl' writes span records as JSON lines, 'chrome' writes "
        "Chrome trace-event JSON (open in Perfetto / chrome://tracing)",
    )
    cluster.add_argument(
        "--trace-out",
        default=None,
        help="output path for --trace-format jsonl/chrome "
        "(default: <out>.trace.jsonl / <out>.trace.json)",
    )
    cluster.add_argument(
        "--metrics",
        metavar="RUN_JSON",
        default=None,
        help="write the run report (spans, algorithm metrics, per-job "
        "task percentiles, memory samples) to this path",
    )
    cluster.add_argument(
        "--trace-allocations",
        action="store_true",
        help="additionally sample tracemalloc allocation peaks per "
        "phase (slower; requires --metrics or --trace-format)",
    )
    cluster.add_argument(
        "--chaos",
        metavar="SPEC",
        default=None,
        help="inject deterministic faults into the MapReduce runtime "
        "(mr/mr-light only); SPEC is ';'-separated clauses like "
        "'map:error:p=0.2;reduce:delay:p=0.5:ms=50' — see "
        "docs/fault_tolerance.md for the grammar",
    )
    cluster.add_argument(
        "--chaos-seed",
        type=int,
        default=0,
        help="seed for the fault-injection schedule (default 0); the "
        "same spec + seed reproduces the exact same faults",
    )
    cluster.add_argument(
        "--task-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="per-attempt task wall-clock budget; attempts exceeding "
        "it fail and retry (mr/mr-light only)",
    )
    cluster.add_argument(
        "--speculative",
        action="store_true",
        help="speculatively re-execute straggler tasks, first result "
        "wins (mr/mr-light only)",
    )
    cluster.add_argument(
        "--checkpoint-dir",
        default=None,
        help="persist each completed MR job's output under this "
        "directory (mr/mr-light only)",
    )
    cluster.add_argument(
        "--resume",
        action="store_true",
        help="restore completed jobs from --checkpoint-dir instead of "
        "re-running them (skips every job whose inputs are unchanged)",
    )
    cluster.add_argument(
        "--register",
        default=None,
        metavar="REGISTRY",
        help="save the fitted model into this model-registry directory "
        "and tag it 'latest' (mr/mr-light only)",
    )
    cluster.add_argument(
        "--memory-budget",
        default=None,
        metavar="SIZE",
        help="out-of-core mode (mr/mr-light only): per-task resident "
        "byte budget like '64m' or '2g'; the input streams from disk "
        "in budget-sized chunks and over-budget shuffles spill to "
        "compressed segment files (without --normalize the data "
        "matrix is never materialised in the driver)",
    )
    cluster.add_argument(
        "--spill-dir",
        default=None,
        help="root directory for shuffle spill segments (default: "
        "run-scoped temporary directories, removed per job)",
    )
    cluster.add_argument(
        "--max-block-rows",
        type=int,
        default=None,
        metavar="ROWS",
        help="explicit cap on rows per batch-mapper delivery "
        "(default: whole splits, or derived from --memory-budget)",
    )
    cluster.add_argument(
        "--coreset-size",
        type=int,
        default=None,
        metavar="POINTS",
        help="approximate fast path (mr only): fit the chain on a "
        "one-pass weighted summary of about this many points, then "
        "assign the full data with one extra scan; a size >= n falls "
        "back to the exact run",
    )
    cluster.add_argument(
        "--coreset-mode",
        choices=("uniform", "lightweight"),
        default=None,
        help="coreset sampler: 'uniform' (unbiased per-split sampling, "
        "the default) or 'lightweight' (distance-to-mean sensitivity "
        "sampling, overweights far-out structure); requires "
        "--coreset-size",
    )
    cluster.add_argument(
        "--coreset-seed",
        type=int,
        default=None,
        help="seed of the deterministic coreset samplers (default 0); "
        "requires --coreset-size",
    )

    evaluate = commands.add_parser("evaluate", help="score a saved result")
    evaluate.add_argument("--data", required=True)
    evaluate.add_argument("--result", required=True)

    experiment = commands.add_parser(
        "experiment", help="run one paper-exhibit harness"
    )
    experiment.add_argument("name", choices=EXPERIMENTS)

    report = commands.add_parser(
        "report", help="render a run-report JSON written by cluster --metrics"
    )
    report.add_argument("run_json", help="path to the run.json artifact")

    serve = commands.add_parser(
        "serve",
        help="serve a job spool: admit queued submissions as concurrent "
        "chains on one shared fair-share executor pool",
    )
    serve.add_argument(
        "--spool",
        required=True,
        help="spool directory (submissions in <spool>/pending, completion "
        "records in <spool>/done)",
    )
    serve.add_argument(
        "--slots",
        type=int,
        default=None,
        help="shared pool size in concurrent task slots (default: CPUs)",
    )
    serve.add_argument(
        "--executor",
        choices=sorted(EXECUTORS),
        default="thread",
        help="executor backend each admitted chain runs on (default thread)",
    )
    serve.add_argument(
        "--drain",
        type=int,
        default=None,
        metavar="N",
        help="exit after serving N jobs (deterministic batch mode)",
    )
    serve.add_argument(
        "--idle-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="exit after this long with no pending or running jobs",
    )
    serve.add_argument(
        "--poll-s", type=float, default=0.2, help="spool scan interval"
    )
    serve.add_argument(
        "--telemetry-port",
        type=int,
        default=None,
        metavar="PORT",
        help="serve /metrics (OpenMetrics), /healthz and /statusz on "
        "this port (0 = pick an ephemeral port; printed at startup)",
    )
    serve.add_argument(
        "--telemetry-interval",
        type=float,
        default=1.0,
        metavar="SECONDS",
        help="telemetry sampling period (default 1.0)",
    )
    serve.add_argument(
        "--telemetry-log",
        default=None,
        metavar="JSONL",
        help="append every telemetry sample to this JSONL file "
        "(default <spool>/telemetry.jsonl when telemetry is on)",
    )
    serve.add_argument(
        "--registry",
        default=None,
        metavar="DIR",
        help="model-registry directory backing assign submissions "
        "(and --register on submitted fits)",
    )

    top = commands.add_parser(
        "top",
        help="live tenant table for a running service: queued/running "
        "chains, granted slots, wait/latency p95, SLO status",
    )
    top.add_argument(
        "--endpoint",
        default=None,
        metavar="URL",
        help="telemetry base URL of a running service "
        "(e.g. http://127.0.0.1:9464)",
    )
    top.add_argument(
        "--log",
        default=None,
        metavar="JSONL",
        help="read the newest sample from a telemetry JSONL log instead",
    )
    top.add_argument(
        "--spool",
        default=None,
        help="shorthand for --log <spool>/telemetry.jsonl",
    )
    top.add_argument(
        "--watch",
        action="store_true",
        help="refresh continuously until interrupted",
    )
    top.add_argument(
        "--interval",
        type=float,
        default=2.0,
        metavar="SECONDS",
        help="refresh period with --watch (default 2.0)",
    )

    telemetry = commands.add_parser(
        "telemetry",
        help="summarize a telemetry JSONL log: per-series quantiles "
        "over the logged window",
    )
    telemetry.add_argument("log", help="path to telemetry.jsonl")
    telemetry.add_argument(
        "--series",
        default=None,
        metavar="PREFIX",
        help="only show series whose dotted name starts with PREFIX",
    )
    telemetry.add_argument(
        "--json",
        action="store_true",
        help="emit the raw summary JSON instead of the table",
    )

    submit = commands.add_parser(
        "submit", help="queue one clustering job on a service spool"
    )
    submit.add_argument("--spool", required=True, help="spool directory")
    submit.add_argument(
        "--algorithm", choices=("mr", "mr-light"), default="mr-light"
    )
    submit.add_argument("--data", required=True)
    submit.add_argument("--out", required=True)
    submit.add_argument(
        "--metrics",
        default=None,
        metavar="RUN_JSON",
        help="write the chain's run report (including fair-share "
        "service counters) to this path",
    )
    submit.add_argument(
        "--tenant",
        default="default",
        help="tenant name for fair-share accounting",
    )
    submit.add_argument(
        "--priority",
        type=float,
        default=1.0,
        help="fair-share weight of the tenant (2.0 = twice the slots "
        "under contention)",
    )
    submit.add_argument("--theta-cc", type=float, default=0.35)
    submit.add_argument("--poisson-alpha", type=float, default=0.01)
    submit.add_argument("--normalize", action="store_true")
    submit.add_argument(
        "--estimated-records",
        type=int,
        default=None,
        help="admission estimate: input size priced by the cost model "
        "to gate the submission against the service budget",
    )
    submit.add_argument(
        "--coreset-size",
        type=int,
        default=None,
        metavar="POINTS",
        help="run the chain on a one-pass weighted summary of about "
        "this many points (approximate fast path); admission prices "
        "the run as two full scans plus a summary-sized chain",
    )
    submit.add_argument(
        "--coreset-mode",
        choices=("uniform", "lightweight"),
        default=None,
        help="coreset sampler for --coreset-size (default 'uniform'); "
        "requires --coreset-size",
    )
    submit.add_argument(
        "--wait",
        action="store_true",
        help="block until the job's completion record appears",
    )
    submit.add_argument(
        "--timeout",
        type=float,
        default=300.0,
        help="max seconds to wait with --wait (default 300)",
    )
    submit.add_argument(
        "--register",
        default=None,
        metavar="REGISTRY",
        help="save the fitted model into this model-registry directory "
        "on the serving host and tag it 'latest'",
    )

    assign = commands.add_parser(
        "assign",
        help="score a CSV of points against a registered fitted model",
    )
    assign.add_argument(
        "--model",
        default="latest",
        help="model id or tag to score against (default 'latest')",
    )
    assign.add_argument("--data", required=True)
    assign.add_argument("--out", required=True)
    assign.add_argument(
        "--registry",
        default=None,
        metavar="DIR",
        help="score locally against this model-registry directory",
    )
    assign.add_argument(
        "--spool",
        default=None,
        help="queue the batch on a running service's spool instead "
        "(the service must run with --registry)",
    )
    assign.add_argument(
        "--tenant",
        default="default",
        help="tenant name for fair-share accounting (spool mode)",
    )
    assign.add_argument(
        "--priority",
        type=float,
        default=None,
        help="fair-share weight of the tenant (spool mode)",
    )
    assign.add_argument(
        "--wait",
        action="store_true",
        help="block until the completion record appears (spool mode)",
    )
    assign.add_argument(
        "--timeout",
        type=float,
        default=300.0,
        help="max seconds to wait with --wait (default 300)",
    )
    return parser


def _cmd_generate(args: argparse.Namespace) -> int:
    dataset = generate_synthetic(
        GeneratorConfig(
            n=args.n,
            d=args.dims,
            num_clusters=args.clusters,
            noise_fraction=args.noise,
            max_cluster_dims=min(10, args.dims),
            seed=args.seed,
        )
    )
    save_dataset_csv(args.out, dataset.data, dataset.labels)
    print(
        f"wrote {args.n} x {args.dims} data set with {args.clusters} hidden "
        f"clusters to {args.out} (+ .labels sidecar)"
    )
    return 0


def _default_trace_out(out: str, trace_format: str) -> str:
    suffix = ".trace.jsonl" if trace_format == "jsonl" else ".trace.json"
    stem = out[:-5] if out.endswith(".json") else out
    return stem + suffix


_SIZE_SUFFIXES = {"": 1, "k": 1024, "m": 1024**2, "g": 1024**3}


def _parse_size_bytes(text: str) -> int:
    """Parse a byte-size string like ``'67108864'``, ``'64m'``, ``'2g'``."""
    cleaned = text.strip().lower().removesuffix("b")
    suffix = cleaned[-1:] if cleaned[-1:] in ("k", "m", "g") else ""
    number = cleaned.removesuffix(suffix) if suffix else cleaned
    try:
        value = float(number)
    except ValueError:
        raise ValueError(f"cannot parse size {text!r}") from None
    if value <= 0:
        raise ValueError(f"size must be positive, got {text!r}")
    return int(value * _SIZE_SUFFIXES[suffix])


def _cmd_cluster(args: argparse.Namespace) -> int:
    memory_budget = None
    if args.memory_budget:
        if args.algorithm not in ("mr", "mr-light"):
            print(
                "error: --memory-budget requires an mr/mr-light algorithm",
                file=sys.stderr,
            )
            return 2
        try:
            memory_budget = _parse_size_bytes(args.memory_budget)
        except ValueError as exc:
            print(f"error: bad --memory-budget: {exc}", file=sys.stderr)
            return 2
    # Under a memory budget the input streams straight from disk via
    # file-backed splits; --normalize needs the whole matrix, so it
    # forces the classic in-memory load.
    streaming = memory_budget is not None and not args.normalize
    data = None
    if not streaming:
        data, _ = load_dataset_csv(args.data)
        if args.normalize:
            data = normalize_unit_range(data)
    config = P3CPlusConfig(
        theta_cc=args.theta_cc, poisson_alpha=args.poisson_alpha
    )
    trace_format = args.trace_format or ("text" if args.trace else None)
    observing = bool(args.metrics) or trace_format in ("jsonl", "chrome")
    obs = Observability(
        enabled=observing, trace_allocations=args.trace_allocations
    )
    if args.resume and not args.checkpoint_dir:
        print("error: --resume requires --checkpoint-dir", file=sys.stderr)
        return 2
    fault_plan = None
    if args.chaos:
        try:
            fault_plan = FaultPlan.parse(args.chaos, seed=args.chaos_seed)
        except ValueError as exc:
            print(f"error: bad --chaos spec: {exc}", file=sys.stderr)
            return 2
    if args.coreset_size is not None:
        if args.algorithm != "mr":
            print(
                "error: --coreset-size requires the mr algorithm "
                "(the Light and serial variants have no coreset path)",
                file=sys.stderr,
            )
            return 2
        if args.coreset_size < 1:
            print("error: --coreset-size must be >= 1", file=sys.stderr)
            return 2
    elif args.coreset_mode is not None or args.coreset_seed is not None:
        print(
            "error: --coreset-mode/--coreset-seed require --coreset-size",
            file=sys.stderr,
        )
        return 2
    opts = ExecOptions(
        executor=args.executor,
        max_workers=args.workers,
        obs=obs,
        fault_plan=fault_plan,
        task_timeout_s=args.task_timeout,
        speculative=args.speculative,
        checkpoint_dir=args.checkpoint_dir,
        resume=args.resume,
        model_registry=args.register,
        memory_budget_bytes=memory_budget,
        spill_dir=args.spill_dir,
        max_block_rows=args.max_block_rows,
        coreset_size=args.coreset_size,
        coreset_mode=args.coreset_mode or "uniform",
        coreset_seed=args.coreset_seed or 0,
    )
    if args.register and args.algorithm not in ("mr", "mr-light"):
        print(
            "error: --register requires an mr/mr-light algorithm",
            file=sys.stderr,
        )
        return 2
    algorithm = ALGORITHMS[args.algorithm](config, opts)
    started = time.perf_counter()
    if streaming:
        from repro.mapreduce.fs import make_csv_splits

        splits, n, d = make_csv_splits(
            args.data, algorithm.mr_config.num_splits
        )
        result = algorithm.fit_splits(splits, n, d)
    else:
        n, d = (int(dim) for dim in data.shape)
        result = algorithm.fit(data)
    wall_time = time.perf_counter() - started
    save_result_json(args.out, result)
    print(result.summary())
    model_id = getattr(algorithm, "model_id", None)
    if model_id:
        print(f"model registered as {model_id} (tag 'latest') in {args.register}")
    elif args.register:
        print("no cluster cores found: nothing registered", file=sys.stderr)

    chain = getattr(algorithm, "chain", None)
    # MR drivers scope their spans/metrics to a per-run obs context;
    # export from the scope the fit actually wrote to.
    run_obs = getattr(algorithm, "obs", None)
    if run_obs is None or not getattr(run_obs, "enabled", False):
        run_obs = obs
    obs = run_obs
    if trace_format == "text":
        if chain is None:
            print("(--trace: no MapReduce chain; serial algorithms emit no events)")
        else:
            print(format_trace(chain.runtime.events))
            print(chain.report())
    elif trace_format in ("jsonl", "chrome"):
        obs.tracer.close()
        trace_out = args.trace_out or _default_trace_out(args.out, trace_format)
        if trace_format == "jsonl":
            payload = spans_to_jsonl(obs.tracer.spans) + "\n"
            if chain is not None:
                payload += events_to_jsonl(chain.runtime.events) + "\n"
            with open(trace_out, "w", encoding="utf-8") as handle:
                handle.write(payload)
        else:
            with open(trace_out, "w", encoding="utf-8") as handle:
                json.dump(spans_to_chrome_trace(obs.tracer.spans), handle)
                handle.write("\n")
        print(f"trace ({trace_format}) written to {trace_out}")

    if args.metrics:
        report = build_run_report(
            args.algorithm,
            obs=obs,
            chain=chain,
            dataset={"n": n, "d": d, "path": args.data},
            result={
                "num_clusters": len(result.clusters),
                "num_outliers": int(len(result.outliers)),
            },
            wall_time_s=wall_time,
        )
        save_run_report(args.metrics, report)
        print(f"run report written to {args.metrics}")

    print(f"result written to {args.out}")
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    report = load_run_report(args.run_json)
    errors = validate_run_report(report)
    print(render_run_report(report))
    if errors:
        print(
            "\nschema problems:\n" + "\n".join(f"  - {e}" for e in errors),
            file=sys.stderr,
        )
        return 1
    return 0


def _cmd_evaluate(args: argparse.Namespace) -> int:
    data, labels = load_dataset_csv(args.data)
    result = load_result_json(args.result)
    if result.n_points != len(data):
        print(
            f"error: result covers {result.n_points} points but the data "
            f"set has {len(data)}",
            file=sys.stderr,
        )
        return 2
    print(result.summary())
    if labels is not None:
        print(f"label accuracy: {label_accuracy(result, labels):.3f}")
        truth = _clusters_from_labels(labels, result)
        if truth:
            print(f"E4SC vs label ground truth: "
                  f"{e4sc_score(result.clusters, truth):.3f}")
    else:
        print("(no .labels sidecar: skipping quality scores)")
    return 0


def _clusters_from_labels(labels: np.ndarray, result):
    """Full-space ground-truth clusters from a label sidecar (used when
    no subspace ground truth is available)."""
    from repro.core.types import ProjectedCluster

    all_attrs = frozenset(range(result.n_dims))
    clusters = []
    for value in np.unique(labels):
        if value < 0:
            continue
        clusters.append(
            ProjectedCluster(
                members=np.where(labels == value)[0],
                relevant_attributes=all_attrs,
            )
        )
    return clusters


def _cmd_experiment(args: argparse.Namespace) -> int:
    import importlib

    module = importlib.import_module(f"repro.experiments.{args.name}")
    print(module.main())
    return 0


# -- the service plane (serve / submit) ----------------------------------


def _spool_dirs(spool: str) -> tuple[Path, Path]:
    pending = Path(spool) / "pending"
    done = Path(spool) / "done"
    pending.mkdir(parents=True, exist_ok=True)
    done.mkdir(parents=True, exist_ok=True)
    return pending, done


def _write_json_atomic(path: Path, payload: dict) -> None:
    tmp = path.with_name(path.name + ".tmp")
    tmp.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    os.replace(tmp, path)


def _make_spool_job(spec: dict):
    """Build the chain function one spool submission runs as.

    The returned callable receives the service's
    :class:`~repro.mapreduce.runtime.RuntimeContext` — the MR driver is
    constructed around that context, so its tasks run on the shared
    fair-share pool under the submitting tenant, and its run report
    (when requested) carries the per-run service counters.
    """

    def run_chain(ctx):
        data, _ = load_dataset_csv(spec["data"])
        if spec.get("normalize"):
            data = normalize_unit_range(data)
        config = P3CPlusConfig(
            theta_cc=spec.get("theta_cc", 0.35),
            poisson_alpha=spec.get("poisson_alpha", 0.01),
        )
        driver_cls = P3CPlusMR if spec["algorithm"] == "mr" else P3CPlusMRLight
        driver = driver_cls(
            config,
            P3CPlusMRConfig(
                model_registry=spec.get("register"),
                coreset_size=spec.get("coreset_size"),
                coreset_mode=spec.get("coreset_mode", "uniform"),
            ),
            context=ctx,
        )
        started = time.perf_counter()
        result = driver.fit(data)
        wall_time = time.perf_counter() - started
        save_result_json(spec["out"], result)
        if spec.get("metrics"):
            report = build_run_report(
                spec["algorithm"],
                obs=driver.obs,
                chain=driver.chain,
                dataset={
                    "n": int(data.shape[0]),
                    "d": int(data.shape[1]),
                    "path": spec["data"],
                },
                result={
                    "num_clusters": len(result.clusters),
                    "num_outliers": int(len(result.outliers)),
                },
                wall_time_s=wall_time,
                extra={
                    "service": {
                        "run_id": ctx.run_id,
                        "tenant": ctx.tenant,
                    }
                },
            )
            save_run_report(spec["metrics"], report)
        return {
            "num_clusters": len(result.clusters),
            "num_outliers": int(len(result.outliers)),
            "out": spec["out"],
            "wall_time_s": wall_time,
            "model_id": driver.model_id,
        }

    return run_chain


def _write_assign_result(path: str, payload: dict) -> None:
    """Persist one assign batch's output as JSON.

    Shared by local ``repro assign`` and the serve loop so both paths
    produce byte-identical artifacts for the same model and batch
    (non-finite scores serialize as JSON ``NaN``, which ``json.loads``
    reads back).
    """
    document = {
        "schema": "repro.serving/assign-result/v1",
        "model_id": payload["model_id"],
        "n_points": int(payload["n_points"]),
        "num_outliers": int(payload["num_outliers"]),
        "cluster_ids": [int(v) for v in payload["cluster_ids"]],
        "outlier_mask": [bool(v) for v in payload["outlier_mask"]],
        "scores": [float(v) for v in payload["scores"]],
    }
    _write_json_atomic(Path(path), document)


def _cmd_assign(args: argparse.Namespace) -> int:
    if bool(args.registry) == bool(args.spool):
        print(
            "error: pass exactly one of --registry (local) or --spool "
            "(via a running service)",
            file=sys.stderr,
        )
        return 2
    if args.registry:
        from repro.serving import ModelRegistry, RegistryError

        data, _ = load_dataset_csv(args.data)
        registry = ModelRegistry(args.registry)
        try:
            model_id = registry.resolve(args.model)
            model = registry.load(model_id)
        except RegistryError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1
        started = time.perf_counter()
        result = model.assign(data)
        wall_time = time.perf_counter() - started
        num_outliers = int(result.outlier_mask.sum())
        _write_assign_result(
            args.out,
            {
                "model_id": model_id,
                "n_points": len(result.cluster_ids),
                "num_outliers": num_outliers,
                "cluster_ids": result.cluster_ids,
                "outlier_mask": result.outlier_mask,
                "scores": result.scores,
            },
        )
        print(
            f"assigned {len(result.cluster_ids)} point(s) with {model_id}: "
            f"{num_outliers} outlier(s) in {wall_time:.4f}s"
        )
        print(f"result written to {args.out}")
        return 0

    pending, done = _spool_dirs(args.spool)
    job_id = f"{time.time_ns():016x}-{os.getpid()}"
    spec = {
        "id": job_id,
        "kind": "assign",
        "model": args.model,
        "data": args.data,
        "out": args.out,
        "tenant": args.tenant,
        "priority": args.priority,
    }
    _write_json_atomic(pending / f"{job_id}.json", spec)
    print(f"submitted assign {job_id} (tenant {args.tenant}) to {args.spool}")
    if not args.wait:
        return 0
    deadline = time.monotonic() + args.timeout
    record_path = done / f"{job_id}.json"
    while time.monotonic() < deadline:
        if record_path.exists():
            record = json.loads(record_path.read_text())
            print(json.dumps(record, indent=2, sort_keys=True))
            return 0 if record.get("state") == "done" else 1
        time.sleep(0.2)
    print(
        f"error: assign {job_id} not finished after {args.timeout}s",
        file=sys.stderr,
    )
    return 1


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.mapreduce import ClusterService

    pending, done = _spool_dirs(args.spool)
    obs = Observability(enabled=True)
    service = ClusterService(
        slots=args.slots, executor=args.executor, obs=obs,
        registry=args.registry,
    )
    print(
        f"serving {args.spool} on {service.slots} {args.executor} slot(s)"
        + (f", model registry {args.registry}" if args.registry else "")
    )
    if args.telemetry_port is not None:
        log_path = args.telemetry_log or str(
            Path(args.spool) / "telemetry.jsonl"
        )
        plane = service.start_telemetry(
            args.telemetry_port,
            interval_s=args.telemetry_interval,
            log_path=log_path,
        )
        print(
            f"telemetry on http://127.0.0.1:{plane.port} "
            f"(/metrics /healthz /statusz), log {log_path}"
        )
    active: dict[str, Any] = {}
    served = 0
    idle_since = time.monotonic()
    try:
        while True:
            for path in sorted(pending.glob("*.json")):
                try:
                    spec = json.loads(path.read_text())
                except (OSError, json.JSONDecodeError):
                    continue  # mid-write or corrupt; retry next scan
                path.unlink()
                if spec.get("kind") == "assign":
                    try:
                        points, _ = load_dataset_csv(spec["data"])
                        handle = service.serve_assign(
                            spec["model"],
                            points,
                            tenant=spec.get("tenant", "default"),
                            priority=spec.get("priority"),
                        )
                    except Exception as exc:  # noqa: BLE001 - recorded
                        _write_json_atomic(
                            done / f"{spec['id']}.json",
                            {
                                "id": spec["id"],
                                "state": "failed",
                                "error": f"{type(exc).__name__}: {exc}",
                            },
                        )
                        print(f"rejected assign {spec['id']}: {exc}")
                        continue
                else:
                    handle = service.submit(
                        _make_spool_job(spec),
                        name=spec.get("algorithm", "chain"),
                        tenant=spec.get("tenant", "default"),
                        priority=spec.get("priority"),
                        estimated_records=spec.get("estimated_records"),
                        coreset_size=spec.get("coreset_size"),
                    )
                active[spec["id"]] = (handle, spec)
                print(f"admitted {handle.job_id} ({spec['id']})")
            for spool_id, (handle, spec) in list(active.items()):
                if not handle.done():
                    continue
                record = {"id": spool_id, "state": handle.status()}
                record.update(handle.info())
                try:
                    result = handle.result(timeout=0)
                    if spec.get("kind") == "assign":
                        _write_assign_result(spec["out"], result)
                        result = {
                            "model_id": result["model_id"],
                            "n_points": result["n_points"],
                            "num_outliers": result["num_outliers"],
                            "wall_time_s": result["wall_time_s"],
                            "out": spec["out"],
                        }
                    record["result"] = result
                except BaseException as exc:  # noqa: BLE001 - recorded
                    record["error"] = f"{type(exc).__name__}: {exc}"
                _write_json_atomic(done / f"{spool_id}.json", record)
                print(f"finished {handle.job_id}: {handle.status()}")
                del active[spool_id]
                served += 1
            if active:
                idle_since = time.monotonic()
            if args.drain is not None and served >= args.drain and not active:
                break
            if (
                args.idle_timeout is not None
                and not active
                and time.monotonic() - idle_since > args.idle_timeout
            ):
                break
            time.sleep(args.poll_s)
    finally:
        service.shutdown()
    snapshot = service.pool.snapshot()
    print(
        f"served {served} job(s); fair-share counters: "
        + json.dumps(snapshot["counters"].get("service", {}), sort_keys=True)
    )
    return 0


def _fetch_statusz(endpoint: str, timeout: float = 5.0) -> dict:
    import urllib.request

    url = endpoint.rstrip("/") + "/statusz"
    with urllib.request.urlopen(url, timeout=timeout) as response:
        return json.loads(response.read().decode("utf-8"))


def _last_log_sample(log_path: Path) -> dict:
    """Newest parseable sample in an append-only telemetry log.

    The writer appends whole lines and flushes, but the final line can
    still be mid-write when we race it — walk backwards to the newest
    line that parses.
    """
    lines = log_path.read_text(encoding="utf-8").splitlines()
    for line in reversed(lines):
        line = line.strip()
        if not line:
            continue
        try:
            sample = json.loads(line)
        except json.JSONDecodeError:
            continue
        if isinstance(sample, dict):
            return sample
    raise ValueError(f"no parseable telemetry samples in {log_path}")


def _cmd_top(args: argparse.Namespace) -> int:
    from repro.obs.telemetry import render_top

    log_path = args.log or (
        str(Path(args.spool) / "telemetry.jsonl") if args.spool else None
    )
    if bool(args.endpoint) == bool(log_path):
        print(
            "error: pass exactly one of --endpoint or --log/--spool",
            file=sys.stderr,
        )
        return 2

    def fetch() -> dict:
        if args.endpoint:
            return _fetch_statusz(args.endpoint)
        return _last_log_sample(Path(log_path))

    try:
        while True:
            try:
                screen = render_top(fetch())
            except (OSError, ValueError) as exc:
                print(f"error: {exc}", file=sys.stderr)
                return 1
            if args.watch:
                # Home + clear-to-end keeps the refresh flicker-free.
                sys.stdout.write("\x1b[H\x1b[J" + screen + "\n")
                sys.stdout.flush()
                time.sleep(args.interval)
            else:
                print(screen)
                return 0
    except KeyboardInterrupt:
        return 0


def _cmd_telemetry(args: argparse.Namespace) -> int:
    from repro.obs.telemetry import summarize_log_lines

    log_path = Path(args.log)
    if not log_path.exists():
        print(f"error: {log_path} does not exist", file=sys.stderr)
        return 1
    with open(log_path, "r", encoding="utf-8") as handle:
        summary = summarize_log_lines(handle)
    if args.series:
        summary["series"] = {
            name: stats
            for name, stats in summary["series"].items()
            if name.startswith(args.series)
        }
    if args.json:
        print(json.dumps(summary, indent=2, sort_keys=True))
        return 0
    print(
        f"{summary['samples']} sample(s) over {summary['span_s']:.1f}s"
        + (f" ({summary['skipped']} skipped)" if summary["skipped"] else "")
    )
    if not summary["series"]:
        print("(no series matched)")
        return 0
    print(
        f"{'series':<44} {'last':>10} {'p50':>10} {'p95':>10} {'max':>10}"
    )
    for name, stats in summary["series"].items():
        print(
            f"{name[:44]:<44} {stats['last']:>10.4g} {stats['p50']:>10.4g} "
            f"{stats['p95']:>10.4g} {stats['max']:>10.4g}"
        )
    return 0


def _cmd_submit(args: argparse.Namespace) -> int:
    pending, done = _spool_dirs(args.spool)
    job_id = f"{time.time_ns():016x}-{os.getpid()}"
    spec = {
        "id": job_id,
        "algorithm": args.algorithm,
        "data": args.data,
        "out": args.out,
        "metrics": args.metrics,
        "tenant": args.tenant,
        "priority": args.priority,
        "theta_cc": args.theta_cc,
        "poisson_alpha": args.poisson_alpha,
        "normalize": args.normalize,
        "estimated_records": args.estimated_records,
        "coreset_size": args.coreset_size,
        "coreset_mode": args.coreset_mode or "uniform",
        "register": args.register,
    }
    if args.coreset_size is not None and args.algorithm != "mr":
        print(
            "error: --coreset-size requires the mr algorithm",
            file=sys.stderr,
        )
        return 2
    if args.coreset_size is None and args.coreset_mode is not None:
        print(
            "error: --coreset-mode requires --coreset-size",
            file=sys.stderr,
        )
        return 2
    _write_json_atomic(pending / f"{job_id}.json", spec)
    print(f"submitted {job_id} (tenant {args.tenant}) to {args.spool}")
    if not args.wait:
        return 0
    deadline = time.monotonic() + args.timeout
    record_path = done / f"{job_id}.json"
    while time.monotonic() < deadline:
        if record_path.exists():
            record = json.loads(record_path.read_text())
            print(json.dumps(record, indent=2, sort_keys=True))
            return 0 if record.get("state") == "done" else 1
        time.sleep(0.2)
    print(f"error: job {job_id} not finished after {args.timeout}s",
          file=sys.stderr)
    return 1


def main(argv: list[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)
    handlers = {
        "assign": _cmd_assign,
        "generate": _cmd_generate,
        "cluster": _cmd_cluster,
        "evaluate": _cmd_evaluate,
        "experiment": _cmd_experiment,
        "report": _cmd_report,
        "serve": _cmd_serve,
        "submit": _cmd_submit,
        "telemetry": _cmd_telemetry,
        "top": _cmd_top,
    }
    try:
        return handlers[args.command](args)
    except BrokenPipeError:
        # Output piped into a pager/head that closed early: not an error.
        return 0


if __name__ == "__main__":
    raise SystemExit(main())
