"""Command-line interface: ``python -m repro <command>``.

Commands
--------
generate    write a synthetic data set (Section 7.1 recipe) to CSV
cluster     run an algorithm on a CSV data set, write a JSON result
evaluate    score a JSON result against a labelled data set
experiment  run one paper-exhibit harness and print its table

Examples
--------
python -m repro generate --n 5000 --dims 20 --clusters 3 --noise 0.1 \\
    --out data.csv
python -m repro cluster --algorithm mr-light --data data.csv \\
    --out result.json
python -m repro evaluate --data data.csv --result result.json
python -m repro experiment figure1
"""

from __future__ import annotations

import argparse
import sys
from dataclasses import dataclass
from typing import Any, Callable

import numpy as np

from repro.baselines import BoW, BoWConfig
from repro.core.p3c import P3C
from repro.core.p3c_plus import P3CPlus, P3CPlusConfig, P3CPlusLight
from repro.data import GeneratorConfig, generate_synthetic, normalize_unit_range
from repro.data.io import (
    load_dataset_csv,
    load_result_json,
    save_dataset_csv,
    save_result_json,
)
from repro.eval import e4sc_score, label_accuracy
from repro.mapreduce.events import format_trace
from repro.mapreduce.executors import EXECUTORS
from repro.mr import P3CPlusMR, P3CPlusMRConfig, P3CPlusMRLight


@dataclass(frozen=True)
class ExecOptions:
    """Runtime executor selection forwarded to the MR/BoW drivers."""

    executor: str | None = None
    max_workers: int | None = None


ALGORITHMS: dict[str, Callable[[P3CPlusConfig, ExecOptions], Any]] = {
    "p3c": lambda config, opts: P3C(
        config.with_overrides(
            binning="sturges",
            theta_cc=None,
            redundancy_filter=False,
            outlier_method="naive",
            ai_proving=False,
        )
    ),
    "p3c-plus": lambda config, opts: P3CPlus(config),
    "p3c-plus-light": lambda config, opts: P3CPlusLight(config),
    "mr": lambda config, opts: P3CPlusMR(
        config,
        P3CPlusMRConfig(
            executor=opts.executor, max_workers=opts.max_workers
        ),
    ),
    "mr-light": lambda config, opts: P3CPlusMRLight(
        config,
        P3CPlusMRConfig(
            executor=opts.executor, max_workers=opts.max_workers
        ),
    ),
    "bow-light": lambda config, opts: BoW(
        config,
        BoWConfig(
            variant="light",
            executor=opts.executor,
            max_workers=opts.max_workers,
        ),
    ),
    "bow-mvb": lambda config, opts: BoW(
        config,
        BoWConfig(
            variant="mvb",
            executor=opts.executor,
            max_workers=opts.max_workers,
        ),
    ),
}

EXPERIMENTS = (
    "figure1",
    "figure2",
    "figure3",
    "figure4",
    "figure5",
    "figure6",
    "figure7",
    "theta",
    "colon",
    "billion",
    "blurring",
    "report",
)


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="P3C+-MR reproduction (EDBT 2014) command-line interface",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    generate = commands.add_parser("generate", help="write a synthetic data set")
    generate.add_argument("--n", type=int, default=10_000)
    generate.add_argument("--dims", type=int, default=50)
    generate.add_argument("--clusters", type=int, default=5)
    generate.add_argument("--noise", type=float, default=0.10)
    generate.add_argument("--seed", type=int, default=0)
    generate.add_argument("--out", required=True)

    cluster = commands.add_parser("cluster", help="run an algorithm on a CSV")
    cluster.add_argument("--algorithm", choices=sorted(ALGORITHMS), required=True)
    cluster.add_argument("--data", required=True)
    cluster.add_argument("--out", required=True)
    cluster.add_argument("--theta-cc", type=float, default=0.35)
    cluster.add_argument("--poisson-alpha", type=float, default=0.01)
    cluster.add_argument(
        "--normalize",
        action="store_true",
        help="min-max normalise attributes to [0, 1] first",
    )
    cluster.add_argument(
        "--executor",
        choices=sorted(EXECUTORS),
        default=None,
        help="MapReduce executor backend for the mr/bow algorithms "
        "(default: serial, or process when --workers > 1)",
    )
    cluster.add_argument(
        "--workers",
        type=int,
        default=None,
        help="worker count for the thread/process executors",
    )
    cluster.add_argument(
        "--trace",
        action="store_true",
        help="print the per-task runtime event trace and job ledger "
        "after clustering (mr/bow algorithms only)",
    )

    evaluate = commands.add_parser("evaluate", help="score a saved result")
    evaluate.add_argument("--data", required=True)
    evaluate.add_argument("--result", required=True)

    experiment = commands.add_parser(
        "experiment", help="run one paper-exhibit harness"
    )
    experiment.add_argument("name", choices=EXPERIMENTS)
    return parser


def _cmd_generate(args: argparse.Namespace) -> int:
    dataset = generate_synthetic(
        GeneratorConfig(
            n=args.n,
            d=args.dims,
            num_clusters=args.clusters,
            noise_fraction=args.noise,
            max_cluster_dims=min(10, args.dims),
            seed=args.seed,
        )
    )
    save_dataset_csv(args.out, dataset.data, dataset.labels)
    print(
        f"wrote {args.n} x {args.dims} data set with {args.clusters} hidden "
        f"clusters to {args.out} (+ .labels sidecar)"
    )
    return 0


def _cmd_cluster(args: argparse.Namespace) -> int:
    data, _ = load_dataset_csv(args.data)
    if args.normalize:
        data = normalize_unit_range(data)
    config = P3CPlusConfig(
        theta_cc=args.theta_cc, poisson_alpha=args.poisson_alpha
    )
    opts = ExecOptions(executor=args.executor, max_workers=args.workers)
    algorithm = ALGORITHMS[args.algorithm](config, opts)
    result = algorithm.fit(data)
    save_result_json(args.out, result)
    print(result.summary())
    if args.trace:
        chain = getattr(algorithm, "chain", None)
        if chain is None:
            print("(--trace: no MapReduce chain; serial algorithms emit no events)")
        else:
            print(format_trace(chain.runtime.events))
            print(chain.report())
    print(f"result written to {args.out}")
    return 0


def _cmd_evaluate(args: argparse.Namespace) -> int:
    data, labels = load_dataset_csv(args.data)
    result = load_result_json(args.result)
    if result.n_points != len(data):
        print(
            f"error: result covers {result.n_points} points but the data "
            f"set has {len(data)}",
            file=sys.stderr,
        )
        return 2
    print(result.summary())
    if labels is not None:
        print(f"label accuracy: {label_accuracy(result, labels):.3f}")
        truth = _clusters_from_labels(labels, result)
        if truth:
            print(f"E4SC vs label ground truth: "
                  f"{e4sc_score(result.clusters, truth):.3f}")
    else:
        print("(no .labels sidecar: skipping quality scores)")
    return 0


def _clusters_from_labels(labels: np.ndarray, result):
    """Full-space ground-truth clusters from a label sidecar (used when
    no subspace ground truth is available)."""
    from repro.core.types import ProjectedCluster

    all_attrs = frozenset(range(result.n_dims))
    clusters = []
    for value in np.unique(labels):
        if value < 0:
            continue
        clusters.append(
            ProjectedCluster(
                members=np.where(labels == value)[0],
                relevant_attributes=all_attrs,
            )
        )
    return clusters


def _cmd_experiment(args: argparse.Namespace) -> int:
    import importlib

    module = importlib.import_module(f"repro.experiments.{args.name}")
    print(module.main())
    return 0


def main(argv: list[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)
    handlers = {
        "generate": _cmd_generate,
        "cluster": _cmd_cluster,
        "evaluate": _cmd_evaluate,
        "experiment": _cmd_experiment,
    }
    try:
        return handlers[args.command](args)
    except BrokenPipeError:
        # Output piped into a pager/head that closed early: not an error.
        return 0


if __name__ == "__main__":
    raise SystemExit(main())
