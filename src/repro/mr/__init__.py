"""P3C+ expressed as MapReduce jobs (paper Sections 5-6).

Each module maps onto one subsection of Section 5:

- :mod:`repro.mr.histogram`    — 5.1 histogram building,
- :mod:`repro.mr.candidates`   — 5.3 parallel candidate generation,
- :mod:`repro.mr.rssc`         — 5.3 Rapid Signature Support Counter,
- :mod:`repro.mr.support`      — 5.3 candidate proving job,
- :mod:`repro.mr.core_generation` — Algorithm 1 with the multi-level
  candidate-collection heuristic,
- :mod:`repro.mr.em_jobs`      — 5.4 EM as 2 MR jobs per iteration,
- :mod:`repro.mr.outlier_jobs` — 5.5 OD job and the MVB jobs,
- :mod:`repro.mr.attribute_jobs` — 5.6 attribute inspection,
- :mod:`repro.mr.tightening_job` — 5.7 interval tightening,
- :mod:`repro.mr.p3c_mr`       — the full P3C+-MR driver,
- :mod:`repro.mr.p3c_mr_light` — the P3C+-MR-Light driver (Section 6).
"""

from repro.mr.p3c_mr import P3CPlusMR, P3CPlusMRConfig
from repro.mr.p3c_mr_light import P3CPlusMRLight
from repro.mr.rssc import RSSC

__all__ = ["P3CPlusMR", "P3CPlusMRConfig", "P3CPlusMRLight", "RSSC"]
