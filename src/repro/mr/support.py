"""Candidate-proving support job (paper Section 5.3).

One MR job counts the supports of an arbitrary candidate batch: every
mapper receives the full candidate set via the distributed cache,
builds nothing itself (the RSSC bit masks are precomputed by the driver
"with only two scans of Ŝ_all" and shipped in the cache), accumulates a
per-split count vector with the RSSC, and emits it once from cleanup.
The single reducer sums the per-split vectors.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.core.types import Signature
from repro.mapreduce import BatchMapper, Context, DistributedCache, Job, Reducer
from repro.mapreduce.job import ArraySumCombiner
from repro.mapreduce.chain import JobChain
from repro.mapreduce.types import InputSplit
from repro.mr.rssc import RSSC
from repro.mr.aggregate import sum_partials

_KEY = "supports"


class SupportCountMapper(BatchMapper):
    """RSSC-based per-split support counting (vectorised batch path)."""

    def setup(self, context: Context) -> None:
        self._rssc: RSSC = context.cache["rssc"]
        self._counts = np.zeros(self._rssc.num_signatures, dtype=np.int64)

    def map_batch(self, keys: Any, block: np.ndarray, context: Context) -> None:
        self._rssc.add_points(block, self._counts)

    def cleanup(self, context: Context) -> None:
        context.emit(_KEY, self._counts)


class SupportSumReducer(Reducer):
    def reduce(self, key: str, values: list[np.ndarray], context: Context) -> None:
        context.emit(key, sum_partials(values))


def run_support_job(
    chain: JobChain,
    splits: list[InputSplit],
    candidates: list[Signature],
    step_name: str = "candidate_proving",
) -> dict[Signature, int]:
    """Count supports of ``candidates`` with one MR job."""
    if not candidates:
        return {}
    rssc = RSSC(candidates)
    job = Job(
        mapper_factory=SupportCountMapper,
        reducer_factory=SupportSumReducer,
        combiner_factory=ArraySumCombiner,
        cache=DistributedCache({"rssc": rssc}),
    )
    result = chain.run(step_name, job, splits, num_reducers=1)
    counts = result.as_dict()[_KEY]
    return {sig: int(c) for sig, c in zip(candidates, counts)}
