"""Candidate-proving support job (paper Section 5.3).

One MR job counts the supports of an arbitrary candidate batch: every
mapper receives the full candidate set via the distributed cache,
builds nothing itself (the RSSC bit masks are precomputed by the driver
"with only two scans of Ŝ_all" and shipped in the cache), accumulates a
per-split count vector with the RSSC, and emits it once from cleanup.
The single reducer sums the per-split vectors.

With per-point weights (the coreset fast path) the mapper runs the
weighted RSSC kernel instead — each point contributes its weight to
every signature containing it — and the job returns float supports.
Unit weights are canonicalised to the integer kernel, keeping the
unweighted path bitwise unchanged.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.core.types import Signature
from repro.mapreduce import BatchMapper, Context, DistributedCache, Job, Reducer
from repro.mapreduce.job import ArraySumCombiner
from repro.mapreduce.chain import JobChain
from repro.mapreduce.types import InputSplit
from repro.mr.rssc import RSSC
from repro.mr.aggregate import sum_partials
from repro.mr.weights import canonical_weights, take_weights

_KEY = "supports"


class SupportCountMapper(BatchMapper):
    """RSSC-based per-split support counting (vectorised batch path)."""

    def setup(self, context: Context) -> None:
        self._rssc: RSSC = context.cache["rssc"]
        self._weights: np.ndarray | None = context.cache.get("point_weights")
        dtype = np.int64 if self._weights is None else np.float64
        self._counts = np.zeros(self._rssc.num_signatures, dtype=dtype)

    def map_batch(self, keys: Any, block: np.ndarray, context: Context) -> None:
        if self._weights is None:
            self._rssc.add_points(block, self._counts)
        else:
            self._rssc.add_points_weighted(
                block, take_weights(self._weights, keys), self._counts
            )

    def cleanup(self, context: Context) -> None:
        context.emit(_KEY, self._counts)


class SupportSumReducer(Reducer):
    def reduce(self, key: str, values: list[np.ndarray], context: Context) -> None:
        context.emit(key, sum_partials(values))


def run_support_job(
    chain: JobChain,
    splits: list[InputSplit],
    candidates: list[Signature],
    step_name: str = "candidate_proving",
    weights: np.ndarray | None = None,
) -> dict[Signature, int | float]:
    """Count (optionally weighted) supports of ``candidates`` with one
    MR job.  Unweighted supports are ints; weighted supports floats."""
    if not candidates:
        return {}
    weights = canonical_weights(weights)
    rssc = RSSC(candidates)
    cache: dict[str, Any] = {"rssc": rssc}
    if weights is not None:
        cache["point_weights"] = weights
    job = Job(
        mapper_factory=SupportCountMapper,
        reducer_factory=SupportSumReducer,
        combiner_factory=ArraySumCombiner,
        cache=DistributedCache(cache),
    )
    result = chain.run(step_name, job, splits, num_reducers=1)
    counts = result.as_dict()[_KEY]
    if weights is None:
        return {sig: int(c) for sig, c in zip(candidates, counts)}
    return {sig: float(c) for sig, c in zip(candidates, counts)}
