"""Outlier detection jobs (paper Section 5.5).

- **OD job** — map-only: each mapper assigns its points to the most
  probable mixture component and writes the point back "augmented with
  an additional membership attribute" set to the cluster id, or -1 for
  outliers (squared Mahalanobis distance above the chi-squared critical
  value).
- **MVB mean/radius job** — each mapper caches its split, computes the
  dimension-wise median ``m_C^j`` and median-distance radius ``r_C^j``
  of its split's members per cluster, and the reducer aggregates by
  taking the dimension-wise median of the mapper means and the median
  of the mapper radii.
- The inside-ball moments then reuse the generic moment jobs of
  :mod:`repro.mr.em_jobs` with :class:`~repro.mr.em_jobs.InsideBallWeights`.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.core.em import GaussianMixture
from repro.core.outliers import (
    ball_consistency_factor,
    dimensionwise_median,
    small_sample_inflation,
)
from repro.core.stats import chi2_critical_value, mahalanobis_squared
from repro.mapreduce import Context, DistributedCache, Job, Mapper, Reducer
from repro.mapreduce.chain import JobChain
from repro.mapreduce.types import InputSplit
from repro.mr.em_jobs import InsideBallWeights, run_moment_jobs


class ODMapper(Mapper):
    """Map-only membership labelling: cluster id or -1 per point."""

    def setup(self, context: Context) -> None:
        self._mixture: GaussianMixture = context.cache["mixture"]
        self._means: np.ndarray = context.cache["od_means"]
        self._covs: np.ndarray = context.cache["od_covariances"]
        self._critical: np.ndarray = context.cache["critical_values"]
        self._rows: list[np.ndarray] = []
        self._keys: list[Any] = []

    def map(self, key: Any, value: np.ndarray, context: Context) -> None:
        self._keys.append(key)
        self._rows.append(value)

    def cleanup(self, context: Context) -> None:
        if not self._rows:
            return
        data = np.stack(self._rows)
        sub = self._mixture.project(data)
        assignment = self._mixture.assign(sub)
        membership = assignment.copy()
        for j in range(self._mixture.num_components):
            members = assignment == j
            if not members.any():
                continue
            d2 = mahalanobis_squared(sub[members], self._means[j], self._covs[j])
            rows = np.where(members)[0]
            membership[rows[d2 > self._critical[j]]] = -1
        for key, label in zip(self._keys, membership):
            context.emit(key, int(label))


def run_od_job(
    chain: JobChain,
    splits: list[InputSplit],
    mixture: GaussianMixture,
    od_means: np.ndarray,
    od_covariances: np.ndarray,
    moment_counts: np.ndarray,
    alpha: float = 0.001,
    step_name: str = "outlier_detection",
) -> dict[int, int]:
    """Run the OD job; returns ``point index -> cluster id or -1``.

    ``moment_counts`` is the per-cluster number of points that produced
    ``od_means``/``od_covariances`` (EM totals for the naive variant,
    inside-ball counts for MVB); the chi-squared cutoff is widened by
    the small-sample inflation of that count, matching the serial
    detectors.
    """
    dof = len(mixture.attributes)
    base = chi2_critical_value(dof, alpha)
    critical = np.empty(mixture.num_components)
    for j in range(mixture.num_components):
        inflation = small_sample_inflation(int(moment_counts[j]), dof)
        critical[j] = base * inflation if np.isfinite(inflation) else np.inf
    job = Job(
        mapper_factory=ODMapper,
        cache=DistributedCache(
            {
                "mixture": mixture,
                "od_means": od_means,
                "od_covariances": od_covariances,
                "critical_values": critical,
            }
        ),
    )
    result = chain.run(step_name, job, splits, num_reducers=0)
    return {int(k): int(v) for k, v in result.output}


_MVB_KEY_PREFIX = "mvb"


class MVBStatsMapper(Mapper):
    """Per-split MVB centre and radius for each cluster (Section 5.5)."""

    def setup(self, context: Context) -> None:
        self._mixture: GaussianMixture = context.cache["mixture"]
        self._rows: list[np.ndarray] = []

    def map(self, key: Any, value: np.ndarray, context: Context) -> None:
        self._rows.append(value)

    def cleanup(self, context: Context) -> None:
        if not self._rows:
            return
        data = np.stack(self._rows)
        sub = self._mixture.project(data)
        assignment = self._mixture.assign(sub)
        for j in range(self._mixture.num_components):
            members = sub[assignment == j]
            if len(members) == 0:
                continue
            center = dimensionwise_median(members)
            radius = float(np.median(np.linalg.norm(members - center, axis=1)))
            context.emit(j, (center, radius))


class MVBStatsReducer(Reducer):
    """Dimension-wise median of mapper centres; median of radii."""

    def reduce(self, key: int, values: list[Any], context: Context) -> None:
        centers = np.stack([v[0] for v in values])
        radii = np.array([v[1] for v in values])
        context.emit(key, (np.median(centers, axis=0), float(np.median(radii))))


def run_mvb_jobs(
    chain: JobChain,
    splits: list[InputSplit],
    mixture: GaussianMixture,
    reg: float = 1e-9,
    point_weights: np.ndarray | None = None,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Three MR jobs computing the MVB moments of every cluster.

    Job 1 estimates ball centre and radius; jobs 2-3 (the generic moment
    pair) compute mean and covariance over the inside-ball points.
    Returns ``(means, covariances, inside_ball_counts)`` per cluster.

    ``point_weights`` (the coreset fast path) weight the inside-ball
    moments; the centre/radius medians stay unweighted — medians over
    the summary are already robust to the weighting.
    """
    k = mixture.num_components
    m = len(mixture.attributes)
    stats_job = Job(
        mapper_factory=MVBStatsMapper,
        reducer_factory=MVBStatsReducer,
        cache=DistributedCache({"mixture": mixture}),
    )
    stats = chain.run("mvb_center_radius", stats_job, splits).as_dict()

    centers = np.full((k, m), 0.5)
    radii = np.zeros(k)
    for j, (center, radius) in stats.items():
        centers[j] = center
        radii[j] = radius

    model = InsideBallWeights(mixture, centers, radii)
    means, covs, weight_sums, _ = run_moment_jobs(
        chain,
        splits,
        model,
        mixture.attributes,
        "mvb_moments",
        reg=reg,
        point_weights=point_weights,
    )
    # Clusters with an empty ball or too few inside-ball points for a
    # usable covariance (same small-sample rule as the serial
    # mvb_estimate) keep the mixture's own moments / diagonal scale.
    consistency = ball_consistency_factor(m)
    for j in range(k):
        if radii[j] == 0:
            means[j] = mixture.means[j]
            covs[j] = mixture.covariances[j]
        elif weight_sums[j] < max(2, 2 * m):
            covs[j] = np.diag(np.diag(mixture.covariances[j]))
        else:
            covs[j] = consistency * covs[j]
    return means, covs, weight_sums
