"""Coreset summary construction + full-data assignment (approximate path).

The coreset fast path trades exactness for wall-clock: instead of
running every chain stage over all ``n`` points, ONE MapReduce pass
builds a small weighted summary ``(points, weights)`` with
``sum(weights) ≈ n``, the whole P3C+ chain runs on the summary (its
weighted kernels are in :mod:`repro.mr.histogram` /
:mod:`repro.mr.support` / :mod:`repro.mr.em_jobs`), and a single
map-only pass over the full data assigns every original point to the
fitted model — two full scans total, independent of EM iteration count.

Sampling modes
--------------

``uniform``
    Per-split uniform reservoir without replacement; every sampled
    point carries weight ``n_split / quota``.  Unbiased for every
    linear statistic; the baseline of Feldman's coreset survey
    (arXiv 1807.04518).

``lightweight``
    The lightweight-coreset sampler of Bachem et al. (arXiv 1702.08248,
    analysed further in arXiv 2011.13476): sampling probability
    ``q(x) = 0.5 / n_split + 0.5 * d(x, mu)^2 / sum d^2`` against the
    split-local mean, weight ``1 / (quota * q(x))``, drawn with
    replacement.  Overweights far-out structure, which is what the
    chi-squared interval test and the EM tails care about.

Determinism: the driver precomputes per-split quotas (largest-remainder
proportional allocation over split lengths) and ships them with the
seed; each mapper derives its RNG from ``(seed, task_id)`` where
``task_id`` is the split id — a chaos-injected retry of the same split
therefore reproduces the identical sample, so coreset runs stay
bit-reproducible under fault injection.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

import numpy as np

from repro.mapreduce import BatchMapper, Context, DistributedCache, Job, Reducer
from repro.mapreduce.chain import JobChain
from repro.mapreduce.types import InputSplit

_SUMMARY_KEY_PREFIX = "coreset"

SUPPORTED_MODES = ("uniform", "lightweight")


@dataclass(frozen=True)
class CoresetSummary:
    """A weighted summary standing in for the full data set."""

    points: np.ndarray  # (m, d) float64
    weights: np.ndarray  # (m,) float64, sum ≈ n
    mode: str
    requested_size: int

    @property
    def size(self) -> int:
        return len(self.points)

    @property
    def total_weight(self) -> float:
        return float(self.weights.sum())

    @property
    def effective_size(self) -> float:
        """Kish's effective sample size of the summary weights."""
        from repro.core.stats import effective_sample_size

        return effective_sample_size(self.weights)


def allocate_quotas(sizes: dict[int, int], size: int) -> dict[int, int]:
    """Largest-remainder proportional allocation of ``size`` samples
    over splits; every non-empty split gets at least one sample (a split
    with zero quota would silently vanish from the summary)."""
    total = sum(sizes.values())
    if total == 0:
        return {sid: 0 for sid in sizes}
    size = min(size, total)
    ids = sorted(sid for sid in sizes if sizes[sid] > 0)
    shares = {sid: size * sizes[sid] / total for sid in ids}
    quotas = {sid: int(shares[sid]) for sid in ids}
    remainder = size - sum(quotas.values())
    by_fraction = sorted(
        ids, key=lambda sid: (-(shares[sid] - quotas[sid]), sid)
    )
    for sid in by_fraction[:remainder]:
        quotas[sid] += 1
    for sid in ids:
        quotas[sid] = max(1, min(quotas[sid], sizes[sid]))
    for sid in sizes:
        quotas.setdefault(sid, 0)
    return quotas


class CoresetMapper(BatchMapper):
    """Samples this split's share of the summary in one pass.

    Blocks are buffered across chunked ``map_batch`` deliveries (the
    split-caching pattern the EM mappers already use) and sampled once
    in ``cleanup`` with an RNG derived from ``(seed, split id)``.
    """

    def setup(self, context: Context) -> None:
        self._quotas: dict[int, int] = context.cache["quotas"]
        self._seed: int = int(context.cache["seed"])
        self._mode: str = context.cache["mode"]
        self._blocks: list[np.ndarray] = []

    def map_batch(self, keys: Any, block: np.ndarray, context: Context) -> None:
        self._blocks.append(np.asarray(block, dtype=float))

    def cleanup(self, context: Context) -> None:
        if not self._blocks:
            return
        data = (
            self._blocks[0]
            if len(self._blocks) == 1
            else np.concatenate(self._blocks)
        )
        split_id = int(context.task_id)
        quota = int(self._quotas.get(split_id, 0))
        if quota <= 0:
            return
        n_local = len(data)
        rng = np.random.default_rng([self._seed, split_id])
        if quota >= n_local:
            points = data
            weights = np.ones(n_local)
        elif self._mode == "uniform":
            chosen = np.sort(rng.choice(n_local, size=quota, replace=False))
            points = data[chosen]
            weights = np.full(quota, n_local / quota)
        elif self._mode == "lightweight":
            mu = data.mean(axis=0)
            dist_sq = ((data - mu) ** 2).sum(axis=1)
            total = float(dist_sq.sum())
            if total > 0:
                q = 0.5 / n_local + 0.5 * dist_sq / total
            else:
                q = np.full(n_local, 1.0 / n_local)
            q = q / q.sum()
            chosen = rng.choice(n_local, size=quota, replace=True, p=q)
            points = data[chosen]
            weights = 1.0 / (quota * q[chosen])
        else:
            raise ValueError(f"unknown coreset mode {self._mode!r}")
        packed = np.concatenate([points, weights[:, None]], axis=1)
        context.emit(f"{_SUMMARY_KEY_PREFIX}:{split_id:08d}", packed)


class CoresetReducer(Reducer):
    """Passthrough: one packed sample block per split key."""

    def reduce(self, key: str, values: list[np.ndarray], context: Context) -> None:
        context.emit(key, values[0])


def build_coreset(
    chain: JobChain,
    splits: list[InputSplit],
    size: int,
    mode: str = "uniform",
    seed: int = 0,
    step_name: str = "coreset_summary",
) -> CoresetSummary:
    """Build a weighted coreset summary with one MapReduce pass.

    ``size`` is the target summary size; the realised size can differ
    slightly (per-split minimums, splits smaller than their quota).
    """
    if size < 1:
        raise ValueError(f"coreset size must be >= 1, got {size}")
    if mode not in SUPPORTED_MODES:
        raise ValueError(
            f"unknown coreset mode {mode!r}; expected one of {SUPPORTED_MODES}"
        )
    sizes = {sid: len(split) for sid, split in enumerate(splits)}
    quotas = allocate_quotas(sizes, size)
    job = Job(
        mapper_factory=CoresetMapper,
        reducer_factory=CoresetReducer,
        cache=DistributedCache(
            {"quotas": quotas, "seed": int(seed), "mode": mode}
        ),
    )
    result = chain.run(step_name, job, splits, num_reducers=1)
    blocks = result.as_dict()
    if not blocks:
        raise ValueError("coreset job produced an empty summary")
    packed = np.concatenate([blocks[key] for key in sorted(blocks)])
    return CoresetSummary(
        points=np.ascontiguousarray(packed[:, :-1]),
        weights=np.ascontiguousarray(packed[:, -1]),
        mode=mode,
        requested_size=size,
    )


class AssignMapper(BatchMapper):
    """Map-only full-data labelling against a fitted model.

    Emits one packed ``(2, n_split)`` int64 array per split —
    ``[row indices | labels]`` — instead of per-point pairs, so the
    final full scan ships O(splits) shuffle values, not O(n).
    """

    def setup(self, context: Context) -> None:
        self._model = context.cache["fitted_model"]
        self._keys: list[Any] = []
        self._blocks: list[np.ndarray] = []

    def map_batch(self, keys: Any, block: np.ndarray, context: Context) -> None:
        self._keys.append(np.asarray(keys, dtype=np.int64))
        self._blocks.append(block)

    def cleanup(self, context: Context) -> None:
        if not self._blocks:
            return
        data = (
            self._blocks[0]
            if len(self._blocks) == 1
            else np.concatenate(self._blocks)
        )
        keys = (
            self._keys[0]
            if len(self._keys) == 1
            else np.concatenate(self._keys)
        )
        labels = self._model.assign(data).cluster_ids
        context.emit(
            int(context.task_id), np.stack([keys, labels.astype(np.int64)])
        )


def run_assign_job(
    chain: JobChain,
    splits: list[InputSplit],
    model: Any,
    n: int,
    step_name: str = "coreset_assign",
) -> np.ndarray:
    """Label every original point with the coreset-fitted model.

    Returns the ``(n,)`` int64 membership vector (cluster id, -1 for
    outliers) — the same contract as the OD job's output, produced by
    the serving scorer's batched ``assign`` in one map-only pass.
    """
    job = Job(
        mapper_factory=AssignMapper,
        cache=DistributedCache({"fitted_model": model}),
    )
    result = chain.run(step_name, job, splits, num_reducers=0)
    membership = np.full(n, -1, dtype=np.int64)
    for _, packed in result.output:
        membership[packed[0]] = packed[1]
    return membership
