"""Shared reducer arithmetic for partial-aggregate jobs.

Several P3C+-MR jobs follow the same pattern — mappers emit one partial
array per split, a single reducer adds them (histograms, support
counts, per-cluster matrices, EM covariance scatter).  The summation
must never mutate its inputs: under retries and speculative execution
the runtime may hand the *same* shuffled value objects to more than one
reduce attempt (a retry re-reads the cached shuffle payload), so an
in-place ``values[0] += ...`` would poison the second attempt with the
first attempt's partial sums and silently corrupt the aggregate.
``sum_partials`` therefore accumulates into a fresh output array.
"""

from __future__ import annotations

import numpy as np


def sum_partials(values: list[np.ndarray]) -> np.ndarray:
    """Element-wise sum of equally-shaped partial arrays.

    Allocates a fresh result array and never writes to any input, so
    reduce tasks using it stay pure — safe to re-execute against cached
    shuffle payloads (task retries, speculative duplicates).
    """
    total = np.zeros_like(values[0])
    for partial in values:
        np.add(total, partial, out=total)
    return total
