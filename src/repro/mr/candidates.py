"""Parallel candidate generation (paper Section 5.3).

Joining each two p-signatures that share ``p - 1`` intervals is
quadratic in the signature count: ``c = k (k - 1) / 2`` pairs.  Below
``T_gen`` pairs the join runs serially in the driver; above it, a
map-only job fans the pair-index range out to ``m = floor(c / T_gen)``
mappers.  Each mapper receives the signature list via the distributed
cache and an index range as its input record, decodes each index into a
pair, and emits the join when it succeeds.  The driver collects the
output, ignoring duplicates (two pairs can produce the same
(p+1)-signature).
"""

from __future__ import annotations

from typing import Any

from repro.core.apriori import generate_candidates, join_signatures
from repro.core.types import Signature
from repro.mapreduce import Context, DistributedCache, Job, Mapper
from repro.mapreduce.chain import JobChain
from repro.mapreduce.types import InputSplit

#: Default serial/parallel switch-over, scaled down from the paper's
#: cluster-calibrated 4e7 pair threshold to laptop proportions.
DEFAULT_T_GEN = 2_000_000


def pair_from_index(index: int, k: int) -> tuple[int, int]:
    """Decode a flat index in [0, k(k-1)/2) to an (i, j) pair, i < j.

    Pairs are ordered row-major over the upper triangle:
    (0,1), (0,2), ..., (0,k-1), (1,2), ...
    """
    if index < 0:
        raise ValueError("pair index must be >= 0")
    i = 0
    row_len = k - 1
    remaining = index
    while remaining >= row_len:
        remaining -= row_len
        i += 1
        row_len -= 1
        if row_len < 0:
            raise ValueError(f"pair index {index} out of range for k={k}")
    return i, i + 1 + remaining


class CandidateJoinMapper(Mapper):
    """Joins the signature pairs of one flat-index range."""

    def setup(self, context: Context) -> None:
        self._signatures: list[Signature] = context.cache["signatures"]

    def map(self, key: Any, value: tuple[int, int], context: Context) -> None:
        start, stop = value
        k = len(self._signatures)
        for index in range(start, stop):
            i, j = pair_from_index(index, k)
            joined = join_signatures(self._signatures[i], self._signatures[j])
            if joined is not None:
                context.emit(joined, None)


def run_candidate_generation(
    chain: JobChain,
    signatures: list[Signature],
    t_gen: int = DEFAULT_T_GEN,
    step_name: str = "candidate_generation",
) -> list[Signature]:
    """Generate (p+1)-candidates, serially or with a map-only MR job.

    Matches :func:`repro.core.apriori.generate_candidates` exactly
    (deduplicated; deterministic order).
    """
    k = len(signatures)
    c = k * (k - 1) // 2
    if c <= 2 * t_gen:
        return generate_candidates(signatures, prune=False)

    num_mappers = max(2, c // t_gen)
    bounds = [c * m // num_mappers for m in range(num_mappers + 1)]
    ranges = [
        (0, (bounds[m], bounds[m + 1]))
        for m in range(num_mappers)
        if bounds[m] < bounds[m + 1]
    ]
    splits = [
        InputSplit(split_id=sid, records=[record])
        for sid, record in enumerate(ranges)
    ]
    job = Job(
        mapper_factory=CandidateJoinMapper,
        cache=DistributedCache({"signatures": list(signatures)}),
    )
    result = chain.run(step_name, job, splits, num_reducers=0)
    seen: set[Signature] = set()
    candidates: list[Signature] = []
    for signature, _ in result.output:
        if signature not in seen:
            seen.add(signature)
            candidates.append(signature)
    return candidates
