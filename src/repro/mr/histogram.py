"""Histogram-building job (paper Section 5.1, Eq. 8).

Mappers accumulate a per-split ``(d, m)`` count matrix and emit it once
from ``cleanup`` (an in-mapper combiner — the summation form of Eq. 8);
the single reducer adds the partial matrices into the global histogram.

The job optionally carries per-point weights (the coreset fast path):
each point then contributes its weight instead of 1 to its bin, and the
partial matrices are float64.  Weights ride the distributed cache as
one full vector indexed by record key (record keys of array/file splits
are global row indices), so chunked ``map_batch`` deliveries of one
split stay consistent.  Unit weights are canonicalised away up front —
an all-ones vector runs the integer kernel and is bitwise-identical to
the unweighted path.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.core.binning import Histogram, bin_index
from repro.mapreduce import BatchMapper, Context, DistributedCache, Job, Reducer
from repro.mapreduce.job import ArraySumCombiner
from repro.mapreduce.chain import JobChain
from repro.mapreduce.types import InputSplit
from repro.mr.aggregate import sum_partials
from repro.mr.weights import canonical_weights, take_weights

_KEY = "histogram"


class HistogramMapper(BatchMapper):
    """Accumulates one (d x m) partial histogram per split.

    Binning runs over the whole ``(n, d)`` block at once — one Eq. 8
    evaluation and one per-attribute ``bincount``, instead of one
    ``map()`` call per point.
    """

    def setup(self, context: Context) -> None:
        self._num_bins = int(context.cache["num_bins"])
        self._weights: np.ndarray | None = context.cache.get("point_weights")
        self._counts: np.ndarray | None = None

    def map_batch(self, keys: Any, block: np.ndarray, context: Context) -> None:
        d = block.shape[1]
        if self._counts is None:
            dtype = np.int64 if self._weights is None else np.float64
            self._counts = np.zeros((d, self._num_bins), dtype=dtype)
        bins = bin_index(block, self._num_bins)
        if self._weights is None:
            for attribute in range(d):
                self._counts[attribute] += np.bincount(
                    bins[:, attribute], minlength=self._num_bins
                )
        else:
            weights = take_weights(self._weights, keys)
            for attribute in range(d):
                self._counts[attribute] += np.bincount(
                    bins[:, attribute],
                    weights=weights,
                    minlength=self._num_bins,
                )

    def cleanup(self, context: Context) -> None:
        if self._counts is not None:
            context.emit(_KEY, self._counts)


class HistogramSumReducer(Reducer):
    """Adds the per-split partial matrices."""

    def reduce(self, key: str, values: list[np.ndarray], context: Context) -> None:
        context.emit(key, sum_partials(values))


def run_histogram_job(
    chain: JobChain,
    splits: list[InputSplit],
    num_bins: int,
    weights: np.ndarray | None = None,
    step_name: str = "histogram_building",
) -> list[Histogram]:
    """Execute the histogram job and return one Histogram per attribute.

    With ``weights`` the counts are weighted (float64 histograms); an
    all-ones weight vector is canonicalised to the unweighted integer
    path, which stays bitwise-identical to a run without weights.
    """
    weights = canonical_weights(weights)
    cache: dict[str, Any] = {"num_bins": num_bins}
    if weights is not None:
        cache["point_weights"] = weights
    job = Job(
        mapper_factory=HistogramMapper,
        reducer_factory=HistogramSumReducer,
        combiner_factory=ArraySumCombiner,
        cache=DistributedCache(cache),
    )
    result = chain.run(step_name, job, splits, num_reducers=1)
    matrix = result.as_dict()[_KEY]
    return [
        Histogram(attribute=a, counts=matrix[a]) for a in range(matrix.shape[0])
    ]
