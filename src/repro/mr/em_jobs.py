"""EM as MapReduce jobs (paper Section 5.4).

Sample means and covariances are computed by two MR jobs:

- the *sums* job accumulates, per cluster ``C``, the weighted linear sum
  ``l_C = sum_i w_Ci x_i``, the weight sum ``w_C`` and the squared
  weight sum ``w_C2`` (plus, during EM iterations, the data
  log-likelihood so the driver can test convergence);
- the *covariance* job, given the means ``mu_C = l_C / w_C`` via the
  distributed cache, accumulates ``sum_i w_Ci (x_i - mu_C)(x_i - mu_C)^T``
  and the driver applies the unbiased scale
  ``w_C / (w_C^2 - w_C2)``.

The per-point weights ``w_Ci`` are supplied by a *weight model* shipped
in the cache; the same two jobs therefore serve the EM initialisation
(hard support-set weights, then support-set + assigned strays), the EM
iterations (posterior responsibilities) and the MVB moment computation
(hard inside-ball weights) — exactly the reuse the paper describes.

Mappers receive their split as one ``(n, d)`` block (the
:class:`~repro.mapreduce.job.BatchMapper` contract) and compute
vectorised in ``cleanup`` — the split-caching pattern Section 5.5
prescribes for the MVB mapper, without a per-record ``map()`` call.

Per-point weights (the coreset fast path) are multiplied into the
weight-model matrix before the sums are taken, so every moment —
means, covariances, mixture weights, log-likelihood — becomes its
weighted counterpart without touching the weight models themselves.
Unit weights are canonicalised away at the runner boundary, keeping
the unweighted path bitwise unchanged.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.core.em import GaussianMixture
from repro.core.stats import mahalanobis_squared
from repro.core.types import Signature
from repro.mapreduce import BatchMapper, Context, DistributedCache, Job, Reducer
from repro.mapreduce.job import ArraySumCombiner
from repro.mapreduce.chain import JobChain
from repro.mapreduce.types import InputSplit
from repro.mr.aggregate import sum_partials
from repro.mr.weights import canonical_weights, take_weights


class WeightModel:
    """Computes an (n_split, k) weight matrix for a block of points.

    ``data`` is the block in full-space coordinates; implementations
    project to their subspace as needed.
    """

    def weights(self, data: np.ndarray) -> np.ndarray:
        raise NotImplementedError


class CoreSupportWeights(WeightModel):
    """Hard weights: 1 iff the point is in the core's support set
    (EM-initialisation pass 1)."""

    def __init__(self, signatures: list[Signature]) -> None:
        self.signatures = signatures

    def weights(self, data: np.ndarray) -> np.ndarray:
        return np.stack(
            [sig.support_mask(data).astype(float) for sig in self.signatures],
            axis=1,
        )


class SupportPlusStrayWeights(WeightModel):
    """Support-set weights, with stray points (outside every support
    set) assigned to the Mahalanobis-nearest core (EM-initialisation
    pass 2, Section 5.4)."""

    def __init__(
        self,
        signatures: list[Signature],
        means: np.ndarray,
        covariances: np.ndarray,
        attributes: tuple[int, ...],
    ) -> None:
        self.signatures = signatures
        self.means = means
        self.covariances = covariances
        self.attributes = attributes

    def weights(self, data: np.ndarray) -> np.ndarray:
        base = np.stack(
            [sig.support_mask(data).astype(float) for sig in self.signatures],
            axis=1,
        )
        stray = base.sum(axis=1) == 0
        if stray.any():
            sub = data[np.ix_(stray, list(self.attributes))]
            distances = np.stack(
                [
                    mahalanobis_squared(sub, self.means[j], self.covariances[j])
                    for j in range(len(self.signatures))
                ],
                axis=1,
            )
            nearest = np.argmin(distances, axis=1)
            stray_rows = np.where(stray)[0]
            base[stray_rows, nearest] = 1.0
        return base


class ResponsibilityWeights(WeightModel):
    """Soft weights: posterior responsibilities of the current mixture
    (one EM iteration's E-step)."""

    def __init__(self, mixture: GaussianMixture) -> None:
        self.mixture = mixture

    def weights(self, data: np.ndarray) -> np.ndarray:
        sub = self.mixture.project(data)
        return np.exp(self.mixture.log_responsibilities(sub))

    def log_likelihood(
        self, data: np.ndarray, point_weights: np.ndarray | None = None
    ) -> float:
        sub = self.mixture.project(data)
        if point_weights is None:
            return self.mixture.log_likelihood(sub)
        from repro.core.em import _logsumexp_rows

        per_point = _logsumexp_rows(self.mixture._log_joint(sub))
        return float(np.dot(point_weights, per_point))


class InsideBallWeights(WeightModel):
    """Hard weights: 1 iff the point is assigned to the cluster *and*
    lies inside the cluster's minimum volume ball (MVB moments,
    Section 5.5)."""

    def __init__(
        self,
        mixture: GaussianMixture,
        centers: np.ndarray,
        radii: np.ndarray,
    ) -> None:
        self.mixture = mixture
        self.centers = centers
        self.radii = radii

    def weights(self, data: np.ndarray) -> np.ndarray:
        sub = self.mixture.project(data)
        assignment = self.mixture.assign(sub)
        k = self.mixture.num_components
        out = np.zeros((len(data), k), dtype=float)
        for j in range(k):
            members = assignment == j
            if not members.any():
                continue
            inside = (
                np.linalg.norm(sub[members] - self.centers[j], axis=1)
                <= self.radii[j]
            )
            rows = np.where(members)[0]
            out[rows[inside], j] = 1.0
        return out


_SUMS_KEY = "moment_sums"
_COV_KEY = "cov_sums"
_LL_KEY = "log_likelihood"


class _SplitBlockMapper(BatchMapper):
    """Shared base: buffers the split as whole blocks, exposes it in
    cleanup as one ``(n, d)`` array (``None`` for an empty split) plus
    the per-row point weights when the job carries them."""

    def setup(self, context: Context) -> None:
        self._blocks: list[np.ndarray] = []
        self._key_blocks: list[Any] = []
        self._point_weights: np.ndarray | None = context.cache.get(
            "point_weights"
        )

    def map_batch(self, keys: Any, block: np.ndarray, context: Context) -> None:
        self._blocks.append(block)
        if self._point_weights is not None:
            self._key_blocks.append(keys)

    def _split_data(self) -> np.ndarray | None:
        if not self._blocks:
            return None
        if len(self._blocks) == 1:
            return self._blocks[0]
        return np.concatenate(self._blocks)

    def _split_weights(self) -> np.ndarray | None:
        """Per-row weights aligned with :meth:`_split_data` (or None)."""
        if self._point_weights is None or not self._key_blocks:
            return None
        if len(self._key_blocks) == 1:
            return take_weights(self._point_weights, self._key_blocks[0])
        return np.concatenate(
            [take_weights(self._point_weights, k) for k in self._key_blocks]
        )


class MomentSumsMapper(_SplitBlockMapper):
    """Accumulates l_C, w_C and w_C2 for its split.

    The three sums (and, during EM iterations, the split's
    log-likelihood) are packed into **one** ``(k, m+2)`` — or
    ``(k+1, m+2)`` with the LL row — float array per split: columns are
    ``[linear | w_C | w_C2]``, the optional last row is
    ``[ll, 0, ..., 0]``.  A single fixed-shape ndarray value rides the
    columnar shuffle plane (one block concat instead of per-tuple
    pickling); the reducer unpacks back to the historical output
    shape, so nothing downstream changes.
    """

    def setup(self, context: Context) -> None:
        super().setup(context)
        self._model: WeightModel = context.cache["weight_model"]
        self._attributes: tuple[int, ...] = context.cache["attributes"]

    def cleanup(self, context: Context) -> None:
        data = self._split_data()
        if data is None:
            return
        weights = self._model.weights(data)
        point_weights = self._split_weights()
        if point_weights is not None:
            weights = weights * point_weights[:, None]
        sub = data[:, list(self._attributes)]
        linear = weights.T @ sub
        weight_sum = weights.sum(axis=0)
        weight_sq = (weights**2).sum(axis=0)
        packed = np.concatenate(
            [linear, weight_sum[:, None], weight_sq[:, None]], axis=1
        )
        if isinstance(self._model, ResponsibilityWeights):
            ll_row = np.zeros((1, packed.shape[1]))
            ll_row[0, 0] = self._model.log_likelihood(data, point_weights)
            packed = np.concatenate([packed, ll_row], axis=0)
        context.emit(_SUMS_KEY, packed)


class MomentSumsReducer(Reducer):
    """Unpacks the mappers' packed sum blocks to the historical output:
    a ``(linear, w_C, w_C2)`` tuple under ``moment_sums`` plus, when the
    weight model carries one, the total LL under ``log_likelihood``."""

    def reduce(self, key: str, values: list[Any], context: Context) -> None:
        has_ll = isinstance(
            context.cache["weight_model"], ResponsibilityWeights
        )
        k = values[0].shape[0] - (1 if has_ll else 0)
        m = values[0].shape[1] - 2
        total = sum(v[:k] for v in values)
        context.emit(key, (total[:, :m], total[:, m], total[:, m + 1]))
        if has_ll:
            context.emit(
                _LL_KEY, float(np.sum(np.asarray([v[k, 0] for v in values])))
            )


class CovarianceSumsMapper(_SplitBlockMapper):
    """Accumulates sum_i w_Ci (x_i - mu_C)(x_i - mu_C)^T per cluster."""

    def setup(self, context: Context) -> None:
        super().setup(context)
        self._model: WeightModel = context.cache["weight_model"]
        self._attributes: tuple[int, ...] = context.cache["attributes"]
        self._means: np.ndarray = context.cache["means"]

    def cleanup(self, context: Context) -> None:
        data = self._split_data()
        if data is None:
            return
        weights = self._model.weights(data)
        point_weights = self._split_weights()
        if point_weights is not None:
            weights = weights * point_weights[:, None]
        sub = data[:, list(self._attributes)]
        k = weights.shape[1]
        m = sub.shape[1]
        scatter = np.zeros((k, m, m))
        for j in range(k):
            diff = sub - self._means[j]
            scatter[j] = (weights[:, j][:, None] * diff).T @ diff
        context.emit(_COV_KEY, scatter)


class CovarianceSumsReducer(Reducer):
    def reduce(self, key: str, values: list[np.ndarray], context: Context) -> None:
        context.emit(key, sum_partials(values))


def finalize_moments(
    linear: np.ndarray,
    weight_sum: np.ndarray,
    weight_sq: np.ndarray,
    scatter: np.ndarray,
    reg: float = 1e-6,
) -> tuple[np.ndarray, np.ndarray]:
    """Turn reduced sums into (means, covariances) with the paper's
    weighted-covariance scale and the same degenerate-cluster handling
    as :func:`repro.core.em._moments`."""
    k, m = linear.shape
    means = np.empty((k, m))
    covs = np.empty((k, m, m))
    for j in range(k):
        total = weight_sum[j]
        if total <= 0:
            means[j] = np.full(m, 0.5)
            covs[j] = np.eye(m) / 12.0
            continue
        means[j] = linear[j] / total
        denominator = total**2 - weight_sq[j]
        scale = total / denominator if denominator > 0 else 1.0 / total
        covs[j] = scale * scatter[j] + reg * np.eye(m)
    return means, covs


def run_moment_jobs(
    chain: JobChain,
    splits: list[InputSplit],
    weight_model: WeightModel,
    attributes: tuple[int, ...],
    step_prefix: str,
    reg: float = 1e-6,
    point_weights: np.ndarray | None = None,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, float | None]:
    """Run the sums + covariance job pair and finalise the moments.

    Returns ``(means, covariances, weight_sums, log_likelihood)``;
    the log-likelihood is ``None`` unless the weight model is a
    :class:`ResponsibilityWeights`.

    ``point_weights`` (the coreset fast path) multiply into the model's
    weight matrix, turning every moment into its weighted counterpart.

    The covariance job's mappers need the means, so they are shipped in
    its cache — the means computed by the sums job must be finalised by
    the driver in between, exactly the two-job dependency of Section 5.4.
    """
    point_weights = canonical_weights(point_weights)
    sums_cache: dict[str, Any] = {
        "weight_model": weight_model,
        "attributes": attributes,
    }
    if point_weights is not None:
        sums_cache["point_weights"] = point_weights
    sums_job = Job(
        mapper_factory=MomentSumsMapper,
        reducer_factory=MomentSumsReducer,
        combiner_factory=ArraySumCombiner,
        cache=DistributedCache(sums_cache),
    )
    sums_result = chain.run(f"{step_prefix}_sums", sums_job, splits).as_dict()
    linear, weight_sum, weight_sq = sums_result[_SUMS_KEY]
    log_likelihood = sums_result.get(_LL_KEY)

    k, m = linear.shape
    means = np.where(
        weight_sum[:, None] > 0, linear / np.maximum(weight_sum[:, None], 1e-300), 0.5
    )

    cov_job = Job(
        mapper_factory=CovarianceSumsMapper,
        reducer_factory=CovarianceSumsReducer,
        combiner_factory=ArraySumCombiner,
        cache=DistributedCache({**sums_cache, "means": means}),
    )
    scatter = chain.run(f"{step_prefix}_cov", cov_job, splits).as_dict()[_COV_KEY]
    means, covs = finalize_moments(linear, weight_sum, weight_sq, scatter, reg)
    return means, covs, weight_sum, log_likelihood


def run_em_mr(
    chain: JobChain,
    splits: list[InputSplit],
    cores: list,
    n: int,
    max_iter: int = 15,
    tol: float = 1e-5,
    reg: float = 1e-6,
    obs: Any = None,
    point_weights: np.ndarray | None = None,
) -> GaussianMixture:
    """Full MR-side EM: two-pass initialisation from cluster cores, then
    two MR jobs per EM iteration (Section 5.4), mirroring
    :func:`repro.core.em.initialize_from_cores` + :func:`repro.core.em.fit_em`.

    With ``point_weights`` (the coreset fast path) every moment is
    weighted and mixture weights normalise by the total weight ``W``
    instead of ``n`` — the summary stands in for ``W ≈ n`` points.

    ``obs`` (an :class:`repro.obs.Observability`) records the iteration
    count and the log-likelihood trajectory — the paper attributes
    P3C+-MR's runtime largely to EM iterations (Section 7.5.2).
    """
    from repro.core.em import relevant_attributes
    from repro.obs import NULL_OBS

    obs = obs or NULL_OBS

    point_weights = canonical_weights(point_weights)
    normalizer = float(n) if point_weights is None else float(point_weights.sum())

    attributes = relevant_attributes(cores)
    signatures = [core.signature for core in cores]

    # Initialisation pass 1: support-set moments.
    means, covs, _, _ = run_moment_jobs(
        chain,
        splits,
        CoreSupportWeights(signatures),
        attributes,
        "em_init_support",
        point_weights=point_weights,
    )
    # Initialisation pass 2: support sets + Mahalanobis-assigned strays.
    stray_model = SupportPlusStrayWeights(signatures, means, covs, attributes)
    means, covs, weight_sum, _ = run_moment_jobs(
        chain,
        splits,
        stray_model,
        attributes,
        "em_init_full",
        point_weights=point_weights,
    )
    weights = weight_sum / max(weight_sum.sum(), 1.0)
    weights = np.clip(weights, 1e-12, None)
    weights /= weights.sum()
    mixture = GaussianMixture(
        means=means, covariances=covs, weights=weights, attributes=attributes
    )

    history: list[float] = []
    for iteration in range(max_iter):
        model = ResponsibilityWeights(mixture)
        means, covs, totals, log_likelihood = run_moment_jobs(
            chain,
            splits,
            model,
            attributes,
            f"em_iter{iteration}",
            point_weights=point_weights,
        )
        if log_likelihood is not None:
            history.append(log_likelihood)
            obs.record("em.log_likelihood", log_likelihood)
        weights = np.clip(totals / normalizer, 1e-12, None)
        weights /= weights.sum()
        mixture = GaussianMixture(
            means=means, covariances=covs, weights=weights, attributes=attributes
        )
        if len(history) >= 2:
            previous, current = history[-2], history[-1]
            if abs(current - previous) <= tol * (abs(previous) + 1.0):
                break
    mixture.log_likelihood_history = history
    obs.gauge("em.iterations", len(history))
    obs.gauge("em.components", mixture.num_components)
    return mixture
