"""The Light variant's membership job (paper Section 6).

One map-only pass computes, per point, (a) the ``m'`` exclusive
membership — the single covering cluster core, or -1 when the point
supports zero or several cores — and (b) the unique output assignment
(the most interesting covering core).  This is the job-based equivalent
of evaluating every core's support mask, and it lets the Light driver
run from streaming (file-backed) splits without ever materialising the
data matrix in the driver.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.core.types import Signature
from repro.mapreduce import BatchMapper, Context, DistributedCache, Job
from repro.mapreduce.chain import JobChain
from repro.mapreduce.types import InputSplit


class LightMembershipMapper(BatchMapper):
    def setup(self, context: Context) -> None:
        self._signatures: list[Signature] = context.cache["signatures"]
        self._keys: list[Any] = []
        self._blocks: list[np.ndarray] = []

    def map_batch(self, keys: Any, block: np.ndarray, context: Context) -> None:
        self._keys.extend(keys)
        self._blocks.append(block)

    def cleanup(self, context: Context) -> None:
        if not self._blocks:
            return
        data = (
            self._blocks[0]
            if len(self._blocks) == 1
            else np.concatenate(self._blocks)
        )
        masks = np.stack(
            [sig.support_mask(data) for sig in self._signatures], axis=1
        )
        cover_count = masks.sum(axis=1)
        exclusive = np.where(cover_count == 1, np.argmax(masks, axis=1), -1)
        # Cores are ordered by interestingness: the first covering core
        # is the unique output assignment for shared points.
        assigned = np.where(
            cover_count > 0, np.argmax(masks, axis=1), -1
        )
        # One pair per split, not per point: the (keys, exclusive,
        # assigned) arrays travel as three int64 vectors and the driver
        # scatters them — n points cost one emit.
        keys_arr = np.asarray(self._keys, dtype=np.int64)
        context.emit(
            int(context.task_id),
            (keys_arr, exclusive.astype(np.int64), assigned.astype(np.int64)),
        )


def run_light_membership_job(
    chain: JobChain,
    splits: list[InputSplit],
    signatures: list[Signature],
    n: int,
    step_name: str = "light_membership",
) -> tuple[np.ndarray, np.ndarray]:
    """Returns ``(exclusive, assignment)`` arrays of length ``n``."""
    job = Job(
        mapper_factory=LightMembershipMapper,
        cache=DistributedCache({"signatures": list(signatures)}),
    )
    result = chain.run(step_name, job, splits, num_reducers=0)
    exclusive = np.full(n, -1, dtype=np.int64)
    assignment = np.full(n, -1, dtype=np.int64)
    for _, (keys, exc, assign) in result.output:
        exclusive[keys] = exc
        assignment[keys] = assign
    return exclusive, assignment
