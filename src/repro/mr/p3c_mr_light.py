"""P3C+-MR-Light: the Light MapReduce driver (paper Section 6).

All of P3C+-MR except the EM and outlier-detection phases: cluster
cores *are* the clusters.  Attribute-inspection histograms use the
``m'`` mapping — only points supporting exactly one core contribute —
which sidesteps both the blurring effect and the redundancy problem for
shared regions.  For the unique point assignment required of a
projected clustering, shared points go to the most interesting covering
core (cores are sorted by their ``Supp/Supp_exp`` ratio).
"""

from __future__ import annotations

import numpy as np

from repro.core.p3c_plus import P3CPlusConfig, _validate_data
from repro.core.types import ClusteringResult
from repro.mapreduce import RuntimeContext
from repro.mapreduce.types import InputSplit, split_records
from repro.mr.light_jobs import run_light_membership_job
from repro.mr.p3c_mr import P3CPlusMR, P3CPlusMRConfig
from repro.obs import Observability


class P3CPlusMRLight(P3CPlusMR):
    """The Light variant: no EM, no outlier detection."""

    def __init__(
        self,
        config: P3CPlusConfig | None = None,
        mr_config: P3CPlusMRConfig | None = None,
        obs: Observability | None = None,
        context: RuntimeContext | None = None,
    ) -> None:
        super().__init__(config, mr_config, obs=obs, context=context)

    def fit(self, data: np.ndarray) -> ClusteringResult:
        """Cluster an in-memory data matrix."""
        data = _validate_data(data)
        n, d = data.shape
        splits = split_records(data, self.mr_config.num_splits)
        return self.fit_splits(splits, n, d)

    def fit_splits(
        self, splits: list[InputSplit], n: int, d: int
    ) -> ClusteringResult:
        """Cluster from pre-built (possibly file-backed) input splits."""
        obs = self._begin_run()
        with obs.run("p3c_plus_mr_light", n=n, d=d):
            chain = self._make_chain()

            cores, diagnostics = self._run_core_phase(splits, n, chain)
            if not cores:
                return self._empty_result(n, d, diagnostics, chain)

            signatures = [core.signature for core in cores]
            self._register_fitted(
                algorithm="mr-light",
                cores=cores,
                mixture=None,
                od_means=None,
                od_covariances=None,
                od_counts=None,
                num_bins=diagnostics["num_bins"],
                n=n,
                d=d,
            )

            # Exclusive membership (m') and the unique output assignment
            # come from one map-only job (Section 6).
            with obs.stage("light_membership"):
                exclusive, assignment = run_light_membership_job(
                    chain, splits, signatures, n
                )
                obs.gauge(
                    "light.exclusive_points", int((exclusive >= 0).sum())
                )
                obs.gauge(
                    "light.shared_points",
                    int(((exclusive < 0) & (assignment >= 0)).sum()),
                )

            # Clusters whose every supporting point is shared fall back
            # to the full support set for inspection, as the serial
            # Light does.
            inspect_membership = exclusive.copy()
            for j in range(len(cores)):
                if not (exclusive == j).any():
                    inspect_membership[assignment == j] = j

            result = self._finish(
                splits,
                n,
                d,
                chain,
                cores,
                inspect_membership,
                diagnostics,
            )
            # _finish derived memberships from the inspection mapping;
            # output clusters must carry the *full* (uniquely assigned)
            # memberships.
            for cluster in result.clusters:
                j = cores.index(cluster.core)
                cluster.members = np.where(assignment == j)[0]
            assigned = np.zeros(n, dtype=bool)
            for cluster in result.clusters:
                assigned[cluster.members] = True
            result.outliers = np.where(~assigned)[0]
            return result
