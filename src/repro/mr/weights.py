"""Per-point weight plumbing shared by the weighted MR kernels.

The coreset fast path reruns the P3C+ chain on a small weighted summary
(points, weights).  Every hot-stage job — histogram, RSSC support, EM
moments — accepts an optional full weight vector via its distributed
cache and indexes it with the record keys of its batches (record keys
of array- and file-backed splits are global row indices, so chunked
deliveries of one split stay consistent and chaos retries re-read the
exact same weights).

Two invariants live here:

- :func:`canonical_weights` maps an all-ones vector to ``None`` at the
  job boundary.  Weighted kernels accumulate in float64 while the
  classic kernels use int64 bincounts/popcounts — numerically equal for
  unit weights but not byte-equal — so unit-weight runs are routed onto
  the unweighted code path and stay **bitwise identical** to a run that
  never heard of weights (the parity suite pins this).
- :func:`take_weights` is the one sanctioned way to slice the vector,
  so every kernel indexes identically (int64 keys, bounds-checked by
  numpy).
"""

from __future__ import annotations

from typing import Any, Sequence

import numpy as np


def canonical_weights(weights: np.ndarray | None) -> np.ndarray | None:
    """Validate a weight vector; canonicalise unit weights to ``None``.

    Returns a float64 copy-free view when genuine weights are present.
    """
    if weights is None:
        return None
    weights = np.asarray(weights, dtype=float)
    if weights.ndim != 1:
        raise ValueError(
            f"point weights must be 1-D, got shape {weights.shape}"
        )
    if len(weights) == 0:
        raise ValueError("point weights must be non-empty")
    if not np.all(np.isfinite(weights)):
        raise ValueError("point weights must be finite")
    if np.any(weights < 0):
        raise ValueError("point weights must be non-negative")
    if np.all(weights == 1.0):
        return None
    return weights


def take_weights(weights: np.ndarray, keys: Sequence[Any]) -> np.ndarray:
    """Slice the full weight vector down to one batch's rows."""
    index = np.asarray(keys, dtype=np.int64)
    return weights[index]
