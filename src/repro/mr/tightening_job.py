"""Interval-tightening job (paper Section 5.7).

Each mapper computes the per-split minimum and maximum of every
cluster's members in the cluster's relevant dimensions; the single
reducer aggregates by repeated min/max extraction.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.core.types import Interval, Signature
from repro.mapreduce import Context, DistributedCache, Job, Reducer
from repro.mapreduce.chain import JobChain
from repro.mapreduce.types import InputSplit
from repro.mr.attribute_jobs import MembershipModel, _BufferedMapper


class TighteningMapper(_BufferedMapper):
    def setup(self, context: Context) -> None:
        super().setup(context)
        self._attributes: dict[int, tuple[int, ...]] = context.cache[
            "cluster_attributes"
        ]

    def cleanup(self, context: Context) -> None:
        block = self._block()
        if block is None:
            return
        _, data, labels = block
        for cid, attributes in self._attributes.items():
            members = data[labels == cid]
            if len(members) == 0:
                continue
            columns = members[:, list(attributes)]
            context.emit(cid, (columns.min(axis=0), columns.max(axis=0)))


class MinMaxReducer(Reducer):
    def reduce(self, key: Any, values: list[Any], context: Context) -> None:
        mins = np.min(np.stack([v[0] for v in values]), axis=0)
        maxs = np.max(np.stack([v[1] for v in values]), axis=0)
        context.emit(key, (mins, maxs))


def run_tightening_job(
    chain: JobChain,
    splits: list[InputSplit],
    membership: MembershipModel,
    cluster_attributes: dict[int, tuple[int, ...]],
    step_name: str = "interval_tightening",
) -> dict[int, Signature]:
    """Tightened output signature per cluster id."""
    job = Job(
        mapper_factory=TighteningMapper,
        reducer_factory=MinMaxReducer,
        cache=DistributedCache(
            {
                "membership": membership,
                "cluster_attributes": cluster_attributes,
            }
        ),
    )
    result = chain.run(step_name, job, splits, num_reducers=1)
    signatures: dict[int, Signature] = {}
    for cid, (mins, maxs) in result.as_dict().items():
        attributes = cluster_attributes[int(cid)]
        signatures[int(cid)] = Signature(
            [
                Interval(attribute, float(lo), float(hi))
                for attribute, lo, hi in zip(attributes, mins, maxs)
            ]
        )
    return signatures
