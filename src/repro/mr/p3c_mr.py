"""P3C+-MR: the full MapReduce driver (paper Section 5).

Job plan (one line per MR job):

1.  histogram building                                 (Section 5.1)
2.  candidate proving, one job per collected batch     (Section 5.3)
    + candidate-generation jobs when pairs exceed T_gen
3.  EM initialisation: 2 x (sums + covariance) jobs    (Section 5.4)
4.  EM iterations: 2 jobs each                         (Section 5.4)
5.  MVB centre/radius + moments (MVB variant only)     (Section 5.5)
6.  OD job (map-only membership labelling)             (Section 5.5)
7.  attribute-inspection histogram job (+ AI proving)  (Section 5.6)
8.  interval-tightening job                            (Section 5.7)

Relevant-interval detection stays in the driver (Section 5.2: at most
``d * k`` chi-squared statistics — parallelising it buys nothing).
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.core.binning import Histogram
from repro.core.intervals import find_relevant_intervals
from repro.core.p3c_plus import P3CPlusConfig, _validate_data
from repro.core.types import ClusteringResult, ProjectedCluster
from repro.mapreduce import (
    FaultPlan,
    JobChain,
    MapReduceRuntime,
    RuntimeContext,
    new_run_id,
)
from repro.mapreduce.types import InputSplit, split_records
from repro.mr.attribute_jobs import ArrayMembership
from repro.mr.candidates import DEFAULT_T_GEN
from repro.mr.core_generation import DEFAULT_T_C, generate_cluster_cores_mr
from repro.mr.coreset import build_coreset, run_assign_job
from repro.mr.em_jobs import run_em_mr
from repro.mr.histogram import run_histogram_job
from repro.mr.inspection import mr_attribute_inspection
from repro.mr.outlier_jobs import run_mvb_jobs, run_od_job
from repro.mr.tightening_job import run_tightening_job
from repro.mr.weights import canonical_weights
from repro.obs import NULL_OBS, Observability


@dataclass(frozen=True)
class P3CPlusMRConfig:
    """MapReduce-side knobs, complementing :class:`P3CPlusConfig`."""

    num_splits: int = 8
    max_workers: int | None = None  # None/1 = serial executor
    #: Executor backend ("serial"/"thread"/"process"); ``None`` keeps
    #: the auto rule: max_workers > 1 selects the process pool.
    executor: str | None = None
    t_gen: int = DEFAULT_T_GEN
    t_c: int = DEFAULT_T_C
    multi_level: bool = True
    #: Deterministic fault-injection schedule (chaos testing); ``None``
    #: leaves the runtime entirely unwrapped.
    fault_plan: FaultPlan | None = None
    #: Per-attempt task wall-clock budget in seconds (``None`` = none).
    task_timeout_s: float | None = None
    #: Speculatively re-execute straggler tasks (first result wins).
    speculative: bool = False
    #: Directory for chain checkpoints (``None`` disables them).
    checkpoint_dir: str | None = None
    #: Restore completed jobs from ``checkpoint_dir`` instead of
    #: re-running them (requires ``checkpoint_dir``).
    resume: bool = False
    #: Root directory of a serving :class:`repro.serving.ModelRegistry`.
    #: When set, the fitted model bundle is saved there at the end of
    #: the run and tagged ``latest`` (see ``P3CPlusMR.model_id``).
    model_registry: str | None = None
    #: Resident-payload byte budget per map task (out-of-core plane):
    #: over-budget columnar shuffles spill to disk and file-backed
    #: splits stream to batch mappers in budget-sized chunks.  ``None``
    #: keeps the all-in-heap data plane.
    memory_budget_bytes: int | None = None
    #: Root directory for shuffle spill segments (``None`` = per-job
    #: temporary directories).
    spill_dir: str | None = None
    #: Explicit cap on rows per ``BatchMapper`` delivery (``None`` =
    #: whole-split blocks, or budget-derived chunks when a memory
    #: budget is set).
    max_block_rows: int | None = None
    #: Approximate fast path: target size of the one-pass weighted
    #: summary the chain runs on (``None`` = exact run over all
    #: points).  A size >= n silently falls back to the exact path.
    coreset_size: int | None = None
    #: Summary sampler: ``"uniform"`` or ``"lightweight"``
    #: (see :mod:`repro.mr.coreset`).
    coreset_mode: str = "uniform"
    #: Seed of the deterministic per-split samplers.
    coreset_seed: int = 0


class P3CPlusMR:
    """The full P3C+-MR algorithm."""

    def __init__(
        self,
        config: P3CPlusConfig | None = None,
        mr_config: P3CPlusMRConfig | None = None,
        obs: Observability | None = None,
        context: RuntimeContext | None = None,
    ) -> None:
        self.config = config or P3CPlusConfig()
        self.mr_config = mr_config or P3CPlusMRConfig()
        self._base_obs = obs or NULL_OBS
        self.obs = self._base_obs
        #: Service-plane wiring: when set, the runtime is built from
        #: this context (shared-pool executor, per-chain event log)
        #: instead of ``mr_config``'s executor knobs.
        self.context = context
        self.chain: JobChain | None = None
        #: Serving bundle of the last fit (``None`` until a run with
        #: cluster cores completes); persisted when
        #: ``mr_config.model_registry`` is set.
        self.fitted_model = None
        self.model_id: str | None = None

    # -- shared front half (also used by the Light driver) -------------

    def _begin_run(self) -> Observability:
        """Scope observability to this fit: per-run spans and metrics.

        Two drivers sharing one process (or one service obs) each get
        their own scope, so back-to-back reports stay disjoint; scoped
        contexts handed in by the service pass through unchanged.
        """
        base = self._base_obs
        if self.context is not None and self.context.obs is not None:
            base = self.context.obs
        run_id = (
            self.context.run_id if self.context is not None else None
        ) or new_run_id("chain")
        self.obs = base.for_run(run_id)
        return self.obs

    def _make_chain(self) -> JobChain:
        """Runtime + chain wired to this driver's observability context."""
        mr_config = self.mr_config
        if self.context is not None:
            runtime = MapReduceRuntime(
                obs=self.obs if self.obs.enabled else None,
                context=self.context,
            )
        else:
            runtime = MapReduceRuntime(
                max_workers=mr_config.max_workers,
                executor=mr_config.executor,
                obs=self.obs if self.obs.enabled else None,
                fault_plan=mr_config.fault_plan,
                task_timeout_s=mr_config.task_timeout_s,
                speculative=mr_config.speculative,
            )
        chain = JobChain(
            runtime,
            checkpoint=mr_config.checkpoint_dir,
            resume=mr_config.resume,
            run_id=getattr(self.obs, "run_id", None),
            memory_budget_bytes=mr_config.memory_budget_bytes,
            spill_dir=mr_config.spill_dir,
            max_block_rows=mr_config.max_block_rows,
        )
        self.chain = chain
        return chain

    def _run_core_phase(
        self,
        splits: list[InputSplit],
        n: int,
        chain: JobChain,
        weights: np.ndarray | None = None,
        effective_n: float | None = None,
    ):
        """Histogram job + interval detection + cluster-core generation.

        With ``weights`` (the coreset fast path) the histogram counts
        are weighted and rescaled to the effective sample size before
        the chi-squared interval test, and the Poisson/effect-size
        proving runs at ``n = effective_n`` — so both tests keep honest
        statistical power on the small summary; ``n`` is then the
        ESS-rounded summary size the caller derived.
        """
        obs = self.obs
        with obs.stage("histograms"):
            num_bins = self.config.num_bins(n)
            obs.gauge("binning.bins_per_attribute", num_bins)
            histograms = run_histogram_job(chain, splits, num_bins, weights=weights)
            if weights is not None:
                scale = float(effective_n) / float(weights.sum())
                histograms = [
                    Histogram(attribute=h.attribute, counts=h.counts * scale)
                    for h in histograms
                ]
        with obs.stage("interval_detection"):
            intervals = find_relevant_intervals(
                histograms, alpha=self.config.chi2_alpha
            )
            obs.gauge("intervals.attributes", len(histograms))
            obs.gauge("intervals.relevant", len(intervals))
        with obs.stage("core_generation"):
            cores, stats = generate_cluster_cores_mr(
                chain,
                splits,
                intervals,
                n,
                poisson_alpha=self.config.poisson_alpha,
                theta_cc=self.config.theta_cc,
                redundancy_filter=self.config.redundancy_filter,
                t_gen=self.mr_config.t_gen,
                t_c=self.mr_config.t_c,
                multi_level=self.mr_config.multi_level,
                obs=obs,
                weights=weights,
                effective_n=effective_n,
            )
        diagnostics = {
            "num_bins": num_bins,
            "num_relevant_intervals": len(intervals),
            "candidates_per_level": stats.candidates_per_level,
            "proving_jobs": stats.proving_jobs,
            "prove_stats": stats.prove_stats.as_dict(),
            "cores_before_redundancy": stats.cores_before_redundancy,
            "cores_after_redundancy": stats.cores_after_redundancy,
        }
        return cores, diagnostics

    def _empty_result(
        self, n: int, d: int, diagnostics: dict, chain: JobChain
    ) -> ClusteringResult:
        diagnostics["mr_jobs"] = chain.num_jobs
        return ClusteringResult(
            clusters=[],
            outliers=np.arange(n),
            n_points=n,
            n_dims=d,
            metadata=diagnostics,
        )

    # -- full pipeline ---------------------------------------------------

    def fit(self, data: np.ndarray) -> ClusteringResult:
        """Cluster an in-memory data matrix."""
        data = _validate_data(data)
        n, d = data.shape
        splits = split_records(data, self.mr_config.num_splits)
        return self.fit_splits(splits, n, d)

    def fit_splits(
        self, splits: list[InputSplit], n: int, d: int
    ) -> ClusteringResult:
        """Cluster from pre-built input splits (in-memory or
        file-backed, see :func:`repro.mapreduce.fs.make_csv_splits`);
        the driver never materialises the data matrix."""
        coreset_size = self.mr_config.coreset_size
        if coreset_size is not None and coreset_size < n:
            return self._fit_splits_coreset(splits, n, d)
        obs = self._begin_run()
        with obs.run("p3c_plus_mr", n=n, d=d):
            chain = self._make_chain()

            cores, diagnostics = self._run_core_phase(splits, n, chain)
            if not cores:
                return self._empty_result(n, d, diagnostics, chain)

            with obs.stage("em"):
                mixture = run_em_mr(
                    chain,
                    splits,
                    cores,
                    n,
                    max_iter=self.config.em_max_iter,
                    obs=obs,
                )
            diagnostics["em_iterations"] = len(mixture.log_likelihood_history)

            with obs.stage("outlier_detection", method=self.config.outlier_method):
                if self.config.outlier_method == "mvb":
                    od_means, od_covs, moment_counts = run_mvb_jobs(
                        chain, splits, mixture
                    )
                else:
                    od_means, od_covs = mixture.means, mixture.covariances
                    moment_counts = mixture.weights * n
                membership_map = run_od_job(
                    chain,
                    splits,
                    mixture,
                    od_means,
                    od_covs,
                    moment_counts,
                    alpha=self.config.outlier_alpha,
                )
                membership = np.full(n, -1, dtype=np.int64)
                for index, label in membership_map.items():
                    membership[index] = label
                obs.gauge(
                    "outliers.removed", int((membership == -1).sum())
                )

            self._register_fitted(
                algorithm="mr",
                cores=cores,
                mixture=mixture,
                od_means=od_means,
                od_covariances=od_covs,
                od_counts=np.asarray(moment_counts, dtype=float),
                num_bins=diagnostics["num_bins"],
                n=n,
                d=d,
            )
            return self._finish(
                splits, n, d, chain, cores, membership, diagnostics
            )

    def _fit_splits_coreset(
        self, splits: list[InputSplit], n: int, d: int
    ) -> ClusteringResult:
        """Approximate fast path: fit the chain on a one-pass weighted
        summary, then label the full data with one map-only pass.

        Exactly two full-data scans (summary build + final assignment)
        regardless of EM iteration count; every other job runs on the
        ``m << n`` summary with the weighted kernels.  Statistics run at
        the summary's effective sample size so proving power is honest.
        """
        mr_config = self.mr_config
        obs = self._begin_run()
        with obs.run("p3c_plus_mr_coreset", n=n, d=d):
            chain = self._make_chain()

            with obs.stage("coreset_summary", mode=mr_config.coreset_mode):
                started = time.perf_counter()
                summary = build_coreset(
                    chain,
                    splits,
                    mr_config.coreset_size,
                    mode=mr_config.coreset_mode,
                    seed=mr_config.coreset_seed,
                )
                build_s = time.perf_counter() - started
                weights = canonical_weights(summary.weights)
                ess = (
                    summary.effective_size
                    if weights is not None
                    else float(summary.size)
                )
                obs.gauge("mr.coreset_points", summary.size)
                obs.record("mr.coreset_build_s", build_s)
                obs.gauge("mr.coreset_total_weight", summary.total_weight)
                obs.gauge("mr.coreset_effective_size", ess)

            m = summary.size
            summary_splits = split_records(
                summary.points, min(mr_config.num_splits, m)
            )
            total_weight = summary.total_weight

            cores, diagnostics = self._run_core_phase(
                summary_splits,
                max(1, round(ess)),
                chain,
                weights=weights,
                effective_n=ess,
            )
            # No timings here: result metadata must stay byte-identical
            # across executors and chaos runs (build_s lives in the
            # mr.coreset_build_s obs series instead).
            diagnostics["coreset"] = {
                "mode": summary.mode,
                "requested_size": summary.requested_size,
                "size": m,
                "total_weight": total_weight,
                "effective_size": ess,
            }
            if not cores:
                return self._empty_result(n, d, diagnostics, chain)

            with obs.stage("em", coreset=True):
                mixture = run_em_mr(
                    chain,
                    summary_splits,
                    cores,
                    m,
                    max_iter=self.config.em_max_iter,
                    obs=obs,
                    point_weights=weights,
                )
            diagnostics["em_iterations"] = len(mixture.log_likelihood_history)

            with obs.stage("outlier_detection", method=self.config.outlier_method):
                if self.config.outlier_method == "mvb":
                    od_means, od_covs, moment_counts = run_mvb_jobs(
                        chain, summary_splits, mixture, point_weights=weights
                    )
                else:
                    od_means, od_covs = mixture.means, mixture.covariances
                    # Mixture weights were normalised by the total
                    # weight, so this is already the full-data count.
                    moment_counts = mixture.weights * total_weight
                membership_small = run_od_job(
                    chain,
                    summary_splits,
                    mixture,
                    od_means,
                    od_covs,
                    moment_counts,
                    alpha=self.config.outlier_alpha,
                )
                membership = np.full(m, -1, dtype=np.int64)
                for index, label in membership_small.items():
                    membership[index] = label

            self._register_fitted(
                algorithm="mr",
                cores=cores,
                mixture=mixture,
                od_means=od_means,
                od_covariances=od_covs,
                od_counts=np.asarray(moment_counts, dtype=float),
                num_bins=diagnostics["num_bins"],
                n=n,
                d=d,
            )

            # AI + tightening characterise the clusters (their relevant
            # attributes and output signatures) on the summary; the one
            # remaining full-data pass assigns every original point.
            result = self._finish(
                summary_splits, m, d, chain, cores, membership, diagnostics
            )
            with obs.stage("coreset_assign"):
                assignment = run_assign_job(
                    chain, splits, self.fitted_model, n
                )
            # _finish counted jobs before the assignment pass ran.
            diagnostics["mr_jobs"] = chain.num_jobs
            diagnostics["shuffle_records"] = chain.total_shuffle_records
            for cluster in result.clusters:
                j = cores.index(cluster.core)
                cluster.members = np.where(assignment == j)[0]
            assigned = np.zeros(n, dtype=bool)
            for cluster in result.clusters:
                assigned[cluster.members] = True
            result.outliers = np.where(~assigned)[0]
            result.n_points = n
            obs.gauge("outliers.final", int((~assigned).sum()))
            return result

    def _register_fitted(
        self,
        *,
        algorithm: str,
        cores,
        mixture,
        od_means,
        od_covariances,
        od_counts,
        num_bins: int,
        n: int,
        d: int,
    ) -> None:
        """Build the serving bundle; persist it when a registry is set."""
        # Imported lazily: repro.serving pulls in repro.mr, which would
        # cycle at module import time.
        from repro.serving import FittedModel, ModelRegistry

        self.fitted_model = FittedModel(
            algorithm=algorithm,
            cores=tuple(cores),
            mixture=mixture,
            od_means=od_means,
            od_covariances=od_covariances,
            od_counts=od_counts,
            outlier_alpha=self.config.outlier_alpha,
            num_bins=num_bins,
            n_points=n,
            n_dims=d,
        )
        if self.mr_config.model_registry:
            registry = ModelRegistry(self.mr_config.model_registry)
            self.model_id = registry.save(self.fitted_model, tags=("latest",))
            self.obs.count("serving.models_registered")

    def _finish(
        self,
        splits: list[InputSplit],
        n: int,
        d: int,
        chain: JobChain,
        cores,
        membership: np.ndarray,
        diagnostics: dict,
    ) -> ClusteringResult:
        """Attribute inspection + tightening + result assembly, shared
        between the full and Light drivers."""
        obs = self.obs
        model = ArrayMembership(membership)
        sizes = {
            j: int((membership == j).sum()) for j in range(len(cores))
        }
        known = {j: core.attributes for j, core in enumerate(cores)}
        with obs.stage("attribute_inspection", prove=self.config.ai_proving):
            attributes = mr_attribute_inspection(
                chain,
                splits,
                model,
                known,
                sizes,
                chi2_alpha=self.config.chi2_alpha,
                prove=self.config.ai_proving,
                poisson_alpha=self.config.poisson_alpha,
                theta_cc=self.config.theta_cc,
                max_bins=self.config.max_bins,
                obs=obs,
            )

        cluster_attributes = {
            j: tuple(sorted(attributes[j]))
            for j in range(len(cores))
            if sizes.get(j, 0) > 0 and attributes.get(j)
        }
        with obs.stage("tightening"):
            signatures = run_tightening_job(
                chain, splits, model, cluster_attributes
            )

        clusters: list[ProjectedCluster] = []
        for j, core in enumerate(cores):
            if j not in cluster_attributes:
                continue
            members = np.where(membership == j)[0]
            clusters.append(
                ProjectedCluster(
                    members=members,
                    relevant_attributes=frozenset(cluster_attributes[j]),
                    signature=signatures.get(j),
                    core=core,
                )
            )
        assigned = np.zeros(n, dtype=bool)
        for cluster in clusters:
            assigned[cluster.members] = True
        diagnostics["mr_jobs"] = chain.num_jobs
        diagnostics["shuffle_records"] = chain.total_shuffle_records
        obs.gauge("clusters.found", len(clusters))
        obs.gauge("outliers.final", int((~assigned).sum()))
        return ClusteringResult(
            clusters=clusters,
            outliers=np.where(~assigned)[0],
            n_points=n,
            n_dims=d,
            metadata=diagnostics,
        )
