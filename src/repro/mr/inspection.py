"""Driver-side orchestration of attribute inspection over MR jobs.

The histograms come from :func:`repro.mr.attribute_jobs.run_cluster_histogram_job`;
the chi-squared marking runs in the driver (cheap, Section 5.2's
argument applies); AI proving, when enabled, needs the augmented-
signature supports and therefore one more MR job (Section 5.6).
"""

from __future__ import annotations

from repro.core.binning import freedman_diaconis_bins
from repro.core.intervals import find_relevant_intervals_for_histogram
from repro.core.stats import cohens_d_cc, poisson_deviation_significant
from repro.core.types import Interval
from repro.mapreduce.chain import JobChain
from repro.mapreduce.types import InputSplit
from repro.mr.attribute_jobs import (
    MembershipModel,
    run_ai_proving_job,
    run_cluster_histogram_job,
)
from repro.obs import NULL_OBS, Observability


def mr_attribute_inspection(
    chain: JobChain,
    splits: list[InputSplit],
    membership: MembershipModel,
    known_attributes: dict[int, frozenset[int]],
    sizes: dict[int, int],
    chi2_alpha: float = 0.001,
    prove: bool = True,
    poisson_alpha: float = 0.01,
    theta_cc: float | None = 0.35,
    max_bins: int | None = 200,
    obs: Observability | None = None,
) -> dict[int, frozenset[int]]:
    """Per-cluster relevant attributes after MR attribute inspection.

    Mirrors :func:`repro.core.attribute_inspection.inspect_attributes`
    for every cluster at once: one histogram job, driver-side interval
    detection, one optional AI-proving job.  ``obs`` records the AI
    candidate count and the proving accept/reject attribution.
    """
    obs = obs or NULL_OBS
    bins_by_cluster = {}
    for cid, size in sizes.items():
        if size <= 0:
            continue
        bins = freedman_diaconis_bins(size)
        if max_bins is not None:
            bins = min(bins, max_bins)
        bins_by_cluster[cid] = bins
    if not bins_by_cluster:
        return dict(known_attributes)

    histograms = run_cluster_histogram_job(
        chain, splits, membership, bins_by_cluster
    )

    candidates: list[tuple[int, Interval]] = []
    for cid, cluster_histograms in sorted(histograms.items()):
        known = known_attributes.get(cid, frozenset())
        for histogram in cluster_histograms:
            if histogram.attribute in known:
                continue
            found = find_relevant_intervals_for_histogram(
                histogram, alpha=chi2_alpha
            )
            candidates.extend((cid, interval) for interval in found.intervals)

    accepted: dict[int, set[int]] = {
        cid: set(attrs) for cid, attrs in known_attributes.items()
    }
    obs.gauge("ai.candidate_intervals", len(candidates))
    if not candidates:
        return {cid: frozenset(attrs) for cid, attrs in accepted.items()}

    if prove:
        _, supports = run_ai_proving_job(chain, splits, membership, candidates)
        for (cid, interval), observed in supports.items():
            expected = sizes[cid] * interval.width
            if not poisson_deviation_significant(observed, expected, poisson_alpha):
                obs.count("ai.rejected_poisson")
                continue
            if theta_cc is not None and cohens_d_cc(observed, expected) < theta_cc:
                obs.count("ai.rejected_effect_size")
                continue
            obs.count("ai.accepted")
            accepted.setdefault(cid, set()).add(interval.attribute)
    else:
        for cid, interval in candidates:
            obs.count("ai.accepted")
            accepted.setdefault(cid, set()).add(interval.attribute)

    return {cid: frozenset(attrs) for cid, attrs in accepted.items()}
