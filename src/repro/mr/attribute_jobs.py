"""Attribute-inspection jobs (paper Section 5.6).

One MR job builds a histogram *per cluster* (Eq. 8 restricted to the
cluster's members); when AI proving is enabled a second job counts the
support of the augmented signatures "exactly as in the cluster core
generation step".

Cluster membership is abstracted behind a :class:`MembershipModel`:

- :class:`ArrayMembership` — the membership attribute produced by the
  OD job (full P3C+-MR pipeline);
- :class:`ExclusiveSupportMembership` — the Light variant's ``m'``
  mapping (Section 6): a point contributes only when it supports
  exactly one cluster core.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.core.binning import Histogram, bin_index
from repro.core.types import Interval, Signature
from repro.mapreduce import BatchMapper, Context, DistributedCache, Job, Reducer
from repro.mapreduce.job import ArraySumCombiner
from repro.mapreduce.chain import JobChain
from repro.mapreduce.types import InputSplit
from repro.mr.aggregate import sum_partials


class MembershipModel:
    """Maps a block of (keys, rows) to per-point cluster labels
    (-1 = outlier / excluded)."""

    def labels(self, keys: np.ndarray, data: np.ndarray) -> np.ndarray:
        raise NotImplementedError


class ArrayMembership(MembershipModel):
    """Membership attribute written by the OD job, keyed by row index."""

    def __init__(self, membership: np.ndarray) -> None:
        self.membership = np.asarray(membership, dtype=np.int64)

    def labels(self, keys: np.ndarray, data: np.ndarray) -> np.ndarray:
        return self.membership[keys]


class ExclusiveSupportMembership(MembershipModel):
    """Section 6's ``m'`` mapping: label = the single covering core, or
    -1 when the point supports zero or more than one core."""

    def __init__(self, signatures: list[Signature]) -> None:
        self.signatures = signatures

    def labels(self, keys: np.ndarray, data: np.ndarray) -> np.ndarray:
        masks = np.stack(
            [sig.support_mask(data) for sig in self.signatures], axis=1
        )
        counts = masks.sum(axis=1)
        labels = np.where(counts == 1, np.argmax(masks, axis=1), -1)
        return labels.astype(np.int64)


class _BufferedMapper(BatchMapper):
    """Shared buffering base: caches the split, exposes labels in cleanup."""

    def setup(self, context: Context) -> None:
        self._model: MembershipModel = context.cache["membership"]
        self._keys: list[Any] = []
        self._blocks: list[np.ndarray] = []

    def map_batch(self, keys: Any, block: np.ndarray, context: Context) -> None:
        self._keys.extend(keys)
        self._blocks.append(block)

    def _block(self) -> tuple[np.ndarray, np.ndarray, np.ndarray] | None:
        if not self._blocks:
            return None
        keys = np.asarray(self._keys, dtype=np.int64)
        data = (
            self._blocks[0]
            if len(self._blocks) == 1
            else np.concatenate(self._blocks)
        )
        return keys, data, self._model.labels(keys, data)


class ClusterHistogramMapper(_BufferedMapper):
    """Per-cluster (d x m_c) histogram partials.

    Bin counts vary per cluster (Freedman-Diaconis on the cluster's
    member count), so the resolution ships as a per-cluster dict.
    """

    def setup(self, context: Context) -> None:
        super().setup(context)
        self._bins_by_cluster: dict[int, int] = context.cache["num_bins_by_cluster"]

    def cleanup(self, context: Context) -> None:
        block = self._block()
        if block is None:
            return
        _, data, labels = block
        d = data.shape[1]
        for cid in np.unique(labels):
            cid = int(cid)
            if cid < 0 or cid not in self._bins_by_cluster:
                continue
            num_bins = self._bins_by_cluster[cid]
            members = data[labels == cid]
            counts = np.zeros((d, num_bins), dtype=np.int64)
            for attribute in range(d):
                bins = bin_index(members[:, attribute], num_bins)
                counts[attribute] += np.bincount(bins, minlength=num_bins)
            context.emit(cid, counts)


class MatrixSumReducer(Reducer):
    def reduce(self, key: Any, values: list[np.ndarray], context: Context) -> None:
        context.emit(key, sum_partials(values))


def run_cluster_histogram_job(
    chain: JobChain,
    splits: list[InputSplit],
    membership: MembershipModel,
    num_bins_by_cluster: dict[int, int],
    step_name: str = "attribute_inspection_histograms",
) -> dict[int, list[Histogram]]:
    """Histograms of every attribute for every cluster's members."""
    job = Job(
        mapper_factory=ClusterHistogramMapper,
        reducer_factory=MatrixSumReducer,
        combiner_factory=ArraySumCombiner,
        cache=DistributedCache(
            {"membership": membership, "num_bins_by_cluster": num_bins_by_cluster}
        ),
    )
    result = chain.run(step_name, job, splits, num_reducers=1)
    histograms: dict[int, list[Histogram]] = {}
    for cid, matrix in result.as_dict().items():
        histograms[int(cid)] = [
            Histogram(attribute=a, counts=matrix[a])
            for a in range(matrix.shape[0])
        ]
    return histograms


class AIProvingMapper(_BufferedMapper):
    """Counts, per cluster, its member count and the members inside each
    suggested interval (the AI-proving support job)."""

    def setup(self, context: Context) -> None:
        super().setup(context)
        self._candidates: list[tuple[int, Interval]] = context.cache["candidates"]

    def cleanup(self, context: Context) -> None:
        block = self._block()
        if block is None:
            return
        _, data, labels = block
        for cid in np.unique(labels):
            if cid < 0:
                continue
            context.emit(("size", int(cid)), int((labels == cid).sum()))
        for cid, interval in self._candidates:
            members = data[labels == cid]
            if len(members) == 0:
                continue
            inside = interval.contains_column(members[:, interval.attribute])
            context.emit(("supp", int(cid), interval), int(inside.sum()))


class IntSumReducer(Reducer):
    def reduce(self, key: Any, values: list[int], context: Context) -> None:
        context.emit(key, int(sum(values)))


def run_ai_proving_job(
    chain: JobChain,
    splits: list[InputSplit],
    membership: MembershipModel,
    candidates: list[tuple[int, Interval]],
    step_name: str = "ai_proving",
) -> tuple[dict[int, int], dict[tuple[int, Interval], int]]:
    """Returns ``(cluster sizes, interval support per (cluster, interval))``."""
    job = Job(
        mapper_factory=AIProvingMapper,
        reducer_factory=IntSumReducer,
        cache=DistributedCache(
            {"membership": membership, "candidates": candidates}
        ),
    )
    result = chain.run(step_name, job, splits, num_reducers=1)
    sizes: dict[int, int] = {}
    supports: dict[tuple[int, Interval], int] = {}
    for key, value in result.output:
        if key[0] == "size":
            sizes[key[1]] = value
        else:
            supports[(key[1], key[2])] = value
    return sizes, supports
