"""Rapid Signature Support Counter (paper Section 5.3, Figure 3).

Counting the support of |Ŝ| candidate signatures naively costs
``O(|Ŝ| * p)`` interval checks per data point.  The RSSC replaces that
with one binary search and one bitwise AND per *relevant attribute*:

- every signature gets a bit position;
- per attribute, the interval bounds partition [0, 1] into cells, and
  every cell carries a bitmask whose bit ``j`` is set iff a point in
  that cell is **not excluded** from signature ``j`` by this attribute
  (bit stays 1 when the attribute is irrelevant to ``j``, as in the
  paper's Figure 3);
- the signatures containing a point are the AND of its cells' masks.

Cells are alternating boundary singletons and open intervals, so that
closed-interval containment (Definition 1) is reproduced *exactly*:
a property test checks RSSC against brute-force counting bit-for-bit.

Two counting paths share the cell construction:

- the scalar path (:meth:`RSSC.add_point`) walks one point at a time
  with arbitrary-precision Python ``int`` masks — it is the oracle the
  property tests compare against;
- the batch path (:meth:`RSSC.add_points`) processes a whole split at
  once: per relevant attribute one ``np.searchsorted`` over the column,
  cell masks stored as packed ``uint64`` bit-planes of shape
  ``(num_cells, ceil(|Ŝ|/64))``, masks ANDed column-wise across
  attributes and popcounted into the count vector.  Both paths are
  bit-for-bit identical (a property test asserts it); the batch path is
  what the support job's mapper runs on its hot loop.

Values marginally outside [0, 1] (float drift after normalization) are
clamped to the boundary cell in both paths, so a ``1.0 + 1e-12`` never
indexes past the last cell.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.types import Signature

_WORD_BITS = 64
_WORD_MAX = (1 << _WORD_BITS) - 1
#: Explicit little-endian words: the popcount path views them as uint8
#: bytes, and byte order must match bit position regardless of platform.
_WORD_DTYPE = np.dtype("<u8")


def _pack_mask(mask: int, num_words: int) -> np.ndarray:
    """Split an arbitrary-precision bitmask into little-endian uint64
    words (bit ``j`` of the mask lands in word ``j // 64``)."""
    words = np.empty(num_words, dtype=_WORD_DTYPE)
    for w in range(num_words):
        words[w] = (mask >> (_WORD_BITS * w)) & _WORD_MAX
    return words


@dataclass(frozen=True)
class _AttributeBinning:
    """Cell boundaries and per-cell bitmasks for one attribute."""

    attribute: int
    boundaries: np.ndarray  # sorted unique bounds, starts 0.0 ends 1.0
    cell_masks: tuple[int, ...]  # length 2 * len(boundaries) - 1
    packed_masks: np.ndarray  # (num_cells, num_words) uint64 bit-planes

    def cell_of(self, value: float) -> int:
        """Cell index of a value in [0, 1]: singleton cells sit at even
        indices ``2*i`` (value == boundaries[i]), open cells at odd
        indices ``2*i - 1`` (boundaries[i-1] < value < boundaries[i]).
        Values drifting marginally outside [0, 1] clamp to the boundary
        cells (searchsorted would otherwise index past the cell table)."""
        value = min(max(float(value), 0.0), 1.0)
        left = int(np.searchsorted(self.boundaries, value, side="left"))
        right = int(np.searchsorted(self.boundaries, value, side="right"))
        if left != right:
            return 2 * left
        return 2 * left - 1

    def cells_of(self, values: np.ndarray) -> np.ndarray:
        """Vectorised :meth:`cell_of` over one attribute column."""
        values = np.clip(values, 0.0, 1.0)
        left = np.searchsorted(self.boundaries, values, side="left")
        right = np.searchsorted(self.boundaries, values, side="right")
        return np.where(left != right, 2 * left, 2 * left - 1)

    def mask_of(self, value: float) -> int:
        return self.cell_masks[self.cell_of(value)]


class RSSC:
    """Bitmap support counter over a fixed candidate set."""

    def __init__(self, signatures: list[Signature]) -> None:
        self.signatures = list(signatures)
        self._full_mask = (1 << len(self.signatures)) - 1
        self._num_words = max(1, -(-len(self.signatures) // _WORD_BITS))
        self._binnings = self._build_binnings()
        self._full_words = _pack_mask(self._full_mask, self._num_words)

    # -- construction ---------------------------------------------------

    def _build_binnings(self) -> list[_AttributeBinning]:
        by_attr: dict[int, list[tuple[int, float, float]]] = {}
        for j, sig in enumerate(self.signatures):
            for interval in sig:
                by_attr.setdefault(interval.attribute, []).append(
                    (j, interval.lower, interval.upper)
                )
        binnings: list[_AttributeBinning] = []
        for attribute in sorted(by_attr):
            entries = by_attr[attribute]
            bounds = {0.0, 1.0}
            for _, lower, upper in entries:
                bounds.add(lower)
                bounds.add(upper)
            boundaries = np.array(sorted(bounds))
            binnings.append(
                self._build_attribute_binning(attribute, boundaries, entries)
            )
        return binnings

    def _build_attribute_binning(
        self,
        attribute: int,
        boundaries: np.ndarray,
        entries: list[tuple[int, float, float]],
    ) -> _AttributeBinning:
        """Sweep construction of the per-cell masks in O(|entries| + cells).

        A signature's interval ``[l, u]`` covers exactly the contiguous
        cell range ``[2 * idx(l), 2 * idx(u)]`` (its bounds are boundary
        values by construction), so bits toggle on entering and leaving
        that range.  Bit ``j`` of a cell mask is 0 iff signature ``j``
        has an interval on this attribute and the cell lies outside it.
        """
        num_cells = 2 * len(boundaries) - 1
        participating = 0
        toggle_on = [0] * (num_cells + 1)
        toggle_off = [0] * (num_cells + 1)
        for j, lower, upper in entries:
            bit = 1 << j
            participating |= bit
            first = 2 * int(np.searchsorted(boundaries, lower))
            last = 2 * int(np.searchsorted(boundaries, upper))
            toggle_on[first] |= bit
            toggle_off[last + 1] |= bit
        masks: list[int] = []
        active = 0
        packed = np.empty((num_cells, self._num_words), dtype=_WORD_DTYPE)
        for cell in range(num_cells):
            active |= toggle_on[cell]
            active &= ~toggle_off[cell]
            mask = self._full_mask & ~(participating & ~active)
            masks.append(mask)
            packed[cell] = _pack_mask(mask, self._num_words)
        return _AttributeBinning(
            attribute=attribute,
            boundaries=boundaries,
            cell_masks=tuple(masks),
            packed_masks=packed,
        )

    # -- queries ---------------------------------------------------------

    @property
    def num_signatures(self) -> int:
        return len(self.signatures)

    @property
    def relevant_attributes(self) -> tuple[int, ...]:
        return tuple(b.attribute for b in self._binnings)

    def membership_bits(self, point: np.ndarray) -> int:
        """Bitmask of the signatures whose support set contains ``point``
        (the paper's ``Ŝ_in(x)`` as a bit vector)."""
        bits = self._full_mask
        for binning in self._binnings:
            bits &= binning.mask_of(float(point[binning.attribute]))
            if bits == 0:
                return 0
        return bits

    def add_point(self, point: np.ndarray, counts: np.ndarray) -> None:
        """Increment per-signature support counts for one data point."""
        bits = self.membership_bits(point)
        while bits:
            low = bits & -bits
            counts[low.bit_length() - 1] += 1
            bits ^= low

    def membership_words(self, block: np.ndarray) -> np.ndarray:
        """Per-point membership bit vectors of a block, packed as
        ``(n, ceil(|Ŝ|/64))`` uint64 words — the batch form of
        :meth:`membership_bits`."""
        block = np.atleast_2d(np.asarray(block, dtype=float))
        words = np.tile(self._full_words, (len(block), 1))
        for binning in self._binnings:
            cells = binning.cells_of(block[:, binning.attribute])
            words &= binning.packed_masks[cells]
            if not words.any():
                break
        return words

    def membership_matrix(self, block: np.ndarray) -> np.ndarray:
        """Boolean ``(n, num_signatures)`` membership matrix of a block:
        entry ``(i, j)`` is True iff signature ``j`` contains point ``i``.

        This is :meth:`membership_words` unpacked for callers that need
        per-signature membership rather than support counts — the serving
        scorer's core-interval test runs on it.
        """
        block = np.atleast_2d(np.asarray(block, dtype=float))
        if self.num_signatures == 0:
            return np.zeros((len(block), 0), dtype=bool)
        words = self.membership_words(block)
        bits = np.unpackbits(words.view(np.uint8), axis=1, bitorder="little")
        return bits[:, : self.num_signatures].astype(bool)

    def add_points(
        self,
        block: np.ndarray,
        counts: np.ndarray,
        chunk_rows: int = 65536,
    ) -> None:
        """Batch :meth:`add_point` over a whole ``(n, d)`` block.

        One ``searchsorted`` per relevant attribute over the whole
        column, one packed AND per attribute, one popcount into the
        count vector — bit-for-bit identical to the scalar path.
        ``chunk_rows`` bounds the transient unpacked-bit matrix to
        ``chunk_rows * num_signatures`` bytes.
        """
        block = np.atleast_2d(np.asarray(block, dtype=float))
        if len(block) == 0 or self.num_signatures == 0:
            return
        for start in range(0, len(block), chunk_rows):
            words = self.membership_words(block[start : start + chunk_rows])
            # Little-endian uint64 -> uint8 view puts bit j of a point's
            # mask at unpacked column j, i.e. columns map to signatures.
            bits = np.unpackbits(
                words.view(np.uint8), axis=1, bitorder="little"
            )
            counts += bits[:, : self.num_signatures].sum(axis=0, dtype=np.int64)

    def add_points_weighted(
        self,
        block: np.ndarray,
        weights: np.ndarray,
        counts: np.ndarray,
        chunk_rows: int = 65536,
    ) -> None:
        """Weighted :meth:`add_points`: each point contributes its
        weight instead of 1 to every signature containing it.

        ``counts`` must be float64; per chunk the weighted support is
        one ``weights @ bits`` product over the unpacked bit-plane,
        accumulated chunk-sequentially so a fixed chunking yields a
        deterministic float fold.  With all-unit weights the result
        equals :meth:`add_points` numerically but in float dtype —
        callers wanting bitwise parity with the unweighted path must
        canonicalise unit weights to the integer kernel.
        """
        block = np.atleast_2d(np.asarray(block, dtype=float))
        weights = np.asarray(weights, dtype=float)
        if len(weights) != len(block):
            raise ValueError(
                f"weights ({len(weights)}) must align with block rows "
                f"({len(block)})"
            )
        if len(block) == 0 or self.num_signatures == 0:
            return
        for start in range(0, len(block), chunk_rows):
            words = self.membership_words(block[start : start + chunk_rows])
            bits = np.unpackbits(
                words.view(np.uint8), axis=1, bitorder="little"
            )
            counts += weights[start : start + chunk_rows] @ bits[
                :, : self.num_signatures
            ].astype(np.float64)

    def count_supports(self, data: np.ndarray) -> dict[Signature, int]:
        """Supports of all candidate signatures over a data block."""
        counts = np.zeros(self.num_signatures, dtype=np.int64)
        self.add_points(np.atleast_2d(data), counts)
        return {sig: int(c) for sig, c in zip(self.signatures, counts)}
