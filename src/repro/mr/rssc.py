"""Rapid Signature Support Counter (paper Section 5.3, Figure 3).

Counting the support of |Ŝ| candidate signatures naively costs
``O(|Ŝ| * p)`` interval checks per data point.  The RSSC replaces that
with one binary search and one bitwise AND per *relevant attribute*:

- every signature gets a bit position;
- per attribute, the interval bounds partition [0, 1] into cells, and
  every cell carries a bitmask whose bit ``j`` is set iff a point in
  that cell is **not excluded** from signature ``j`` by this attribute
  (bit stays 1 when the attribute is irrelevant to ``j``, as in the
  paper's Figure 3);
- the signatures containing a point are the AND of its cells' masks.

Cells are alternating boundary singletons and open intervals, so that
closed-interval containment (Definition 1) is reproduced *exactly*:
a property test checks RSSC against brute-force counting bit-for-bit.
Masks are arbitrary-precision Python ints, so any number of candidate
signatures is supported.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.types import Signature


@dataclass(frozen=True)
class _AttributeBinning:
    """Cell boundaries and per-cell bitmasks for one attribute."""

    attribute: int
    boundaries: np.ndarray  # sorted unique bounds, starts 0.0 ends 1.0
    cell_masks: tuple[int, ...]  # length 2 * len(boundaries) - 1

    def cell_of(self, value: float) -> int:
        """Cell index of a value in [0, 1]: singleton cells sit at even
        indices ``2*i`` (value == boundaries[i]), open cells at odd
        indices ``2*i - 1`` (boundaries[i-1] < value < boundaries[i])."""
        left = int(np.searchsorted(self.boundaries, value, side="left"))
        right = int(np.searchsorted(self.boundaries, value, side="right"))
        if left != right:
            return 2 * left
        return 2 * left - 1

    def mask_of(self, value: float) -> int:
        return self.cell_masks[self.cell_of(value)]


class RSSC:
    """Bitmap support counter over a fixed candidate set."""

    def __init__(self, signatures: list[Signature]) -> None:
        self.signatures = list(signatures)
        self._full_mask = (1 << len(self.signatures)) - 1
        self._binnings = self._build_binnings()

    # -- construction ---------------------------------------------------

    def _build_binnings(self) -> list[_AttributeBinning]:
        by_attr: dict[int, list[tuple[int, float, float]]] = {}
        for j, sig in enumerate(self.signatures):
            for interval in sig:
                by_attr.setdefault(interval.attribute, []).append(
                    (j, interval.lower, interval.upper)
                )
        binnings: list[_AttributeBinning] = []
        for attribute in sorted(by_attr):
            entries = by_attr[attribute]
            bounds = {0.0, 1.0}
            for _, lower, upper in entries:
                bounds.add(lower)
                bounds.add(upper)
            boundaries = np.array(sorted(bounds))
            binnings.append(
                self._build_attribute_binning(attribute, boundaries, entries)
            )
        return binnings

    def _build_attribute_binning(
        self,
        attribute: int,
        boundaries: np.ndarray,
        entries: list[tuple[int, float, float]],
    ) -> _AttributeBinning:
        """Sweep construction of the per-cell masks in O(|entries| + cells).

        A signature's interval ``[l, u]`` covers exactly the contiguous
        cell range ``[2 * idx(l), 2 * idx(u)]`` (its bounds are boundary
        values by construction), so bits toggle on entering and leaving
        that range.  Bit ``j`` of a cell mask is 0 iff signature ``j``
        has an interval on this attribute and the cell lies outside it.
        """
        num_cells = 2 * len(boundaries) - 1
        participating = 0
        toggle_on = [0] * (num_cells + 1)
        toggle_off = [0] * (num_cells + 1)
        for j, lower, upper in entries:
            bit = 1 << j
            participating |= bit
            first = 2 * int(np.searchsorted(boundaries, lower))
            last = 2 * int(np.searchsorted(boundaries, upper))
            toggle_on[first] |= bit
            toggle_off[last + 1] |= bit
        masks: list[int] = []
        active = 0
        for cell in range(num_cells):
            active |= toggle_on[cell]
            active &= ~toggle_off[cell]
            masks.append(self._full_mask & ~(participating & ~active))
        return _AttributeBinning(
            attribute=attribute,
            boundaries=boundaries,
            cell_masks=tuple(masks),
        )

    # -- queries ---------------------------------------------------------

    @property
    def num_signatures(self) -> int:
        return len(self.signatures)

    @property
    def relevant_attributes(self) -> tuple[int, ...]:
        return tuple(b.attribute for b in self._binnings)

    def membership_bits(self, point: np.ndarray) -> int:
        """Bitmask of the signatures whose support set contains ``point``
        (the paper's ``Ŝ_in(x)`` as a bit vector)."""
        bits = self._full_mask
        for binning in self._binnings:
            bits &= binning.mask_of(float(point[binning.attribute]))
            if bits == 0:
                return 0
        return bits

    def add_point(self, point: np.ndarray, counts: np.ndarray) -> None:
        """Increment per-signature support counts for one data point."""
        bits = self.membership_bits(point)
        while bits:
            low = bits & -bits
            counts[low.bit_length() - 1] += 1
            bits ^= low

    def count_supports(self, data: np.ndarray) -> dict[Signature, int]:
        """Supports of all candidate signatures over a data block."""
        counts = np.zeros(self.num_signatures, dtype=np.int64)
        for point in data:
            self.add_point(point, counts)
        return {sig: int(c) for sig, c in zip(self.signatures, counts)}
