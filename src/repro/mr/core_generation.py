"""Cluster-core generation in MapReduce (Algorithm 1 + Section 5.3).

Combines:

- :func:`repro.mr.candidates.run_candidate_generation` (serial or
  parallel Apriori joins),
- the **multi-level candidate collection** heuristic: candidates are
  *collected* across levels without proving — level ``j+1`` is generated
  from ``Cand_j`` instead of ``Proven_j`` — until

      |Cand_j| = 0  or  (c_sum > T_c  and  |Cand_j| > |Cand_{j-1}|)

  at which point a *single* support job proves the whole collection
  (saving per-level job overhead at the price of weaker Apriori
  pruning),
- :func:`repro.mr.support.run_support_job` (RSSC-based proving),
- the maximality filter and (for P3C+) the redundancy filter.

Because a collected batch always contains every ancestor of its
candidates down to the last proven level, the Eq. 1 parent supports
needed by :class:`repro.core.proving.SupportTester` are always
available.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.apriori import maximal_signatures, singleton_signatures
from repro.core.proving import ProveStats, SupportTester
from repro.core.redundancy import filter_redundant
from repro.core.types import ClusterCore, Interval, Signature
from repro.mapreduce.chain import JobChain
from repro.mapreduce.types import InputSplit
from repro.mr.candidates import DEFAULT_T_GEN, run_candidate_generation
from repro.mr.support import run_support_job
from repro.mr.weights import canonical_weights
from repro.obs import NULL_OBS, Observability

#: Default multi-level collection threshold, scaled down from the
#: paper's cluster-calibrated 3e4 to laptop proportions (collecting too
#: deep without proving loses Apriori pruning entirely and the unproven
#: candidate set grows combinatorially).
DEFAULT_T_C = 2_000


@dataclass
class CoreGenerationStats:
    """Diagnostics of one core-generation run (feeds Figure 5 and the
    multi-level ablation bench)."""

    candidates_per_level: list[int] = field(default_factory=list)
    proving_jobs: int = 0
    candidates_proven_total: int = 0
    cores_before_redundancy: int = 0
    cores_after_redundancy: int = 0
    #: Per-kill-site attribution across every proving batch.
    prove_stats: ProveStats = field(default_factory=ProveStats)

    @property
    def redundancy_killed(self) -> int:
        return self.cores_before_redundancy - self.cores_after_redundancy


def generate_cluster_cores_mr(
    chain: JobChain,
    splits: list[InputSplit],
    intervals: list[Interval],
    n: int,
    poisson_alpha: float = 0.01,
    theta_cc: float | None = 0.35,
    redundancy_filter: bool = True,
    t_gen: int = DEFAULT_T_GEN,
    t_c: int = DEFAULT_T_C,
    multi_level: bool = True,
    obs: Observability | None = None,
    weights: np.ndarray | None = None,
    effective_n: float | None = None,
) -> tuple[list[ClusterCore], CoreGenerationStats]:
    """Run Algorithm 1 against the MapReduce runtime.

    With ``multi_level=False`` every level is proven immediately
    (one support job per level), which is the ablation baseline for the
    T_c heuristic.

    With ``weights`` (the coreset fast path) supports are weighted and
    rescaled to Kish's effective sample size: scale = ESS / W maps the
    weighted support (an estimate of the full-data count, total W) down
    to the ``effective_n = ESS`` points of honest statistical power, so
    the Poisson / effect-size tests run neither over- nor under-confident.
    For a uniform coreset (equal weights) this reduces exactly to
    unweighted proving on the m summary points.
    """
    obs = obs or NULL_OBS
    stats = CoreGenerationStats()
    if not intervals:
        return [], stats

    weights = canonical_weights(weights)
    if weights is not None:
        from repro.core.stats import effective_sample_size

        if effective_n is None:
            effective_n = effective_sample_size(weights)
        support_scale = float(effective_n) / float(weights.sum())
        n_test = float(effective_n)
    else:
        support_scale = 1.0
        n_test = n

    tester = SupportTester(n_test, alpha=poisson_alpha, theta_cc=theta_cc)
    all_supports: dict[Signature, int] = {}
    proven_all: list[Signature] = []

    def prove_batch(batch: list[Signature]) -> list[Signature]:
        """Count + prove one collected batch with a single support job."""
        stats.proving_jobs += 1
        stats.candidates_proven_total += len(batch)
        supports = run_support_job(chain, splits, batch, weights=weights)
        if weights is not None:
            supports = {sig: s * support_scale for sig, s in supports.items()}
        all_supports.update(supports)
        batch_stats = ProveStats()
        proven = tester.prove(
            batch,
            supports,
            known=all_supports,
            proven_set=proven_all,
            stats=batch_stats,
        )
        stats.prove_stats.merge(batch_stats)
        proven_sigs = [p.signature for p in proven]
        proven_all.extend(proven_sigs)
        return proven_sigs

    # Level 1 is always proven on its own (Algorithm 1 line 3).
    level = singleton_signatures(intervals)
    stats.candidates_per_level.append(len(level))
    proven_level = prove_batch(level)

    generation_base = proven_level
    pending: list[Signature] = []
    previous_count = len(level)
    c_sum = 0

    while generation_base:
        candidates = run_candidate_generation(chain, generation_base, t_gen=t_gen)
        candidates = [
            sig
            for sig in candidates
            if sig not in all_supports and sig not in set(pending)
        ]
        stats.candidates_per_level.append(len(candidates))
        c_sum += len(candidates)
        pending.extend(candidates)

        stop_collecting = (
            not multi_level
            or not candidates
            or (c_sum > t_c and len(candidates) > previous_count)
        )
        previous_count = len(candidates)

        if stop_collecting:
            if not pending:
                break
            proven_batch = prove_batch(pending)
            # Continue generation from the proven signatures of the
            # deepest collected level only.
            top_size = max((len(sig) for sig in pending), default=0)
            generation_base = [sig for sig in proven_batch if len(sig) == top_size]
            pending = []
            c_sum = 0
        else:
            # Keep collecting: generate the next level from the
            # (unproven) candidates of this one.
            generation_base = candidates

    maximal = maximal_signatures(proven_all)
    stats.cores_before_redundancy = len(maximal)
    if redundancy_filter:
        maximal = filter_redundant(
            {sig: all_supports[sig] for sig in maximal}, n_test
        )
    stats.cores_after_redundancy = len(maximal)

    for level, count in enumerate(stats.candidates_per_level, start=1):
        obs.record("apriori.candidates_per_level", count)
        obs.gauge(f"apriori.level_{level}_candidates", count)
    obs.gauge("apriori.levels", len(stats.candidates_per_level))
    obs.gauge("apriori.proving_jobs", stats.proving_jobs)
    obs.count("kills.poisson", stats.prove_stats.rejected_poisson)
    obs.count("kills.effect_size", stats.prove_stats.rejected_effect_size)
    obs.count("kills.unproven_parent", stats.prove_stats.rejected_unproven_parent)
    obs.count("kills.redundancy", stats.redundancy_killed)
    obs.gauge("cores.proven_signatures", stats.prove_stats.proven)
    obs.gauge("cores.maximal", stats.cores_before_redundancy)
    obs.gauge("cores.final", stats.cores_after_redundancy)

    cores = [
        ClusterCore(
            signature=sig,
            support=all_supports[sig],
            expected_support=sig.expected_support(n_test),
        )
        for sig in maximal
    ]
    cores.sort(key=lambda c: (-c.interestingness, c.signature.intervals))
    return cores, stats
