"""Named data sets, including the colon-cancer substitute.

The paper's Section 7.6 uses the UCI 'colon cancer' micro-array set
(62 samples x 2000 genes, tumour/normal annotation).  That file is not
redistributable and this environment has no network access, so
:func:`make_colon_like` generates a synthetic stand-in with the same
shape and statistical character: tiny n, huge d, two classes separated
on a small set of informative genes, everything else noise.  The
reproduced claim is the *ordering* P3C+ >= P3C in label accuracy, not
the absolute 71 % / 67 % values (see DESIGN.md, substitutions).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass
class ColonLikeDataset:
    """A synthetic micro-array-like data set with binary labels."""

    data: np.ndarray  # (n_samples, n_genes) in [0, 1]
    labels: np.ndarray  # 0 = normal, 1 = tumour
    informative_genes: np.ndarray

    @property
    def n_samples(self) -> int:
        return len(self.data)

    @property
    def n_genes(self) -> int:
        return self.data.shape[1]


def make_colon_like(
    n_samples: int = 62,
    n_genes: int = 2000,
    n_tumour: int = 34,
    n_informative: int = 10,
    separation: float = 0.45,
    sigma: float = 0.02,
    seed: int = 7,
) -> ColonLikeDataset:
    """Generate the colon-cancer substitute.

    Informative genes are drawn from class-conditional Gaussians whose
    means differ by ``separation`` (on the unit scale); the remaining
    genes are uniform noise shared by both classes.  Defaults mirror the
    real set's 62 samples and 2000 genes (the real class split is
    40/22; the default here is 34/28 because a 22-sample class inside a
    0.25-wide bin is not significantly overfull among 62 points — the
    level-1 Poisson proving would erase it for *every* algorithm,
    leaving nothing to compare).

    ``n_informative`` is kept small on purpose: informative genes are
    all correlated through the class label, so every subset of them
    forms a provable signature and Apriori signature growth is
    exponential in that count (the same behaviour that makes P3C slow
    on dense micro-array data).
    """
    if not 0 < n_tumour < n_samples:
        raise ValueError("n_tumour must be strictly between 0 and n_samples")
    if not 0 < n_informative <= n_genes:
        raise ValueError("n_informative must be in (0, n_genes]")
    rng = np.random.default_rng(seed)
    data = rng.uniform(0.0, 1.0, size=(n_samples, n_genes))
    labels = np.zeros(n_samples, dtype=np.int64)
    labels[:n_tumour] = 1

    informative = rng.choice(n_genes, size=n_informative, replace=False)
    for gene in informative:
        # Class peaks must fall interior to single, NON-adjacent bins of
        # both n=62 binning rules (Freedman-Diaconis: 4 bins of width
        # 0.25; Sturges: 7 of width ~0.143) — peaks straddling a bin
        # boundary are split or merged away and a class smeared over a
        # wide interval stops being significantly overfull.  0.20 and
        # 0.65 sit >= 2 sigma inside a bin on both grids.
        low_peak = 0.20 + rng.uniform(-0.008, 0.008)
        high_peak = low_peak + separation
        if rng.uniform() < 0.5:
            tumour_mean, normal_mean = high_peak, low_peak
        else:
            tumour_mean, normal_mean = low_peak, high_peak
        tumour_values = rng.normal(tumour_mean, sigma, size=n_tumour)
        normal_values = rng.normal(normal_mean, sigma, size=n_samples - n_tumour)
        column = np.concatenate([tumour_values, normal_values])
        data[:, gene] = np.clip(column, 0.0, 1.0)

    permutation = rng.permutation(n_samples)
    return ColonLikeDataset(
        data=data[permutation],
        labels=labels[permutation],
        informative_genes=np.sort(informative),
    )
