"""Synthetic workload generation (paper Section 7.1) and normalisation."""

from repro.data.datasets import ColonLikeDataset, make_colon_like
from repro.data.generator import (
    GeneratorConfig,
    HiddenCluster,
    SyntheticDataset,
    generate_synthetic,
)
from repro.data.normalize import normalize_unit_range

__all__ = [
    "ColonLikeDataset",
    "GeneratorConfig",
    "HiddenCluster",
    "SyntheticDataset",
    "generate_synthetic",
    "make_colon_like",
    "normalize_unit_range",
]
