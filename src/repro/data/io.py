"""Data and result (de)serialisation.

- data sets: headerless CSV of unit-range values, the format a Hadoop
  deployment would keep on HDFS, plus an optional ``.labels`` sidecar;
- clustering results: a JSON document with members, relevant attributes
  and tightened signatures per cluster — stable across versions and
  directly diffable in experiments.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from repro.core.types import (
    ClusteringResult,
    Interval,
    ProjectedCluster,
    Signature,
)

RESULT_FORMAT_VERSION = 1


def save_dataset_csv(
    path: str | Path,
    data: np.ndarray,
    labels: np.ndarray | None = None,
) -> None:
    """Write a data matrix as headerless CSV (+ optional label sidecar)."""
    path = Path(path)
    data = np.asarray(data, dtype=float)
    if data.ndim != 2:
        raise ValueError(f"data must be 2-D, got shape {data.shape}")
    np.savetxt(path, data, delimiter=",", fmt="%.10g")
    if labels is not None:
        labels = np.asarray(labels, dtype=np.int64)
        if len(labels) != len(data):
            raise ValueError("labels length must match data length")
        np.savetxt(path.with_suffix(path.suffix + ".labels"), labels, fmt="%d")


def load_dataset_csv(
    path: str | Path,
) -> tuple[np.ndarray, np.ndarray | None]:
    """Read a headerless CSV data matrix (+ label sidecar if present)."""
    path = Path(path)
    data = np.loadtxt(path, delimiter=",", ndmin=2)
    labels_path = path.with_suffix(path.suffix + ".labels")
    labels = None
    if labels_path.exists():
        labels = np.loadtxt(labels_path, dtype=np.int64, ndmin=1)
    return data, labels


def _signature_to_json(signature: Signature | None) -> list[dict] | None:
    if signature is None:
        return None
    return [
        {"attribute": iv.attribute, "lower": iv.lower, "upper": iv.upper}
        for iv in signature
    ]


def _signature_from_json(payload: list[dict] | None) -> Signature | None:
    if payload is None:
        return None
    return Signature(
        [Interval(item["attribute"], item["lower"], item["upper"]) for item in payload]
    )


def result_to_dict(result: ClusteringResult) -> dict:
    """JSON-safe dict representation of a clustering result."""
    return {
        "format_version": RESULT_FORMAT_VERSION,
        "n_points": result.n_points,
        "n_dims": result.n_dims,
        "outliers": [int(i) for i in result.outliers],
        "clusters": [
            {
                "members": [int(i) for i in cluster.members],
                "relevant_attributes": sorted(cluster.relevant_attributes),
                "signature": _signature_to_json(cluster.signature),
            }
            for cluster in result.clusters
        ],
        "metadata": _jsonify(dict(result.metadata)),
    }


def result_from_dict(payload: dict) -> ClusteringResult:
    """Inverse of :func:`result_to_dict`."""
    version = payload.get("format_version")
    if version != RESULT_FORMAT_VERSION:
        raise ValueError(
            f"unsupported result format version {version!r} "
            f"(this build reads {RESULT_FORMAT_VERSION})"
        )
    clusters = [
        ProjectedCluster(
            members=np.array(item["members"], dtype=np.int64),
            relevant_attributes=frozenset(item["relevant_attributes"]),
            signature=_signature_from_json(item.get("signature")),
        )
        for item in payload["clusters"]
    ]
    return ClusteringResult(
        clusters=clusters,
        outliers=np.array(payload["outliers"], dtype=np.int64),
        n_points=payload["n_points"],
        n_dims=payload["n_dims"],
        metadata=payload.get("metadata", {}),
    )


def save_result_json(path: str | Path, result: ClusteringResult) -> None:
    Path(path).write_text(json.dumps(result_to_dict(result), indent=2))


def load_result_json(path: str | Path) -> ClusteringResult:
    return result_from_dict(json.loads(Path(path).read_text()))


def _jsonify(value):
    """Coerce numpy scalars/arrays in metadata to JSON-safe values."""
    if isinstance(value, dict):
        return {str(k): _jsonify(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonify(v) for v in value]
    if isinstance(value, np.integer):
        return int(value)
    if isinstance(value, np.floating):
        return float(value)
    if isinstance(value, np.ndarray):
        return [_jsonify(v) for v in value.tolist()]
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return repr(value)
