"""Attribute normalisation to the unit range (paper Section 3.1)."""

from __future__ import annotations

import numpy as np


def normalize_unit_range(data: np.ndarray) -> np.ndarray:
    """Min-max normalise each attribute to [0, 1].

    Constant attributes map to 0.5 (centre of the range) rather than
    dividing by zero; the clustering model treats them as uniform and
    therefore irrelevant, which is the right semantics for a column that
    carries no information.
    """
    data = np.asarray(data, dtype=float)
    if data.ndim != 2:
        raise ValueError(f"data must be 2-D, got shape {data.shape}")
    lo = data.min(axis=0)
    hi = data.max(axis=0)
    span = hi - lo
    constant = span == 0
    safe_span = np.where(constant, 1.0, span)
    out = (data - lo) / safe_span
    out[:, constant] = 0.5
    return out
