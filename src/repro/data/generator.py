"""Synthetic data generator reproducing the paper's workload (Section 7.1).

Clusters are hyperrectangles: on each *relevant* attribute the members
follow a Gaussian centred in an interval of width 0.1-0.3 (we interpret
the paper's "Gaussian with sigma = 1" as sigma = one sixth of the
interval width, i.e. the interval spans +-3 sigma, truncated to the
interval); on irrelevant attributes members are uniform on [0, 1].
Cluster dimensionality is drawn from 2-10, noise points are uniform on
the full space, and every generated data set contains at least two
clusters that overlap on a relevant attribute (the generator forces
cluster 1 to share a shifted copy of one of cluster 0's intervals).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.types import Interval, ProjectedCluster, Signature


@dataclass(frozen=True)
class GeneratorConfig:
    """Knobs of the synthetic workload (paper defaults)."""

    n: int = 10_000
    d: int = 50
    num_clusters: int = 5
    noise_fraction: float = 0.1
    min_cluster_dims: int = 2
    max_cluster_dims: int = 10
    min_width: float = 0.1
    max_width: float = 0.3
    force_overlap: bool = True
    seed: int = 0

    def __post_init__(self) -> None:
        if self.n < 1:
            raise ValueError("n must be >= 1")
        if self.num_clusters < 1:
            raise ValueError("num_clusters must be >= 1")
        if not 0 <= self.noise_fraction < 1:
            raise ValueError("noise_fraction must be in [0, 1)")
        if not 1 <= self.min_cluster_dims <= self.max_cluster_dims <= self.d:
            raise ValueError("cluster dims must satisfy 1 <= min <= max <= d")
        if not 0 < self.min_width <= self.max_width <= 1:
            raise ValueError("interval widths must satisfy 0 < min <= max <= 1")


@dataclass(frozen=True)
class HiddenCluster:
    """Ground truth for one hidden cluster: its true signature and members."""

    signature: Signature
    members: np.ndarray

    @property
    def relevant_attributes(self) -> frozenset[int]:
        return self.signature.attributes

    @property
    def size(self) -> int:
        return len(self.members)


@dataclass
class SyntheticDataset:
    """A generated data set plus its complete ground truth."""

    data: np.ndarray
    hidden_clusters: list[HiddenCluster]
    noise_indices: np.ndarray
    config: GeneratorConfig
    labels: np.ndarray = field(init=False)

    def __post_init__(self) -> None:
        labels = np.full(len(self.data), -1, dtype=np.int64)
        for cid, cluster in enumerate(self.hidden_clusters):
            labels[cluster.members] = cid
        self.labels = labels

    def ground_truth_clusters(self) -> list[ProjectedCluster]:
        """Ground truth in the shape the evaluation measures expect."""
        return [
            ProjectedCluster(
                members=cluster.members,
                relevant_attributes=cluster.relevant_attributes,
                signature=cluster.signature,
            )
            for cluster in self.hidden_clusters
        ]


def _draw_interval(
    rng: np.random.Generator, attribute: int, config: GeneratorConfig
) -> Interval:
    width = rng.uniform(config.min_width, config.max_width)
    lower = rng.uniform(0.0, 1.0 - width)
    return Interval(attribute, lower, lower + width)


def _overlapping_copy(
    rng: np.random.Generator, source: Interval
) -> Interval:
    """An interval on the same attribute shifted by half a width, so the
    two are guaranteed to overlap without coinciding."""
    shift = source.width / 2.0
    direction = 1.0 if source.upper + shift <= 1.0 else -1.0
    lower = min(max(source.lower + direction * shift, 0.0), 1.0 - source.width)
    return Interval(source.attribute, lower, lower + source.width)


def _draw_cluster_signature(
    rng: np.random.Generator,
    config: GeneratorConfig,
    forced: Interval | None,
) -> Signature:
    num_dims = int(
        rng.integers(config.min_cluster_dims, config.max_cluster_dims + 1)
    )
    attrs = rng.choice(config.d, size=num_dims, replace=False)
    intervals: list[Interval] = []
    if forced is not None:
        intervals.append(forced)
        attrs = [int(a) for a in attrs if a != forced.attribute][: num_dims - 1]
    for attribute in attrs:
        intervals.append(_draw_interval(rng, int(attribute), config))
    return Signature(intervals)


def _sample_members(
    rng: np.random.Generator,
    signature: Signature,
    size: int,
    d: int,
) -> np.ndarray:
    """Sample cluster members: truncated Gaussian on relevant intervals,
    uniform elsewhere."""
    points = rng.uniform(0.0, 1.0, size=(size, d))
    for interval in signature:
        center = (interval.lower + interval.upper) / 2.0
        sigma = interval.width / 6.0
        values = rng.normal(center, sigma, size=size)
        # Re-draw the (rare) tail samples so the interval truly bounds
        # the cluster, matching the hyperrectangular ground truth.
        for _ in range(100):
            bad = (values < interval.lower) | (values > interval.upper)
            if not bad.any():
                break
            values[bad] = rng.normal(center, sigma, size=int(bad.sum()))
        np.clip(values, interval.lower, interval.upper, out=values)
        points[:, interval.attribute] = values
    return points


def generate_synthetic(config: GeneratorConfig) -> SyntheticDataset:
    """Generate one synthetic data set per the paper's recipe."""
    rng = np.random.default_rng(config.seed)
    n_noise = int(round(config.n * config.noise_fraction))
    n_clustered = config.n - n_noise
    base = n_clustered // config.num_clusters
    sizes = [base] * config.num_clusters
    for i in range(n_clustered - base * config.num_clusters):
        sizes[i] += 1

    signatures: list[Signature] = []
    for cid in range(config.num_clusters):
        forced = None
        if config.force_overlap and cid == 1 and signatures:
            source = signatures[0].intervals[0]
            forced = _overlapping_copy(rng, source)
        signatures.append(_draw_cluster_signature(rng, config, forced))

    blocks: list[np.ndarray] = []
    members: list[np.ndarray] = []
    offset = 0
    for signature, size in zip(signatures, sizes):
        if size > 0:
            blocks.append(_sample_members(rng, signature, size, config.d))
        members.append(np.arange(offset, offset + size, dtype=np.int64))
        offset += size
    if n_noise > 0:
        blocks.append(rng.uniform(0.0, 1.0, size=(n_noise, config.d)))
    data = np.vstack(blocks) if blocks else np.empty((0, config.d))

    # Shuffle so splits see an arbitrary record order, as on HDFS.
    permutation = rng.permutation(config.n)
    inverse = np.empty_like(permutation)
    inverse[permutation] = np.arange(config.n)
    data = data[permutation]

    hidden = [
        HiddenCluster(signature=sig, members=np.sort(inverse[m]))
        for sig, m in zip(signatures, members)
        if len(m) > 0
    ]
    noise_indices = (
        np.sort(inverse[np.arange(offset, config.n)])
        if n_noise > 0
        else np.empty(0, dtype=np.int64)
    )
    return SyntheticDataset(
        data=data,
        hidden_clusters=hidden,
        noise_indices=noise_indices,
        config=config,
    )
