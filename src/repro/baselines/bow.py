"""BoW (Cordeiro et al., KDD 2011) as used by the paper (Section 2, 7).

BoW parallelises a plug-in clustering algorithm whose results are
hyperrectangles:

1. a map phase splits the data into random subsets of (at most)
   ``samples_per_reducer`` points (the paper sets 100 000 per reducer;
   this reproduction scales the default down with everything else);
2. every reducer runs the plug-in algorithm on its subset;
3. the driver merges intersecting hyperrectangles of the partial
   results into larger hyperrectangles.

The paper evaluates two variants that differ in the plug-in:
``BoW (Light)`` runs P3C+-Light per subset, ``BoW (MVB)`` runs the full
P3C+ with the MVB outlier detector.  BoW is *approximate*: each subset
only sees a sample of the distribution, and the merge phase can both
split (a cluster shifted in one subset fails to merge) and blur
(merged boxes take the union span), which is exactly the quality
degradation Figure 6 reports for growing data sizes.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import ceil
from typing import Any, Literal

import numpy as np

from repro.core.p3c_plus import (
    P3CPlus,
    P3CPlusConfig,
    P3CPlusLight,
    _validate_data,
)
from repro.core.types import (
    ClusteringResult,
    Interval,
    ProjectedCluster,
    Signature,
)
from repro.mapreduce import (
    Context,
    DistributedCache,
    Job,
    JobChain,
    Mapper,
    MapReduceRuntime,
    Partitioner,
    Reducer,
    RuntimeContext,
)
from repro.mapreduce.types import split_records


@dataclass(frozen=True)
class BoWConfig:
    """BoW-specific knobs."""

    variant: Literal["light", "mvb"] = "light"
    samples_per_reducer: int = 2_000
    #: Minimum Jaccard similarity of relevant-attribute sets for two
    #: boxes to be merge candidates (guards against merging genuinely
    #: different clusters that overlap on a few shared attributes).
    attribute_jaccard: float = 0.5
    num_splits: int = 8
    seed: int = 0
    #: Executor backend ("serial"/"thread"/"process"); ``None`` keeps
    #: the auto rule: max_workers > 1 selects the process pool.
    executor: str | None = None
    max_workers: int | None = None


class _PartitionMapper(Mapper):
    """Assigns every point a pseudo-random partition key."""

    def setup(self, context: Context) -> None:
        self._num_partitions = int(context.cache["num_partitions"])
        self._seed = int(context.cache["seed"])

    def map(self, key: Any, value: np.ndarray, context: Context) -> None:
        # Deterministic multiplicative hash of the row index: stable
        # across runs and executors, uniform across partitions.
        partition = ((key + self._seed) * 2654435761) % self._num_partitions
        context.emit(int(partition), (key, value))


class _IdentityPartitioner(Partitioner):
    def partition(self, key: int, num_partitions: int) -> int:
        return key % num_partitions


class _PluginClusteringReducer(Reducer):
    """Runs the plug-in clustering algorithm on one data subset."""

    def setup(self, context: Context) -> None:
        self._config: P3CPlusConfig = context.cache["config"]
        self._variant: str = context.cache["variant"]

    def reduce(self, key: int, values: list[Any], context: Context) -> None:
        indices = np.array([idx for idx, _ in values], dtype=np.int64)
        block = np.stack([row for _, row in values])
        if self._variant == "light":
            algorithm: Any = P3CPlusLight(self._config)
        else:
            algorithm = P3CPlus(
                self._config.with_overrides(outlier_method="mvb")
            )
        result = algorithm.fit(block)
        for cluster in result.clusters:
            context.emit(
                key,
                (
                    cluster.signature,
                    cluster.relevant_attributes,
                    indices[cluster.members],
                ),
            )


@dataclass
class _Box:
    """A partial-result hyperrectangle awaiting merging."""

    signature: Signature
    attributes: frozenset[int]
    members: np.ndarray

    def intersects(self, other: "_Box", attribute_jaccard: float) -> bool:
        shared = self.attributes & other.attributes
        union = self.attributes | other.attributes
        if not shared or len(shared) / len(union) < attribute_jaccard:
            return False
        for attribute in shared:
            mine = self.signature.interval_on(attribute)
            theirs = other.signature.interval_on(attribute)
            if mine is None or theirs is None or not mine.overlaps(theirs):
                return False
        return True

    def merge(self, other: "_Box") -> "_Box":
        intervals: list[Interval] = []
        for attribute in sorted(self.attributes | other.attributes):
            mine = self.signature.interval_on(attribute)
            theirs = other.signature.interval_on(attribute)
            if mine is not None and theirs is not None:
                intervals.append(mine.merge(theirs))
            else:
                intervals.append(mine if mine is not None else theirs)
        return _Box(
            signature=Signature(intervals),
            attributes=self.attributes | other.attributes,
            members=np.union1d(self.members, other.members),
        )


def merge_boxes(boxes: list[_Box], attribute_jaccard: float) -> list[_Box]:
    """Iteratively merge intersecting hyperrectangles to a fixpoint."""
    merged = list(boxes)
    changed = True
    while changed:
        changed = False
        for i in range(len(merged)):
            for j in range(i + 1, len(merged)):
                if merged[i].intersects(merged[j], attribute_jaccard):
                    combined = merged[i].merge(merged[j])
                    merged[j] = combined
                    del merged[i]
                    changed = True
                    break
            if changed:
                break
    return merged


class BoW:
    """The BoW framework with a P3C+ plug-in (Light or MVB variant)."""

    def __init__(
        self,
        config: P3CPlusConfig | None = None,
        bow_config: BoWConfig | None = None,
        context: RuntimeContext | None = None,
    ) -> None:
        self.config = config or P3CPlusConfig()
        self.bow_config = bow_config or BoWConfig()
        #: Optional service-plane wiring (shared-pool executor etc.).
        self.context = context
        self.chain: JobChain | None = None

    def fit(self, data: np.ndarray) -> ClusteringResult:
        data = _validate_data(data)
        n, d = data.shape
        bow = self.bow_config
        num_partitions = max(1, ceil(n / bow.samples_per_reducer))

        if self.context is not None:
            runtime = MapReduceRuntime(context=self.context)
        else:
            runtime = MapReduceRuntime(
                max_workers=bow.max_workers, executor=bow.executor
            )
        chain = JobChain(runtime)
        self.chain = chain
        splits = split_records(data, bow.num_splits)
        job = Job(
            mapper_factory=_PartitionMapper,
            reducer_factory=_PluginClusteringReducer,
            partitioner=_IdentityPartitioner(),
            cache=DistributedCache(
                {
                    "num_partitions": num_partitions,
                    "seed": bow.seed,
                    "config": self.config,
                    "variant": bow.variant,
                }
            ),
        )
        result = chain.run(
            "bow_partition_cluster", job, splits, num_reducers=num_partitions
        )

        boxes = [
            _Box(signature=sig, attributes=frozenset(attrs), members=members)
            for _, (sig, attrs, members) in result.output
        ]
        merged = merge_boxes(boxes, bow.attribute_jaccard)

        clusters = [
            ProjectedCluster(
                members=box.members,
                relevant_attributes=box.attributes,
                signature=box.signature,
            )
            for box in merged
        ]
        assigned = np.zeros(n, dtype=bool)
        for cluster in clusters:
            assigned[cluster.members] = True
        return ClusteringResult(
            clusters=clusters,
            outliers=np.where(~assigned)[0],
            n_points=n,
            n_dims=d,
            metadata={
                "num_partitions": num_partitions,
                "boxes_before_merge": len(boxes),
                "boxes_after_merge": len(merged),
                "mr_jobs": chain.num_jobs,
            },
        )
