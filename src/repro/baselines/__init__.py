"""Comparison baselines.

- :mod:`repro.baselines.bow` — BoW, the paper's direct MapReduce
  competitor (Section 7);
- :mod:`repro.baselines.proclus` / :mod:`repro.baselines.doc` — the
  related-work projected-clustering algorithms of Section 2, useful as
  additional quality comparators.
"""

from repro.baselines.bow import BoW, BoWConfig
from repro.baselines.doc import DOC, DOCConfig
from repro.baselines.proclus import Proclus, ProclusConfig

__all__ = ["BoW", "BoWConfig", "DOC", "DOCConfig", "Proclus", "ProclusConfig"]
