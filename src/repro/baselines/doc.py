"""DOC (Procopiuc et al., SIGMOD 2002) — related-work baseline.

Section 2 of the paper: DOC defines an optimal projected cluster as a
dense hyper-box of width ``w`` maximising the quality function
``mu(|C|, |D|) = |C| * (1/beta)^|D|`` and approximates it with Monte
Carlo trials — sample a seed point ``p`` and a small discriminating set
``X``; a dimension is relevant when every point of ``X`` lies within
``w`` of ``p`` on it; the trial's cluster is everyone inside the
resulting box.  Clusters are extracted greedily: best box first, its
members removed, repeat.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import ceil, log

import numpy as np

from repro.core.types import ClusteringResult, Interval, ProjectedCluster, Signature


@dataclass(frozen=True)
class DOCConfig:
    """DOC user parameters (alpha, beta, w — plus the cluster budget)."""

    alpha: float = 0.08  # min cluster fraction
    beta: float = 0.25  # dimension/size trade-off
    width: float = 0.3  # box half-width w
    max_clusters: int = 10
    trials_factor: float = 1.0  # scales the Monte Carlo iteration count
    seed: int = 0

    def __post_init__(self) -> None:
        if not 0 < self.alpha < 1:
            raise ValueError("alpha must be in (0, 1)")
        if not 0 < self.beta < 1:
            raise ValueError("beta must be in (0, 1)")
        if self.width <= 0:
            raise ValueError("width must be positive")


def _quality(size: int, dims: int, beta: float) -> float:
    return size * (1.0 / beta) ** dims


class DOC:
    """The DOC Monte Carlo algorithm (greedy multi-cluster variant)."""

    def __init__(self, config: DOCConfig | None = None) -> None:
        self.config = config or DOCConfig()

    def _num_trials(self, d: int) -> tuple[int, int]:
        """Inner/outer iteration counts from the DOC analysis."""
        config = self.config
        r = max(1, ceil(log(2 * d, 2) / log(1.0 / (2 * config.beta), 2)))
        outer = max(1, ceil(2.0 / config.alpha))
        inner = max(
            1,
            ceil(
                config.trials_factor
                * (2.0 / config.alpha) ** r
                * log(4.0, 2)
            ),
        )
        return outer, min(inner, 200)

    def _one_trial(
        self,
        data: np.ndarray,
        active: np.ndarray,
        rng: np.random.Generator,
        r: int,
    ) -> tuple[np.ndarray, np.ndarray] | None:
        """One Monte Carlo trial: returns (member mask, dims) or None."""
        pool = np.where(active)[0]
        if len(pool) == 0:
            return None
        pivot = data[rng.choice(pool)]
        sample = data[rng.choice(pool, size=min(r, len(pool)), replace=True)]
        close = np.abs(sample - pivot) <= self.config.width
        dims = np.where(close.all(axis=0))[0]
        if len(dims) == 0:
            return None
        inside = (
            np.abs(data[:, dims] - pivot[dims]) <= self.config.width
        ).all(axis=1)
        inside &= active
        return inside, dims

    def fit(self, data: np.ndarray) -> ClusteringResult:
        data = np.asarray(data, dtype=float)
        if data.ndim != 2 or len(data) == 0:
            raise ValueError("data must be a non-empty 2-D matrix")
        config = self.config
        rng = np.random.default_rng(config.seed)
        n, d = data.shape
        r = max(
            1,
            ceil(log(2 * d, 2) / log(1.0 / (2 * config.beta), 2)),
        )
        outer, inner = self._num_trials(d)

        active = np.ones(n, dtype=bool)
        clusters: list[ProjectedCluster] = []
        min_size = max(2, int(config.alpha * n))

        for _ in range(config.max_clusters):
            best: tuple[float, np.ndarray, np.ndarray] | None = None
            for _ in range(outer * inner):
                trial = self._one_trial(data, active, rng, r)
                if trial is None:
                    continue
                inside, dims = trial
                size = int(inside.sum())
                if size < min_size:
                    continue
                quality = _quality(size, len(dims), config.beta)
                if best is None or quality > best[0]:
                    best = (quality, inside, dims)
            if best is None:
                break
            _, inside, dims = best
            members = np.where(inside)[0]
            attrs = frozenset(int(a) for a in dims)
            intervals = [
                Interval(
                    int(a),
                    float(data[members, a].min()),
                    float(data[members, a].max()),
                )
                for a in sorted(attrs)
            ]
            clusters.append(
                ProjectedCluster(
                    members=members,
                    relevant_attributes=attrs,
                    signature=Signature(intervals),
                )
            )
            active[members] = False
            if active.sum() < min_size:
                break

        return ClusteringResult(
            clusters=clusters,
            outliers=np.where(active)[0],
            n_points=n,
            n_dims=d,
            metadata={"trials": outer * inner},
        )
