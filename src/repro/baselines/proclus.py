"""PROCLUS (Aggarwal et al., SIGMOD 1999) — related-work baseline.

The paper's Section 2 positions P3C against PROCLUS: a k-medoid-style
projected clustering algorithm that needs the number of clusters ``k``
and the average subspace dimensionality ``l`` as user parameters —
exactly the parameters P3C/P3C+ determine automatically.  This
implementation follows the published three-phase design:

1. **Initialisation** — draw a random sample, then greedily pick a
   candidate medoid set that is mutually far apart.
2. **Iteration** — for the current medoids: compute each medoid's
   locality (points within its nearest-other-medoid radius), pick
   ``k * l`` dimensions by the smallest z-scored average locality
   distances (at least 2 per medoid), assign every point to the medoid
   with the smallest *segmental* (dimension-averaged Manhattan)
   distance in the medoid's dimensions, and replace the medoids of the
   smallest clusters with fresh candidates while the objective
   improves.
3. **Refinement** — recompute dimensions from the final clusters,
   reassign once more, and mark points as outliers when they are
   farther from their medoid than the medoid's sphere of influence.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.types import ClusteringResult, ProjectedCluster
from repro.core.tightening import tighten_intervals


@dataclass(frozen=True)
class ProclusConfig:
    """PROCLUS user parameters (the paper's point: there are two)."""

    num_clusters: int = 5
    avg_dimensions: int = 4
    sample_factor: int = 30  # candidate sample: k * factor points
    candidate_factor: int = 3  # greedy set: k * factor medoid candidates
    max_iterations: int = 20
    patience: int = 5
    seed: int = 0

    def __post_init__(self) -> None:
        if self.num_clusters < 1:
            raise ValueError("num_clusters must be >= 1")
        if self.avg_dimensions < 2:
            raise ValueError("avg_dimensions must be >= 2 (PROCLUS minimum)")


def _greedy_far_apart(
    data: np.ndarray, sample: np.ndarray, count: int, rng: np.random.Generator
) -> np.ndarray:
    """Greedy selection of ``count`` mutually distant sample points."""
    chosen = [int(rng.integers(len(sample)))]
    distances = np.linalg.norm(data[sample] - data[sample[chosen[0]]], axis=1)
    while len(chosen) < min(count, len(sample)):
        next_idx = int(np.argmax(distances))
        chosen.append(next_idx)
        new_d = np.linalg.norm(data[sample] - data[sample[next_idx]], axis=1)
        distances = np.minimum(distances, new_d)
    return sample[chosen]


class Proclus:
    """The PROCLUS algorithm."""

    def __init__(self, config: ProclusConfig | None = None) -> None:
        self.config = config or ProclusConfig()

    # -- phase 2 helpers -------------------------------------------------

    def _localities(
        self, data: np.ndarray, medoids: np.ndarray
    ) -> list[np.ndarray]:
        """L_i: points within each medoid's nearest-other-medoid radius."""
        centers = data[medoids]
        pairwise = np.linalg.norm(
            centers[:, None, :] - centers[None, :, :], axis=2
        )
        np.fill_diagonal(pairwise, np.inf)
        deltas = pairwise.min(axis=1)
        localities = []
        for i, medoid in enumerate(medoids):
            d = np.linalg.norm(data - data[medoid], axis=1)
            members = np.where(d <= deltas[i])[0]
            if len(members) == 0:
                members = np.array([medoid])
            localities.append(members)
        return localities

    def _find_dimensions(
        self, data: np.ndarray, medoids: np.ndarray, localities: list[np.ndarray]
    ) -> list[list[int]]:
        """Pick k*l dimensions by z-scored locality spread, >= 2/medoid."""
        k = len(medoids)
        d = data.shape[1]
        z_scores = np.empty((k, d))
        for i, medoid in enumerate(medoids):
            spread = np.abs(data[localities[i]] - data[medoid]).mean(axis=0)
            mu, sigma = spread.mean(), spread.std()
            z_scores[i] = (spread - mu) / (sigma if sigma > 0 else 1.0)

        total = self.config.avg_dimensions * k
        picked: list[list[int]] = [[] for _ in range(k)]
        # Two best dimensions per medoid first (the PROCLUS constraint).
        order = np.argsort(z_scores, axis=1)
        for i in range(k):
            picked[i].extend(int(a) for a in order[i, :2])
        # Remaining picks: globally smallest z-scores.
        flat = [
            (z_scores[i, j], i, j)
            for i in range(k)
            for j in range(d)
            if j not in picked[i]
        ]
        flat.sort()
        remaining = max(0, total - 2 * k)
        for _, i, j in flat[:remaining]:
            picked[i].append(int(j))
        return [sorted(p) for p in picked]

    def _assign(
        self,
        data: np.ndarray,
        medoids: np.ndarray,
        dimensions: list[list[int]],
    ) -> np.ndarray:
        """Segmental-distance assignment."""
        n = len(data)
        best = np.full(n, np.inf)
        labels = np.zeros(n, dtype=np.int64)
        for i, medoid in enumerate(medoids):
            dims = dimensions[i]
            segmental = np.abs(
                data[:, dims] - data[medoid, dims]
            ).mean(axis=1)
            better = segmental < best
            labels[better] = i
            best[better] = segmental[better]
        return labels

    def _objective(
        self,
        data: np.ndarray,
        medoids: np.ndarray,
        dimensions: list[list[int]],
        labels: np.ndarray,
    ) -> float:
        """Mean segmental distance of points to their medoid."""
        total = 0.0
        for i, medoid in enumerate(medoids):
            members = labels == i
            if not members.any():
                continue
            dims = dimensions[i]
            total += float(
                np.abs(data[np.ix_(members, dims)] - data[medoid, dims])
                .mean(axis=1)
                .sum()
            )
        return total / len(data)

    # -- main ------------------------------------------------------------

    def fit(self, data: np.ndarray) -> ClusteringResult:
        data = np.asarray(data, dtype=float)
        if data.ndim != 2 or len(data) == 0:
            raise ValueError("data must be a non-empty 2-D matrix")
        config = self.config
        k = config.num_clusters
        rng = np.random.default_rng(config.seed)
        n, d = data.shape
        if config.avg_dimensions > d:
            raise ValueError("avg_dimensions cannot exceed data dimensionality")

        sample_size = min(n, k * config.sample_factor)
        sample = rng.choice(n, size=sample_size, replace=False)
        candidates = _greedy_far_apart(
            data, sample, k * config.candidate_factor, rng
        )

        current = rng.choice(candidates, size=min(k, len(candidates)), replace=False)
        best_medoids = current.copy()
        best_objective = np.inf
        best_state: tuple | None = None
        stale = 0

        for _ in range(config.max_iterations):
            localities = self._localities(data, current)
            dimensions = self._find_dimensions(data, current, localities)
            labels = self._assign(data, current, dimensions)
            objective = self._objective(data, current, dimensions, labels)

            if objective < best_objective:
                best_objective = objective
                best_medoids = current.copy()
                best_state = (dimensions, labels)
                stale = 0
            else:
                stale += 1
                if stale >= config.patience:
                    break

            # Replace the medoid of the smallest cluster with a fresh
            # candidate (the 'bad medoid' heuristic).
            sizes = np.bincount(labels, minlength=len(current))
            worst = int(np.argmin(sizes[: len(current)]))
            replacement_pool = np.setdiff1d(candidates, current)
            if len(replacement_pool) == 0:
                break
            current = best_medoids.copy()
            current[worst] = rng.choice(replacement_pool)

        assert best_state is not None
        dimensions, labels = best_state

        # Refinement: recompute dimensions from clusters, reassign,
        # flag outliers beyond the medoid's sphere of influence.
        localities = [np.where(labels == i)[0] for i in range(len(best_medoids))]
        localities = [
            loc if len(loc) else np.array([m])
            for loc, m in zip(localities, best_medoids)
        ]
        dimensions = self._find_dimensions(data, best_medoids, localities)
        labels = self._assign(data, best_medoids, dimensions)

        centers = data[best_medoids]
        pairwise = np.linalg.norm(
            centers[:, None, :] - centers[None, :, :], axis=2
        )
        np.fill_diagonal(pairwise, np.inf)
        outlier_mask = np.zeros(n, dtype=bool)
        for i, medoid in enumerate(best_medoids):
            members = labels == i
            dims = dimensions[i]
            segmental = np.abs(
                data[np.ix_(members, dims)] - data[medoid, dims]
            ).mean(axis=1)
            threshold = pairwise[i].min()
            rows = np.where(members)[0]
            outlier_mask[rows[segmental > threshold]] = True

        clusters: list[ProjectedCluster] = []
        for i in range(len(best_medoids)):
            member_mask = (labels == i) & ~outlier_mask
            if not member_mask.any():
                continue
            attrs = frozenset(dimensions[i])
            clusters.append(
                ProjectedCluster(
                    members=np.where(member_mask)[0],
                    relevant_attributes=attrs,
                    signature=tighten_intervals(data, member_mask, attrs),
                )
            )
        assigned = np.zeros(n, dtype=bool)
        for cluster in clusters:
            assigned[cluster.members] = True
        return ClusteringResult(
            clusters=clusters,
            outliers=np.where(~assigned)[0],
            n_points=n,
            n_dims=d,
            metadata={"medoids": [int(m) for m in best_medoids]},
        )
