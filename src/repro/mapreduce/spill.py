"""Spill-to-disk segments for the columnar shuffle.

When a map task's resident shuffle payload crosses
``JobConf.memory_budget_bytes``, the scatter path hands whole
:class:`~repro.mapreduce.types.ColumnarBucket` payloads to
:func:`spill_bucket`, which writes them as compressed ``npz`` segment
files under a run-scoped spill directory and returns a
:class:`SpilledBucket` stand-in.  The stand-in quacks like a bucket for
all of the runtime's accounting — ``__len__`` for integrity validation,
logical ``nbytes`` for ``shuffle_bytes`` — while the arrays themselves
stay on disk until a reducer materialises them, one segment at a time.

Segments are written atomically (temp file + ``os.replace``) and hold
contiguous row runs in emission order, so loading and concatenating
them reproduces the in-heap bucket byte for byte; the in-heap columnar
path remains the parity oracle (a chaos-sweep test asserts bitwise
equality of job output with and without spilling).

Keys round-trip through pickle inside the archive (they are arbitrary
Python objects — ints, tuples, numpy scalars), value blocks as native
compressed arrays; float payloads survive the ``npz`` round trip
losslessly.
"""

from __future__ import annotations

import itertools
import os
import pickle
import re
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Iterator

import numpy as np

from repro.mapreduce.types import ColumnarBucket

#: Target logical payload per spill segment file.  Small enough that a
#: reducer streaming segments never holds more than ~one segment of
#: decompressed data beyond its running output, large enough that the
#: per-file compression/open overhead stays negligible.
DEFAULT_SEGMENT_BYTES = 8 * 1024 * 1024

#: Process-wide monotonically increasing segment ids.  Combined with
#: the pid in the filename this keeps segment names unique across the
#: thread *and* process executors sharing one spill directory.
_SEGMENT_IDS = itertools.count()


@dataclass(frozen=True)
class SpillSegment:
    """One compressed ``npz`` file holding a contiguous run of pairs."""

    path: str
    num_records: int
    #: Logical (pre-spill) payload bytes — what the in-heap bucket
    #: would have occupied.
    nbytes: int
    #: Compressed on-disk size (the ``spilled_bytes`` counter unit).
    disk_bytes: int


def _dump_segment(bucket: ColumnarBucket, path: Path) -> SpillSegment:
    tmp = path.with_suffix(path.suffix + ".tmp")
    keys_raw = np.frombuffer(
        pickle.dumps(list(bucket.keys), protocol=pickle.HIGHEST_PROTOCOL),
        dtype=np.uint8,
    )
    with open(tmp, "wb") as handle:
        np.savez_compressed(handle, keys=keys_raw, block=bucket.block)
    os.replace(tmp, path)
    return SpillSegment(
        path=str(path),
        num_records=len(bucket),
        nbytes=bucket.nbytes,
        disk_bytes=os.path.getsize(path),
    )


def load_segment(path: str) -> ColumnarBucket:
    """Rehydrate one segment file into an in-heap bucket."""
    with np.load(path) as archive:
        keys = pickle.loads(archive["keys"].tobytes())
        block = np.ascontiguousarray(archive["block"])
    return ColumnarBucket(keys, block)


def spill_bucket(
    bucket: ColumnarBucket,
    directory: str | Path,
    tag: str,
    segment_bytes: int = DEFAULT_SEGMENT_BYTES,
) -> "SpilledBucket":
    """Write ``bucket`` to compressed segment files under ``directory``.

    Rows are cut into segments of roughly ``segment_bytes`` logical
    payload each, preserving emission order, so the reducer-side gather
    can stream segment-at-a-time concat and still reproduce the in-heap
    bucket exactly.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    safe_tag = re.sub(r"[^A-Za-z0-9_.-]+", "_", tag) or "bucket"
    per_row = max(1, bucket.nbytes // max(1, len(bucket)))
    rows_per_segment = max(1, int(segment_bytes) // per_row)
    segments: list[SpillSegment] = []
    for lo in range(0, len(bucket), rows_per_segment):
        piece = ColumnarBucket(
            bucket.keys[lo : lo + rows_per_segment],
            bucket.block[lo : lo + rows_per_segment],
        )
        name = f"{safe_tag}-{os.getpid()}-{next(_SEGMENT_IDS):06d}.npz"
        segments.append(_dump_segment(piece, directory / name))
    return SpilledBucket(tuple(segments))


@dataclass(frozen=True)
class SpilledBucket:
    """A columnar bucket whose payload lives in spill segment files.

    Presents the same accounting surface as the bucket it replaced:
    ``__len__`` feeds the shuffle-integrity validator, ``nbytes`` is
    the *logical* pre-spill size so ``shuffle_bytes`` stays identical
    to the in-heap run, and ``disk_bytes`` (compressed) feeds the
    ``spilled_bytes`` counter.
    """

    segments: tuple[SpillSegment, ...]

    def __len__(self) -> int:
        return sum(seg.num_records for seg in self.segments)

    @property
    def nbytes(self) -> int:
        return sum(seg.nbytes for seg in self.segments)

    @property
    def disk_bytes(self) -> int:
        return sum(seg.disk_bytes for seg in self.segments)

    def iter_segments(self) -> Iterator[ColumnarBucket]:
        """Stream segments back as in-heap buckets, one at a time."""
        for seg in self.segments:
            yield load_segment(seg.path)

    def load(self) -> ColumnarBucket:
        """Rehydrate the whole bucket in one piece."""
        return ColumnarBucket.concat(list(self.iter_segments()))

    def pairs(self) -> list[tuple[Any, np.ndarray]]:
        """The tuple-path view, materialised segment by segment."""
        out: list[tuple[Any, np.ndarray]] = []
        for piece in self.iter_segments():
            out.extend(piece.pairs())
        return out

    def __iter__(self) -> Iterator[tuple[Any, np.ndarray]]:
        for piece in self.iter_segments():
            yield from piece

    def truncated(self) -> ColumnarBucket:
        """Drop the trailing pair (the corrupt-fault injection shape)."""
        return self.load().truncated()


@dataclass(frozen=True)
class SpilledPartition:
    """Task-ordered partition chunks, at least one of them spilled.

    ``Shuffle.merge_buckets`` returns this instead of eagerly loading
    and concatenating, so gather stays lazy: materialisation happens
    reducer-side inside ``bucket_pairs``, one segment at a time.  Pair
    order is task order then row order — identical to the in-heap
    ``ColumnarBucket.concat`` of the same chunks.
    """

    chunks: tuple[Any, ...]

    def __len__(self) -> int:
        return sum(len(chunk) for chunk in self.chunks)

    @property
    def nbytes(self) -> int:
        return sum(int(chunk.nbytes) for chunk in self.chunks)

    def pairs(self) -> list[tuple[Any, np.ndarray]]:
        out: list[tuple[Any, np.ndarray]] = []
        for chunk in self.chunks:
            out.extend(chunk.pairs())
        return out

    def __iter__(self) -> Iterator[tuple[Any, np.ndarray]]:
        for chunk in self.chunks:
            yield from chunk
