"""Driver helper for multi-job pipelines.

P3C+-MR is a *chain* of MapReduce jobs whose count itself matters (the
paper attributes P3C+-MR's higher runtime to its larger job count and
EM iterations, Section 7.5.2).  ``JobChain`` runs jobs against one
runtime and keeps a per-step ledger so drivers and the cost model can
report "number of MR jobs" and shuffle volumes faithfully.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Sequence

from repro.mapreduce.counters import Counters
from repro.mapreduce.job import Job
from repro.mapreduce.runtime import JobResult, MapReduceRuntime
from repro.mapreduce.types import InputSplit, JobConf


@dataclass
class ChainStep:
    """One executed step of a job chain."""

    name: str
    result: JobResult

    @property
    def shuffle_records(self) -> int:
        return self.result.counters.framework_value(Counters.SHUFFLE_RECORDS)


class JobChain:
    """Runs a sequence of jobs and records per-step accounting."""

    def __init__(self, runtime: MapReduceRuntime) -> None:
        self.runtime = runtime
        self.steps: list[ChainStep] = []

    def run(
        self,
        name: str,
        job: Job,
        splits: Sequence[InputSplit],
        num_reducers: int = 1,
        num_splits: int | None = None,
        **extra: Any,
    ) -> JobResult:
        """Run ``job`` over ``splits`` and log it as step ``name``."""
        conf = JobConf(
            name=name,
            num_splits=num_splits if num_splits is not None else len(splits),
            num_reducers=num_reducers,
            extra=extra,
        )
        result = self.runtime.run(job, splits, conf)
        self.steps.append(ChainStep(name=name, result=result))
        return result

    @property
    def num_jobs(self) -> int:
        return len(self.steps)

    @property
    def total_wall_time(self) -> float:
        return sum(step.result.wall_time for step in self.steps)

    @property
    def total_shuffle_records(self) -> int:
        return sum(step.shuffle_records for step in self.steps)

    def total_map_input_records(self) -> int:
        return sum(
            step.result.counters.framework_value(Counters.MAP_INPUT_RECORDS)
            for step in self.steps
        )

    def report(self) -> str:
        """Human-readable per-step ledger."""
        lines = [f"{'step':<34} {'jobs':>4} {'shuffle':>10} {'time(s)':>9}"]
        for step in self.steps:
            lines.append(
                f"{step.name:<34} {1:>4} {step.shuffle_records:>10} "
                f"{step.result.wall_time:>9.4f}"
            )
        lines.append(
            f"{'TOTAL':<34} {self.num_jobs:>4} "
            f"{self.total_shuffle_records:>10} {self.total_wall_time:>9.4f}"
        )
        return "\n".join(lines)
