"""Driver helper for multi-job pipelines.

P3C+-MR is a *chain* of MapReduce jobs whose count itself matters (the
paper attributes P3C+-MR's higher runtime to its larger job count and
EM iterations, Section 7.5.2).  ``JobChain`` runs jobs against one
runtime and keeps a per-step ledger so drivers and the cost model can
report "number of MR jobs" and shuffle volumes faithfully.

Chains are also the recovery unit: with a
:class:`~repro.mapreduce.fs.CheckpointStore` attached, every completed
job's output is persisted under the run directory, keyed by chain
position/name and an input fingerprint chained over the upstream
history.  A failed multi-job run resumed with ``resume=True`` replays
the driver, restores every job whose fingerprint still matches
(emitting a ``job_skipped`` event instead of executing), and re-runs
only the suffix from the first stale or missing entry — on huge data
sets that turns "lost an hour to one bad task" into "replay one job".
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Any, Sequence

from repro.mapreduce.counters import Counters
from repro.mapreduce.costmodel import (
    ClusterCostModel,
    PartitionPlan,
    plan_partitions,
)
from repro.mapreduce.events import EventKind
from repro.mapreduce.fs import CheckpointStore, chain_fingerprint
from repro.mapreduce.job import Job
from repro.mapreduce.runtime import (
    JobResult,
    MapReduceRuntime,
    RuntimeContext,
    new_run_id,
)
from repro.mapreduce.types import InputSplit, JobConf


@dataclass
class ChainStep:
    """One executed step of a job chain."""

    name: str
    result: JobResult
    #: True when the step was restored from a checkpoint, not executed.
    restored: bool = False

    @property
    def shuffle_records(self) -> int:
        return self.result.counters.framework_value(Counters.SHUFFLE_RECORDS)


class JobChain:
    """Runs a sequence of jobs and records per-step accounting.

    Parameters
    ----------
    checkpoint:
        A :class:`~repro.mapreduce.fs.CheckpointStore` (or a directory
        path for one), enabling per-job output persistence.  ``None``
        disables checkpointing entirely.
    resume:
        When true, a job whose key + input fingerprint matches the
        store is *restored* — its persisted output becomes the step
        result, a ``job_skipped`` event is emitted, and no tasks run.
        When false the store is still written, but never read.
    auto_tune:
        When true, a step run with ``num_reducers=None`` picks its
        partition count from a :func:`plan_partitions` plan — the
        chain's own event history calibrates the cost model and the
        observed reduce skew/shuffle volume size the choice.  Off by
        default: tuned partition counts change job shapes (not
        outputs), so drivers opt in explicitly.
    cost_model:
        Base :class:`ClusterCostModel` for auto-tune calibration
        (defaults to the paper-anchored constants).
    memory_budget_bytes / spill_dir / max_block_rows:
        Out-of-core knobs stamped onto every step's :class:`JobConf`:
        a resident-payload budget that makes over-budget columnar
        shuffles spill to ``spill_dir`` (a run-scoped temp dir when
        ``None``) and bounds ``BatchMapper`` chunk sizes for
        file-backed splits; ``max_block_rows`` pins the chunk size
        explicitly.  All ``None`` (default) keeps the in-heap plane.
    """

    def __init__(
        self,
        runtime: MapReduceRuntime | RuntimeContext,
        checkpoint: CheckpointStore | str | Path | None = None,
        resume: bool = False,
        auto_tune: bool = False,
        cost_model: ClusterCostModel | None = None,
        run_id: str | None = None,
        memory_budget_bytes: int | None = None,
        spill_dir: str | None = None,
        max_block_rows: int | None = None,
    ) -> None:
        if isinstance(runtime, RuntimeContext):
            # Service-plane path: the scheduler hands the chain a
            # pre-wired context instead of a runtime.
            runtime = MapReduceRuntime(context=runtime)
        self.runtime = runtime
        self.run_id = run_id or getattr(runtime, "run_id", None) or new_run_id(
            "chain"
        )
        self.steps: list[ChainStep] = []
        if checkpoint is not None and not isinstance(checkpoint, CheckpointStore):
            checkpoint = CheckpointStore(checkpoint)
        self.checkpoint = checkpoint
        self.resume = resume
        self.auto_tune = auto_tune
        self.cost_model = cost_model
        self.memory_budget_bytes = memory_budget_bytes
        self.spill_dir = spill_dir
        self.max_block_rows = max_block_rows
        self._fingerprint = ""

    def plan(self, input_records: int) -> PartitionPlan:
        """Tuned split/partition counts for a job over ``input_records``.

        Drivers call this *before* building splits (the split count is
        part of the plan); :meth:`run` applies the reducer count
        automatically for steps run with ``num_reducers=None`` under
        ``auto_tune``.
        """
        workers = getattr(self.runtime.default_executor, "max_workers", None)
        return plan_partitions(
            self.runtime.events,
            input_records=input_records,
            num_workers=workers or self.runtime.max_workers or 1,
            base=self.cost_model,
            memory_budget_bytes=self.memory_budget_bytes,
        )

    def run(
        self,
        name: str,
        job: Job,
        splits: Sequence[InputSplit],
        num_reducers: int | None = 1,
        num_splits: int | None = None,
        **extra: Any,
    ) -> JobResult:
        """Run ``job`` over ``splits`` and log it as step ``name``.

        ``num_reducers=None`` defers the partition count to the chain:
        the auto-tune plan under ``auto_tune=True``, the default of one
        reducer otherwise.
        """
        if num_reducers is None:
            num_reducers = self._choose_reducers(name, splits)
        conf = JobConf(
            name=name,
            num_splits=num_splits if num_splits is not None else len(splits),
            num_reducers=num_reducers,
            max_block_rows=self.max_block_rows,
            memory_budget_bytes=self.memory_budget_bytes,
            spill_dir=self.spill_dir,
            extra=extra,
        )
        if self.checkpoint is not None:
            return self._run_checkpointed(name, job, splits, conf)
        result = self.runtime.run(job, splits, conf)
        self.steps.append(ChainStep(name=name, result=result))
        return result

    def _choose_reducers(
        self, name: str, splits: Sequence[InputSplit]
    ) -> int:
        """Reducer count for a ``num_reducers=None`` step.

        Without ``auto_tune`` the classic default of one reducer.  With
        it, a resumed chain first consults the checkpointed partition
        plan: the restored prefix leaves only ``job_skipped`` events
        behind, so re-planning would calibrate from silence, change the
        step's ``JobConf`` and invalidate every downstream fingerprint.
        Fresh choices are persisted (before execution) so the next
        resume reuses them.
        """
        if not self.auto_tune:
            return 1
        key = CheckpointStore.job_key(len(self.steps), name)
        if self.checkpoint is not None and self.resume:
            stored = self.checkpoint.load_plan(key)
            if stored is not None:
                return stored
        chosen = self.plan(sum(len(split) for split in splits)).num_reducers
        if self.checkpoint is not None:
            self.checkpoint.save_plan(key, chosen)
        return chosen

    def _run_checkpointed(
        self,
        name: str,
        job: Job,
        splits: Sequence[InputSplit],
        conf: JobConf,
    ) -> JobResult:
        assert self.checkpoint is not None
        key = CheckpointStore.job_key(len(self.steps), name)
        fingerprint = chain_fingerprint(self._fingerprint, name, conf, splits)
        if self.resume:
            stored = self.checkpoint.load(key, fingerprint)
            if stored is not None:
                output, meta = stored
                result = JobResult(
                    output=output,
                    counters=Counters.from_snapshot(meta.get("counters", {})),
                    conf=conf,
                    wall_time=float(meta.get("wall_time", 0.0)),
                    executor="checkpoint",
                    map_task_times=list(meta.get("map_task_times", [])),
                    reduce_task_times=list(meta.get("reduce_task_times", [])),
                )
                self.runtime.events.emit(
                    EventKind.JOB_SKIPPED, name, duration_s=result.wall_time
                )
                self.steps.append(
                    ChainStep(name=name, result=result, restored=True)
                )
                self._fingerprint = fingerprint
                return result
        result = self.runtime.run(job, splits, conf)
        self.checkpoint.save(
            key,
            fingerprint,
            result.output,
            meta={
                "counters": result.counters.snapshot(),
                "wall_time": result.wall_time,
                "executor": result.executor,
                "map_task_times": list(result.map_task_times),
                "reduce_task_times": list(result.reduce_task_times),
            },
        )
        self.steps.append(ChainStep(name=name, result=result))
        self._fingerprint = fingerprint
        return result

    @property
    def num_jobs(self) -> int:
        return len(self.steps)

    @property
    def num_restored_jobs(self) -> int:
        """Steps restored from the checkpoint store instead of executed."""
        return sum(1 for step in self.steps if step.restored)

    @property
    def total_wall_time(self) -> float:
        return sum(step.result.wall_time for step in self.steps)

    @property
    def total_shuffle_records(self) -> int:
        return sum(step.shuffle_records for step in self.steps)

    def total_map_input_records(self) -> int:
        return sum(
            step.result.counters.framework_value(Counters.MAP_INPUT_RECORDS)
            for step in self.steps
        )

    def job_summaries(self) -> list[dict[str, Any]]:
        """Structured per-job accounting rows (the ``jobs`` section of
        the run report: task counts, shuffle volume, phase seconds and
        task-duration percentiles per step)."""
        from repro.obs.report import job_summary

        return [job_summary(step.name, step.result) for step in self.steps]

    def report(self) -> str:
        """Human-readable per-step ledger.

        One row per executed job with its map/reduce task counts, the
        executor backend it ran on (``checkpoint`` for restored steps),
        shuffle volume and the phase wall times measured by the
        runtime's event stream.
        """
        header = (
            f"{'step':<34} {'maps':>5} {'reds':>5} {'executor':>8} "
            f"{'shuffle':>10} {'map(s)':>8} {'reduce(s)':>9} {'wall(s)':>8}"
        )
        lines = [header]
        for step in self.steps:
            result = step.result
            lines.append(
                f"{step.name:<34} {result.num_map_tasks:>5} "
                f"{result.num_reduce_tasks:>5} {result.executor:>8} "
                f"{step.shuffle_records:>10} {result.phase_seconds('map'):>8.4f} "
                f"{result.phase_seconds('reduce'):>9.4f} {result.wall_time:>8.4f}"
            )
        total_maps = sum(s.result.num_map_tasks for s in self.steps)
        total_reds = sum(s.result.num_reduce_tasks for s in self.steps)
        lines.append(
            f"{f'TOTAL ({self.num_jobs} jobs)':<34} {total_maps:>5} "
            f"{total_reds:>5} {'':>8} {self.total_shuffle_records:>10} "
            f"{sum(s.result.phase_seconds('map') for s in self.steps):>8.4f} "
            f"{sum(s.result.phase_seconds('reduce') for s in self.steps):>9.4f} "
            f"{self.total_wall_time:>8.4f}"
        )
        return "\n".join(lines)
