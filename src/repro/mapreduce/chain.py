"""Driver helper for multi-job pipelines.

P3C+-MR is a *chain* of MapReduce jobs whose count itself matters (the
paper attributes P3C+-MR's higher runtime to its larger job count and
EM iterations, Section 7.5.2).  ``JobChain`` runs jobs against one
runtime and keeps a per-step ledger so drivers and the cost model can
report "number of MR jobs" and shuffle volumes faithfully.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Sequence

from repro.mapreduce.counters import Counters
from repro.mapreduce.job import Job
from repro.mapreduce.runtime import JobResult, MapReduceRuntime
from repro.mapreduce.types import InputSplit, JobConf


@dataclass
class ChainStep:
    """One executed step of a job chain."""

    name: str
    result: JobResult

    @property
    def shuffle_records(self) -> int:
        return self.result.counters.framework_value(Counters.SHUFFLE_RECORDS)


class JobChain:
    """Runs a sequence of jobs and records per-step accounting."""

    def __init__(self, runtime: MapReduceRuntime) -> None:
        self.runtime = runtime
        self.steps: list[ChainStep] = []

    def run(
        self,
        name: str,
        job: Job,
        splits: Sequence[InputSplit],
        num_reducers: int = 1,
        num_splits: int | None = None,
        **extra: Any,
    ) -> JobResult:
        """Run ``job`` over ``splits`` and log it as step ``name``."""
        conf = JobConf(
            name=name,
            num_splits=num_splits if num_splits is not None else len(splits),
            num_reducers=num_reducers,
            extra=extra,
        )
        result = self.runtime.run(job, splits, conf)
        self.steps.append(ChainStep(name=name, result=result))
        return result

    @property
    def num_jobs(self) -> int:
        return len(self.steps)

    @property
    def total_wall_time(self) -> float:
        return sum(step.result.wall_time for step in self.steps)

    @property
    def total_shuffle_records(self) -> int:
        return sum(step.shuffle_records for step in self.steps)

    def total_map_input_records(self) -> int:
        return sum(
            step.result.counters.framework_value(Counters.MAP_INPUT_RECORDS)
            for step in self.steps
        )

    def job_summaries(self) -> list[dict[str, Any]]:
        """Structured per-job accounting rows (the ``jobs`` section of
        the run report: task counts, shuffle volume, phase seconds and
        task-duration percentiles per step)."""
        from repro.obs.report import job_summary

        return [job_summary(step.name, step.result) for step in self.steps]

    def report(self) -> str:
        """Human-readable per-step ledger.

        One row per executed job with its map/reduce task counts, the
        executor backend it ran on, shuffle volume and the phase wall
        times measured by the runtime's event stream.
        """
        header = (
            f"{'step':<34} {'maps':>5} {'reds':>5} {'executor':>8} "
            f"{'shuffle':>10} {'map(s)':>8} {'reduce(s)':>9} {'wall(s)':>8}"
        )
        lines = [header]
        for step in self.steps:
            result = step.result
            lines.append(
                f"{step.name:<34} {result.num_map_tasks:>5} "
                f"{result.num_reduce_tasks:>5} {result.executor:>8} "
                f"{step.shuffle_records:>10} {result.phase_seconds('map'):>8.4f} "
                f"{result.phase_seconds('reduce'):>9.4f} {result.wall_time:>8.4f}"
            )
        total_maps = sum(s.result.num_map_tasks for s in self.steps)
        total_reds = sum(s.result.num_reduce_tasks for s in self.steps)
        lines.append(
            f"{f'TOTAL ({self.num_jobs} jobs)':<34} {total_maps:>5} "
            f"{total_reds:>5} {'':>8} {self.total_shuffle_records:>10} "
            f"{sum(s.result.phase_seconds('map') for s in self.steps):>8.4f} "
            f"{sum(s.result.phase_seconds('reduce') for s in self.steps):>9.4f} "
            f"{self.total_wall_time:>8.4f}"
        )
        return "\n".join(lines)
