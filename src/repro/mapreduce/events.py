"""Structured runtime events: the observability spine of the runtime.

Every job execution emits a stream of :class:`Event` records — job,
phase and task lifecycle transitions with wall-clock timings and
counter snapshots.  The stream is the single source of truth for

- :meth:`repro.mapreduce.chain.JobChain.report` (per-step task counts,
  executor names and phase wall times),
- :func:`repro.mapreduce.costmodel.calibrate_from_events` (fitting the
  cluster cost model's per-record constants to measured tasks), and
- the ``repro cluster ... --trace`` CLI flag (a human-readable task
  trace mirroring the paper's per-job accounting).

Events are plain frozen dataclasses; :class:`EventLog` assigns a
monotone sequence number and a timestamp relative to the log's creation
so traces are reproducible to read (no absolute wall-clock noise).
"""

from __future__ import annotations

import json
import logging
import time
from dataclasses import asdict, dataclass, field
from typing import Any, Callable, Iterable, Iterator, Mapping

logger = logging.getLogger(__name__)


class EventKind:
    """Well-known event kinds, in lifecycle order."""

    JOB_START = "job_start"
    JOB_FINISH = "job_finish"
    #: A chained job restored from a checkpoint instead of re-executed.
    JOB_SKIPPED = "job_skipped"
    PHASE_START = "phase_start"
    PHASE_FINISH = "phase_finish"
    TASK_START = "task_start"
    TASK_FINISH = "task_finish"
    TASK_RETRY = "task_retry"
    TASK_FAILED = "task_failed"
    #: An attempt exceeded ``task_timeout_s`` and was abandoned.
    TASK_TIMEOUT = "task_timeout"
    #: A speculative duplicate of a straggler attempt was dispatched.
    TASK_SPECULATED = "task_speculated"
    #: The chaos layer scheduled a fault for a task attempt.
    FAULT_INJECTED = "fault_injected"


@dataclass(frozen=True)
class Event:
    """One lifecycle transition of a job, phase or task attempt.

    ``counters`` is a nested ``{group: {counter: value}}`` snapshot —
    per-attempt counters on ``task_finish``, cumulative job counters on
    ``phase_finish``/``job_finish``.
    """

    kind: str
    job: str
    seq: int
    time_s: float
    phase: str | None = None
    task_id: int | None = None
    attempt: int | None = None
    duration_s: float | None = None
    counters: Mapping[str, Mapping[str, int]] | None = None
    error: str | None = None
    #: The owning chain/run of the emitting log (service plane); events
    #: from the classic one-log-per-runtime layout carry ``None``.
    run_id: str | None = None

    def counter(self, group: str, name: str) -> int:
        if not self.counters:
            return 0
        return int(self.counters.get(group, {}).get(name, 0))

    def as_dict(self) -> dict[str, Any]:
        """JSON-serialisable view (drops ``None`` fields)."""
        record = asdict(self)
        return {k: v for k, v in record.items() if v is not None}


@dataclass
class EventLog:
    """Append-only event stream with optional live subscribers.

    One log outlives the jobs it records: the runtime keeps a single
    log across every job it executes, so a failed job's retry and
    failure events remain observable even though no
    :class:`~repro.mapreduce.runtime.JobResult` is produced.
    """

    events: list[Event] = field(default_factory=list)
    _subscribers: list[Callable[[Event], None]] = field(default_factory=list)
    _origin: float = field(default_factory=time.perf_counter)
    #: Stamped onto every emitted event, so streams from concurrent
    #: chains stay attributable after any downstream merge.
    run_id: str | None = None

    def emit(
        self,
        kind: str,
        job: str,
        *,
        phase: str | None = None,
        task_id: int | None = None,
        attempt: int | None = None,
        duration_s: float | None = None,
        counters: Mapping[str, Mapping[str, int]] | None = None,
        error: str | None = None,
    ) -> Event:
        event = Event(
            kind=kind,
            job=job,
            seq=len(self.events),
            time_s=time.perf_counter() - self._origin,
            phase=phase,
            task_id=task_id,
            attempt=attempt,
            duration_s=duration_s,
            counters=counters,
            error=error,
            run_id=self.run_id,
        )
        self.events.append(event)
        for subscriber in list(self._subscribers):
            try:
                subscriber(event)
            except Exception:  # noqa: BLE001 - sinks must not abort the job
                logger.exception(
                    "event subscriber %r raised on %s; continuing",
                    subscriber,
                    event.kind,
                )
        return event

    @property
    def origin(self) -> float:
        """``time.perf_counter()`` value event ``time_s`` fields are
        relative to (lets external tracers align their clocks)."""
        return self._origin

    def subscribe(self, callback: Callable[[Event], None]) -> None:
        """Register a live sink (e.g. a streaming trace printer).

        A raising subscriber is isolated: its exception is logged and
        the job continues — sinks observe the runtime, they must never
        abort it.
        """
        self._subscribers.append(callback)

    def unsubscribe(self, callback: Callable[[Event], None]) -> None:
        """Remove a previously registered sink (no-op when absent), so
        short-lived sinks do not leak across chained jobs."""
        try:
            self._subscribers.remove(callback)
        except ValueError:
            pass

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self) -> Iterator[Event]:
        return iter(self.events)

    # -- queries --------------------------------------------------------

    def select(
        self,
        kind: str | None = None,
        job: str | None = None,
        phase: str | None = None,
    ) -> list[Event]:
        return [
            e
            for e in self.events
            if (kind is None or e.kind == kind)
            and (job is None or e.job == job)
            and (phase is None or e.phase == phase)
        ]

    def phase_seconds(self, job: str, phase: str) -> float:
        """Total wall time of every ``phase`` run of ``job``."""
        return sum(
            e.duration_s or 0.0
            for e in self.select(EventKind.PHASE_FINISH, job, phase)
        )

    def task_attempts(self, job: str | None = None, phase: str | None = None) -> int:
        """Number of task attempts (every ``task_start``, retries included)."""
        return len(self.select(EventKind.TASK_START, job, phase))


#: Compact labels for the well-known framework counters in traces.
_COUNTER_LABELS = {
    "map_input_records": "map_in",
    "map_output_records": "map_out",
    "combine_output_records": "combine_out",
    "shuffle_records": "shuffle",
    "shuffle_bytes": "shuffle_b",
    "reduce_input_groups": "reduce_groups",
    "reduce_output_records": "reduce_out",
    "pipelined_reduces": "pipelined",
    "task_retries": "retries",
}


def _flatten_counters(
    counters: Mapping[str, Mapping[str, int]] | None,
) -> dict[tuple[str, str], int]:
    if not counters:
        return {}
    return {
        (group, name): int(value)
        for group, values in counters.items()
        for name, value in values.items()
    }


def _format_counter_deltas(
    current: dict[tuple[str, str], int],
    baseline: dict[tuple[str, str], int],
) -> list[str]:
    """Render non-zero counter deltas vs ``baseline`` as ``name=delta``."""
    parts = []
    for (group, name), value in sorted(current.items()):
        delta = value - baseline.get((group, name), 0)
        if delta == 0:
            continue
        label = _COUNTER_LABELS.get(name, name)
        if group != "framework":
            label = f"{group}.{label}"
        parts.append(f"{label}={delta}")
    return parts


def format_trace(events: Iterable[Event]) -> str:
    """Render an event stream as an aligned, human-readable trace.

    Counter snapshots are rendered as per-event *deltas* (e.g.
    ``shuffle=1234``): task events carry per-attempt counters already,
    while the cumulative ``phase_finish``/``job_finish`` snapshots are
    differenced against the previous cumulative snapshot of the same
    job — matching the paper's per-job accounting.
    """
    lines = []
    cumulative: dict[str, dict[tuple[str, str], int]] = {}
    for e in events:
        where = e.phase or "-"
        detail = []
        if e.task_id is not None:
            detail.append(f"task={e.task_id}")
        if e.attempt is not None:
            detail.append(f"attempt={e.attempt}")
        if e.duration_s is not None:
            detail.append(f"{e.duration_s * 1e3:.1f}ms")
        if e.error is not None:
            detail.append(f"error={e.error}")
        if e.counters:
            flat = _flatten_counters(e.counters)
            if e.kind in (EventKind.PHASE_FINISH, EventKind.JOB_FINISH):
                baseline = cumulative.get(e.job, {})
                detail.extend(_format_counter_deltas(flat, baseline))
                cumulative[e.job] = flat
            else:
                detail.extend(_format_counter_deltas(flat, {}))
        if e.kind == EventKind.JOB_START:
            cumulative.pop(e.job, None)
        lines.append(
            f"[{e.time_s:9.4f}s] {e.kind:<12} {e.job:<30} {where:<7} "
            + " ".join(detail)
        )
    return "\n".join(lines)


def events_to_jsonl(events: Iterable[Event]) -> str:
    """Serialise an event stream as JSON lines (machine trace output)."""
    return "\n".join(json.dumps(e.as_dict(), default=repr) for e in events)
