"""Pluggable task executors and the unified task lifecycle.

The runtime delegates *how* a batch of tasks runs to an
:class:`Executor` backend:

``SerialExecutor``
    In-process, in-order — fully deterministic, the default.
``ThreadExecutor``
    A thread pool.  The P3C+ mappers are NumPy-heavy and release the
    GIL inside vectorised kernels, so threads overlap real work without
    any pickling cost.
``ProcessExecutor``
    A process pool for CPU-bound pure-Python tasks.  Task functions,
    their arguments and their outputs must be picklable.

*What* a task's lifecycle is — first attempt, Hadoop-style retry with
optional exponential backoff, retry counting, per-attempt timeouts,
speculative re-execution of stragglers, lifecycle events — lives in
exactly one place, :class:`TaskRunner`, shared by the map and reduce
phases.  First attempts of a phase are dispatched through the executor
as one batch; retries re-run in-process (tasks are pure functions of
their arguments, so the backend cannot change the output).

Executors also expose two *wrapping hooks* (``wrap_calls`` for a
phase's first-attempt batch, ``wrap_call`` for individual re-dispatched
attempts).  The base implementations are the identity, costing nothing;
:class:`~repro.mapreduce.faults.ChaosExecutor` overrides them to
inject deterministic faults without the runner knowing chaos exists.
"""

from __future__ import annotations

import os
import pickle
import statistics
import threading
import time
from concurrent.futures import (
    FIRST_COMPLETED,
    Future,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
    wait,
)
from dataclasses import dataclass
from typing import Any, Callable, Sequence

from repro.mapreduce.cache import DistributedCache
from repro.mapreduce.counters import Counters
from repro.mapreduce.events import EventKind, EventLog


class TaskFailedError(RuntimeError):
    """A task failed on every allowed attempt.

    Carries the job-level :class:`Counters` accumulated up to the
    failure (including ``framework.task_retries`` for the exhausted
    task), so retry accounting survives even when no ``JobResult`` is
    produced.
    """

    def __init__(
        self,
        phase: str,
        task_id: int,
        attempts: int,
        cause: Exception,
        counters: Counters | None = None,
    ):
        super().__init__(
            f"{phase} task {task_id} failed after {attempts} attempt(s): "
            f"{cause!r}"
        )
        self.phase = phase
        self.task_id = task_id
        self.attempts = attempts
        self.cause = cause
        self.counters = counters


class TaskTimeoutError(RuntimeError):
    """One task attempt exceeded ``task_timeout_s`` and was abandoned.

    Mirrors Hadoop's ``mapreduce.task.timeout`` kill: the attempt is
    treated exactly like a failed attempt — retried while the budget
    lasts, fatal (as the ``cause`` of :class:`TaskFailedError`) once
    exhausted.
    """

    def __init__(self, phase: str, task_id: int, timeout_s: float):
        super().__init__(
            f"{phase} task {task_id} exceeded the {timeout_s:g}s task timeout"
        )
        self.phase = phase
        self.task_id = task_id
        self.timeout_s = timeout_s


@dataclass(frozen=True)
class TaskOutcome:
    """Result of one task attempt: a value or a captured exception."""

    value: Any = None
    error: Exception | None = None

    @classmethod
    def capture(cls, fn: Callable[..., Any], args: tuple) -> "TaskOutcome":
        try:
            return cls(value=fn(*args))
        except Exception as error:  # noqa: BLE001 - any task error retries
            return cls(error=error)


class LeaseStats:
    """Thread-safe lease accounting, sampled by the telemetry plane.

    The executor seam (:class:`_LeasedPool` / :func:`_run_inline`)
    updates these around every leased dispatch, so the service's
    telemetry sampler can read live per-chain slot pressure — task
    attempts in flight, cumulative slot-wait — without touching the
    scheduler's own ledger.
    """

    __slots__ = ("_lock", "acquired_total", "released_total",
                 "wait_s_total", "last_wait_s")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.acquired_total = 0
        self.released_total = 0
        self.wait_s_total = 0.0
        self.last_wait_s = 0.0

    def on_acquired(self, waited_s: float) -> None:
        waited_s = max(0.0, float(waited_s))
        with self._lock:
            self.acquired_total += 1
            self.wait_s_total += waited_s
            self.last_wait_s = waited_s

    def on_released(self) -> None:
        with self._lock:
            self.released_total += 1

    def inflight(self) -> int:
        with self._lock:
            return self.acquired_total - self.released_total

    def snapshot(self) -> dict[str, Any]:
        with self._lock:
            return {
                "acquired_total": self.acquired_total,
                "released_total": self.released_total,
                "inflight": self.acquired_total - self.released_total,
                "wait_s_total": round(self.wait_s_total, 6),
                "last_wait_s": round(self.last_wait_s, 6),
            }


class SlotLease:
    """Cooperative slot admission: the scheduler's seam into executors.

    An executor carrying a lease (:attr:`Executor.slot_lease`) holds
    exactly one slot per in-flight task: ``acquire()`` runs before each
    dispatch and ``release()`` when the attempt completes, so a
    scheduler (see :mod:`repro.mapreduce.scheduler`) can interleave
    task batches from many concurrent chains on one bounded pool.
    Implementations must be thread-safe — the pipelined runtime and the
    timeout/speculation monitor both dispatch from driver threads while
    releases arrive on pool callback threads.  No slot is ever held
    while waiting for another (acquire-per-task, release-at-settle), so
    leases cannot deadlock across chains.
    """

    _stats_guard = threading.Lock()

    def acquire(self) -> None:
        raise NotImplementedError

    def release(self) -> None:
        raise NotImplementedError

    def stats(self) -> LeaseStats:
        """Lazily-created per-lease accounting (telemetry sampling)."""
        stats = getattr(self, "_stats", None)
        if stats is None:
            with SlotLease._stats_guard:
                stats = getattr(self, "_stats", None)
                if stats is None:
                    stats = LeaseStats()
                    self._stats = stats
        return stats


class _LeasedPool:
    """Wraps a task pool so every submitted call holds one lease slot
    until its future settles.  Done callbacks fire exactly once —
    including for cancelled futures — so accounting balances on every
    path, and a submit that itself raises releases eagerly."""

    def __init__(self, pool: Any, lease: SlotLease) -> None:
        self._pool = pool
        self._lease = lease

    def submit(self, fn: Callable[..., Any], *args: Any) -> Future:
        stats = self._lease.stats()
        started = time.monotonic()
        self._lease.acquire()
        stats.on_acquired(time.monotonic() - started)
        try:
            future = self._pool.submit(fn, *args)
        except BaseException:
            self._lease.release()
            stats.on_released()
            raise

        def _settle(_f: Future) -> None:
            self._lease.release()
            stats.on_released()

        future.add_done_callback(_settle)
        return future

    def shutdown(self, wait: bool = True, cancel_futures: bool = False) -> None:
        self._pool.shutdown(wait=wait, cancel_futures=cancel_futures)

    def __enter__(self) -> "_LeasedPool":
        return self

    def __exit__(self, *exc_info: Any) -> bool:
        self.shutdown(wait=True)
        return False


def _run_inline(
    fn: Callable[..., Any],
    calls: Sequence[tuple],
    lease: SlotLease | None,
) -> list[TaskOutcome]:
    """In-process batch execution, lease-gated when a lease is set."""
    if lease is None:
        return [TaskOutcome.capture(fn, args) for args in calls]
    outcomes: list[TaskOutcome] = []
    stats = lease.stats()
    for args in calls:
        started = time.monotonic()
        lease.acquire()
        stats.on_acquired(time.monotonic() - started)
        try:
            outcomes.append(TaskOutcome.capture(fn, args))
        finally:
            lease.release()
            stats.on_released()
    return outcomes


class Executor:
    """Backend contract: run a batch of task calls, never raise.

    ``run_batch`` returns one :class:`TaskOutcome` per call, in call
    order, regardless of completion order — ordering (and therefore
    output determinism) is the runner's job, not the backend's.
    """

    name: str = "executor"

    #: Optional cooperative admission lease.  When set (by the service
    #: plane), every task dispatch acquires one slot first and releases
    #: it at completion; ``None`` (the default) costs one attribute
    #: check per batch.
    slot_lease: SlotLease | None = None

    def run_batch(
        self, fn: Callable[..., Any], calls: Sequence[tuple]
    ) -> list[TaskOutcome]:
        raise NotImplementedError

    # -- chaos hooks (identity by default; see faults.ChaosExecutor) ----

    def wrap_calls(
        self,
        fn: Callable[..., Any],
        calls: Sequence[tuple],
        *,
        job: str,
        phase: str,
        task_ids: Sequence[int],
    ) -> tuple[Callable[..., Any], Sequence[tuple]]:
        """Rewrite a phase's first-attempt batch (fault injection hook)."""
        return fn, calls

    def wrap_call(
        self,
        fn: Callable[..., Any],
        args: tuple,
        *,
        job: str,
        phase: str,
        task_id: int,
        attempt: int,
        clean: bool = False,
    ) -> tuple[Callable[..., Any], tuple]:
        """Rewrite one re-dispatched attempt (retry / speculative copy)."""
        return fn, args

    # -- concurrency hook ----------------------------------------------

    def make_pool(self):
        """A ``concurrent.futures`` pool for task-level scheduling, or
        ``None`` when the backend cannot overlap tasks (serial).  Used
        by the runner's timeout/speculation path; the caller owns the
        pool and must shut it down."""
        return None


class SerialExecutor(Executor):
    """In-order, in-process execution — deterministic, zero overhead."""

    name = "serial"

    def run_batch(
        self, fn: Callable[..., Any], calls: Sequence[tuple]
    ) -> list[TaskOutcome]:
        return _run_inline(fn, calls, self.slot_lease)


class _PoolExecutor(Executor):
    """Shared submit/collect logic for the pool-backed executors."""

    def __init__(self, max_workers: int | None = None) -> None:
        if max_workers is not None and max_workers < 1:
            raise ValueError("max_workers must be >= 1")
        self.max_workers = max_workers or os.cpu_count() or 1

    def _make_pool(self):
        raise NotImplementedError

    def make_pool(self):
        pool = self._make_pool()
        lease = self.slot_lease
        return _LeasedPool(pool, lease) if lease is not None else pool

    def run_batch(
        self, fn: Callable[..., Any], calls: Sequence[tuple]
    ) -> list[TaskOutcome]:
        if len(calls) <= 1 or self.max_workers == 1:
            # A pool buys nothing for a single task; skip its overhead.
            return _run_inline(fn, calls, self.slot_lease)
        # make_pool (not _make_pool): a set slot_lease gates every
        # submit through the leased wrapper.
        with self.make_pool() as pool:
            futures: list[Future] = [pool.submit(fn, *args) for args in calls]
            outcomes: list[TaskOutcome] = []
            for future in futures:
                try:
                    outcomes.append(TaskOutcome(value=future.result()))
                except Exception as error:  # noqa: BLE001
                    outcomes.append(TaskOutcome(error=error))
        return outcomes


class ThreadExecutor(_PoolExecutor):
    """Thread-pool backend for GIL-releasing (NumPy-heavy) tasks."""

    name = "thread"

    def _make_pool(self):
        return ThreadPoolExecutor(max_workers=self.max_workers)


# -- process-executor data plane ----------------------------------------
#
# Two costs dominate process-pool dispatch on cache-heavy jobs:
#
# 1. the distributed cache (RSSC tables, candidate sets, GMM params)
#    used to be re-pickled into *every* task's arguments;
# 2. ndarray split payloads were serialised inline into the pickle
#    stream.
#
# The broadcast below ships each cache once per worker (pool
# initializer, keyed by the cache's content fingerprint) while tasks
# carry only a :class:`CacheHandle`; argument packing uses pickle
# protocol 5 so ndarray buffers travel out-of-band instead of being
# copied through the pickle stream.

#: Per-process registry of broadcast caches, keyed by content
#: fingerprint.  Workers are seeded by the pool initializer; the parent
#: process registers at broadcast time so in-process attempts (the
#: single-task shortcut, retries) resolve handles too.
_WORKER_CACHES: dict[str, DistributedCache] = {}

#: Jobs run sequentially and carry one cache each, so a handful of live
#: broadcasts is ample; the cap only bounds parent-side memory.
_MAX_BROADCASTS = 8


def _install_broadcasts(payload: dict[str, DistributedCache]) -> None:
    """Pool-worker initializer: install broadcast caches once per worker."""
    _WORKER_CACHES.update(payload)


class CacheHandle(DistributedCache):
    """A fingerprint-keyed reference to a broadcast distributed cache.

    Pickles to just the fingerprint, so a task's arguments carry O(1)
    bytes of cache no matter how large the RSSC tables are; lookups
    resolve lazily against the registry the worker's pool initializer
    populated.
    """

    def __init__(self, fingerprint: str) -> None:
        self.cache_fingerprint = fingerprint

    @property
    def _entries(self):  # type: ignore[override]
        try:
            resolved = _WORKER_CACHES[self.cache_fingerprint]
        except KeyError:
            raise RuntimeError(
                f"broadcast cache {self.cache_fingerprint!r} is not "
                "installed in this process; tasks carrying a CacheHandle "
                "must run on the pool of the executor that broadcast it"
            ) from None
        return resolved._entries

    def fingerprint(self) -> str:
        return self.cache_fingerprint

    def __reduce__(self):
        return (CacheHandle, (self.cache_fingerprint,))

    def __repr__(self) -> str:
        return f"CacheHandle({self.cache_fingerprint!r})"


def _pack_args(args: tuple) -> tuple[bytes, list[bytes]]:
    """Pickle-5 out-of-band packing of one task's arguments.

    Contiguous ndarray buffers (the split payloads) leave the pickle
    stream via ``buffer_callback`` instead of being copied into it.
    """
    buffers: list[pickle.PickleBuffer] = []
    data = pickle.dumps(args, protocol=5, buffer_callback=buffers.append)
    return data, [buffer.raw().tobytes() for buffer in buffers]


def _run_packed(fn: Callable[..., Any], data: bytes, buffers: list[bytes]):
    """Worker-side companion of :func:`_pack_args`."""
    return fn(*pickle.loads(data, buffers=buffers))


class _PackingPool:
    """Wraps a process pool so submitted arguments go through
    :func:`_pack_args`; futures and shutdown delegate unchanged."""

    def __init__(self, pool: ProcessPoolExecutor) -> None:
        self._pool = pool

    def submit(self, fn: Callable[..., Any], *args: Any) -> Future:
        data, buffers = _pack_args(args)
        return self._pool.submit(_run_packed, fn, data, buffers)

    def shutdown(self, wait: bool = True, cancel_futures: bool = False) -> None:
        self._pool.shutdown(wait=wait, cancel_futures=cancel_futures)

    def __enter__(self) -> "_PackingPool":
        return self

    def __exit__(self, *exc_info: Any) -> bool:
        self.shutdown(wait=True)
        return False


class ProcessExecutor(_PoolExecutor):
    """Process-pool backend; tasks and their data must be picklable.

    Job caches registered via :meth:`broadcast` are shipped once per
    worker through the pool initializer (keyed by content fingerprint)
    rather than once per task, and task arguments are packed with
    pickle protocol 5 so ndarray split payloads travel out-of-band.
    """

    name = "process"

    def __init__(self, max_workers: int | None = None) -> None:
        super().__init__(max_workers)
        self._broadcasts: dict[str, DistributedCache] = {}

    def broadcast(self, cache: DistributedCache) -> CacheHandle:
        """Register ``cache`` for per-worker shipment.

        Returns the :class:`CacheHandle` tasks should carry in its
        place.  Idempotent per content fingerprint: re-broadcasting an
        equal cache reuses the existing registration.
        """
        fingerprint = cache.fingerprint()
        self._broadcasts[fingerprint] = cache
        _WORKER_CACHES[fingerprint] = cache
        while len(self._broadcasts) > _MAX_BROADCASTS:
            stale = next(iter(self._broadcasts))
            del self._broadcasts[stale]
            _WORKER_CACHES.pop(stale, None)
        return CacheHandle(fingerprint)

    def _make_pool(self):
        if self._broadcasts:
            pool = ProcessPoolExecutor(
                max_workers=self.max_workers,
                initializer=_install_broadcasts,
                initargs=(dict(self._broadcasts),),
            )
        else:
            pool = ProcessPoolExecutor(max_workers=self.max_workers)
        return _PackingPool(pool)


EXECUTORS: dict[str, type[Executor]] = {
    SerialExecutor.name: SerialExecutor,
    ThreadExecutor.name: ThreadExecutor,
    ProcessExecutor.name: ProcessExecutor,
}


def resolve_executor(
    spec: str | Executor | None,
    max_workers: int | None = None,
) -> Executor:
    """Resolve an executor selection to a backend instance.

    ``spec`` may be an :class:`Executor` instance (used as-is), a name
    from :data:`EXECUTORS`, or ``None`` for the historical auto rule:
    ``max_workers`` > 1 selects the process pool, anything else serial.
    """
    if isinstance(spec, Executor):
        return spec
    if spec is None:
        if max_workers is not None and max_workers > 1:
            return ProcessExecutor(max_workers)
        return SerialExecutor()
    try:
        backend = EXECUTORS[spec]
    except KeyError:
        raise ValueError(
            f"unknown executor {spec!r}; expected one of {sorted(EXECUTORS)}"
        ) from None
    if backend is SerialExecutor:
        return SerialExecutor()
    return backend(max_workers)


class TaskRunner:
    """The single retry/backoff path for every task of every phase.

    One runner executes one job: it dispatches each phase's first
    attempts as a batch through the executor, settles them in task
    order (retrying failed attempts in-process with exponential
    backoff), merges per-task counters into the job counters, counts
    every retry — including those of tasks that go on to exhaust their
    attempts — and emits the full lifecycle event stream.

    Two optional policies extend the lifecycle:

    - ``task_timeout_s``: an attempt running longer than this is
      treated as failed (:class:`TaskTimeoutError`) and retried.  On a
      pool-backed executor the runner monitors wall clock and abandons
      the in-flight attempt; on the serial executor (which cannot
      preempt) the limit is enforced post-hoc from the attempt's
      reported elapsed time.
    - ``speculative``: once at least half the phase's tasks finished,
      a task still running past ``speculation_factor`` × the median
      completed duration gets a *speculative* duplicate attempt on a
      fresh worker; the first successful result wins and the loser is
      discarded, so output invariants are untouched.  Requires a
      pool-backed executor; a no-op on serial.
    """

    #: Polling granularity of the concurrent monitor loop (seconds).
    _TICK_S = 0.005

    def __init__(
        self,
        executor: Executor,
        events: EventLog,
        job_name: str,
        max_attempts: int,
        backoff_s: float = 0.0,
        task_timeout_s: float | None = None,
        speculative: bool = False,
        speculation_factor: float = 2.0,
        speculation_floor_s: float = 0.02,
    ) -> None:
        if max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if task_timeout_s is not None and task_timeout_s <= 0:
            raise ValueError("task_timeout_s must be > 0")
        if speculation_factor <= 1.0:
            raise ValueError("speculation_factor must be > 1")
        self.executor = executor
        self.events = events
        self.job_name = job_name
        self.max_attempts = max_attempts
        self.backoff_s = backoff_s
        self.task_timeout_s = task_timeout_s
        self.speculative = speculative
        self.speculation_factor = speculation_factor
        self.speculation_floor_s = speculation_floor_s

    def run_phase(
        self,
        phase: str,
        fn: Callable[..., tuple[Any, Counters, float]],
        calls: Sequence[tuple],
        task_ids: Sequence[int],
        counters: Counters,
        validate: Callable[[Any, Counters], None] | None = None,
    ) -> list[tuple[Any, float]]:
        """Run one phase's tasks; returns ``(payload, seconds)`` per task.

        ``fn`` is the task function: it must return a
        ``(payload, task_counters, elapsed_seconds)`` triple.
        ``validate`` (optional) inspects a successful attempt's payload
        against its counters; raising marks the attempt failed (the
        shuffle-integrity analogue of Hadoop's fetch checksums).
        """
        started = time.perf_counter()
        self.events.emit(EventKind.PHASE_START, self.job_name, phase=phase)
        pool = None
        if len(calls) > 1 and (
            self.task_timeout_s is not None or self.speculative
        ):
            pool = self.executor.make_pool()
        if pool is not None:
            results = self._run_phase_concurrent(
                pool, phase, fn, calls, task_ids, counters, validate
            )
        else:
            for task_id in task_ids:
                self.events.emit(
                    EventKind.TASK_START,
                    self.job_name,
                    phase=phase,
                    task_id=task_id,
                    attempt=1,
                )
            batch_fn, batch_calls = self.executor.wrap_calls(
                fn, calls, job=self.job_name, phase=phase, task_ids=task_ids
            )
            outcomes = self.executor.run_batch(batch_fn, batch_calls)
            results = [
                self._settle(phase, task_id, fn, args, outcome, counters, validate)
                for task_id, args, outcome in zip(task_ids, calls, outcomes)
            ]
        self.events.emit(
            EventKind.PHASE_FINISH,
            self.job_name,
            phase=phase,
            duration_s=time.perf_counter() - started,
            counters=counters.snapshot(),
        )
        return results

    # -- shared attempt post-checks -------------------------------------

    def _post_check(
        self,
        phase: str,
        task_id: int,
        outcome: TaskOutcome,
        validate: Callable[[Any, Counters], None] | None,
        enforce_timeout: bool = True,
    ) -> TaskOutcome:
        """Convert a "successful" attempt into a failure when it broke a
        policy: ran past the task timeout or produced a payload that
        fails shuffle-integrity validation."""
        if outcome.error is not None:
            return outcome
        payload, task_counters, elapsed = outcome.value
        if (
            enforce_timeout
            and self.task_timeout_s is not None
            and elapsed > self.task_timeout_s
        ):
            self.events.emit(
                EventKind.TASK_TIMEOUT,
                self.job_name,
                phase=phase,
                task_id=task_id,
                error=f"exceeded {self.task_timeout_s:g}s",
            )
            return TaskOutcome(
                error=TaskTimeoutError(phase, task_id, self.task_timeout_s)
            )
        if validate is not None:
            try:
                validate(payload, task_counters)
            except Exception as error:  # noqa: BLE001 - any defect retries
                return TaskOutcome(error=error)
        return outcome

    # -- batch (serial / no-policy) path --------------------------------

    def _settle(
        self,
        phase: str,
        task_id: int,
        fn: Callable[..., Any],
        args: tuple,
        outcome: TaskOutcome,
        counters: Counters,
        validate: Callable[[Any, Counters], None] | None = None,
    ) -> tuple[Any, float]:
        attempt = 1
        while True:
            outcome = self._post_check(phase, task_id, outcome, validate)
            if outcome.error is None:
                payload, task_counters, elapsed = outcome.value
                counters.merge(task_counters)
                self.events.emit(
                    EventKind.TASK_FINISH,
                    self.job_name,
                    phase=phase,
                    task_id=task_id,
                    attempt=attempt,
                    duration_s=elapsed,
                    counters=task_counters.snapshot(),
                )
                return payload, elapsed
            if attempt >= self.max_attempts:
                self.events.emit(
                    EventKind.TASK_FAILED,
                    self.job_name,
                    phase=phase,
                    task_id=task_id,
                    attempt=attempt,
                    error=repr(outcome.error),
                    counters=counters.snapshot(),
                )
                raise TaskFailedError(
                    phase, task_id, attempt, outcome.error, counters=counters
                )
            counters.increment(Counters.FRAMEWORK, Counters.TASK_RETRIES)
            self.events.emit(
                EventKind.TASK_RETRY,
                self.job_name,
                phase=phase,
                task_id=task_id,
                attempt=attempt,
                error=repr(outcome.error),
            )
            if self.backoff_s > 0:
                time.sleep(self.backoff_s * (2 ** (attempt - 1)))
            attempt += 1
            self.events.emit(
                EventKind.TASK_START,
                self.job_name,
                phase=phase,
                task_id=task_id,
                attempt=attempt,
            )
            # Retries re-run in-process: tasks are pure functions of
            # their arguments, so the backend cannot change the output.
            retry_fn, retry_args = self.executor.wrap_call(
                fn,
                args,
                job=self.job_name,
                phase=phase,
                task_id=task_id,
                attempt=attempt,
            )
            outcome = TaskOutcome.capture(retry_fn, retry_args)

    # -- concurrent (timeout / speculation) path -------------------------

    def _run_phase_concurrent(
        self,
        pool,
        phase: str,
        fn: Callable[..., Any],
        calls: Sequence[tuple],
        task_ids: Sequence[int],
        counters: Counters,
        validate: Callable[[Any, Counters], None] | None,
    ) -> list[tuple[Any, float]]:
        """Task-level scheduling with wall-clock timeouts and
        first-result-wins speculative duplicates.

        Abandoned attempts (timeouts, speculation losers) may keep
        running on their worker — tasks are pure, so their ignored
        results are harmless — but their outcome can never settle a
        task twice: settlement is guarded per task id.
        """
        index = {tid: i for i, tid in enumerate(task_ids)}
        results: dict[int, tuple[Any, float]] = {}
        attempt_no = {tid: 1 for tid in task_ids}
        dispatched_at = {tid: 0.0 for tid in task_ids}
        speculated: set[int] = set()
        durations: list[float] = []
        # future -> (task_id, attempt, is_speculative)
        pending: dict[Future, tuple[int, int, bool]] = {}
        abandoned: set[Future] = set()

        def dispatch(tid: int, attempt: int, speculative: bool) -> None:
            call_fn, call_args = self.executor.wrap_call(
                fn,
                calls[index[tid]],
                job=self.job_name,
                phase=phase,
                task_id=tid,
                attempt=attempt,
                clean=speculative,
            )
            kind = (
                EventKind.TASK_SPECULATED if speculative else EventKind.TASK_START
            )
            self.events.emit(
                kind,
                self.job_name,
                phase=phase,
                task_id=tid,
                attempt=attempt,
            )
            future = pool.submit(call_fn, *call_args)
            if not speculative:
                # Timed from submit *completion*: a leased pool may
                # block in submit waiting for a slot grant, and slot
                # wait must not count against the task's timeout.
                dispatched_at[tid] = time.perf_counter()
            pending[future] = (tid, attempt, speculative)

        def fail_attempt(tid: int, attempt: int, error: Exception) -> None:
            """Retry (counted) or exhaust the task's attempt budget."""
            if attempt >= self.max_attempts:
                self.events.emit(
                    EventKind.TASK_FAILED,
                    self.job_name,
                    phase=phase,
                    task_id=tid,
                    attempt=attempt,
                    error=repr(error),
                    counters=counters.snapshot(),
                )
                raise TaskFailedError(
                    phase, tid, attempt, error, counters=counters
                )
            counters.increment(Counters.FRAMEWORK, Counters.TASK_RETRIES)
            self.events.emit(
                EventKind.TASK_RETRY,
                self.job_name,
                phase=phase,
                task_id=tid,
                attempt=attempt,
                error=repr(error),
            )
            attempt_no[tid] = attempt + 1
            dispatch(tid, attempt + 1, speculative=False)

        def settle_success(tid: int, attempt: int, value: Any) -> None:
            payload, task_counters, elapsed = value
            counters.merge(task_counters)
            durations.append(elapsed)
            results[tid] = (payload, elapsed)
            self.events.emit(
                EventKind.TASK_FINISH,
                self.job_name,
                phase=phase,
                task_id=tid,
                attempt=attempt,
                duration_s=elapsed,
                counters=task_counters.snapshot(),
            )

        try:
            for tid in task_ids:
                dispatch(tid, 1, speculative=False)
            while len(results) < len(task_ids):
                done, _ = wait(
                    list(pending),
                    timeout=self._TICK_S,
                    return_when=FIRST_COMPLETED,
                )
                for future in done:
                    tid, attempt, is_spec = pending.pop(future)
                    stale = tid in results or future in abandoned
                    abandoned.discard(future)
                    if stale:
                        continue  # task already settled / attempt timed out
                    error = future.exception()
                    if error is None:
                        # Wall-clock timeouts are enforced by the
                        # monitor below; a completed attempt counts.
                        outcome = self._post_check(
                            phase,
                            tid,
                            TaskOutcome(value=future.result()),
                            validate,
                            enforce_timeout=False,
                        )
                        error = outcome.error
                        if error is None:
                            settle_success(tid, attempt, outcome.value)
                            continue
                    if is_spec:
                        continue  # losing speculative copy: discard
                    fail_attempt(tid, attempt, error)
                now = time.perf_counter()
                if self.task_timeout_s is not None:
                    for future, (tid, attempt, is_spec) in list(pending.items()):
                        if (
                            is_spec
                            or tid in results
                            or future in abandoned
                            or now - dispatched_at[tid] <= self.task_timeout_s
                        ):
                            continue
                        abandoned.add(future)
                        future.cancel()
                        self.events.emit(
                            EventKind.TASK_TIMEOUT,
                            self.job_name,
                            phase=phase,
                            task_id=tid,
                            attempt=attempt,
                            error=f"exceeded {self.task_timeout_s:g}s",
                        )
                        fail_attempt(
                            tid,
                            attempt,
                            TaskTimeoutError(phase, tid, self.task_timeout_s),
                        )
                if self.speculative and len(results) >= max(
                    1, len(task_ids) // 2
                ):
                    threshold = max(
                        self.speculation_factor * statistics.median(durations),
                        self.speculation_floor_s,
                    )
                    for tid in task_ids:
                        if (
                            tid in results
                            or tid in speculated
                            or now - dispatched_at[tid] <= threshold
                        ):
                            continue
                        speculated.add(tid)
                        dispatch(tid, attempt_no[tid], speculative=True)
        finally:
            pool.shutdown(wait=False, cancel_futures=True)
        return [results[tid] for tid in task_ids]
