"""Pluggable task executors and the unified task lifecycle.

The runtime delegates *how* a batch of tasks runs to an
:class:`Executor` backend:

``SerialExecutor``
    In-process, in-order — fully deterministic, the default.
``ThreadExecutor``
    A thread pool.  The P3C+ mappers are NumPy-heavy and release the
    GIL inside vectorised kernels, so threads overlap real work without
    any pickling cost.
``ProcessExecutor``
    A process pool for CPU-bound pure-Python tasks.  Task functions,
    their arguments and their outputs must be picklable.

*What* a task's lifecycle is — first attempt, Hadoop-style retry with
optional exponential backoff, retry counting, lifecycle events —
lives in exactly one place, :class:`TaskRunner`, shared by the map and
reduce phases.  First attempts of a phase are dispatched through the
executor as one batch; retries re-run in-process (tasks are pure
functions of their arguments, so the backend cannot change the output).
"""

from __future__ import annotations

import os
import time
from concurrent.futures import Future, ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass
from typing import Any, Callable, Sequence

from repro.mapreduce.counters import Counters
from repro.mapreduce.events import EventKind, EventLog


class TaskFailedError(RuntimeError):
    """A task failed on every allowed attempt.

    Carries the job-level :class:`Counters` accumulated up to the
    failure (including ``framework.task_retries`` for the exhausted
    task), so retry accounting survives even when no ``JobResult`` is
    produced.
    """

    def __init__(
        self,
        phase: str,
        task_id: int,
        attempts: int,
        cause: Exception,
        counters: Counters | None = None,
    ):
        super().__init__(
            f"{phase} task {task_id} failed after {attempts} attempt(s): "
            f"{cause!r}"
        )
        self.phase = phase
        self.task_id = task_id
        self.attempts = attempts
        self.cause = cause
        self.counters = counters


@dataclass(frozen=True)
class TaskOutcome:
    """Result of one task attempt: a value or a captured exception."""

    value: Any = None
    error: Exception | None = None

    @classmethod
    def capture(cls, fn: Callable[..., Any], args: tuple) -> "TaskOutcome":
        try:
            return cls(value=fn(*args))
        except Exception as error:  # noqa: BLE001 - any task error retries
            return cls(error=error)


class Executor:
    """Backend contract: run a batch of task calls, never raise.

    ``run_batch`` returns one :class:`TaskOutcome` per call, in call
    order, regardless of completion order — ordering (and therefore
    output determinism) is the runner's job, not the backend's.
    """

    name: str = "executor"

    def run_batch(
        self, fn: Callable[..., Any], calls: Sequence[tuple]
    ) -> list[TaskOutcome]:
        raise NotImplementedError


class SerialExecutor(Executor):
    """In-order, in-process execution — deterministic, zero overhead."""

    name = "serial"

    def run_batch(
        self, fn: Callable[..., Any], calls: Sequence[tuple]
    ) -> list[TaskOutcome]:
        return [TaskOutcome.capture(fn, args) for args in calls]


class _PoolExecutor(Executor):
    """Shared submit/collect logic for the pool-backed executors."""

    def __init__(self, max_workers: int | None = None) -> None:
        if max_workers is not None and max_workers < 1:
            raise ValueError("max_workers must be >= 1")
        self.max_workers = max_workers or os.cpu_count() or 1

    def _make_pool(self):
        raise NotImplementedError

    def run_batch(
        self, fn: Callable[..., Any], calls: Sequence[tuple]
    ) -> list[TaskOutcome]:
        if len(calls) <= 1 or self.max_workers == 1:
            # A pool buys nothing for a single task; skip its overhead.
            return [TaskOutcome.capture(fn, args) for args in calls]
        with self._make_pool() as pool:
            futures: list[Future] = [pool.submit(fn, *args) for args in calls]
            outcomes: list[TaskOutcome] = []
            for future in futures:
                try:
                    outcomes.append(TaskOutcome(value=future.result()))
                except Exception as error:  # noqa: BLE001
                    outcomes.append(TaskOutcome(error=error))
        return outcomes


class ThreadExecutor(_PoolExecutor):
    """Thread-pool backend for GIL-releasing (NumPy-heavy) tasks."""

    name = "thread"

    def _make_pool(self):
        return ThreadPoolExecutor(max_workers=self.max_workers)


class ProcessExecutor(_PoolExecutor):
    """Process-pool backend; tasks and their data must be picklable."""

    name = "process"

    def _make_pool(self):
        return ProcessPoolExecutor(max_workers=self.max_workers)


EXECUTORS: dict[str, type[Executor]] = {
    SerialExecutor.name: SerialExecutor,
    ThreadExecutor.name: ThreadExecutor,
    ProcessExecutor.name: ProcessExecutor,
}


def resolve_executor(
    spec: str | Executor | None,
    max_workers: int | None = None,
) -> Executor:
    """Resolve an executor selection to a backend instance.

    ``spec`` may be an :class:`Executor` instance (used as-is), a name
    from :data:`EXECUTORS`, or ``None`` for the historical auto rule:
    ``max_workers`` > 1 selects the process pool, anything else serial.
    """
    if isinstance(spec, Executor):
        return spec
    if spec is None:
        if max_workers is not None and max_workers > 1:
            return ProcessExecutor(max_workers)
        return SerialExecutor()
    try:
        backend = EXECUTORS[spec]
    except KeyError:
        raise ValueError(
            f"unknown executor {spec!r}; expected one of {sorted(EXECUTORS)}"
        ) from None
    if backend is SerialExecutor:
        return SerialExecutor()
    return backend(max_workers)


class TaskRunner:
    """The single retry/backoff path for every task of every phase.

    One runner executes one job: it dispatches each phase's first
    attempts as a batch through the executor, settles them in task
    order (retrying failed attempts in-process with exponential
    backoff), merges per-task counters into the job counters, counts
    every retry — including those of tasks that go on to exhaust their
    attempts — and emits the full lifecycle event stream.
    """

    def __init__(
        self,
        executor: Executor,
        events: EventLog,
        job_name: str,
        max_attempts: int,
        backoff_s: float = 0.0,
    ) -> None:
        if max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        self.executor = executor
        self.events = events
        self.job_name = job_name
        self.max_attempts = max_attempts
        self.backoff_s = backoff_s

    def run_phase(
        self,
        phase: str,
        fn: Callable[..., tuple[Any, Counters, float]],
        calls: Sequence[tuple],
        task_ids: Sequence[int],
        counters: Counters,
    ) -> list[tuple[Any, float]]:
        """Run one phase's tasks; returns ``(payload, seconds)`` per task.

        ``fn`` is the task function: it must return a
        ``(payload, task_counters, elapsed_seconds)`` triple.
        """
        started = time.perf_counter()
        self.events.emit(EventKind.PHASE_START, self.job_name, phase=phase)
        for task_id in task_ids:
            self.events.emit(
                EventKind.TASK_START,
                self.job_name,
                phase=phase,
                task_id=task_id,
                attempt=1,
            )
        outcomes = self.executor.run_batch(fn, calls)
        results = [
            self._settle(phase, task_id, fn, args, outcome, counters)
            for task_id, args, outcome in zip(task_ids, calls, outcomes)
        ]
        self.events.emit(
            EventKind.PHASE_FINISH,
            self.job_name,
            phase=phase,
            duration_s=time.perf_counter() - started,
            counters=counters.snapshot(),
        )
        return results

    def _settle(
        self,
        phase: str,
        task_id: int,
        fn: Callable[..., Any],
        args: tuple,
        outcome: TaskOutcome,
        counters: Counters,
    ) -> tuple[Any, float]:
        attempt = 1
        while True:
            if outcome.error is None:
                payload, task_counters, elapsed = outcome.value
                counters.merge(task_counters)
                self.events.emit(
                    EventKind.TASK_FINISH,
                    self.job_name,
                    phase=phase,
                    task_id=task_id,
                    attempt=attempt,
                    duration_s=elapsed,
                    counters=task_counters.snapshot(),
                )
                return payload, elapsed
            if attempt >= self.max_attempts:
                self.events.emit(
                    EventKind.TASK_FAILED,
                    self.job_name,
                    phase=phase,
                    task_id=task_id,
                    attempt=attempt,
                    error=repr(outcome.error),
                    counters=counters.snapshot(),
                )
                raise TaskFailedError(
                    phase, task_id, attempt, outcome.error, counters=counters
                )
            counters.increment(Counters.FRAMEWORK, Counters.TASK_RETRIES)
            self.events.emit(
                EventKind.TASK_RETRY,
                self.job_name,
                phase=phase,
                task_id=task_id,
                attempt=attempt,
                error=repr(outcome.error),
            )
            if self.backoff_s > 0:
                time.sleep(self.backoff_s * (2 ** (attempt - 1)))
            attempt += 1
            self.events.emit(
                EventKind.TASK_START,
                self.job_name,
                phase=phase,
                task_id=task_id,
                attempt=attempt,
            )
            # Retries re-run in-process: tasks are pure functions of
            # their arguments, so the backend cannot change the output.
            outcome = TaskOutcome.capture(fn, args)
