"""The distributed cache: read-only side data shipped to every task.

P3C+-MR relies on the cache heavily: candidate signature sets, RSSC bit
masks and Gaussian mixture parameters are all distributed to mappers
this way rather than through the shuffle (paper, Section 5.3).
"""

from __future__ import annotations

from types import MappingProxyType
from typing import Any, Iterator, Mapping


class DistributedCache(Mapping[str, Any]):
    """An immutable string-keyed mapping visible to all tasks of a job.

    Mutating the cache from inside a task would violate MapReduce
    semantics (tasks must be independent and restartable), so the
    contents are frozen at construction time.
    """

    def __init__(self, entries: Mapping[str, Any] | None = None) -> None:
        self._entries = MappingProxyType(dict(entries or {}))

    def __getitem__(self, key: str) -> Any:
        try:
            return self._entries[key]
        except KeyError:
            raise KeyError(
                f"cache entry {key!r} not shipped with this job; "
                f"available: {sorted(self._entries)}"
            ) from None

    def __iter__(self) -> Iterator[str]:
        return iter(self._entries)

    def __len__(self) -> int:
        return len(self._entries)

    def __reduce__(self):
        # MappingProxyType is not picklable; ship a plain dict so tasks
        # can be dispatched to worker processes.
        return (DistributedCache, (dict(self._entries),))

    def with_entries(self, **entries: Any) -> "DistributedCache":
        """Return a new cache extended with ``entries`` (copy-on-write)."""
        merged = dict(self._entries)
        merged.update(entries)
        return DistributedCache(merged)

    def __repr__(self) -> str:
        return f"DistributedCache({sorted(self._entries)})"
