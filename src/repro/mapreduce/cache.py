"""The distributed cache: read-only side data shipped to every task.

P3C+-MR relies on the cache heavily: candidate signature sets, RSSC bit
masks and Gaussian mixture parameters are all distributed to mappers
this way rather than through the shuffle (paper, Section 5.3).

Entries are held in sorted key order, so iteration, pickling and the
content :meth:`~DistributedCache.fingerprint` are invariant to
construction order — two caches with equal contents serialise to equal
bytes and hash to equal fingerprints across workers and attempts.  The
process executor keys its per-worker broadcast on that fingerprint (see
:mod:`repro.mapreduce.executors`), and checkpoint fingerprints must not
spuriously miss, so stability here is load-bearing, not cosmetic.
"""

from __future__ import annotations

import hashlib
import pickle
from types import MappingProxyType
from typing import Any, Iterator, Mapping

import numpy as np


def _canonical_bytes(value: Any) -> bytes:
    """Deterministic byte serialisation of one cache value.

    ndarrays hash by dtype/shape/contents; common containers recurse in
    a deterministic order (dict items sorted by key repr, sets by
    element bytes — their native iteration order varies across
    processes under hash randomisation).  Anything else falls back to
    pickle, which is stable for the value-type dataclasses the P3C+
    pipelines ship (signatures, RSSC tables, mixtures, weight models).
    """
    if isinstance(value, np.ndarray):
        arr = np.ascontiguousarray(value)
        header = f"nd:{arr.dtype.str}:{arr.shape}:".encode("utf-8")
        return header + arr.tobytes()
    if isinstance(value, (str, bytes, int, float, bool, type(None))):
        return f"sc:{type(value).__name__}:{value!r}".encode("utf-8")
    if isinstance(value, (list, tuple)):
        return b"seq:" + b"|".join(_canonical_bytes(item) for item in value)
    if isinstance(value, dict):
        items = sorted(value.items(), key=lambda kv: repr(kv[0]))
        return b"map:" + b"|".join(
            _canonical_bytes(k) + b"=" + _canonical_bytes(v) for k, v in items
        )
    if isinstance(value, (set, frozenset)):
        return b"set:" + b"|".join(sorted(_canonical_bytes(v) for v in value))
    return b"py:" + pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)


class DistributedCache(Mapping[str, Any]):
    """An immutable string-keyed mapping visible to all tasks of a job.

    Mutating the cache from inside a task would violate MapReduce
    semantics (tasks must be independent and restartable), so the
    contents are frozen at construction time.
    """

    def __init__(self, entries: Mapping[str, Any] | None = None) -> None:
        staged = dict(entries or {})
        self._entries = MappingProxyType(
            {key: staged[key] for key in sorted(staged)}
        )
        self._fingerprint: str | None = None

    def __getitem__(self, key: str) -> Any:
        try:
            return self._entries[key]
        except KeyError:
            raise KeyError(
                f"cache entry {key!r} not shipped with this job; "
                f"available: {sorted(self._entries)}"
            ) from None

    def __iter__(self) -> Iterator[str]:
        return iter(self._entries)

    def __len__(self) -> int:
        return len(self._entries)

    def fingerprint(self) -> str:
        """Stable content hash of the entries (hex, 16 chars).

        Equal contents give equal fingerprints regardless of
        construction order or process; computed lazily and cached (the
        cache is immutable).
        """
        if self._fingerprint is None:
            hasher = hashlib.sha256()
            for key, value in self._entries.items():
                hasher.update(key.encode("utf-8"))
                hasher.update(b"\x00")
                hasher.update(_canonical_bytes(value))
                hasher.update(b"\x01")
            self._fingerprint = hasher.hexdigest()[:16]
        return self._fingerprint

    def __reduce__(self):
        # MappingProxyType is not picklable; ship a plain dict so tasks
        # can be dispatched to worker processes.  ``_entries`` is
        # already key-sorted, so the pickle bytes are construction-order
        # independent.
        return (DistributedCache, (dict(self._entries),))

    def with_entries(self, **entries: Any) -> "DistributedCache":
        """Return a new cache extended with ``entries`` (copy-on-write)."""
        merged = dict(self._entries)
        merged.update(entries)
        return DistributedCache(merged)

    def __repr__(self) -> str:
        return f"DistributedCache({sorted(self._entries)})"
