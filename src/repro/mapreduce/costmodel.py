"""Calibrated cluster cost model for paper-scale runtime projection.

The paper measured wall-clock times on a Hadoop cluster with 112
reducers and data sets up to 10^9 points; this reproduction executes the
same job graphs in-process at laptop scale.  To regenerate the *shape*
of Figure 7 (and the Section 7.5.2 billion-point comparison) at paper
scale, we model a job's wall time the way the paper reasons about it:

    T(job) = overhead + ceil(splits / map_slots) * split_cost
           + shuffle_records * shuffle_cost
           + ceil(reduce_work / reduce_slots) * reduce_cost_per_unit

The per-record map cost dominates for large inputs, the per-job overhead
dominates for small ones — exactly the trade-off behind the paper's
multi-level candidate-collection heuristic and the sub-linear runtimes
observed for small n (more mappers per larger input, constant job
overhead).
"""

from __future__ import annotations

from dataclasses import dataclass
from math import ceil


@dataclass(frozen=True)
class CostEstimate:
    """Modelled wall time of a job chain, with a per-component breakdown."""

    overhead_s: float
    map_s: float
    shuffle_s: float
    reduce_s: float

    @property
    def total_s(self) -> float:
        return self.overhead_s + self.map_s + self.shuffle_s + self.reduce_s

    def __add__(self, other: "CostEstimate") -> "CostEstimate":
        return CostEstimate(
            self.overhead_s + other.overhead_s,
            self.map_s + other.map_s,
            self.shuffle_s + other.shuffle_s,
            self.reduce_s + other.reduce_s,
        )


ZERO_COST = CostEstimate(0.0, 0.0, 0.0, 0.0)


@dataclass
class ClusterCostModel:
    """Parameters of the modelled Hadoop cluster.

    Defaults are calibrated so the modelled P3C+-MR-Light and BoW(Light)
    totals on the 10^9-point / 100-dimension workload land in the ratio
    the paper reports (~4300 s vs ~9500 s, Section 7.5.2); see
    ``benchmarks/bench_billion.py``.
    """

    map_slots: int = 112
    reduce_slots: int = 112
    job_overhead_s: float = 12.0
    #: Per-record map cost for a ~100-dim row including HDFS read and
    #: parse; calibrated against the Section 7.5.2 billion-point run.
    map_record_cost_s: float = 6.0e-5
    shuffle_record_cost_s: float = 4.0e-6
    reduce_record_cost_s: float = 2.0e-6
    split_records: int = 1_000_000

    def job_cost(
        self,
        input_records: int,
        shuffle_records: int = 0,
        reduce_records: int = 0,
        record_cost_multiplier: float = 1.0,
    ) -> CostEstimate:
        """Modelled cost of one MR job.

        ``record_cost_multiplier`` scales the per-record map cost for
        jobs that do more work per point (e.g. RSSC support counting
        over thousands of candidates vs. a plain histogram pass).
        """
        if input_records < 0 or shuffle_records < 0 or reduce_records < 0:
            raise ValueError("record counts must be non-negative")
        num_splits = max(1, ceil(input_records / self.split_records))
        waves = ceil(num_splits / self.map_slots)
        per_split = min(input_records, self.split_records)
        map_s = (
            waves * per_split * self.map_record_cost_s * record_cost_multiplier
        )
        shuffle_s = shuffle_records * self.shuffle_record_cost_s
        reduce_waves_work = ceil(
            max(reduce_records, 1) / max(self.reduce_slots, 1)
        )
        reduce_s = reduce_waves_work * self.reduce_record_cost_s * max(
            self.reduce_slots, 1
        ) if reduce_records else 0.0
        return CostEstimate(self.job_overhead_s, map_s, shuffle_s, reduce_s)

    def chain_cost(self, jobs: list[CostEstimate]) -> CostEstimate:
        total = ZERO_COST
        for job in jobs:
            total = total + job
        return total

    def scan_job(self, n: int, multiplier: float = 1.0) -> CostEstimate:
        """Shorthand for the dominant P3C+-MR job shape: full-scan map
        phase with a tiny single-reducer aggregation."""
        return self.job_cost(
            input_records=n,
            shuffle_records=min(n, 10_000),
            reduce_records=100,
            record_cost_multiplier=multiplier,
        )
