"""Calibrated cluster cost model for paper-scale runtime projection.

The paper measured wall-clock times on a Hadoop cluster with 112
reducers and data sets up to 10^9 points; this reproduction executes the
same job graphs in-process at laptop scale.  To regenerate the *shape*
of Figure 7 (and the Section 7.5.2 billion-point comparison) at paper
scale, we model a job's wall time the way the paper reasons about it:

    T(job) = overhead + ceil(splits / map_slots) * split_cost
           + shuffle_records * shuffle_cost
           + ceil(reduce_work / reduce_slots) * reduce_cost_per_unit

The per-record map cost dominates for large inputs, the per-job overhead
dominates for small ones — exactly the trade-off behind the paper's
multi-level candidate-collection heuristic and the sub-linear runtimes
observed for small n (more mappers per larger input, constant job
overhead).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from math import ceil
from typing import TYPE_CHECKING, Iterable

if TYPE_CHECKING:
    from repro.mapreduce.events import Event


@dataclass(frozen=True)
class CostEstimate:
    """Modelled wall time of a job chain, with a per-component breakdown."""

    overhead_s: float
    map_s: float
    shuffle_s: float
    reduce_s: float

    @property
    def total_s(self) -> float:
        return self.overhead_s + self.map_s + self.shuffle_s + self.reduce_s

    def __add__(self, other: "CostEstimate") -> "CostEstimate":
        return CostEstimate(
            self.overhead_s + other.overhead_s,
            self.map_s + other.map_s,
            self.shuffle_s + other.shuffle_s,
            self.reduce_s + other.reduce_s,
        )


ZERO_COST = CostEstimate(0.0, 0.0, 0.0, 0.0)


@dataclass
class ClusterCostModel:
    """Parameters of the modelled Hadoop cluster.

    Defaults are calibrated so the modelled P3C+-MR-Light and BoW(Light)
    totals on the 10^9-point / 100-dimension workload land in the ratio
    the paper reports (~4300 s vs ~9500 s, Section 7.5.2); see
    ``benchmarks/bench_billion.py``.
    """

    map_slots: int = 112
    reduce_slots: int = 112
    job_overhead_s: float = 12.0
    #: Per-record map cost for a ~100-dim row including HDFS read and
    #: parse; calibrated against the Section 7.5.2 billion-point run.
    map_record_cost_s: float = 6.0e-5
    shuffle_record_cost_s: float = 4.0e-6
    reduce_record_cost_s: float = 2.0e-6
    split_records: int = 1_000_000
    #: Sequential disk bandwidth of the spill-to-disk shuffle path
    #: (one write + one read per spilled byte); used to price a job
    #: whose shuffle payload exceeds its memory budget.
    spill_bandwidth_bytes_s: float = 200e6

    def job_cost(
        self,
        input_records: int,
        shuffle_records: int = 0,
        reduce_records: int = 0,
        record_cost_multiplier: float = 1.0,
    ) -> CostEstimate:
        """Modelled cost of one MR job.

        ``record_cost_multiplier`` scales the per-record map cost for
        jobs that do more work per point (e.g. RSSC support counting
        over thousands of candidates vs. a plain histogram pass).
        """
        if input_records < 0 or shuffle_records < 0 or reduce_records < 0:
            raise ValueError("record counts must be non-negative")
        num_splits = max(1, ceil(input_records / self.split_records))
        waves = ceil(num_splits / self.map_slots)
        per_split = min(input_records, self.split_records)
        map_s = (
            waves * per_split * self.map_record_cost_s * record_cost_multiplier
        )
        shuffle_s = shuffle_records * self.shuffle_record_cost_s
        reduce_waves_work = ceil(
            max(reduce_records, 1) / max(self.reduce_slots, 1)
        )
        reduce_s = reduce_waves_work * self.reduce_record_cost_s * max(
            self.reduce_slots, 1
        ) if reduce_records else 0.0
        return CostEstimate(self.job_overhead_s, map_s, shuffle_s, reduce_s)

    def chain_cost(self, jobs: list[CostEstimate]) -> CostEstimate:
        total = ZERO_COST
        for job in jobs:
            total = total + job
        return total

    def calibrate(self, events: Iterable[Event]) -> "ClusterCostModel":
        """Shorthand for :func:`calibrate_from_events` on this model."""
        return calibrate_from_events(events, base=self)

    def scan_job(self, n: int, multiplier: float = 1.0) -> CostEstimate:
        """Shorthand for the dominant P3C+-MR job shape: full-scan map
        phase with a tiny single-reducer aggregation."""
        return self.job_cost(
            input_records=n,
            shuffle_records=min(n, 10_000),
            reduce_records=100,
            record_cost_multiplier=multiplier,
        )

    def coreset_chain_cost(
        self,
        n: int,
        coreset_size: int,
        chain_jobs: int = 10,
    ) -> CostEstimate:
        """Modelled cost of the approximate (coreset) pipeline.

        One full-scan summary pass + the usual chain priced over the
        ``m``-point summary + one full-scan assignment pass; with
        ``m << n`` the two full scans dominate and the coreset run's
        cost becomes independent of EM iteration count.  Degrades
        gracefully to the exact chain when ``coreset_size >= n``.
        """
        if coreset_size < 1:
            raise ValueError(f"coreset size must be >= 1, got {coreset_size}")
        m = min(coreset_size, n)
        if m >= n:
            return self.chain_cost(
                [self.scan_job(n)] * max(1, chain_jobs)
            )
        small_chain = [self.scan_job(m)] * max(1, chain_jobs)
        return self.chain_cost(
            [self.scan_job(n), *small_chain, self.scan_job(n)]
        )


@dataclass(frozen=True)
class PartitionPlan:
    """A tuned ``(num_splits, num_reducers)`` choice for one job.

    Produced by :func:`plan_partitions` from the *measured* event
    history of earlier jobs in the same chain: calibrated per-record
    costs size the tasks, the observed reduce-side skew ratio widens
    the partition count, and the observed shuffle volume bounds how
    many reducers are worth paying for.
    """

    num_splits: int
    num_reducers: int
    #: Max/mean ratio of observed reduce task durations (1.0 = no skew).
    skew_ratio: float
    #: The calibrated model the plan was derived from.
    model: ClusterCostModel
    #: Shuffle bytes the plan expects to spill to disk per map wave
    #: (0 = the payload fits the memory budget, or no budget given).
    spill_bytes: int = 0
    #: Modelled wall-time cost of that spilling (write + read back).
    spill_s: float = 0.0


def plan_partitions(
    events: Iterable[Event],
    input_records: int,
    num_workers: int = 1,
    base: ClusterCostModel | None = None,
    target_task_s: float = 0.05,
    max_reducers: int | None = None,
    memory_budget_bytes: int | None = None,
) -> PartitionPlan:
    """Pick split and partition counts from a measured event stream.

    The chain's earlier jobs are the evidence: per-record map/reduce
    costs come from :func:`calibrate_from_events`, the expected shuffle
    volume of the *next* job is predicted by the latest finished job
    (chained P3C+ jobs — EM iterations, refinement passes — repeat the
    same shape), and reduce-duration skew widens the partition count so
    one hot partition stops dominating the reduce wall time.

    Sizing rule: enough tasks that each costs about ``target_task_s``
    at the calibrated per-record rates, clamped to ``[1, 4 x workers]``
    splits and ``[1, max_reducers or workers]`` reducers — below the
    floor a task is all dispatch overhead, above the cap extra
    partitions only queue.  With no event history the defaults degrade
    to one reducer and worker-count splits.

    With a ``memory_budget_bytes`` the plan also trades memory against
    parallelism: the observed shuffle *bytes* of the latest job predict
    the next payload, and when one reducer's share would exceed the
    budget, the reducer count is raised past the worker cap until each
    partition fits — queueing extra partitions on the pool is cheaper
    than spilling them through disk.  Whatever projected spill remains
    (a single task's payload over budget) is priced at the model's
    ``spill_bandwidth_bytes_s`` (one write + one read per byte) and
    reported on the plan.
    """
    from repro.mapreduce.counters import Counters
    from repro.mapreduce.events import EventKind

    if input_records < 0:
        raise ValueError("input_records must be non-negative")
    events = list(events)
    model = calibrate_from_events(events, base=base)

    last_shuffle = 0
    last_shuffle_bytes = 0
    reduce_durations: list[float] = []
    for event in events:
        if event.kind == EventKind.JOB_FINISH and event.counters:
            last_shuffle = event.counter(
                Counters.FRAMEWORK, Counters.SHUFFLE_RECORDS
            )
            last_shuffle_bytes = event.counter(
                Counters.FRAMEWORK, Counters.SHUFFLE_BYTES
            )
        elif (
            event.kind == EventKind.TASK_FINISH
            and event.phase == "reduce"
            and event.duration_s is not None
        ):
            reduce_durations.append(event.duration_s)

    skew_ratio = 1.0
    if reduce_durations:
        mean = sum(reduce_durations) / len(reduce_durations)
        if mean > 0:
            skew_ratio = max(reduce_durations) / mean

    workers = max(1, num_workers)
    ideal_splits = ceil(
        input_records * model.map_record_cost_s / target_task_s
    )
    num_splits = max(1, min(max(ideal_splits, workers), 4 * workers))

    ideal_reducers = ceil(
        last_shuffle * model.reduce_record_cost_s / target_task_s
    )
    if skew_ratio > 1.5:
        # Finer partitions smooth a hot key range across reducers.
        ideal_reducers *= 2
    cap = max_reducers if max_reducers is not None else workers
    num_reducers = max(1, min(ideal_reducers, max(1, cap)))

    spill_bytes = 0
    spill_s = 0.0
    if memory_budget_bytes is not None and last_shuffle_bytes > 0:
        # Memory correctness beats the parallelism cap: raise the
        # reducer count until one partition's payload fits the budget.
        min_reducers = ceil(last_shuffle_bytes / memory_budget_bytes)
        num_reducers = max(num_reducers, min_reducers)
        # What a single map wave still cannot hold in heap spills
        # through disk; price it so chain planners can compare a
        # bigger-budget run against a wider one.
        per_task = ceil(last_shuffle_bytes / max(1, num_splits))
        if per_task > memory_budget_bytes:
            spill_bytes = (per_task - memory_budget_bytes) * num_splits
            spill_s = 2.0 * spill_bytes / model.spill_bandwidth_bytes_s

    return PartitionPlan(
        num_splits=num_splits,
        num_reducers=num_reducers,
        skew_ratio=skew_ratio,
        model=model,
        spill_bytes=spill_bytes,
        spill_s=spill_s,
    )


def calibrate_from_events(
    events: Iterable[Event],
    base: ClusterCostModel | None = None,
) -> ClusterCostModel:
    """Fit the model's per-record constants to a measured event stream.

    Consumes ``task_finish`` events (their durations and counter
    snapshots) from a runtime's :class:`~repro.mapreduce.events.EventLog`
    and returns a copy of ``base`` whose ``map_record_cost_s`` and
    ``reduce_record_cost_s`` reflect the *measured* per-record task
    cost on this machine.  Projecting a job mix through the calibrated
    model answers "what would this exact workload cost at cluster
    scale" with locally observed constants instead of the paper-anchored
    defaults; constants without a local observable (e.g. the shuffle's
    network cost) keep their calibrated-against-the-paper values.
    """
    from repro.mapreduce.counters import Counters
    from repro.mapreduce.events import EventKind

    base = base or ClusterCostModel()
    map_seconds = reduce_seconds = 0.0
    map_records = reduce_groups = 0
    for event in events:
        if event.kind != EventKind.TASK_FINISH or event.duration_s is None:
            continue
        if event.phase == "map":
            map_seconds += event.duration_s
            map_records += event.counter(
                Counters.FRAMEWORK, Counters.MAP_INPUT_RECORDS
            )
        elif event.phase == "reduce":
            reduce_seconds += event.duration_s
            reduce_groups += event.counter(
                Counters.FRAMEWORK, Counters.REDUCE_INPUT_GROUPS
            )
    overrides: dict[str, float] = {}
    if map_records > 0:
        overrides["map_record_cost_s"] = map_seconds / map_records
    if reduce_groups > 0:
        overrides["reduce_record_cost_s"] = reduce_seconds / reduce_groups
    return replace(base, **overrides)
