"""Hadoop-style counters for record and shuffle-volume accounting.

Counters are the runtime's observability surface: every job reports how
many records its mappers read and emitted, how many pairs crossed the
shuffle, and how many output records the reducers produced.  The cluster
cost model (:mod:`repro.mapreduce.costmodel`) consumes these numbers to
project paper-scale runtimes.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Iterator


class CounterGroup:
    """A named group of monotonically increasing integer counters."""

    def __init__(self, name: str) -> None:
        self.name = name
        self._values: dict[str, int] = defaultdict(int)

    def increment(self, counter: str, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError(f"counter increments must be >= 0, got {amount}")
        self._values[counter] += amount

    def value(self, counter: str) -> int:
        return self._values.get(counter, 0)

    def items(self) -> Iterator[tuple[str, int]]:
        return iter(sorted(self._values.items()))

    def merge(self, other: "CounterGroup") -> None:
        for counter, amount in other._values.items():
            self._values[counter] += amount

    def __repr__(self) -> str:
        inner = ", ".join(f"{k}={v}" for k, v in self.items())
        return f"CounterGroup({self.name}: {inner})"


class Counters:
    """All counter groups of one job (or of a whole driver run)."""

    # Well-known counter names, mirroring Hadoop's task counters.
    MAP_INPUT_RECORDS = "map_input_records"
    MAP_OUTPUT_RECORDS = "map_output_records"
    COMBINE_OUTPUT_RECORDS = "combine_output_records"
    SHUFFLE_RECORDS = "shuffle_records"
    #: Estimated shuffle payload volume (columnar blocks by ``nbytes``,
    #: tuple buckets by a per-pair pickled-size estimate).
    SHUFFLE_BYTES = "shuffle_bytes"
    REDUCE_INPUT_GROUPS = "reduce_input_groups"
    REDUCE_OUTPUT_RECORDS = "reduce_output_records"
    #: Reduce tasks dispatched before the last map task of their job
    #: settled (the pipelined scheduler's map/reduce overlap).
    PIPELINED_REDUCES = "pipelined_reduces"
    #: Compressed bytes written to shuffle spill segments (map tasks
    #: whose columnar payload crossed ``JobConf.memory_budget_bytes``).
    SPILLED_BYTES = "spilled_bytes"
    #: Spill segment files written by over-budget map tasks.
    SPILL_SEGMENTS = "spill_segments"
    TASK_RETRIES = "task_retries"
    FRAMEWORK = "framework"
    #: Service-plane accounting (the scheduler's fair-share slot pool
    #: mirrors per-tenant grants here so run reports can audit shares).
    SLOTS_GRANTED = "slots_granted"
    SLOT_WAIT_MS = "slot_wait_ms"
    SERVICE = "service"

    def __init__(self) -> None:
        self._groups: dict[str, CounterGroup] = {}

    def group(self, name: str) -> CounterGroup:
        if name not in self._groups:
            self._groups[name] = CounterGroup(name)
        return self._groups[name]

    def increment(self, group: str, counter: str, amount: int = 1) -> None:
        self.group(group).increment(counter, amount)

    def value(self, group: str, counter: str) -> int:
        if group not in self._groups:
            return 0
        return self._groups[group].value(counter)

    def merge(self, other: "Counters") -> None:
        for name, group in other._groups.items():
            self.group(name).merge(group)

    def groups(self) -> Iterator[CounterGroup]:
        return iter(self._groups.values())

    def framework_value(self, counter: str) -> int:
        return self.value(self.FRAMEWORK, counter)

    def snapshot(self) -> dict[str, dict[str, int]]:
        """Immutable ``{group: {counter: value}}`` view for event records."""
        return {
            group.name: dict(group.items()) for group in self._groups.values()
        }

    @classmethod
    def from_snapshot(cls, snapshot: dict[str, dict[str, int]]) -> "Counters":
        """Rebuild counters from a :meth:`snapshot` (checkpoint restore)."""
        counters = cls()
        for group, values in (snapshot or {}).items():
            for name, value in values.items():
                counters.increment(group, name, int(value))
        return counters

    def __repr__(self) -> str:
        return f"Counters({list(self._groups)})"
