"""The service plane: a scheduler-owned pool serving concurrent chains.

Historically this runtime was one-shot — a driver built a
:class:`~repro.mapreduce.runtime.MapReduceRuntime`, ran its chain and
exited, so one process served one chain.  This module inverts the
ownership, following the shared-service framing of MapReduce analysis
(Gonen, arXiv 1712.01817): a long-lived :class:`ClusterService` owns
*one* executor pool, and chains become *submitted jobs* from named
tenants.

Three mechanisms compose:

``FairShareSlotPool``
    The global slot ledger.  Every task an executor would dispatch
    first acquires a slot via the executor's
    :class:`~repro.mapreduce.executors.SlotLease` seam; under
    contention, grants go to the *most starved* tenant — the waiting
    tenant whose ``in_use / weight`` share is smallest — implementing
    weighted fair queueing over phase task batches.  Per-tenant
    ``max_slots`` quotas cap a tenant without blocking others, and
    every grant / wait-millisecond is mirrored into Hadoop-style
    :class:`~repro.mapreduce.counters.Counters` for run reports.

``ClusterService``
    Admission and lifecycle.  Submissions are *gated, not rejected*:
    a :class:`~repro.mapreduce.costmodel.ClusterCostModel` estimate
    prices each chain, and when the active estimated load exceeds the
    service's budget new chains queue until capacity frees (an idle
    service always admits, so nothing starves on a bad estimate).
    Admitted chains run on a daemon thread with an injected
    :class:`~repro.mapreduce.runtime.RuntimeContext`: a fresh executor
    whose lease is bound to the shared pool, a per-chain event log and
    a per-run observability scope — per-chain isolation with
    service-level aggregate counters.

``ServiceHandle``
    The client surface: ``status`` / ``wait`` / ``result`` / ``cancel``.
    Cancellation is cooperative — a queued chain is dropped in place,
    a running chain observes the cancel at its next slot acquisition
    and unwinds with :class:`JobCancelledError`.

Retried task attempts deliberately run *unleased*: retries re-execute
in-process inside the settlement path (rare by construction), so the
simple retry machinery stays shared with the one-shot runtime.
"""

from __future__ import annotations

import itertools
import os
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.mapreduce.costmodel import ClusterCostModel
from repro.mapreduce.counters import Counters
from repro.mapreduce.events import EventLog
from repro.mapreduce.executors import SlotLease, resolve_executor
from repro.mapreduce.faults import FaultPlan
from repro.mapreduce.runtime import RuntimeContext
from repro.obs.metrics import Histogram
from repro.obs.slo import SLORegistry, SLOTarget

if False:  # pragma: no cover - typing only (avoids an import cycle)
    from repro.obs.telemetry import TelemetryPlane

__all__ = [
    "ClusterService",
    "FairShareSlotPool",
    "JobCancelledError",
    "ServiceHandle",
    "TenantLease",
    "TenantQuota",
]

#: Slot-wait histogram buckets (seconds): scheduling delays are small,
#: so the resolution is concentrated under one second.
WAIT_BUCKETS = (
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25,
    0.5, 1.0, 2.5, 5.0, 15.0, 60.0,
)

#: Serve-time batch latency buckets (seconds): a vectorized assign over
#: a typical batch lands well under a millisecond, so most of the
#: resolution sits below 100ms.
ASSIGN_BUCKETS = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025,
    0.05, 0.1, 0.25, 1.0, 5.0,
)


class JobCancelledError(RuntimeError):
    """A submitted chain was cancelled before or during execution."""


@dataclass(frozen=True)
class TenantQuota:
    """Per-tenant scheduling policy.

    ``weight`` scales the tenant's fair share (2.0 = twice the slots
    under contention); ``max_slots`` hard-caps concurrent slots held;
    ``max_concurrent`` caps chains admitted at once (excess chains
    queue).
    """

    weight: float = 1.0
    max_slots: int | None = None
    max_concurrent: int | None = None

    def __post_init__(self) -> None:
        if self.weight <= 0:
            raise ValueError("tenant weight must be > 0")
        if self.max_slots is not None and self.max_slots < 1:
            raise ValueError("max_slots must be >= 1")
        if self.max_concurrent is not None and self.max_concurrent < 1:
            raise ValueError("max_concurrent must be >= 1")


class FairShareSlotPool:
    """Weighted-fair slot admission over one shared executor pool.

    A slot is one concurrently running task.  ``acquire(tenant)``
    blocks until the tenant may run another task: the pool must have a
    free slot, the tenant must be under its ``max_slots`` cap, and no
    *other* eligible waiting tenant may be more starved (smaller
    ``in_use / weight``).  Because executors acquire one slot per task
    and never hold a slot while waiting for another, grants cannot
    deadlock; fairness emerges from per-task interleaving across
    tenants' phase batches.
    """

    def __init__(self, slots: int, poll_s: float = 0.05) -> None:
        if slots < 1:
            raise ValueError("slot pool needs >= 1 slot")
        self.slots = slots
        self.poll_s = poll_s
        self._cond = threading.Condition()
        self._quotas: dict[str, TenantQuota] = {}
        self._in_use: dict[str, int] = {}
        self._waiting: dict[str, int] = {}
        #: Per-tenant (``tenant.<name>``) and aggregate (``service``)
        #: grant/wait accounting, mirrored into run reports.
        self.counters = Counters()
        #: Per-tenant slot-wait distributions (thread-safe histograms)
        #: exported as the ``repro_slot_wait_seconds`` OpenMetrics
        #: histogram by the telemetry plane.
        self.wait_histograms: dict[str, Histogram] = {}

    def configure(self, tenant: str, quota: TenantQuota) -> None:
        with self._cond:
            self._quotas[tenant] = quota
            self._cond.notify_all()

    def quota(self, tenant: str) -> TenantQuota:
        with self._cond:
            return self._quotas.get(tenant, TenantQuota())

    # -- grant rule (call with the lock held) ---------------------------

    def _capped(self, tenant: str) -> bool:
        quota = self._quotas.get(tenant, TenantQuota())
        return (
            quota.max_slots is not None
            and self._in_use.get(tenant, 0) >= quota.max_slots
        )

    def _share(self, tenant: str) -> float:
        weight = self._quotas.get(tenant, TenantQuota()).weight
        return self._in_use.get(tenant, 0) / weight

    def _may_grant(self, tenant: str) -> bool:
        if sum(self._in_use.values()) >= self.slots:
            return False
        if self._capped(tenant):
            return False
        # Yield to any strictly-more-starved eligible waiter: weighted
        # fair queueing, evaluated at every grant point.
        share = self._share(tenant)
        for other, waiting in self._waiting.items():
            if other == tenant or waiting <= 0 or self._capped(other):
                continue
            if self._share(other) < share - 1e-9:
                return False
        return True

    # -- slot protocol --------------------------------------------------

    def acquire(
        self, tenant: str, cancel: threading.Event | None = None
    ) -> float:
        """Block until ``tenant`` is granted a slot; returns the wait in
        seconds.  Raises :class:`JobCancelledError` once ``cancel`` is
        set — the cooperative cancellation point of running chains."""
        started = time.monotonic()
        with self._cond:
            if cancel is not None and cancel.is_set():
                raise JobCancelledError(f"chain of tenant {tenant!r} cancelled")
            self._waiting[tenant] = self._waiting.get(tenant, 0) + 1
            try:
                while not self._may_grant(tenant):
                    # Bounded wait only when a cancel flag needs polling;
                    # otherwise sleep until a release/configure notifies.
                    self._cond.wait(self.poll_s if cancel is not None else None)
                    if cancel is not None and cancel.is_set():
                        raise JobCancelledError(
                            f"chain of tenant {tenant!r} cancelled"
                        )
            finally:
                self._waiting[tenant] -= 1
            self._in_use[tenant] = self._in_use.get(tenant, 0) + 1
            # Monotonic end-to-end (as is every scheduler timestamp),
            # so NTP steps can never inject a negative wait into the
            # SLO histograms; the clamp guards coarse-tick platforms.
            waited = max(0.0, time.monotonic() - started)
            for group in (f"tenant.{tenant}", Counters.SERVICE):
                self.counters.increment(group, Counters.SLOTS_GRANTED)
                self.counters.increment(
                    group, Counters.SLOT_WAIT_MS, int(waited * 1000)
                )
            histogram = self.wait_histograms.get(tenant)
            if histogram is None:
                histogram = self.wait_histograms[tenant] = Histogram(
                    WAIT_BUCKETS
                )
        histogram.observe(waited)
        return waited

    def release(self, tenant: str) -> None:
        with self._cond:
            held = self._in_use.get(tenant, 0)
            if held <= 0:
                raise RuntimeError(
                    f"tenant {tenant!r} released a slot it never acquired"
                )
            self._in_use[tenant] = held - 1
            self._cond.notify_all()

    def snapshot(self) -> dict[str, Any]:
        with self._cond:
            in_use = {t: n for t, n in self._in_use.items() if n}
            waiting = {t: n for t, n in self._waiting.items() if n}
            counters = self.counters.snapshot()
            histograms = dict(self.wait_histograms)
        held = sum(in_use.values())
        return {
            "slots": self.slots,
            "in_use": in_use,
            "waiting": waiting,
            "slots_held": held,
            "utilization": round(held / self.slots, 6),
            "counters": counters,
            "wait_histograms": {
                tenant: histogram.snapshot()
                for tenant, histogram in sorted(histograms.items())
            },
        }


@dataclass
class TenantLease(SlotLease):
    """Binds one chain's executor to the shared pool, as one tenant.

    The executor seam calls ``acquire``/``release`` around every task;
    this lease routes those calls to the fair-share pool and mirrors
    grant/wait accounting into the chain's per-run obs scope.
    """

    pool: FairShareSlotPool
    tenant: str = "default"
    obs: Any = None
    cancel: threading.Event | None = None
    #: Optional :class:`~repro.obs.slo.TenantSLO` fed one wait sample
    #: per grant (the sliding-window side of the SLO ledger).
    slo: Any = None

    def acquire(self) -> None:
        waited = self.pool.acquire(self.tenant, cancel=self.cancel)
        if self.obs is not None and getattr(self.obs, "enabled", False):
            self.obs.count("service.slots_granted")
            self.obs.observe("service.slot_wait_s", waited)
        if self.slo is not None:
            self.slo.record_wait(waited)

    def release(self) -> None:
        self.pool.release(self.tenant)


# -- the service ---------------------------------------------------------

_QUEUED = "queued"
_RUNNING = "running"
_DONE = "done"
_FAILED = "failed"
_CANCELLED = "cancelled"


@dataclass
class _ServiceJob:
    """Internal lifecycle record of one submitted chain."""

    id: str
    name: str
    tenant: str
    fn: Callable[[RuntimeContext], Any]
    estimate_s: float
    fault_plan: FaultPlan | None = None
    task_timeout_s: float | None = None
    speculative: bool = False
    state: str = _QUEUED
    cancel: threading.Event = field(default_factory=threading.Event)
    finished: threading.Event = field(default_factory=threading.Event)
    result: Any = None
    error: BaseException | None = None
    submitted_s: float = 0.0
    started_s: float | None = None
    finished_s: float | None = None
    #: The chain's :class:`TenantLease` once launched — its
    #: :class:`~repro.mapreduce.executors.LeaseStats` give the
    #: telemetry sampler live in-flight task counts.
    lease: "TenantLease | None" = None


class ServiceHandle:
    """Client-side view of one submitted chain."""

    def __init__(self, service: "ClusterService", job: _ServiceJob) -> None:
        self._service = service
        self._job = job

    @property
    def job_id(self) -> str:
        return self._job.id

    @property
    def tenant(self) -> str:
        return self._job.tenant

    @property
    def name(self) -> str:
        return self._job.name

    def status(self) -> str:
        """``queued`` / ``running`` / ``done`` / ``failed`` / ``cancelled``."""
        return self._job.state

    def done(self) -> bool:
        return self._job.finished.is_set()

    def wait(self, timeout: float | None = None) -> bool:
        return self._job.finished.wait(timeout)

    def result(self, timeout: float | None = None) -> Any:
        """The chain's return value; re-raises its failure or
        :class:`JobCancelledError` when it did not complete."""
        if not self._job.finished.wait(timeout):
            raise TimeoutError(
                f"job {self._job.id} still {self._job.state} after {timeout}s"
            )
        if self._job.state == _CANCELLED:
            raise JobCancelledError(f"job {self._job.id} was cancelled")
        if self._job.error is not None:
            raise self._job.error
        return self._job.result

    @property
    def error(self) -> BaseException | None:
        return self._job.error

    def cancel(self) -> None:
        """Cooperative cancel: queued chains are dropped immediately,
        running chains unwind at their next slot acquisition."""
        self._service._cancel(self._job)

    def info(self) -> dict[str, Any]:
        job = self._job
        now = time.monotonic()
        queue_wait = (job.started_s or now) - job.submitted_s
        run_s = None
        if job.started_s is not None:
            run_s = (job.finished_s or now) - job.started_s
        return {
            "id": job.id,
            "name": job.name,
            "tenant": job.tenant,
            "state": job.state,
            "estimate_s": job.estimate_s,
            "queue_wait_s": queue_wait,
            "run_s": run_s,
        }


class ClusterService:
    """Long-lived multi-tenant scheduler over one shared executor pool.

    ``submit`` takes a *chain function* — any callable of one
    :class:`~repro.mapreduce.runtime.RuntimeContext` argument — and
    returns a :class:`ServiceHandle`.  The service builds the context:
    a fresh executor of the configured backend, lease-bound to the
    fair-share pool under the submitting tenant, plus a per-chain
    event log and per-run observability scope.

    Admission is cost-gated, not rejecting: each submission is priced
    by the cost model (``estimated_records`` x ``estimated_jobs``
    through :meth:`~repro.mapreduce.costmodel.ClusterCostModel.scan_job`)
    and queues while the active estimated load exceeds
    ``admission_budget_s`` — except on an idle service, which always
    admits the next chain so a pessimistic estimate can never wedge
    the queue.
    """

    #: Chain length assumed when a submission carries no estimate —
    #: the typical P3C+-MR pipeline depth.
    DEFAULT_CHAIN_JOBS = 10

    def __init__(
        self,
        slots: int | None = None,
        executor: str = "thread",
        *,
        cost_model: ClusterCostModel | None = None,
        obs: Any = None,
        admission_budget_s: float | None = None,
        name: str = "cluster",
        slo_target: SLOTarget | None = None,
        registry: Any = None,
    ) -> None:
        self.slots = slots or os.cpu_count() or 4
        self.executor_spec = executor
        self.cost_model = cost_model or ClusterCostModel()
        self.obs = obs
        self.name = name
        self.admission_budget_s = (
            admission_budget_s
            if admission_budget_s is not None
            else self.slots * 600.0
        )
        self.pool = FairShareSlotPool(self.slots)
        #: Per-tenant service-level objective trackers: chain latency
        #: windows, lifecycle counts, error rates.  ``slo_target`` is
        #: the default objective; per-tenant targets go through
        #: :meth:`set_slo_target`.
        self.slo = SLORegistry(default_target=slo_target)
        #: The live telemetry plane once :meth:`start_telemetry` runs.
        self.telemetry: "TelemetryPlane | None" = None
        self._started_s = time.monotonic()
        self._lock = threading.Lock()
        self._jobs: dict[str, _ServiceJob] = {}
        self._queue: deque[_ServiceJob] = deque()
        self._running: set[str] = set()
        self._active_cost_s = 0.0
        self._seq = itertools.count(1)
        self._closed = False
        #: Serving state: the model registry backing ``serve_assign``
        #: (a :class:`repro.serving.ModelRegistry` or a root path),
        #: loaded models keyed by id, and per-tenant assign telemetry.
        self.registry = self._resolve_registry(registry)
        self._model_cache: dict[str, Any] = {}
        self._model_lock = threading.Lock()
        self._assign_lock = threading.Lock()
        self._assign_stats: dict[str, dict[str, Any]] = {}

    @staticmethod
    def _resolve_registry(registry: Any) -> Any:
        if registry is None or not isinstance(registry, (str, os.PathLike)):
            return registry
        # Imported lazily: repro.serving reaches back into repro.mr.
        from repro.serving import ModelRegistry

        return ModelRegistry(registry)

    # -- tenant policy --------------------------------------------------

    def set_quota(
        self,
        tenant: str,
        *,
        weight: float = 1.0,
        max_slots: int | None = None,
        max_concurrent: int | None = None,
    ) -> None:
        self.pool.configure(
            tenant,
            TenantQuota(
                weight=weight,
                max_slots=max_slots,
                max_concurrent=max_concurrent,
            ),
        )

    def set_slo_target(self, tenant: str, target: SLOTarget) -> None:
        """Install a tenant's service-level objective (latency p95 /
        error-rate bounds evaluated over a sliding window)."""
        self.slo.set_target(tenant, target)

    # -- submission -----------------------------------------------------

    def _estimate_cost_s(
        self,
        estimated_records: int | None,
        estimated_jobs: int | None,
        coreset_size: int | None = None,
    ) -> float:
        jobs = estimated_jobs or self.DEFAULT_CHAIN_JOBS
        if coreset_size is not None and coreset_size >= 1:
            # Approximate pipeline: two full scans + the chain over the
            # summary, so admission stops over-charging coreset runs.
            return self.cost_model.coreset_chain_cost(
                estimated_records or 0, coreset_size, chain_jobs=jobs
            ).total_s
        per_job = self.cost_model.scan_job(estimated_records or 0)
        return per_job.total_s * jobs

    def submit(
        self,
        fn: Callable[[RuntimeContext], Any],
        *,
        name: str | None = None,
        tenant: str = "default",
        priority: float | None = None,
        estimated_records: int | None = None,
        estimated_jobs: int | None = None,
        coreset_size: int | None = None,
        fault_plan: FaultPlan | None = None,
        task_timeout_s: float | None = None,
        speculative: bool = False,
    ) -> ServiceHandle:
        """Queue one chain for execution; returns immediately.

        ``priority`` is sugar for the tenant's fair-share weight (it
        reconfigures the tenant's quota, keeping any slot caps).
        ``coreset_size`` marks the chain as an approximate (coreset)
        run so admission prices it as two full scans plus a summary
        chain instead of a full-data chain.
        """
        if self._closed:
            raise RuntimeError("service is shut down")
        if priority is not None:
            current = self.pool.quota(tenant)
            self.pool.configure(
                tenant,
                TenantQuota(
                    weight=priority,
                    max_slots=current.max_slots,
                    max_concurrent=current.max_concurrent,
                ),
            )
        job = _ServiceJob(
            id=f"{tenant}/{name or 'chain'}-{next(self._seq)}",
            name=name or "chain",
            tenant=tenant,
            fn=fn,
            estimate_s=self._estimate_cost_s(
                estimated_records, estimated_jobs, coreset_size
            ),
            fault_plan=fault_plan,
            task_timeout_s=task_timeout_s,
            speculative=speculative,
            submitted_s=time.monotonic(),
        )
        self.slo.tenant(tenant).record_admitted()
        with self._lock:
            self._jobs[job.id] = job
            self._queue.append(job)
            launch = self._admit_locked()
        for admitted in launch:
            self._launch(admitted)
        return ServiceHandle(self, job)

    # -- serving --------------------------------------------------------

    def load_model(self, name: str) -> tuple[str, Any]:
        """Resolve and load a registered model, memoizing by model id."""
        if self.registry is None:
            raise RuntimeError("service has no model registry configured")
        model_id = self.registry.resolve(name)
        with self._model_lock:
            model = self._model_cache.get(model_id)
        if model is None:
            model = self.registry.load(model_id)
            with self._model_lock:
                self._model_cache.setdefault(model_id, model)
        return model_id, model

    def _assign_stats_for(self, tenant: str) -> dict[str, Any]:
        with self._assign_lock:
            row = self._assign_stats.get(tenant)
            if row is None:
                row = {
                    "requests_total": 0,
                    "points_total": 0,
                    "outliers_total": 0,
                    "errors_total": 0,
                    "histogram": Histogram(ASSIGN_BUCKETS),
                }
                self._assign_stats[tenant] = row
            return row

    def serve_assign(
        self,
        model: Any,
        points: Any,
        *,
        tenant: str = "default",
        priority: float | None = None,
    ) -> ServiceHandle:
        """Score a point batch against a registered model.

        ``model`` is a model id or tag name resolved through the
        service's registry (or an in-memory
        :class:`repro.serving.FittedModel`).  The scoring call is a
        submitted job like any chain: it acquires one fair-share slot
        under ``tenant`` (so heavy fits and serving traffic share the
        pool under the same weighted-fair policy), records per-tenant
        SLO latency, and feeds the ``repro_assign_*`` telemetry
        families.  The handle's result is a dict with ``model_id``,
        ``cluster_ids``, ``outlier_mask``, ``scores``, ``n_points``,
        ``num_outliers`` and ``wall_time_s``.
        """
        import numpy as np

        points = np.asarray(points, dtype=float)
        n_points = len(np.atleast_2d(points)) if points.size else 0

        def run_assign(ctx: RuntimeContext) -> dict[str, Any]:
            stats = self._assign_stats_for(tenant)
            started = time.monotonic()
            try:
                if isinstance(model, str):
                    model_id, fitted = self.load_model(model)
                else:
                    model_id, fitted = "inline", model
                lease = getattr(ctx.executor, "slot_lease", None)
                if lease is not None:
                    lease.acquire()
                try:
                    result = fitted.assign(points)
                finally:
                    if lease is not None:
                        lease.release()
            except BaseException:
                with self._assign_lock:
                    stats["errors_total"] += 1
                raise
            elapsed = time.monotonic() - started
            num_outliers = int(result.outlier_mask.sum())
            with self._assign_lock:
                stats["requests_total"] += 1
                stats["points_total"] += len(result.cluster_ids)
                stats["outliers_total"] += num_outliers
            stats["histogram"].observe(elapsed)
            return {
                "model_id": model_id,
                "cluster_ids": result.cluster_ids,
                "outlier_mask": result.outlier_mask,
                "scores": result.scores,
                "n_points": len(result.cluster_ids),
                "num_outliers": num_outliers,
                "wall_time_s": elapsed,
            }

        return self.submit(
            run_assign,
            name="assign",
            tenant=tenant,
            priority=priority,
            estimated_records=n_points,
            estimated_jobs=1,
        )

    # -- admission (call with self._lock held) --------------------------

    def _admit_locked(self) -> list[_ServiceJob]:
        """Drain the queue prefix the budget and quotas allow.

        Blocked entries stay queued *in order* — admission is a gate,
        not a rejection — and a cancelled-while-queued job is dropped
        on the way through.
        """
        admitted: list[_ServiceJob] = []
        blocked: deque[_ServiceJob] = deque()
        running_per_tenant: dict[str, int] = {}
        for job_id in self._running:
            tenant = self._jobs[job_id].tenant
            running_per_tenant[tenant] = running_per_tenant.get(tenant, 0) + 1
        while self._queue:
            job = self._queue.popleft()
            if job.state != _QUEUED:
                continue
            quota = self.pool.quota(job.tenant)
            tenant_running = running_per_tenant.get(job.tenant, 0)
            over_quota = (
                quota.max_concurrent is not None
                and tenant_running >= quota.max_concurrent
            )
            over_budget = (
                self._active_cost_s + job.estimate_s > self.admission_budget_s
                and self._running
            )
            if over_quota or over_budget:
                blocked.append(job)
                continue
            job.state = _RUNNING
            job.started_s = time.monotonic()
            self._running.add(job.id)
            self._active_cost_s += job.estimate_s
            running_per_tenant[job.tenant] = tenant_running + 1
            admitted.append(job)
        self._queue = blocked
        return admitted

    # -- execution ------------------------------------------------------

    def _launch(self, job: _ServiceJob) -> None:
        thread = threading.Thread(
            target=self._run_job,
            args=(job,),
            name=f"svc-{job.id}",
            daemon=True,
        )
        thread.start()

    def _run_job(self, job: _ServiceJob) -> None:
        run_obs = None
        if self.obs is not None and getattr(self.obs, "enabled", False):
            run_obs = self.obs.for_run(job.id)
        executor = resolve_executor(self.executor_spec, self.slots)
        lease = TenantLease(
            self.pool,
            job.tenant,
            obs=run_obs,
            cancel=job.cancel,
            slo=self.slo.tenant(job.tenant),
        )
        executor.slot_lease = lease
        job.lease = lease
        ctx = RuntimeContext(
            executor=executor,
            max_workers=self.slots,
            events=EventLog(run_id=job.id),
            run_id=job.id,
            tenant=job.tenant,
            fault_plan=job.fault_plan,
            task_timeout_s=job.task_timeout_s,
            speculative=job.speculative,
            obs=run_obs,
        )
        try:
            result = job.fn(ctx)
        except JobCancelledError:
            self._finish(job, _CANCELLED)
        except BaseException as error:  # noqa: BLE001 - reported via handle
            job.error = error
            self._finish(job, _FAILED)
        else:
            # A chain that completed normally beats a late cancel:
            # the work is done, deliver the result.
            job.result = result
            self._finish(job, _DONE)

    def _finish(self, job: _ServiceJob, state: str) -> None:
        with self._lock:
            job.state = state
            job.finished_s = time.monotonic()
            self._running.discard(job.id)
            self._active_cost_s = max(
                0.0, self._active_cost_s - job.estimate_s
            )
            launch = self._admit_locked()
        if self.obs is not None and getattr(self.obs, "enabled", False):
            self.obs.count(f"service.{state}")
        self.slo.tenant(job.tenant).record_completion(
            job.finished_s - job.submitted_s, state=state
        )
        job.finished.set()
        for admitted in launch:
            self._launch(admitted)

    def _cancel(self, job: _ServiceJob) -> None:
        with self._lock:
            if job.state == _QUEUED:
                job.state = _CANCELLED
                job.finished_s = time.monotonic()
                self.slo.tenant(job.tenant).record_completion(
                    job.finished_s - job.submitted_s, state=_CANCELLED
                )
                job.finished.set()
                return
        # Running (or already finished): flip the cooperative flag; a
        # running chain unwinds at its next slot acquisition.
        job.cancel.set()

    # -- telemetry ------------------------------------------------------

    def telemetry_snapshot(self) -> dict[str, Any]:
        """One structured view of the whole service, for the telemetry
        plane: scheduler state (queue depth, running chains, slot
        utilization), per-tenant slot accounting (grants, wait totals,
        wait histograms, in-flight leased tasks) and the SLO ledger.

        Sampled by :class:`~repro.obs.telemetry.TelemetryPlane` from
        its own thread; every substructure is copied under the
        relevant lock, never held across locks.
        """
        with self._lock:
            queued_chains = sum(
                1 for job in self._queue if job.state == _QUEUED
            )
            running_chains = len(self._running)
            chains_by_state: dict[str, int] = {}
            queued_per_tenant: dict[str, int] = {}
            running_per_tenant: dict[str, int] = {}
            inflight_per_tenant: dict[str, int] = {}
            for job in self._jobs.values():
                chains_by_state[job.state] = (
                    chains_by_state.get(job.state, 0) + 1
                )
                if job.state == _QUEUED:
                    queued_per_tenant[job.tenant] = (
                        queued_per_tenant.get(job.tenant, 0) + 1
                    )
                elif job.state == _RUNNING:
                    running_per_tenant[job.tenant] = (
                        running_per_tenant.get(job.tenant, 0) + 1
                    )
                    if job.lease is not None:
                        inflight_per_tenant[job.tenant] = (
                            inflight_per_tenant.get(job.tenant, 0)
                            + job.lease.stats().inflight()
                        )
            active_cost_s = self._active_cost_s
            closed = self._closed
        pool = self.pool.snapshot()
        pool_counters = pool["counters"]
        tenant_names = sorted(
            set(queued_per_tenant)
            | set(running_per_tenant)
            | set(pool["in_use"])
            | set(pool["waiting"])
            | set(pool["wait_histograms"])
            | {
                group[len("tenant."):]
                for group in pool_counters
                if group.startswith("tenant.")
            }
            | set(self.slo.tenants())
        )
        tenants: dict[str, Any] = {}
        for tenant in tenant_names:
            counters = pool_counters.get(f"tenant.{tenant}", {})
            tenants[tenant] = {
                "queued_chains": queued_per_tenant.get(tenant, 0),
                "running_chains": running_per_tenant.get(tenant, 0),
                "slots_in_use": pool["in_use"].get(tenant, 0),
                "waiting_tasks": pool["waiting"].get(tenant, 0),
                "tasks_inflight": inflight_per_tenant.get(tenant, 0),
                "slots_granted_total": counters.get(
                    Counters.SLOTS_GRANTED, 0
                ),
                "slot_wait_ms_total": counters.get(
                    Counters.SLOT_WAIT_MS, 0
                ),
                "wait_histogram": pool["wait_histograms"].get(tenant),
            }
        with self._model_lock:
            models_loaded = len(self._model_cache)
        with self._assign_lock:
            serving_tenants = {
                tenant: {
                    "requests_total": row["requests_total"],
                    "points_total": row["points_total"],
                    "outliers_total": row["outliers_total"],
                    "errors_total": row["errors_total"],
                    "latency_histogram": row["histogram"].snapshot(),
                }
                for tenant, row in sorted(self._assign_stats.items())
            }
        return {
            "service": {
                "name": self.name,
                "executor": self.executor_spec,
                "slots": self.slots,
                "closed": closed,
                "uptime_s": round(time.monotonic() - self._started_s, 6),
                "admission_budget_s": self.admission_budget_s,
                "active_cost_s": round(active_cost_s, 6),
            },
            "scheduler": {
                "queue_depth": queued_chains,
                "running_chains": running_chains,
                "slots_total": self.slots,
                "slots_in_use": pool["slots_held"],
                "utilization": pool["utilization"],
                "waiting_tasks": sum(pool["waiting"].values()),
                "chains_by_state": chains_by_state,
            },
            "tenants": tenants,
            "serving": {
                "models_loaded": models_loaded,
                "tenants": serving_tenants,
            },
            "slo": self.slo.snapshot(),
        }

    def start_telemetry(
        self,
        port: int = 0,
        *,
        host: str = "127.0.0.1",
        interval_s: float = 1.0,
        log_path: str | None = None,
    ) -> "TelemetryPlane":
        """Start the service-owned telemetry plane: periodic sampling
        of :meth:`telemetry_snapshot`, ``/metrics`` + ``/healthz`` +
        ``/statusz`` HTTP endpoints on ``port`` (0 = ephemeral; the
        bound port is on the returned plane), and an append-only JSONL
        log when ``log_path`` is given.  Stopped by :meth:`shutdown`.
        """
        if self.telemetry is not None:
            raise RuntimeError("telemetry already started")
        from repro.obs.telemetry import TelemetryPlane

        plane = TelemetryPlane(
            self.telemetry_snapshot,
            interval_s=interval_s,
            log_path=log_path,
        )
        plane.start(port, host=host)
        self.telemetry = plane
        # Attach the hub to the service obs so per-run scopes (and the
        # run reports built from them) carry the live-series summary.
        if self.obs is not None and getattr(self.obs, "enabled", False):
            self.obs.telemetry = plane.hub
        return plane

    # -- lifecycle ------------------------------------------------------

    def jobs(self) -> list[ServiceHandle]:
        with self._lock:
            return [ServiceHandle(self, job) for job in self._jobs.values()]

    def drain(self, timeout: float | None = None) -> bool:
        """Wait until every submitted chain has finished."""
        deadline = None if timeout is None else time.monotonic() + timeout
        for job in list(self._jobs.values()):
            remaining = None
            if deadline is not None:
                remaining = max(0.0, deadline - time.monotonic())
            if not job.finished.wait(remaining):
                return False
        return True

    def shutdown(self, cancel_pending: bool = False) -> None:
        self._closed = True
        if cancel_pending:
            for job in list(self._jobs.values()):
                if not job.finished.is_set():
                    self._cancel(job)
        self.drain()
        if self.telemetry is not None:
            self.telemetry.stop()
            self.telemetry = None

    def __enter__(self) -> "ClusterService":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.shutdown()
