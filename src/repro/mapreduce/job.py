"""Task contracts: Mapper, Combiner, Reducer, Partitioner and Context.

These mirror the Hadoop programming model.  A job is a bundle of task
classes plus a :class:`~repro.mapreduce.types.JobConf`; the runtime in
:mod:`repro.mapreduce.runtime` drives the lifecycle::

    mapper.setup(ctx); mapper.map(k, v, ctx) per record; mapper.cleanup(ctx)
    combiner.combine(k, values, ctx)         per map-task key group
    partitioner.partition(k, n)              per intermediate pair
    reducer.setup(ctx); reducer.reduce(k, values, ctx); reducer.cleanup(ctx)
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Sequence

import numpy as np

from repro.mapreduce.cache import DistributedCache
from repro.mapreduce.counters import Counters


class Context:
    """Per-task execution context: emit sink, cache, counters, task id.

    ``task_id`` is the split id for map tasks and the partition id for
    reduce tasks, letting tasks (e.g. BoW's per-reducer sampling) vary
    deterministic behaviour by task without shared state.
    """

    def __init__(
        self,
        cache: DistributedCache,
        counters: Counters,
        task_id: int,
        conf: Any = None,
    ) -> None:
        self.cache = cache
        self.counters = counters
        self.task_id = task_id
        self.conf = conf
        self._sink: list[tuple[Any, Any]] = []

    def emit(self, key: Any, value: Any) -> None:
        self._sink.append((key, value))

    def drain(self) -> list[tuple[Any, Any]]:
        pairs, self._sink = self._sink, []
        return pairs


class Mapper:
    """Base mapper.  Subclasses override :meth:`map` and optionally the
    ``setup``/``cleanup`` lifecycle hooks (cleanup is where split-local
    aggregates — e.g. per-split histograms or MVB medians — are emitted).
    """

    def setup(self, context: Context) -> None:  # noqa: B027 - optional hook
        pass

    def map(self, key: Any, value: Any, context: Context) -> None:
        raise NotImplementedError

    def cleanup(self, context: Context) -> None:  # noqa: B027 - optional hook
        pass


class BatchMapper(Mapper):
    """A mapper that consumes its split as one ``(keys, block)`` batch.

    The runtime feeds a :class:`BatchMapper` the whole split at once:
    ``keys`` is the sequence of record keys and ``block`` the ``(n, d)``
    ndarray of stacked record values.  That removes the per-record
    ``map()`` call and the per-row tuple materialisation from the hot
    path — the P3C+ mappers (histogram binning, RSSC support counting,
    EM moment accumulation) are all column-vectorised and only need the
    block.

    Splits whose records cannot be stacked into one 2-D array (non-array
    or ragged values) fall back to the inherited per-record protocol;
    the default :meth:`map` wraps each record as a batch of one, so
    overriding :meth:`map_batch` alone serves both paths.
    """

    def map_batch(
        self, keys: Sequence[Any], block: np.ndarray, context: Context
    ) -> None:
        raise NotImplementedError

    def map(self, key: Any, value: Any, context: Context) -> None:
        self.map_batch(
            (key,), np.atleast_2d(np.asarray(value, dtype=float)), context
        )


class Reducer:
    """Base reducer.  ``reduce`` receives one key with all its values."""

    def setup(self, context: Context) -> None:  # noqa: B027 - optional hook
        pass

    def reduce(self, key: Any, values: list[Any], context: Context) -> None:
        raise NotImplementedError

    def cleanup(self, context: Context) -> None:  # noqa: B027 - optional hook
        pass


class Combiner:
    """Optional map-side pre-aggregation.

    A well-formed combiner must be associative and commutative in the
    values and must emit pairs with the *same* key it received, so that
    running it zero, one or many times leaves reducer input semantics
    unchanged.  The runtime asserts the key constraint.
    """

    def combine(self, key: Any, values: list[Any], context: Context) -> None:
        raise NotImplementedError


class Partitioner:
    """Maps an intermediate key to a reduce partition."""

    def partition(self, key: Any, num_partitions: int) -> int:
        raise NotImplementedError


class HashPartitioner(Partitioner):
    """Default partitioner: stable hash of the key modulo #partitions.

    Uses a deterministic hash (not Python's randomised ``hash``) so that
    multiprocess and serial execution, and repeated runs, agree.
    """

    def partition(self, key: Any, num_partitions: int) -> int:
        return _stable_hash(key) % num_partitions


def _stable_hash(key: Any) -> int:
    """A process-stable, recursive hash for common key shapes."""
    if isinstance(key, str):
        h = 2166136261
        for byte in key.encode("utf-8"):
            h = ((h ^ byte) * 16777619) & 0xFFFFFFFF
        return h
    if isinstance(key, bool):
        return int(key)
    if isinstance(key, int):
        return key & 0x7FFFFFFF
    if isinstance(key, float):
        return _stable_hash(repr(key))
    if isinstance(key, tuple):
        h = 1099511628211
        for item in key:
            h = (h * 31 + _stable_hash(item)) & 0x7FFFFFFF
        return h
    if key is None:
        return 0
    return _stable_hash(repr(key))


@dataclass
class Job:
    """A complete MapReduce job specification."""

    mapper_factory: Callable[[], Mapper]
    reducer_factory: Callable[[], Reducer] | None = None
    combiner_factory: Callable[[], Combiner] | None = None
    partitioner: Partitioner = field(default_factory=HashPartitioner)
    cache: DistributedCache = field(default_factory=DistributedCache)

    def describe(self) -> str:
        mapper = self.mapper_factory().__class__.__name__
        reducer = (
            self.reducer_factory().__class__.__name__
            if self.reducer_factory
            else "<map-only>"
        )
        return f"{mapper} -> {reducer}"


def make_sort_key(key: Any) -> Any:
    """Total-order sort key for heterogeneous intermediate keys.

    Hadoop sorts by serialized byte order; we approximate with
    ``(type_name, key)`` so mixed key types in one job cannot raise
    ``TypeError`` during the sort phase.
    """
    return (type(key).__name__, key)


def group_sorted_pairs(
    pairs: list[tuple[Any, Any]],
    sort_keys: bool = True,
) -> Iterable[tuple[Any, list[Any]]]:
    """Sort pairs by key (if requested) and group values per key."""
    from repro.mapreduce.types import iter_grouped

    if sort_keys:
        pairs = sorted(pairs, key=lambda kv: make_sort_key(kv[0]))
    else:
        # Stable grouping without total order: bucket by first occurrence.
        order: dict[Any, int] = {}
        for key, _ in pairs:
            order.setdefault(key, len(order))
        pairs = sorted(pairs, key=lambda kv: order[kv[0]])
    return iter_grouped(pairs)
