"""Task contracts: Mapper, Combiner, Reducer, Partitioner and Context.

These mirror the Hadoop programming model.  A job is a bundle of task
classes plus a :class:`~repro.mapreduce.types.JobConf`; the runtime in
:mod:`repro.mapreduce.runtime` drives the lifecycle::

    mapper.setup(ctx); mapper.map(k, v, ctx) per record; mapper.cleanup(ctx)
    combiner.combine(k, values, ctx)         per map-task key group
    partitioner.partition(k, n)              per intermediate pair
    reducer.setup(ctx); reducer.reduce(k, values, ctx); reducer.cleanup(ctx)
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Sequence

import numpy as np

from repro.mapreduce.cache import DistributedCache
from repro.mapreduce.counters import Counters


class Context:
    """Per-task execution context: emit sink, cache, counters, task id.

    ``task_id`` is the split id for map tasks and the partition id for
    reduce tasks, letting tasks (e.g. BoW's per-reducer sampling) vary
    deterministic behaviour by task without shared state.
    """

    def __init__(
        self,
        cache: DistributedCache,
        counters: Counters,
        task_id: int,
        conf: Any = None,
    ) -> None:
        self.cache = cache
        self.counters = counters
        self.task_id = task_id
        self.conf = conf
        self._sink: list[tuple[Any, Any]] = []

    def emit(self, key: Any, value: Any) -> None:
        self._sink.append((key, value))

    def drain(self) -> list[tuple[Any, Any]]:
        pairs, self._sink = self._sink, []
        return pairs


class Mapper:
    """Base mapper.  Subclasses override :meth:`map` and optionally the
    ``setup``/``cleanup`` lifecycle hooks (cleanup is where split-local
    aggregates — e.g. per-split histograms or MVB medians — are emitted).
    """

    def setup(self, context: Context) -> None:  # noqa: B027 - optional hook
        pass

    def map(self, key: Any, value: Any, context: Context) -> None:
        raise NotImplementedError

    def cleanup(self, context: Context) -> None:  # noqa: B027 - optional hook
        pass


class BatchMapper(Mapper):
    """A mapper that consumes its split as one ``(keys, block)`` batch.

    The runtime feeds a :class:`BatchMapper` the whole split at once:
    ``keys`` is the sequence of record keys and ``block`` the ``(n, d)``
    ndarray of stacked record values.  That removes the per-record
    ``map()`` call and the per-row tuple materialisation from the hot
    path — the P3C+ mappers (histogram binning, RSSC support counting,
    EM moment accumulation) are all column-vectorised and only need the
    block.

    Splits whose records cannot be stacked into one 2-D array (non-array
    or ragged values) fall back to the inherited per-record protocol;
    the default :meth:`map` wraps each record as a batch of one, so
    overriding :meth:`map_batch` alone serves both paths.

    ``map_batch`` may be called *multiple times per task*: under
    ``JobConf.max_block_rows`` (or a derived memory budget) the runtime
    streams a file-backed split in bounded chunks instead of one block.
    Implementations must therefore accumulate across calls — emit
    per-chunk or buffer and finish in :meth:`cleanup` — and never
    assume the first batch is the whole split.
    """

    def map_batch(
        self, keys: Sequence[Any], block: np.ndarray, context: Context
    ) -> None:
        raise NotImplementedError

    def map(self, key: Any, value: Any, context: Context) -> None:
        self.map_batch(
            (key,), np.atleast_2d(np.asarray(value, dtype=float)), context
        )


class Reducer:
    """Base reducer.  ``reduce`` receives one key with all its values."""

    def setup(self, context: Context) -> None:  # noqa: B027 - optional hook
        pass

    def reduce(self, key: Any, values: list[Any], context: Context) -> None:
        raise NotImplementedError

    def cleanup(self, context: Context) -> None:  # noqa: B027 - optional hook
        pass


class Combiner:
    """Optional map-side pre-aggregation.

    A well-formed combiner must be associative and commutative in the
    values and must emit pairs with the *same* key it received, so that
    running it zero, one or many times leaves reducer input semantics
    unchanged.  The runtime asserts the key constraint.
    """

    def combine(self, key: Any, values: list[Any], context: Context) -> None:
        raise NotImplementedError


class ArraySumCombiner(Combiner):
    """Sums fixed-shape ndarray values per key, with a vectorized path.

    The scalar :meth:`combine` below is the semantic oracle: a single
    value passes through unchanged, multiple values fold left to right
    into a fresh array (the ``mr/aggregate.sum_partials`` contract —
    shuffled value objects are never mutated, so retries stay pure).
    When a map task's emitted pairs are uniform, the runtime bypasses
    the per-key-group Python loop and calls :func:`fold_uniform_pairs`,
    which produces bitwise-identical output via one argsort plus a
    per-group sequential ``np.cumsum`` fold.
    """

    def combine(self, key: Any, values: list[Any], context: Context) -> None:
        if len(values) == 1:
            context.emit(key, values[0])
            return
        total = values[0].copy()
        for value in values[1:]:
            np.add(total, value, out=total)
        context.emit(key, total)


def fold_uniform_pairs(
    pairs: list[tuple[Any, Any]],
) -> list[tuple[Any, Any]] | None:
    """Vectorized per-key sum of uniform ``(key, ndarray)`` pairs.

    Applies when every key has the same type and maps to a clean numpy
    scalar/string array element, and every value is an ndarray of one
    shared shape and dtype.  Keys are ordered with a single argsort and
    value rows folded per group with ``np.cumsum`` (taking the last
    row); a cumulative sum must produce every prefix, so it accumulates
    strictly left to right and each group's fold is bitwise equal to
    the loop in :meth:`ArraySumCombiner.combine`.  (``np.add.reduceat``
    and ``np.sum`` are faster but may sum pairwise, which changes float
    rounding.)  Output order (sorted by key) and
    the emitted key objects (first occurrence per group) match the
    scalar path driven by :func:`group_sorted_pairs`.  Returns ``None``
    when the pairs are not eligible; the caller falls back to the
    scalar oracle.
    """
    if len(pairs) < 2:
        return None
    first_key, first_value = pairs[0]
    key_type = type(first_key)
    if (
        not isinstance(first_value, np.ndarray)
        or first_value.ndim < 1
        or first_value.dtype.hasobject
    ):
        return None
    for key, value in pairs:
        if type(key) is not key_type:
            return None
        if (
            not isinstance(value, np.ndarray)
            or value.shape != first_value.shape
            or value.dtype != first_value.dtype
        ):
            return None
    try:
        key_arr = np.asarray([key for key, _ in pairs])
    except (ValueError, TypeError):
        return None
    if key_arr.shape != (len(pairs),) or key_arr.dtype.kind not in "biufSU":
        return None
    if key_arr.dtype.kind == "f" and np.isnan(key_arr).any():
        return None  # NaN breaks ordering/equality; keep the oracle path
    # kind="stable" matches the Python sort's tie order (first occurrence
    # leads its group), which fixes which key *object* gets re-emitted.
    order = np.argsort(key_arr, kind="stable")
    sorted_keys = key_arr[order]
    starts = np.flatnonzero(
        np.concatenate(([True], sorted_keys[1:] != sorted_keys[:-1]))
    )
    stacked = np.stack([value for _, value in pairs])[order]
    out: list[tuple[Any, Any]] = []
    for pos, start in enumerate(starts):
        key_obj = pairs[int(order[start])][0]
        end = int(starts[pos + 1]) if pos + 1 < len(starts) else len(pairs)
        if end - start == 1:
            # Single-value groups pass the original object through,
            # matching the scalar path (and avoiding a -0.0 + x rewrite).
            out.append((key_obj, pairs[int(order[start])][1]))
        else:
            # dtype pinned so small ints wrap exactly like the scalar
            # combiner instead of cumsum's default platform-int upcast.
            folded = np.cumsum(
                stacked[int(start):end], axis=0, dtype=stacked.dtype
            )[-1]
            out.append((key_obj, folded))
    return out


class Partitioner:
    """Maps an intermediate key to a reduce partition."""

    def partition(self, key: Any, num_partitions: int) -> int:
        raise NotImplementedError


class HashPartitioner(Partitioner):
    """Default partitioner: stable hash of the key modulo #partitions.

    Uses a deterministic hash (not Python's randomised ``hash``) so that
    multiprocess and serial execution, and repeated runs, agree.
    """

    def partition(self, key: Any, num_partitions: int) -> int:
        return _stable_hash(key) % num_partitions


def _stable_hash(key: Any) -> int:
    """A process-stable, recursive hash for common key shapes."""
    if isinstance(key, np.generic):
        # Numpy scalars must hash like the equal Python scalar, not via
        # repr() ("np.int64(5)" vs 5), or mixed-type keys split across
        # partitions.
        key = key.item()
    if isinstance(key, str):
        h = 2166136261
        for byte in key.encode("utf-8"):
            h = ((h ^ byte) * 16777619) & 0xFFFFFFFF
        return h
    if isinstance(key, bool):
        return int(key)
    if isinstance(key, int):
        return key & 0x7FFFFFFF
    if isinstance(key, float):
        return _stable_hash(repr(key))
    if isinstance(key, tuple):
        h = 1099511628211
        for item in key:
            h = (h * 31 + _stable_hash(item)) & 0x7FFFFFFF
        return h
    if key is None:
        return 0
    return _stable_hash(repr(key))


@dataclass
class Job:
    """A complete MapReduce job specification."""

    mapper_factory: Callable[[], Mapper]
    reducer_factory: Callable[[], Reducer] | None = None
    combiner_factory: Callable[[], Combiner] | None = None
    partitioner: Partitioner = field(default_factory=HashPartitioner)
    cache: DistributedCache = field(default_factory=DistributedCache)
    #: Optional partition-coverage hint for the pipelined scheduler:
    #: maps a split id to the reduce partitions its map task may emit
    #: to (``None`` per task = all partitions).  A declared partition
    #: set lets the runtime launch a reduce task the moment its
    #: contributing maps have delivered — before unrelated stragglers
    #: finish.  The runtime *enforces* the declaration: a map attempt
    #: whose payload carries records in an undeclared bucket fails
    #: shuffle-integrity validation, so a lying hint cannot silently
    #: drop data.  Must be picklable (a module-level function, not a
    #: lambda) to ride the process executor.
    partition_hint: Callable[[int], Sequence[int] | None] | None = None

    def describe(self) -> str:
        mapper = self.mapper_factory().__class__.__name__
        reducer = (
            self.reducer_factory().__class__.__name__
            if self.reducer_factory
            else "<map-only>"
        )
        return f"{mapper} -> {reducer}"


def make_sort_key(key: Any) -> Any:
    """Total-order sort key for heterogeneous intermediate keys.

    Hadoop sorts by serialized byte order; we approximate with
    ``(type_name, key)`` so mixed key types in one job cannot raise
    ``TypeError`` during the sort phase.
    """
    return (type(key).__name__, key)


def group_sorted_pairs(
    pairs: list[tuple[Any, Any]],
    sort_keys: bool = True,
) -> Iterable[tuple[Any, list[Any]]]:
    """Sort pairs by key (if requested) and group values per key."""
    from repro.mapreduce.types import iter_grouped

    if sort_keys:
        pairs = sorted(pairs, key=lambda kv: make_sort_key(kv[0]))
    else:
        # Stable grouping without total order: bucket by first occurrence.
        order: dict[Any, int] = {}
        for key, _ in pairs:
            order.setdefault(key, len(order))
        pairs = sorted(pairs, key=lambda kv: order[kv[0]])
    return iter_grouped(pairs)
