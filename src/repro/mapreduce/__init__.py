"""A faithful, in-process MapReduce runtime.

This package is the *substrate* of the reproduction: the paper's
algorithms (P3C+-MR, P3C+-MR-Light, BoW) are expressed as genuine
map / combine / shuffle / reduce programs against this runtime, with
the same dataflow contracts Hadoop offers:

- input is partitioned into :class:`~repro.mapreduce.types.InputSplit`\\ s,
  one mapper task per split;
- mapper tasks emit intermediate ``(key, value)`` pairs, optionally
  pre-aggregated by a combiner;
- pairs are partitioned, sorted by key and grouped before reduction;
- a read-only *distributed cache* ships side data to every task;
- *counters* account for records and (approximate) shuffle volume,
  which feeds the cluster cost model used for paper-scale runtime
  projection.

The runtime executes either serially (deterministic, default) or on a
process pool; both produce identical output for well-formed jobs.
"""

from repro.mapreduce.cache import DistributedCache
from repro.mapreduce.chain import JobChain
from repro.mapreduce.costmodel import (
    ClusterCostModel,
    CostEstimate,
    calibrate_from_events,
)
from repro.mapreduce.counters import CounterGroup, Counters
from repro.mapreduce.events import (
    Event,
    EventKind,
    EventLog,
    events_to_jsonl,
    format_trace,
)
from repro.mapreduce.executors import (
    CacheHandle,
    Executor,
    ProcessExecutor,
    SerialExecutor,
    SlotLease,
    TaskFailedError,
    TaskRunner,
    TaskTimeoutError,
    ThreadExecutor,
    resolve_executor,
)
from repro.mapreduce.faults import (
    ChaosError,
    ChaosExecutor,
    FaultClause,
    FaultPlan,
    parse_fault_spec,
)
from repro.mapreduce.fs import (
    CheckpointStore,
    chain_fingerprint,
    fingerprint_splits,
    make_csv_splits,
)
from repro.mapreduce.job import (
    BatchMapper,
    Combiner,
    Context,
    HashPartitioner,
    Job,
    Mapper,
    Partitioner,
    Reducer,
)
from repro.mapreduce.runtime import (
    JobResult,
    MapReduceRuntime,
    RuntimeContext,
    Shuffle,
    ShuffleIntegrityError,
    new_run_id,
)
from repro.mapreduce.types import InputSplit, JobConf, split_block, split_records

# The service plane composes everything above; import it last so the
# module graph stays acyclic.
from repro.mapreduce.scheduler import (  # noqa: E402
    ClusterService,
    FairShareSlotPool,
    JobCancelledError,
    ServiceHandle,
    TenantLease,
    TenantQuota,
)

__all__ = [
    "BatchMapper",
    "CacheHandle",
    "calibrate_from_events",
    "chain_fingerprint",
    "ChaosError",
    "ChaosExecutor",
    "CheckpointStore",
    "ClusterCostModel",
    "ClusterService",
    "Combiner",
    "Context",
    "CostEstimate",
    "CounterGroup",
    "Counters",
    "DistributedCache",
    "Event",
    "EventKind",
    "EventLog",
    "events_to_jsonl",
    "Executor",
    "FairShareSlotPool",
    "FaultClause",
    "FaultPlan",
    "fingerprint_splits",
    "format_trace",
    "HashPartitioner",
    "InputSplit",
    "Job",
    "JobCancelledError",
    "JobChain",
    "JobConf",
    "JobResult",
    "MapReduceRuntime",
    "Mapper",
    "make_csv_splits",
    "new_run_id",
    "parse_fault_spec",
    "Partitioner",
    "ProcessExecutor",
    "Reducer",
    "resolve_executor",
    "RuntimeContext",
    "SerialExecutor",
    "ServiceHandle",
    "Shuffle",
    "ShuffleIntegrityError",
    "SlotLease",
    "TenantLease",
    "TenantQuota",
    "TaskFailedError",
    "TaskRunner",
    "TaskTimeoutError",
    "ThreadExecutor",
    "split_block",
    "split_records",
]
