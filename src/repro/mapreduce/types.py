"""Core value types of the MapReduce runtime: splits and job configuration."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Iterator, Sequence

import numpy as np


@dataclass(frozen=True)
class InputSplit:
    """A contiguous slice of the input assigned to one mapper task.

    ``records`` is any sequence of ``(key, value)`` pairs.  For the
    clustering jobs the canonical record is ``(row_index, row_vector)``
    where ``row_vector`` is a 1-D :class:`numpy.ndarray`; the runtime
    itself is agnostic to the payload type.
    """

    split_id: int
    records: Sequence[tuple[Any, Any]]

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self) -> Iterator[tuple[Any, Any]]:
        return iter(self.records)


class _ArrayRecords(Sequence):
    """Lazy ``(index, row)`` view over a slice of a 2-D array.

    Avoids materialising one tuple per data point up front; rows are
    produced on demand as the mapper iterates its split.
    """

    def __init__(self, data: np.ndarray, start: int, stop: int) -> None:
        self._data = data
        self._start = start
        self._stop = stop

    def __len__(self) -> int:
        return self._stop - self._start

    def __getitem__(self, i: int) -> tuple[int, np.ndarray]:
        if i < 0:
            i += len(self)
        if not 0 <= i < len(self):
            raise IndexError(i)
        idx = self._start + i
        return idx, self._data[idx]

    def __iter__(self) -> Iterator[tuple[int, np.ndarray]]:
        for idx in range(self._start, self._stop):
            yield idx, self._data[idx]

    def as_block(self) -> tuple[np.ndarray, np.ndarray]:
        """The slice as ``(keys, block)`` with zero per-row overhead."""
        return (
            np.arange(self._start, self._stop),
            self._data[self._start : self._stop],
        )


def split_block(split: "InputSplit") -> tuple[Sequence[Any], np.ndarray] | None:
    """Extract a whole split as one ``(keys, block)`` batch, if possible.

    Record containers that know their block shape (array slices, CSV
    byte ranges) expose ``as_block()`` and pay no per-row cost at all;
    any other record sequence is stacked when every value is a 1-D
    array of the same length.  Returns ``None`` when the records cannot
    form one 2-D block (the runtime then falls back to per-record
    ``map()`` calls).
    """
    records = split.records
    as_block = getattr(records, "as_block", None)
    if as_block is not None:
        return as_block()
    keys: list[Any] = []
    values: list[Any] = []
    for key, value in records:
        keys.append(key)
        values.append(value)
    if not values:
        return None
    first = values[0]
    if not isinstance(first, np.ndarray) or first.ndim != 1:
        return None
    if any(
        not isinstance(v, np.ndarray) or v.shape != first.shape for v in values
    ):
        return None
    return keys, np.stack(values)


def split_records(
    data: np.ndarray | Sequence[tuple[Any, Any]],
    num_splits: int,
) -> list[InputSplit]:
    """Partition ``data`` into ``num_splits`` roughly equal input splits.

    ``data`` may be a 2-D array (rows become ``(row_index, row)`` records)
    or an explicit sequence of ``(key, value)`` records.  Splits differ in
    size by at most one record, mirroring HDFS block alignment on
    fixed-width rows.
    """
    if num_splits < 1:
        raise ValueError(f"num_splits must be >= 1, got {num_splits}")
    n = len(data)
    num_splits = min(num_splits, max(1, n))
    bounds = np.linspace(0, n, num_splits + 1).astype(int)
    splits: list[InputSplit] = []
    for sid in range(num_splits):
        lo, hi = int(bounds[sid]), int(bounds[sid + 1])
        if isinstance(data, np.ndarray):
            records: Sequence[tuple[Any, Any]] = _ArrayRecords(data, lo, hi)
        else:
            records = [tuple(rec) for rec in data[lo:hi]]
        splits.append(InputSplit(split_id=sid, records=records))
    return splits


@dataclass
class JobConf:
    """Configuration of one MapReduce job.

    Mirrors the knobs the paper's driver uses: the number of mapper
    slots (splits), the number of reducers (0 = map-only job, 1 = the
    single-reducer aggregation pattern most P3C+-MR jobs use), and the
    job name used in counter reports.
    """

    name: str = "job"
    num_splits: int = 4
    num_reducers: int = 1
    sort_keys: bool = True
    #: Hadoop-style task re-execution budget (1 = fail fast).
    max_task_attempts: int = 2
    #: Base delay before a retry; doubles per attempt (0 = immediate).
    retry_backoff_s: float = 0.0
    #: Per-attempt wall-clock budget (Hadoop's ``mapreduce.task.timeout``);
    #: an attempt exceeding it fails and retries.  ``None`` defers to the
    #: runtime default (itself ``None`` = no limit).
    task_timeout_s: float | None = None
    #: Speculatively re-execute straggler tasks (first result wins);
    #: ``None`` defers to the runtime default.
    speculative: bool | None = None
    #: Per-job executor override (``"serial"``/``"thread"``/``"process"``);
    #: ``None`` defers to the runtime's configured default.
    executor: str | None = None
    extra: dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.num_splits < 1:
            raise ValueError("num_splits must be >= 1")
        if self.num_reducers < 0:
            raise ValueError("num_reducers must be >= 0")
        if self.max_task_attempts < 1:
            raise ValueError("max_task_attempts must be >= 1")
        if self.retry_backoff_s < 0:
            raise ValueError("retry_backoff_s must be >= 0")
        if self.task_timeout_s is not None and self.task_timeout_s <= 0:
            raise ValueError("task_timeout_s must be > 0")


def iter_grouped(
    pairs: Iterable[tuple[Any, Any]],
) -> Iterator[tuple[Any, list[Any]]]:
    """Group a key-sorted pair stream into ``(key, [values])`` runs."""
    current_key: Any = None
    bucket: list[Any] = []
    have_key = False
    for key, value in pairs:
        if have_key and key == current_key:
            bucket.append(value)
        else:
            if have_key:
                yield current_key, bucket
            current_key = key
            bucket = [value]
            have_key = True
    if have_key:
        yield current_key, bucket
