"""Core value types of the MapReduce runtime: splits, shuffle buckets
and job configuration."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Iterator, Sequence

import numpy as np

#: Key types eligible for columnar packing: cheap to keep as a Python
#: list while the value block travels as one ndarray.
_PACKABLE_KEY_TYPES = (str, bool, int, float, tuple, np.generic)


@dataclass
class ColumnarBucket:
    """One shuffle partition's pairs in columnar form.

    ``keys`` keeps the *original* key objects (a short Python list —
    the hot jobs emit a handful of aggregate keys per task), so
    unpacking reproduces the tuple-path pairs byte for byte; ``block``
    stacks the pair values into one ``(n, *value_shape)`` ndarray.  A
    single contiguous block is what makes the shuffle cheap: ``gather``
    concatenates arrays instead of extending pair lists, and on the
    process executor the block leaves the pickle stream out-of-band
    (pickle protocol 5), so shuffled bytes shrink to the data itself
    instead of one pickled ndarray header per pair.
    """

    keys: list[Any]
    block: np.ndarray

    def __len__(self) -> int:
        return len(self.keys)

    def __iter__(self) -> Iterator[tuple[Any, np.ndarray]]:
        return zip(self.keys, self.block)

    def pairs(self) -> list[tuple[Any, np.ndarray]]:
        """The tuple-path view: ``(key, value_row)`` pairs in order."""
        return list(zip(self.keys, self.block))

    @property
    def nbytes(self) -> int:
        """Approximate shuffled payload size (block + 8 bytes per key)."""
        return int(self.block.nbytes) + 8 * len(self.keys)

    def truncated(self) -> "ColumnarBucket":
        """Drop the trailing pair (the corrupt-fault injection shape)."""
        return ColumnarBucket(self.keys[:-1], self.block[:-1])

    @classmethod
    def concat(cls, buckets: Sequence["ColumnarBucket"]) -> "ColumnarBucket":
        """Concatenate task-ordered buckets into one partition bucket."""
        if len(buckets) == 1:
            return buckets[0]
        keys: list[Any] = []
        for bucket in buckets:
            keys.extend(bucket.keys)
        return cls(keys, np.concatenate([b.block for b in buckets]))


def pack_pairs(pairs: list[tuple[Any, Any]]) -> ColumnarBucket | None:
    """Pack a uniform pair list into a :class:`ColumnarBucket`.

    Eligible pairs have scalar/tuple keys and fixed-shape ndarray
    values (same shape *and* dtype, at least 1-D, no object dtype) —
    true for the histogram, support, EM-sum and attribute-inspection
    emissions.  Returns ``None`` for anything else; the caller keeps
    the ``list[tuple]`` path, which stays the parity oracle.
    """
    if not pairs:
        return None
    first = pairs[0][1]
    if (
        not isinstance(first, np.ndarray)
        or first.ndim < 1
        or first.dtype.hasobject
    ):
        return None
    for key, value in pairs:
        if key is not None and not isinstance(key, _PACKABLE_KEY_TYPES):
            return None
        if (
            not isinstance(value, np.ndarray)
            or value.shape != first.shape
            or value.dtype != first.dtype
        ):
            return None
    return ColumnarBucket(
        [key for key, _ in pairs], np.stack([value for _, value in pairs])
    )


def bucket_pairs(
    bucket: "ColumnarBucket | list[tuple[Any, Any]]",
) -> list[tuple[Any, Any]]:
    """Materialise any bucket representation as a pair list.

    Understands the two in-heap representations plus anything exposing
    a ``pairs()`` view — the spilled-shuffle handles
    (:class:`repro.mapreduce.spill.SpilledBucket` /
    ``SpilledPartition``) materialise here, inside the reduce task.
    """
    if isinstance(bucket, ColumnarBucket):
        return bucket.pairs()
    if isinstance(bucket, list):
        return bucket
    pairs = getattr(bucket, "pairs", None)
    if pairs is not None:
        return pairs()
    return bucket


#: Rough pickled-size constants for the tuple-path estimator below:
#: per-pair tuple/key framing and the per-ndarray pickle header.
_PAIR_OVERHEAD_B = 32
_NDARRAY_HEADER_B = 128


def bucket_nbytes(bucket: "ColumnarBucket | list[tuple[Any, Any]]") -> int:
    """Estimated shuffled bytes of one bucket (feeds ``shuffle_bytes``).

    Columnar buckets report their block size; tuple buckets are
    estimated per pair (ndarray values by ``nbytes`` plus a pickle
    header, anything else at a flat 16 bytes).  An estimator, not an
    exact wire size — cheap enough for the map hot path and accurate
    enough to expose the columnar reduction.
    """
    if isinstance(bucket, ColumnarBucket):
        return bucket.nbytes
    if not isinstance(bucket, list):
        # Spilled representations report their logical payload size.
        nbytes = getattr(bucket, "nbytes", None)
        if nbytes is not None:
            return int(nbytes)
    total = 0
    for _, value in bucket:
        if isinstance(value, np.ndarray):
            total += _PAIR_OVERHEAD_B + _NDARRAY_HEADER_B + int(value.nbytes)
        else:
            total += _PAIR_OVERHEAD_B + 16
    return total


@dataclass(frozen=True)
class InputSplit:
    """A contiguous slice of the input assigned to one mapper task.

    ``records`` is any sequence of ``(key, value)`` pairs.  For the
    clustering jobs the canonical record is ``(row_index, row_vector)``
    where ``row_vector`` is a 1-D :class:`numpy.ndarray`; the runtime
    itself is agnostic to the payload type.
    """

    split_id: int
    records: Sequence[tuple[Any, Any]]

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self) -> Iterator[tuple[Any, Any]]:
        return iter(self.records)


class _ArrayRecords(Sequence):
    """Lazy ``(index, row)`` view over a slice of a 2-D array.

    Avoids materialising one tuple per data point up front; rows are
    produced on demand as the mapper iterates its split.
    """

    def __init__(self, data: np.ndarray, start: int, stop: int) -> None:
        self._data = data
        self._start = start
        self._stop = stop

    def __len__(self) -> int:
        return self._stop - self._start

    def __getitem__(self, i: int) -> tuple[int, np.ndarray]:
        if i < 0:
            i += len(self)
        if not 0 <= i < len(self):
            raise IndexError(i)
        idx = self._start + i
        return idx, self._data[idx]

    def __iter__(self) -> Iterator[tuple[int, np.ndarray]]:
        for idx in range(self._start, self._stop):
            yield idx, self._data[idx]

    def as_block(self) -> tuple[np.ndarray, np.ndarray]:
        """The slice as ``(keys, block)`` with zero per-row overhead."""
        return (
            np.arange(self._start, self._stop),
            self._data[self._start : self._stop],
        )


def split_block(split: "InputSplit") -> tuple[Sequence[Any], np.ndarray] | None:
    """Extract a whole split as one ``(keys, block)`` batch, if possible.

    Record containers that know their block shape (array slices, CSV
    byte ranges) expose ``as_block()`` and pay no per-row cost at all;
    any other record sequence is stacked when every value is a 1-D
    array of the same length.  Returns ``None`` when the records cannot
    form one 2-D block (the runtime then falls back to per-record
    ``map()`` calls).
    """
    records = split.records
    as_block = getattr(records, "as_block", None)
    if as_block is not None:
        return as_block()
    keys: list[Any] = []
    values: list[Any] = []
    for key, value in records:
        keys.append(key)
        values.append(value)
    if not values:
        return None
    first = values[0]
    if not isinstance(first, np.ndarray) or first.ndim != 1:
        return None
    if any(
        not isinstance(v, np.ndarray) or v.shape != first.shape for v in values
    ):
        return None
    return keys, np.stack(values)


def iter_split_blocks(
    split: "InputSplit", max_rows: int | None = None
) -> "Iterator[tuple[Sequence[Any], np.ndarray]] | None":
    """Batched view of a split: an iterator of ``(keys, block)`` chunks.

    With ``max_rows=None`` this is :func:`split_block` in iterator
    clothing — one whole-split batch, the classic delivery.  With a cap,
    record containers that can stream chunks straight from storage
    (the ``iter_blocks(max_rows)`` hook: file-backed CSV/npy splits)
    never materialise the split at all, so a mapper task's peak memory
    is bounded by one chunk; in-memory containers fall back to slicing
    views out of the one block.  Returns ``None`` when the records
    cannot form 2-D blocks (the runtime then uses per-record ``map()``
    delivery).
    """
    records = split.records
    if max_rows is not None:
        if max_rows < 1:
            raise ValueError("max_rows must be >= 1")
        hook = getattr(records, "iter_blocks", None)
        if hook is not None:
            return hook(max_rows)
    batch = split_block(split)
    if batch is None:
        return None
    keys, block = batch
    if max_rows is None or len(keys) <= max_rows:
        return iter((batch,))

    def chunks() -> Iterator[tuple[Sequence[Any], np.ndarray]]:
        for lo in range(0, len(keys), max_rows):
            yield keys[lo : lo + max_rows], block[lo : lo + max_rows]

    return chunks()


def split_records(
    data: np.ndarray | Sequence[tuple[Any, Any]],
    num_splits: int,
) -> list[InputSplit]:
    """Partition ``data`` into ``num_splits`` roughly equal input splits.

    ``data`` may be a 2-D array (rows become ``(row_index, row)`` records)
    or an explicit sequence of ``(key, value)`` records.  Splits differ in
    size by at most one record, mirroring HDFS block alignment on
    fixed-width rows.
    """
    if num_splits < 1:
        raise ValueError(f"num_splits must be >= 1, got {num_splits}")
    n = len(data)
    num_splits = min(num_splits, max(1, n))
    bounds = np.linspace(0, n, num_splits + 1).astype(int)
    splits: list[InputSplit] = []
    for sid in range(num_splits):
        lo, hi = int(bounds[sid]), int(bounds[sid + 1])
        if isinstance(data, np.ndarray):
            records: Sequence[tuple[Any, Any]] = _ArrayRecords(data, lo, hi)
        else:
            records = [tuple(rec) for rec in data[lo:hi]]
        splits.append(InputSplit(split_id=sid, records=records))
    return splits


@dataclass
class JobConf:
    """Configuration of one MapReduce job.

    Mirrors the knobs the paper's driver uses: the number of mapper
    slots (splits), the number of reducers (0 = map-only job, 1 = the
    single-reducer aggregation pattern most P3C+-MR jobs use), and the
    job name used in counter reports.
    """

    name: str = "job"
    num_splits: int = 4
    num_reducers: int = 1
    sort_keys: bool = True
    #: Hadoop-style task re-execution budget (1 = fail fast).
    max_task_attempts: int = 2
    #: Base delay before a retry; doubles per attempt (0 = immediate).
    retry_backoff_s: float = 0.0
    #: Per-attempt wall-clock budget (Hadoop's ``mapreduce.task.timeout``);
    #: an attempt exceeding it fails and retries.  ``None`` defers to the
    #: runtime default (itself ``None`` = no limit).
    task_timeout_s: float | None = None
    #: Speculatively re-execute straggler tasks (first result wins);
    #: ``None`` defers to the runtime default.
    speculative: bool | None = None
    #: Per-job executor override (``"serial"``/``"thread"``/``"process"``);
    #: ``None`` defers to the runtime's configured default.
    executor: str | None = None
    #: Pack uniform shuffle buckets into :class:`ColumnarBucket`; the
    #: tuple path remains the fallback (and the parity oracle in tests).
    columnar_shuffle: bool = True
    #: Launch reduce tasks as map-side buckets become ready instead of
    #: waiting on the full map barrier.  ``None`` defers to the runtime
    #: default (enabled on pooled executors, no-op on serial).
    pipelined: bool | None = None
    #: Cap on rows per ``BatchMapper.map_batch`` delivery.  ``None``
    #: delivers each split as one block; with a cap the runtime streams
    #: the split in chunks (see :func:`iter_split_blocks`) so a map
    #: task's peak memory is bounded by one chunk, not one split.
    max_block_rows: int | None = None
    #: Byte budget for a map task's resident shuffle payload.  Columnar
    #: buckets that would push the task past it spill to compressed
    #: segment files under ``spill_dir``; also drives a budget-derived
    #: ``max_block_rows`` for file-backed splits that report their row
    #: width.  ``None`` keeps the classic all-in-heap data plane.
    memory_budget_bytes: int | None = None
    #: Root directory for shuffle spill segments.  ``None`` with a
    #: memory budget set lets the runtime create (and remove) a
    #: run-scoped temporary directory per job.
    spill_dir: str | None = None
    extra: dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.num_splits < 1:
            raise ValueError("num_splits must be >= 1")
        if self.num_reducers < 0:
            raise ValueError("num_reducers must be >= 0")
        if self.max_task_attempts < 1:
            raise ValueError("max_task_attempts must be >= 1")
        if self.retry_backoff_s < 0:
            raise ValueError("retry_backoff_s must be >= 0")
        if self.task_timeout_s is not None and self.task_timeout_s <= 0:
            raise ValueError("task_timeout_s must be > 0")
        if self.max_block_rows is not None and self.max_block_rows < 1:
            raise ValueError("max_block_rows must be >= 1")
        if self.memory_budget_bytes is not None and self.memory_budget_bytes < 1:
            raise ValueError("memory_budget_bytes must be >= 1")


def iter_grouped(
    pairs: Iterable[tuple[Any, Any]],
) -> Iterator[tuple[Any, list[Any]]]:
    """Group a key-sorted pair stream into ``(key, [values])`` runs."""
    current_key: Any = None
    bucket: list[Any] = []
    have_key = False
    for key, value in pairs:
        if have_key and key == current_key:
            bucket.append(value)
        else:
            if have_key:
                yield current_key, bucket
            current_key = key
            bucket = [value]
            have_key = True
    if have_key:
        yield current_key, bucket
