"""File-backed runtime storage: streaming CSV splits and chain checkpoints.

Hadoop's TextInputFormat assigns each mapper a byte range of the input
file; a task seeks to its range, skips to the next record boundary and
streams records without ever materialising the whole file.  This module
provides the same contract for headerless CSV matrices, so the MR
drivers can cluster data sets larger than memory:

    splits, n, d = make_csv_splits("huge.csv", num_splits=64)
    result = P3CPlusMRLight().fit_splits(splits, n, d)

Each record is ``(row_index, numpy row)`` — identical to the in-memory
splits of :func:`repro.mapreduce.types.split_records`, so jobs cannot
tell the difference (a test asserts equal clustering output).

The second half of the module is :class:`CheckpointStore` — the
persistence layer behind ``JobChain`` checkpoint/resume.  Each
completed job's output pairs are pickled under a run directory and
recorded in a ``manifest.json`` keyed by the job's position/name and an
*input fingerprint* (a chained hash over the upstream fingerprint, the
job configuration and a cheap sample of the input splits).  A resumed
chain replays the driver; jobs whose fingerprint matches the manifest
are restored instead of re-executed, while any mismatch — different
data, different configuration, different upstream history — forces
recomputation of that job and everything after it.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import re
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Iterator, Sequence

import numpy as np

from repro.mapreduce.types import InputSplit, JobConf


@dataclass(frozen=True)
class _CSVRange:
    """One byte range of a CSV file plus its starting row index."""

    path: str
    start_offset: int
    end_offset: int
    first_row: int
    num_rows: int


class CSVRecordStream(Sequence):
    """Lazy ``(row_index, row)`` sequence over a CSV byte range.

    ``__iter__`` streams straight from disk; ``__getitem__`` (rarely
    used by jobs) reads the range once and caches nothing beyond the
    requested row, keeping memory bounded by one split.
    """

    def __init__(self, chunk: _CSVRange) -> None:
        self._chunk = chunk

    def __len__(self) -> int:
        return self._chunk.num_rows

    def __iter__(self) -> Iterator[tuple[int, np.ndarray]]:
        chunk = self._chunk
        with open(chunk.path, "rb") as handle:
            handle.seek(chunk.start_offset)
            row = chunk.first_row
            while handle.tell() < chunk.end_offset:
                line = handle.readline()
                if not line.strip():
                    continue
                yield row, _parse_line(line)
                row += 1

    def __getitem__(self, index: int) -> tuple[int, np.ndarray]:
        if index < 0:
            index += len(self)
        if not 0 <= index < len(self):
            raise IndexError(index)
        for i, record in enumerate(self):
            if i == index:
                return record
        raise IndexError(index)  # pragma: no cover - unreachable

    def as_block(self) -> tuple[np.ndarray, np.ndarray]:
        """The byte range as ``(keys, block)``: one read, one parse pass.

        Feeds :class:`~repro.mapreduce.job.BatchMapper` tasks a whole
        split at once instead of one ``readline`` + parse per record;
        rows and keys are identical to what ``__iter__`` streams.
        """
        chunk = self._chunk
        with open(chunk.path, "rb") as handle:
            handle.seek(chunk.start_offset)
            raw = handle.read(chunk.end_offset - chunk.start_offset)
        rows = [_parse_line(line) for line in raw.splitlines() if line.strip()]
        keys = np.arange(chunk.first_row, chunk.first_row + len(rows))
        return keys, np.stack(rows)


def _parse_line(line: bytes) -> np.ndarray:
    return np.fromiter(
        (float(part) for part in line.strip().split(b",")), dtype=float
    )


def make_csv_splits(
    path: str | Path,
    num_splits: int,
) -> tuple[list[InputSplit], int, int]:
    """Partition a headerless CSV into streaming input splits.

    One scan establishes the newline offsets (the analogue of the HDFS
    block index); records are only parsed lazily inside mapper tasks.
    Returns ``(splits, n_rows, n_columns)``.
    """
    path = Path(path)
    if num_splits < 1:
        raise ValueError("num_splits must be >= 1")

    offsets = [0]
    with open(path, "rb") as handle:
        first_line = handle.readline()
        if not first_line.strip():
            raise ValueError(f"{path} is empty")
        n_columns = len(first_line.strip().split(b","))
        offsets.append(handle.tell())
        while True:
            line = handle.readline()
            if not line:
                break
            if line.strip():
                offsets.append(handle.tell())
        end_of_file = offsets.pop()  # last offset is EOF, not a row start
        offsets.append(end_of_file)

    n_rows = len(offsets) - 1
    if n_rows == 0:
        raise ValueError(f"{path} contains no data rows")

    num_splits = min(num_splits, n_rows)
    bounds = np.linspace(0, n_rows, num_splits + 1).astype(int)
    splits: list[InputSplit] = []
    for sid in range(num_splits):
        lo, hi = int(bounds[sid]), int(bounds[sid + 1])
        if lo == hi:
            continue
        chunk = _CSVRange(
            path=str(path),
            start_offset=offsets[lo],
            end_offset=offsets[hi],
            first_row=lo,
            num_rows=hi - lo,
        )
        splits.append(InputSplit(split_id=sid, records=CSVRecordStream(chunk)))
    return splits, n_rows, n_columns


# -- chain checkpointing ------------------------------------------------


def _hash_record(hasher, record: Any) -> None:
    key, value = record
    hasher.update(repr(key).encode("utf-8"))
    if isinstance(value, np.ndarray):
        hasher.update(np.ascontiguousarray(value).tobytes())
    else:
        hasher.update(repr(value).encode("utf-8"))


def fingerprint_splits(splits: Sequence[InputSplit]) -> str:
    """A cheap, content-sensitive fingerprint of a split list.

    Hashes each split's id, length and first record — O(#splits) work
    regardless of data size (file-backed splits read one record, not
    the range), yet sensitive to the dataset swaps and re-splits that
    would make a checkpoint stale.
    """
    hasher = hashlib.sha256()
    for split in splits:
        hasher.update(f"{split.split_id}:{len(split)}".encode("utf-8"))
        if len(split) > 0:
            _hash_record(hasher, split.records[0])
    return hasher.hexdigest()[:24]


def chain_fingerprint(
    previous: str, name: str, conf: JobConf, splits: Sequence[InputSplit]
) -> str:
    """Fingerprint of one chain step, chained over its upstream history.

    Folds in the previous step's fingerprint, so a checkpoint entry is
    only reusable when every job before it matched too.  Distributed
    cache contents are deliberately *not* hashed: the P3C+ pipelines
    derive them deterministically from the input, which the chained
    history already covers.
    """
    hasher = hashlib.sha256()
    hasher.update(previous.encode("utf-8"))
    hasher.update(name.encode("utf-8"))
    simple_extra = {
        key: value
        for key, value in sorted(conf.extra.items())
        if isinstance(value, (str, int, float, bool, type(None)))
    }
    conf_token = (
        f"{conf.num_splits}:{conf.num_reducers}:{conf.sort_keys}:"
        f"{json.dumps(simple_extra, sort_keys=True)}"
    )
    hasher.update(conf_token.encode("utf-8"))
    hasher.update(fingerprint_splits(splits).encode("utf-8"))
    return hasher.hexdigest()[:24]


class CheckpointStore:
    """Durable per-job outputs of one chain run, under one directory.

    Layout::

        <root>/manifest.json          job key -> {fingerprint, file, meta}
        <root>/jobs/<key>.pkl         pickled output pairs of one job

    Writes are crash-safe in the sense that matters for resume: the
    pickle lands fully before the manifest references it, and manifest
    updates are atomic (write-to-temp + rename), so an interrupted run
    leaves at worst an orphaned pickle, never a manifest entry pointing
    at a truncated payload.
    """

    SCHEMA = "repro.mapreduce/checkpoint/v1"

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)
        self.jobs_dir = self.root / "jobs"
        self.jobs_dir.mkdir(parents=True, exist_ok=True)
        self._manifest_path = self.root / "manifest.json"
        self._manifest = self._load_manifest()

    def _load_manifest(self) -> dict[str, Any]:
        if not self._manifest_path.exists():
            return {"schema": self.SCHEMA, "jobs": {}}
        try:
            with open(self._manifest_path, "r", encoding="utf-8") as handle:
                manifest = json.load(handle)
        except (OSError, json.JSONDecodeError):
            return {"schema": self.SCHEMA, "jobs": {}}
        if manifest.get("schema") != self.SCHEMA:
            return {"schema": self.SCHEMA, "jobs": {}}
        manifest.setdefault("jobs", {})
        return manifest

    def _write_manifest(self) -> None:
        tmp = self._manifest_path.with_suffix(".json.tmp")
        with open(tmp, "w", encoding="utf-8") as handle:
            json.dump(self._manifest, handle, indent=2, sort_keys=True)
            handle.write("\n")
        os.replace(tmp, self._manifest_path)

    @staticmethod
    def job_key(ordinal: int, name: str) -> str:
        safe = re.sub(r"[^A-Za-z0-9_.-]+", "_", name)
        return f"{ordinal:03d}_{safe}"

    def load(
        self, key: str, fingerprint: str
    ) -> tuple[list[tuple[Any, Any]], dict[str, Any]] | None:
        """The stored output + metadata for ``key``, or ``None`` when the
        entry is missing, stale (fingerprint mismatch) or unreadable."""
        entry = self._manifest["jobs"].get(key)
        if entry is None or entry.get("fingerprint") != fingerprint:
            return None
        path = self.root / entry["file"]
        try:
            with open(path, "rb") as handle:
                output = pickle.load(handle)
        except (OSError, pickle.UnpicklingError, EOFError):
            return None
        return output, dict(entry.get("meta", {}))

    def save(
        self,
        key: str,
        fingerprint: str,
        output: list[tuple[Any, Any]],
        meta: dict[str, Any],
    ) -> None:
        """Persist one completed job's output and manifest entry."""
        filename = f"jobs/{key}.pkl"
        tmp = self.root / (filename + ".tmp")
        with open(tmp, "wb") as handle:
            pickle.dump(output, handle, protocol=pickle.HIGHEST_PROTOCOL)
        os.replace(tmp, self.root / filename)
        self._manifest["jobs"][key] = {
            "fingerprint": fingerprint,
            "file": filename,
            "meta": meta,
        }
        self._write_manifest()

    # -- partition plans (auto-tune x resume) ---------------------------

    def load_plan(self, key: str) -> int | None:
        """The reducer count auto-tune chose for ``key`` on the original
        run, or ``None`` when no plan was recorded."""
        entry = self._manifest.get("plans", {}).get(key)
        if entry is None:
            return None
        try:
            return int(entry["num_reducers"])
        except (KeyError, TypeError, ValueError):
            return None

    def save_plan(self, key: str, num_reducers: int) -> None:
        """Record the partition plan chosen for ``key``.

        Saved *before* the job executes, so a chain killed mid-job still
        leaves its plan behind — a resumed run must re-use it rather
        than re-planning from an event log that the restored prefix
        leaves empty of task timings.
        """
        self._manifest.setdefault("plans", {})[key] = {
            "num_reducers": int(num_reducers)
        }
        self._write_manifest()

    def __len__(self) -> int:
        return len(self._manifest["jobs"])
