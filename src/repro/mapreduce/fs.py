"""File-backed input splits: stream records from CSV byte ranges.

Hadoop's TextInputFormat assigns each mapper a byte range of the input
file; a task seeks to its range, skips to the next record boundary and
streams records without ever materialising the whole file.  This module
provides the same contract for headerless CSV matrices, so the MR
drivers can cluster data sets larger than memory:

    splits, n, d = make_csv_splits("huge.csv", num_splits=64)
    result = P3CPlusMRLight().fit_splits(splits, n, d)

Each record is ``(row_index, numpy row)`` — identical to the in-memory
splits of :func:`repro.mapreduce.types.split_records`, so jobs cannot
tell the difference (a test asserts equal clustering output).
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Iterator, Sequence

import numpy as np

from repro.mapreduce.types import InputSplit


@dataclass(frozen=True)
class _CSVRange:
    """One byte range of a CSV file plus its starting row index."""

    path: str
    start_offset: int
    end_offset: int
    first_row: int
    num_rows: int


class CSVRecordStream(Sequence):
    """Lazy ``(row_index, row)`` sequence over a CSV byte range.

    ``__iter__`` streams straight from disk; ``__getitem__`` (rarely
    used by jobs) reads the range once and caches nothing beyond the
    requested row, keeping memory bounded by one split.
    """

    def __init__(self, chunk: _CSVRange) -> None:
        self._chunk = chunk

    def __len__(self) -> int:
        return self._chunk.num_rows

    def __iter__(self) -> Iterator[tuple[int, np.ndarray]]:
        chunk = self._chunk
        with open(chunk.path, "rb") as handle:
            handle.seek(chunk.start_offset)
            row = chunk.first_row
            while handle.tell() < chunk.end_offset:
                line = handle.readline()
                if not line.strip():
                    continue
                yield row, _parse_line(line)
                row += 1

    def __getitem__(self, index: int) -> tuple[int, np.ndarray]:
        if index < 0:
            index += len(self)
        if not 0 <= index < len(self):
            raise IndexError(index)
        for i, record in enumerate(self):
            if i == index:
                return record
        raise IndexError(index)  # pragma: no cover - unreachable


def _parse_line(line: bytes) -> np.ndarray:
    return np.fromiter(
        (float(part) for part in line.strip().split(b",")), dtype=float
    )


def make_csv_splits(
    path: str | Path,
    num_splits: int,
) -> tuple[list[InputSplit], int, int]:
    """Partition a headerless CSV into streaming input splits.

    One scan establishes the newline offsets (the analogue of the HDFS
    block index); records are only parsed lazily inside mapper tasks.
    Returns ``(splits, n_rows, n_columns)``.
    """
    path = Path(path)
    if num_splits < 1:
        raise ValueError("num_splits must be >= 1")

    offsets = [0]
    with open(path, "rb") as handle:
        first_line = handle.readline()
        if not first_line.strip():
            raise ValueError(f"{path} is empty")
        n_columns = len(first_line.strip().split(b","))
        offsets.append(handle.tell())
        while True:
            line = handle.readline()
            if not line:
                break
            if line.strip():
                offsets.append(handle.tell())
        end_of_file = offsets.pop()  # last offset is EOF, not a row start
        offsets.append(end_of_file)

    n_rows = len(offsets) - 1
    if n_rows == 0:
        raise ValueError(f"{path} contains no data rows")

    num_splits = min(num_splits, n_rows)
    bounds = np.linspace(0, n_rows, num_splits + 1).astype(int)
    splits: list[InputSplit] = []
    for sid in range(num_splits):
        lo, hi = int(bounds[sid]), int(bounds[sid + 1])
        if lo == hi:
            continue
        chunk = _CSVRange(
            path=str(path),
            start_offset=offsets[lo],
            end_offset=offsets[hi],
            first_row=lo,
            num_rows=hi - lo,
        )
        splits.append(InputSplit(split_id=sid, records=CSVRecordStream(chunk)))
    return splits, n_rows, n_columns
