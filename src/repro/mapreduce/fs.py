"""File-backed runtime storage: streaming CSV/npy splits and checkpoints.

Hadoop's TextInputFormat assigns each mapper a byte range of the input
file; a task seeks to its range, skips to the next record boundary and
streams records without ever materialising the whole file.  This module
provides the same contract for headerless CSV matrices and for binary
``.npy`` matrices, so the MR drivers can cluster data sets larger than
memory:

    splits, n, d = make_csv_splits("huge.csv", num_splits=64)
    splits, n, d = make_npy_splits("huge.npy", num_splits=64)
    result = P3CPlusMRLight().fit_splits(splits, n, d)

Each record is ``(row_index, numpy row)`` — identical to the in-memory
splits of :func:`repro.mapreduce.types.split_records`, so jobs cannot
tell the difference (a test asserts equal clustering output).  Both
stream families additionally expose ``iter_blocks(max_rows)`` and
``row_nbytes``, the hooks :func:`repro.mapreduce.types.iter_split_blocks`
and the runtime's ``memory_budget_bytes`` use to stream a split to a
``BatchMapper`` in bounded chunks instead of one whole-split block.

The second half of the module is :class:`CheckpointStore` — the
persistence layer behind ``JobChain`` checkpoint/resume.  Each
completed job's output pairs are pickled under a run directory and
recorded in a ``manifest.json`` keyed by the job's position/name and an
*input fingerprint* (a chained hash over the upstream fingerprint, the
job configuration and a cheap sample of the input splits).  A resumed
chain replays the driver; jobs whose fingerprint matches the manifest
are restored instead of re-executed, while any mismatch — different
data, different configuration, different upstream history — forces
recomputation of that job and everything after it.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import re
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Iterator, Sequence

import numpy as np

from repro.mapreduce.types import InputSplit, JobConf


@dataclass(frozen=True)
class _CSVRange:
    """One byte range of a CSV file plus its starting row index."""

    path: str
    start_offset: int
    end_offset: int
    first_row: int
    num_rows: int
    num_columns: int = 0


def _truncated_csv(chunk: _CSVRange, offset: int) -> ValueError:
    return ValueError(
        f"truncated CSV input: {chunk.path} ended at byte {offset}, "
        f"expected data through byte {chunk.end_offset} "
        f"(rows {chunk.first_row}..{chunk.first_row + chunk.num_rows - 1})"
    )


class CSVRecordStream(Sequence):
    """Lazy ``(row_index, row)`` sequence over a CSV byte range.

    ``__iter__`` streams straight from disk; ``__getitem__`` builds the
    range's line-offset index once, then serves each access with a
    single seek + read, keeping memory bounded by one split.  A file
    that ends before ``end_offset`` (truncated after the split index
    was built) raises :class:`ValueError` naming the path and offset
    instead of looping or silently shorting the split.
    """

    def __init__(self, chunk: _CSVRange) -> None:
        self._chunk = chunk
        self._offsets: list[int] | None = None

    def __len__(self) -> int:
        return self._chunk.num_rows

    @property
    def row_nbytes(self) -> int:
        """Bytes per parsed row (float64 per column) — the budget hook."""
        return max(1, self._chunk.num_columns) * 8

    def __iter__(self) -> Iterator[tuple[int, np.ndarray]]:
        chunk = self._chunk
        with open(chunk.path, "rb") as handle:
            handle.seek(chunk.start_offset)
            row = chunk.first_row
            while handle.tell() < chunk.end_offset:
                offset = handle.tell()
                line = handle.readline()
                if not line:
                    raise _truncated_csv(chunk, offset)
                if not line.strip():
                    continue
                yield row, _parse_line(
                    line, path=chunk.path, offset=offset, row=row
                )
                row += 1

    def _line_offsets(self) -> list[int]:
        """Byte offset of every record in the range (built once)."""
        if self._offsets is None:
            chunk = self._chunk
            offsets: list[int] = []
            with open(chunk.path, "rb") as handle:
                handle.seek(chunk.start_offset)
                while handle.tell() < chunk.end_offset:
                    offset = handle.tell()
                    line = handle.readline()
                    if not line:
                        raise _truncated_csv(chunk, offset)
                    if line.strip():
                        offsets.append(offset)
            self._offsets = offsets
        return self._offsets

    def __getitem__(self, index: int) -> tuple[int, np.ndarray]:
        if index < 0:
            index += len(self)
        if not 0 <= index < len(self):
            raise IndexError(index)
        offsets = self._line_offsets()
        if index >= len(offsets):
            raise _truncated_csv(self._chunk, self._chunk.end_offset)
        chunk = self._chunk
        with open(chunk.path, "rb") as handle:
            handle.seek(offsets[index])
            line = handle.readline()
        row = chunk.first_row + index
        return row, _parse_line(
            line, path=chunk.path, offset=offsets[index], row=row
        )

    def as_block(self) -> tuple[np.ndarray, np.ndarray]:
        """The byte range as ``(keys, block)``: one read, one parse pass.

        Feeds :class:`~repro.mapreduce.job.BatchMapper` tasks a whole
        split at once instead of one ``readline`` + parse per record;
        rows and keys are identical to what ``__iter__`` streams.
        """
        chunk = self._chunk
        with open(chunk.path, "rb") as handle:
            handle.seek(chunk.start_offset)
            raw = handle.read(chunk.end_offset - chunk.start_offset)
        rows: list[np.ndarray] = []
        offset = chunk.start_offset
        for line in raw.splitlines(keepends=True):
            if line.strip():
                rows.append(
                    _parse_line(
                        line,
                        path=chunk.path,
                        offset=offset,
                        row=chunk.first_row + len(rows),
                    )
                )
            offset += len(line)
        if len(rows) != chunk.num_rows:
            raise _truncated_csv(chunk, chunk.start_offset + len(raw))
        keys = np.arange(chunk.first_row, chunk.first_row + len(rows))
        return keys, np.stack(rows)

    def iter_blocks(
        self, max_rows: int
    ) -> Iterator[tuple[np.ndarray, np.ndarray]]:
        """Stream the range as ``(keys, block)`` chunks of ≤ ``max_rows``.

        The chunked analogue of :meth:`as_block`: concatenating every
        chunk reproduces the whole-split block exactly, but only one
        chunk is ever resident, so peak task memory is bounded by the
        chunk, not the split.
        """
        if max_rows < 1:
            raise ValueError("max_rows must be >= 1")
        chunk = self._chunk
        rows: list[np.ndarray] = []
        first = chunk.first_row
        with open(chunk.path, "rb") as handle:
            handle.seek(chunk.start_offset)
            row = chunk.first_row
            while handle.tell() < chunk.end_offset:
                offset = handle.tell()
                line = handle.readline()
                if not line:
                    raise _truncated_csv(chunk, offset)
                if not line.strip():
                    continue
                rows.append(
                    _parse_line(line, path=chunk.path, offset=offset, row=row)
                )
                row += 1
                if len(rows) == max_rows:
                    yield (
                        np.arange(first, first + len(rows)),
                        np.stack(rows),
                    )
                    first += len(rows)
                    rows = []
        if rows:
            yield np.arange(first, first + len(rows)), np.stack(rows)


def _parse_line(
    line: bytes,
    *,
    path: str | None = None,
    offset: int | None = None,
    row: int | None = None,
) -> np.ndarray:
    try:
        return np.fromiter(
            (float(part) for part in line.strip().split(b",")), dtype=float
        )
    except ValueError as exc:
        where = f" in {path}" if path is not None else ""
        if row is not None:
            where += f" at row {row}"
        if offset is not None:
            where += f" (byte offset {offset})"
        raise ValueError(
            f"malformed CSV record{where}: {line.strip()[:80]!r} ({exc})"
        ) from exc


def make_csv_splits(
    path: str | Path,
    num_splits: int,
) -> tuple[list[InputSplit], int, int]:
    """Partition a headerless CSV into streaming input splits.

    One scan establishes the newline offsets (the analogue of the HDFS
    block index); records are only parsed lazily inside mapper tasks.
    Returns ``(splits, n_rows, n_columns)``.
    """
    path = Path(path)
    if num_splits < 1:
        raise ValueError("num_splits must be >= 1")

    offsets = [0]
    with open(path, "rb") as handle:
        first_line = handle.readline()
        if not first_line.strip():
            raise ValueError(f"{path} is empty")
        n_columns = len(first_line.strip().split(b","))
        offsets.append(handle.tell())
        while True:
            line = handle.readline()
            if not line:
                break
            if line.strip():
                offsets.append(handle.tell())
        end_of_file = offsets.pop()  # last offset is EOF, not a row start
        offsets.append(end_of_file)

    n_rows = len(offsets) - 1
    if n_rows == 0:
        raise ValueError(f"{path} contains no data rows")

    num_splits = min(num_splits, n_rows)
    bounds = np.linspace(0, n_rows, num_splits + 1).astype(int)
    splits: list[InputSplit] = []
    for sid in range(num_splits):
        lo, hi = int(bounds[sid]), int(bounds[sid + 1])
        if lo == hi:
            continue
        chunk = _CSVRange(
            path=str(path),
            start_offset=offsets[lo],
            end_offset=offsets[hi],
            first_row=lo,
            num_rows=hi - lo,
            num_columns=n_columns,
        )
        splits.append(InputSplit(split_id=sid, records=CSVRecordStream(chunk)))
    return splits, n_rows, n_columns


# -- binary npy splits --------------------------------------------------


#: Row batch used by ``NpyRecordStream.__iter__`` for record streaming.
_NPY_ITER_ROWS = 1024


@dataclass(frozen=True)
class _NpyRange:
    """One row range of a 2-D row-major ``.npy`` matrix."""

    path: str
    data_offset: int
    dtype_str: str
    num_columns: int
    first_row: int
    num_rows: int


class NpyRecordStream(Sequence):
    """Lazy ``(row_index, row)`` sequence over rows of a ``.npy`` matrix.

    Two access modes:

    - ``"read"`` (default): every access seeks into the file and reads
      fresh arrays with :func:`numpy.fromfile`, so no pages of the data
      file stay resident and peak RSS is honestly bounded by the
      largest single chunk.
    - ``"mmap"``: a lazily cached ``np.load(..., mmap_mode="r")`` view;
      zero-copy for in-process pipelines, but pages touched through the
      map count toward RSS until the OS reclaims them.
    """

    def __init__(self, chunk: _NpyRange, mode: str = "read") -> None:
        if mode not in ("read", "mmap"):
            raise ValueError(f"unknown npy access mode: {mode!r}")
        self._chunk = chunk
        self._mode = mode
        self._mm: np.memmap | None = None

    def __getstate__(self) -> dict[str, Any]:
        state = dict(self.__dict__)
        state["_mm"] = None  # memmaps re-open lazily in the worker
        return state

    def __len__(self) -> int:
        return self._chunk.num_rows

    @property
    def mode(self) -> str:
        return self._mode

    @property
    def row_nbytes(self) -> int:
        """Bytes per row on disk and in a block — the budget hook."""
        chunk = self._chunk
        return np.dtype(chunk.dtype_str).itemsize * max(1, chunk.num_columns)

    def _mmap(self) -> np.memmap:
        if self._mm is None:
            self._mm = np.load(self._chunk.path, mmap_mode="r")
        return self._mm

    def _read_rows(self, lo: int, hi: int) -> np.ndarray:
        """Rows ``[lo, hi)`` of the range as a 2-D array."""
        chunk = self._chunk
        if self._mode == "mmap":
            mm = self._mmap()
            return np.asarray(mm[chunk.first_row + lo : chunk.first_row + hi])
        dtype = np.dtype(chunk.dtype_str)
        want = hi - lo
        with open(chunk.path, "rb") as handle:
            handle.seek(
                chunk.data_offset
                + (chunk.first_row + lo) * dtype.itemsize * chunk.num_columns
            )
            flat = np.fromfile(
                handle, dtype=dtype, count=want * chunk.num_columns
            )
        if flat.size != want * chunk.num_columns:
            raise ValueError(
                f"truncated npy input: {chunk.path} holds "
                f"{flat.size // max(1, chunk.num_columns)} of {want} rows "
                f"requested at row {chunk.first_row + lo}"
            )
        return flat.reshape(want, chunk.num_columns)

    def __iter__(self) -> Iterator[tuple[int, np.ndarray]]:
        first = self._chunk.first_row
        for lo in range(0, len(self), _NPY_ITER_ROWS):
            block = self._read_rows(lo, min(lo + _NPY_ITER_ROWS, len(self)))
            for i in range(block.shape[0]):
                yield first + lo + i, block[i]

    def __getitem__(self, index: int) -> tuple[int, np.ndarray]:
        if index < 0:
            index += len(self)
        if not 0 <= index < len(self):
            raise IndexError(index)
        block = self._read_rows(index, index + 1)
        return self._chunk.first_row + index, block[0]

    def as_block(self) -> tuple[np.ndarray, np.ndarray]:
        """The row range as ``(keys, block)`` — one read (or one view)."""
        chunk = self._chunk
        keys = np.arange(chunk.first_row, chunk.first_row + len(self))
        return keys, self._read_rows(0, len(self))

    def iter_blocks(
        self, max_rows: int
    ) -> Iterator[tuple[np.ndarray, np.ndarray]]:
        """Stream the range as ``(keys, block)`` chunks of ≤ ``max_rows``."""
        if max_rows < 1:
            raise ValueError("max_rows must be >= 1")
        first = self._chunk.first_row
        for lo in range(0, len(self), max_rows):
            hi = min(lo + max_rows, len(self))
            yield np.arange(first + lo, first + hi), self._read_rows(lo, hi)


def make_npy_splits(
    path: str | Path,
    num_splits: int,
    mode: str = "read",
) -> tuple[list[InputSplit], int, int]:
    """Partition a 2-D ``.npy`` matrix into file-backed input splits.

    The header is introspected once through a throwaway read-only
    memmap (shape, dtype, element offset); per-split access then goes
    through :class:`NpyRecordStream` in the chosen ``mode``.  Returns
    ``(splits, n_rows, n_columns)``.
    """
    path = Path(path)
    if num_splits < 1:
        raise ValueError("num_splits must be >= 1")
    mm = np.load(path, mmap_mode="r")
    try:
        if mm.ndim != 2:
            raise ValueError(
                f"{path} must hold a 2-D matrix, got shape {mm.shape}"
            )
        if mm.shape[1] > 1 and not mm.flags["C_CONTIGUOUS"]:
            raise ValueError(f"{path} must be row-major (C order)")
        n_rows, n_columns = (int(dim) for dim in mm.shape)
        data_offset = int(mm.offset)
        dtype_str = mm.dtype.str
    finally:
        del mm
    if n_rows == 0:
        raise ValueError(f"{path} contains no data rows")

    num_splits = min(num_splits, n_rows)
    bounds = np.linspace(0, n_rows, num_splits + 1).astype(int)
    splits: list[InputSplit] = []
    for sid in range(num_splits):
        lo, hi = int(bounds[sid]), int(bounds[sid + 1])
        if lo == hi:
            continue
        chunk = _NpyRange(
            path=str(path),
            data_offset=data_offset,
            dtype_str=dtype_str,
            num_columns=n_columns,
            first_row=lo,
            num_rows=hi - lo,
        )
        splits.append(
            InputSplit(split_id=sid, records=NpyRecordStream(chunk, mode=mode))
        )
    return splits, n_rows, n_columns


# -- chain checkpointing ------------------------------------------------


def _hash_record(hasher, record: Any) -> None:
    key, value = record
    hasher.update(repr(key).encode("utf-8"))
    if isinstance(value, np.ndarray):
        hasher.update(np.ascontiguousarray(value).tobytes())
    else:
        hasher.update(repr(value).encode("utf-8"))


def fingerprint_splits(splits: Sequence[InputSplit]) -> str:
    """A cheap, content-sensitive fingerprint of a split list.

    Hashes each split's id, length and first record — O(#splits) work
    regardless of data size (file-backed splits read one record, not
    the range), yet sensitive to the dataset swaps and re-splits that
    would make a checkpoint stale.
    """
    hasher = hashlib.sha256()
    for split in splits:
        hasher.update(f"{split.split_id}:{len(split)}".encode("utf-8"))
        if len(split) > 0:
            _hash_record(hasher, split.records[0])
    return hasher.hexdigest()[:24]


def chain_fingerprint(
    previous: str, name: str, conf: JobConf, splits: Sequence[InputSplit]
) -> str:
    """Fingerprint of one chain step, chained over its upstream history.

    Folds in the previous step's fingerprint, so a checkpoint entry is
    only reusable when every job before it matched too.  Distributed
    cache contents are deliberately *not* hashed: the P3C+ pipelines
    derive them deterministically from the input, which the chained
    history already covers.
    """
    hasher = hashlib.sha256()
    hasher.update(previous.encode("utf-8"))
    hasher.update(name.encode("utf-8"))
    simple_extra = {
        key: value
        for key, value in sorted(conf.extra.items())
        if isinstance(value, (str, int, float, bool, type(None)))
    }
    conf_token = (
        f"{conf.num_splits}:{conf.num_reducers}:{conf.sort_keys}:"
        f"{json.dumps(simple_extra, sort_keys=True)}"
    )
    hasher.update(conf_token.encode("utf-8"))
    hasher.update(fingerprint_splits(splits).encode("utf-8"))
    return hasher.hexdigest()[:24]


class CheckpointStore:
    """Durable per-job outputs of one chain run, under one directory.

    Layout::

        <root>/manifest.json          job key -> {fingerprint, file, meta}
        <root>/jobs/<key>.pkl         pickled output pairs of one job

    Writes are crash-safe in the sense that matters for resume: the
    pickle lands fully before the manifest references it, and manifest
    updates are atomic (write-to-temp + rename), so an interrupted run
    leaves at worst an orphaned pickle, never a manifest entry pointing
    at a truncated payload.
    """

    SCHEMA = "repro.mapreduce/checkpoint/v1"

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)
        self.jobs_dir = self.root / "jobs"
        self.jobs_dir.mkdir(parents=True, exist_ok=True)
        self._manifest_path = self.root / "manifest.json"
        self._manifest = self._load_manifest()

    def _load_manifest(self) -> dict[str, Any]:
        if not self._manifest_path.exists():
            return {"schema": self.SCHEMA, "jobs": {}}
        try:
            with open(self._manifest_path, "r", encoding="utf-8") as handle:
                manifest = json.load(handle)
        except (OSError, json.JSONDecodeError):
            return {"schema": self.SCHEMA, "jobs": {}}
        if manifest.get("schema") != self.SCHEMA:
            return {"schema": self.SCHEMA, "jobs": {}}
        manifest.setdefault("jobs", {})
        return manifest

    def _write_manifest(self) -> None:
        tmp = self._manifest_path.with_suffix(".json.tmp")
        with open(tmp, "w", encoding="utf-8") as handle:
            json.dump(self._manifest, handle, indent=2, sort_keys=True)
            handle.write("\n")
        os.replace(tmp, self._manifest_path)

    @staticmethod
    def job_key(ordinal: int, name: str) -> str:
        safe = re.sub(r"[^A-Za-z0-9_.-]+", "_", name)
        return f"{ordinal:03d}_{safe}"

    def load(
        self, key: str, fingerprint: str
    ) -> tuple[list[tuple[Any, Any]], dict[str, Any]] | None:
        """The stored output + metadata for ``key``, or ``None`` when the
        entry is missing, stale (fingerprint mismatch) or unreadable."""
        entry = self._manifest["jobs"].get(key)
        if entry is None or entry.get("fingerprint") != fingerprint:
            return None
        path = self.root / entry["file"]
        try:
            with open(path, "rb") as handle:
                output = pickle.load(handle)
        except (OSError, pickle.UnpicklingError, EOFError):
            return None
        return output, dict(entry.get("meta", {}))

    def save(
        self,
        key: str,
        fingerprint: str,
        output: list[tuple[Any, Any]],
        meta: dict[str, Any],
    ) -> None:
        """Persist one completed job's output and manifest entry."""
        filename = f"jobs/{key}.pkl"
        tmp = self.root / (filename + ".tmp")
        with open(tmp, "wb") as handle:
            pickle.dump(output, handle, protocol=pickle.HIGHEST_PROTOCOL)
        os.replace(tmp, self.root / filename)
        self._manifest["jobs"][key] = {
            "fingerprint": fingerprint,
            "file": filename,
            "meta": meta,
        }
        self._write_manifest()

    # -- partition plans (auto-tune x resume) ---------------------------

    def load_plan(self, key: str) -> int | None:
        """The reducer count auto-tune chose for ``key`` on the original
        run, or ``None`` when no plan was recorded."""
        entry = self._manifest.get("plans", {}).get(key)
        if entry is None:
            return None
        try:
            return int(entry["num_reducers"])
        except (KeyError, TypeError, ValueError):
            return None

    def save_plan(self, key: str, num_reducers: int) -> None:
        """Record the partition plan chosen for ``key``.

        Saved *before* the job executes, so a chain killed mid-job still
        leaves its plan behind — a resumed run must re-use it rather
        than re-planning from an event log that the restored prefix
        leaves empty of task timings.
        """
        self._manifest.setdefault("plans", {})[key] = {
            "num_reducers": int(num_reducers)
        }
        self._write_manifest()

    def __len__(self) -> int:
        return len(self._manifest["jobs"])
