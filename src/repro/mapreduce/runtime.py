"""Job execution: split -> map -> combine -> shuffle/sort -> reduce.

The serial executor is fully deterministic and is the default.  The
multiprocess executor runs map tasks on a process pool (tasks must be
picklable) and produces identical output because the shuffle re-sorts
intermediate pairs regardless of task completion order.

Fault tolerance mirrors Hadoop's task model: a failing task (mapper or
reducer raising any exception) is retried from scratch up to
``JobConf.max_task_attempts`` times — tasks are pure functions of their
split, so re-execution is always safe — and the job fails with
:class:`TaskFailedError` only when one task exhausts its attempts.
Retries are counted in the ``framework.task_retries`` counter.
"""

from __future__ import annotations

import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Sequence

from repro.mapreduce.counters import Counters
from repro.mapreduce.job import Context, Job, group_sorted_pairs
from repro.mapreduce.types import InputSplit, JobConf


class TaskFailedError(RuntimeError):
    """A task failed on every allowed attempt."""

    def __init__(self, phase: str, task_id: int, attempts: int, cause: Exception):
        super().__init__(
            f"{phase} task {task_id} failed after {attempts} attempt(s): "
            f"{cause!r}"
        )
        self.phase = phase
        self.task_id = task_id
        self.attempts = attempts
        self.cause = cause


TASK_RETRIES = "task_retries"


def _run_with_retries(task_fn, phase: str, task_id: int, max_attempts: int):
    """Execute a task function with Hadoop-style re-execution."""
    last_error: Exception | None = None
    for attempt in range(max_attempts):
        try:
            pairs, counters, elapsed = task_fn()
            if attempt > 0:
                counters.increment(Counters.FRAMEWORK, TASK_RETRIES, attempt)
            return pairs, counters, elapsed
        except Exception as error:  # noqa: BLE001 - any task error retries
            last_error = error
    assert last_error is not None
    raise TaskFailedError(phase, task_id, max_attempts, last_error)


@dataclass
class JobResult:
    """Output pairs plus accounting for one executed job."""

    output: list[tuple[Any, Any]]
    counters: Counters
    conf: JobConf
    wall_time: float
    map_task_times: list[float] = field(default_factory=list)
    reduce_task_times: list[float] = field(default_factory=list)

    @property
    def values(self) -> list[Any]:
        return [value for _, value in self.output]

    def as_dict(self) -> dict[Any, Any]:
        """Output pairs as a dict (requires unique keys)."""
        out: dict[Any, Any] = {}
        for key, value in self.output:
            if key in out:
                raise ValueError(f"duplicate output key {key!r}")
            out[key] = value
        return out


def _run_map_task(
    job: Job,
    split: InputSplit,
    conf: JobConf,
) -> tuple[list[tuple[Any, Any]], Counters, float]:
    """Execute one mapper task over one split, with optional combining."""
    started = time.perf_counter()
    counters = Counters()
    ctx = Context(job.cache, counters, task_id=split.split_id, conf=conf)
    mapper = job.mapper_factory()
    mapper.setup(ctx)
    n_records = 0
    for key, value in split:
        mapper.map(key, value, ctx)
        n_records += 1
    mapper.cleanup(ctx)
    pairs = ctx.drain()
    counters.increment(Counters.FRAMEWORK, Counters.MAP_INPUT_RECORDS, n_records)
    counters.increment(Counters.FRAMEWORK, Counters.MAP_OUTPUT_RECORDS, len(pairs))

    if job.combiner_factory is not None and pairs:
        combine_ctx = Context(job.cache, counters, task_id=split.split_id, conf=conf)
        combiner = job.combiner_factory()
        for key, values in group_sorted_pairs(pairs, conf.sort_keys):
            combiner.combine(key, values, combine_ctx)
        combined = combine_ctx.drain()
        emitted_keys = {k for k, _ in pairs}
        for key, _ in combined:
            if key not in emitted_keys:
                raise ValueError(
                    f"combiner emitted new key {key!r}; combiners must "
                    "preserve the key space of their input"
                )
        pairs = combined
        counters.increment(
            Counters.FRAMEWORK, Counters.COMBINE_OUTPUT_RECORDS, len(pairs)
        )
    return pairs, counters, time.perf_counter() - started


def _run_reduce_task(
    job: Job,
    partition_id: int,
    pairs: list[tuple[Any, Any]],
    conf: JobConf,
) -> tuple[list[tuple[Any, Any]], Counters, float]:
    """Execute one reducer task over one shuffled partition."""
    started = time.perf_counter()
    counters = Counters()
    ctx = Context(job.cache, counters, task_id=partition_id, conf=conf)
    assert job.reducer_factory is not None
    reducer = job.reducer_factory()
    reducer.setup(ctx)
    n_groups = 0
    for key, values in group_sorted_pairs(pairs, conf.sort_keys):
        reducer.reduce(key, values, ctx)
        n_groups += 1
    reducer.cleanup(ctx)
    output = ctx.drain()
    counters.increment(Counters.FRAMEWORK, Counters.REDUCE_INPUT_GROUPS, n_groups)
    counters.increment(
        Counters.FRAMEWORK, Counters.REDUCE_OUTPUT_RECORDS, len(output)
    )
    return output, counters, time.perf_counter() - started


class MapReduceRuntime:
    """Executes :class:`~repro.mapreduce.job.Job` specifications.

    Parameters
    ----------
    max_workers:
        ``None`` or ``1`` selects the serial executor.  Larger values run
        map tasks on a process pool; reduce tasks stay serial (the
        P3C+-MR jobs use at most a handful of reducers, so the map phase
        dominates exactly as in the paper's cluster).
    """

    def __init__(self, max_workers: int | None = None) -> None:
        if max_workers is not None and max_workers < 1:
            raise ValueError("max_workers must be >= 1")
        self.max_workers = max_workers
        self.history: list[JobResult] = []

    # -- public API ---------------------------------------------------

    def run(self, job: Job, splits: Sequence[InputSplit], conf: JobConf) -> JobResult:
        """Run one job over pre-computed input splits."""
        started = time.perf_counter()
        counters = Counters()

        map_outputs, map_times = self._run_map_phase(job, splits, conf, counters)

        if conf.num_reducers == 0 or job.reducer_factory is None:
            output = [pair for pairs in map_outputs for pair in pairs]
            result = JobResult(
                output=output,
                counters=counters,
                conf=conf,
                wall_time=time.perf_counter() - started,
                map_task_times=map_times,
            )
            self.history.append(result)
            return result

        partitions = self._shuffle(job, map_outputs, conf, counters)
        output: list[tuple[Any, Any]] = []
        reduce_times: list[float] = []
        for pid in range(conf.num_reducers):
            part_output, part_counters, elapsed = _run_with_retries(
                lambda pid=pid: _run_reduce_task(job, pid, partitions[pid], conf),
                "reduce",
                pid,
                conf.max_task_attempts,
            )
            output.extend(part_output)
            counters.merge(part_counters)
            reduce_times.append(elapsed)

        result = JobResult(
            output=output,
            counters=counters,
            conf=conf,
            wall_time=time.perf_counter() - started,
            map_task_times=map_times,
            reduce_task_times=reduce_times,
        )
        self.history.append(result)
        return result

    # -- phases ---------------------------------------------------------

    def _run_map_phase(
        self,
        job: Job,
        splits: Sequence[InputSplit],
        conf: JobConf,
        counters: Counters,
    ) -> tuple[list[list[tuple[Any, Any]]], list[float]]:
        map_outputs: list[list[tuple[Any, Any]]] = []
        map_times: list[float] = []
        if self.max_workers is None or self.max_workers == 1 or len(splits) == 1:
            for split in splits:
                pairs, task_counters, elapsed = _run_with_retries(
                    lambda split=split: _run_map_task(job, split, conf),
                    "map",
                    split.split_id,
                    conf.max_task_attempts,
                )
                map_outputs.append(pairs)
                counters.merge(task_counters)
                map_times.append(elapsed)
        else:
            with ProcessPoolExecutor(max_workers=self.max_workers) as pool:
                futures = [
                    pool.submit(_run_map_task, job, split, conf) for split in splits
                ]
                for split, future in zip(splits, futures):
                    # First attempt ran on the pool; retries re-run the
                    # task in-process.  Tasks are pure functions of their
                    # split, so the executor cannot change the output.
                    def attempt(split=split, future=future, state={"first": True}):
                        if state["first"]:
                            state["first"] = False
                            return future.result()
                        return _run_map_task(job, split, conf)

                    pairs, task_counters, elapsed = _run_with_retries(
                        attempt, "map", split.split_id, conf.max_task_attempts
                    )
                    map_outputs.append(pairs)
                    counters.merge(task_counters)
                    map_times.append(elapsed)
        return map_outputs, map_times

    def _shuffle(
        self,
        job: Job,
        map_outputs: list[list[tuple[Any, Any]]],
        conf: JobConf,
        counters: Counters,
    ) -> list[list[tuple[Any, Any]]]:
        partitions: list[list[tuple[Any, Any]]] = [
            [] for _ in range(conf.num_reducers)
        ]
        n_shuffled = 0
        for pairs in map_outputs:
            for key, value in pairs:
                pid = job.partitioner.partition(key, conf.num_reducers)
                if not 0 <= pid < conf.num_reducers:
                    raise ValueError(
                        f"partitioner returned {pid} for {conf.num_reducers} "
                        "reducers"
                    )
                partitions[pid].append((key, value))
                n_shuffled += 1
        counters.increment(Counters.FRAMEWORK, Counters.SHUFFLE_RECORDS, n_shuffled)
        return partitions

    # -- accounting -----------------------------------------------------

    def total_counters(self) -> Counters:
        """Aggregate counters across every job this runtime executed."""
        total = Counters()
        for result in self.history:
            total.merge(result.counters)
        return total

    @property
    def jobs_run(self) -> int:
        return len(self.history)
